"""Tests for spans, the structured logger, and cross-process propagation."""

from __future__ import annotations

import io
import json

import pytest

from repro import obs
from repro.obs.tracing import NULL_SPAN
from repro.runtime.executor import BatchExecutor, ExecutorConfig
from repro.runtime.jobs import JobSpec


class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        assert obs.span("fit.static_params") is NULL_SPAN
        with obs.span("fit.static_params") as s:
            s.set("anything", 1)
        assert obs.events() == []

    def test_span_records_timing_and_attrs(self):
        obs.configure(enabled=True)
        with obs.span("fit.static_params", packets=10) as s:
            s.set("extra", "yes")
        (record,) = obs.events()
        assert record["type"] == "span"
        assert record["name"] == "fit.static_params"
        assert record["status"] == "ok"
        assert record["wall_sec"] >= 0
        assert record["cpu_sec"] >= 0
        assert record["attrs"] == {"packets": 10, "extra": "yes"}
        assert record["trace_id"] == obs.trace_id()
        assert record["parent_id"] is None

    def test_nesting_sets_parent_id(self):
        obs.configure(enabled=True)
        with obs.span("batch.run"):
            with obs.span("executor.job"):
                pass
        inner, outer = obs.events()
        assert inner["name"] == "executor.job"
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None

    def test_exception_marks_error_and_propagates(self):
        obs.configure(enabled=True)
        with pytest.raises(RuntimeError):
            with obs.span("executor.job"):
                raise RuntimeError("boom")
        (record,) = obs.events()
        assert record["status"] == "error"
        assert record["attrs"]["error_type"] == "RuntimeError"

    def test_configure_enable_starts_fresh_trace(self):
        obs.configure(enabled=True)
        first = obs.trace_id()
        with obs.span("a.b"):
            pass
        obs.configure(enabled=False)
        obs.configure(enabled=True)
        assert obs.trace_id() != first
        assert obs.events() == []


class TestLogger:
    def test_human_format(self):
        stream = io.StringIO()
        obs.configure(log_stream=stream, log_format="human")
        obs.get_logger("repro.test").info("train.epoch", epoch=3, nll=0.5)
        line = stream.getvalue().strip()
        assert "INFO" in line
        assert "repro.test" in line
        assert "train.epoch" in line
        assert "epoch=3" in line
        assert "nll=0.5" in line

    def test_jsonl_format(self):
        stream = io.StringIO()
        obs.configure(log_stream=stream, log_format="jsonl")
        obs.get_logger("repro.test").warning("executor.retry", attempt=2)
        record = json.loads(stream.getvalue())
        assert record["level"] == "warning"
        assert record["event"] == "executor.retry"
        assert record["fields"] == {"attempt": 2}

    def test_level_threshold(self):
        stream = io.StringIO()
        obs.configure(log_stream=stream, log_level="warning")
        log = obs.get_logger("repro.test")
        log.info("quiet.event")
        log.error("loud.event")
        assert "quiet.event" not in stream.getvalue()
        assert "loud.event" in stream.getvalue()

    def test_events_mirrored_into_trace_buffer_when_enabled(self):
        stream = io.StringIO()
        obs.configure(enabled=True, log_stream=stream)
        with obs.span("batch.run"):
            obs.get_logger("repro.test").info("cache.warm", entries=3)
        events = [e for e in obs.events() if e["type"] == "event"]
        (event,) = events
        assert event["name"] == "cache.warm"
        assert event["fields"] == {"entries": 3}
        # Linked to the enclosing span.
        span = next(e for e in obs.events() if e["type"] == "span")
        assert event["span_id"] == span["span_id"]

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            obs.get_logger("x").log("loud", "event")


class TestContextPropagation:
    def test_disabled_context_is_none(self):
        assert obs.current_context() is None

    def test_activate_context_adopts_identity(self):
        obs.configure(enabled=True)
        with obs.span("batch.run"):
            ctx = obs.current_context()
        parent_events = obs.events()
        with obs.activate_context(ctx) as collected:
            with obs.span("executor.job", job_id="j1"):
                obs.metrics().counter("cache.hits").inc()
        telemetry = collected.telemetry()
        # The worker-side span carries the parent's trace id and hangs
        # off the submitting span.
        (span,) = telemetry["events"]
        assert span["trace_id"] == ctx["trace_id"]
        assert span["parent_id"] == ctx["parent_span_id"]
        assert telemetry["metrics"]["counters"]["cache.hits"] == 1.0
        # Parent state was restored untouched.
        assert obs.events() == parent_events
        obs.merge_telemetry(telemetry)
        assert span in obs.events()
        assert obs.metrics_snapshot()["counters"]["cache.hits"] == 1.0

    def test_activate_none_is_transparent(self):
        with obs.activate_context(None) as collected:
            assert collected is None
            with obs.span("a.b"):
                pass
        assert obs.events() == []


def _traced_worker(spec: JobSpec):
    with obs.span("worker.stage", n=spec.params["n"]):
        obs.metrics().counter("worker.calls").inc()
    return spec.params["n"]


class TestCrossProcess:
    """Real process-pool round trip: worker spans join the parent trace."""

    def test_trace_id_propagates_through_pool(self):
        obs.configure(enabled=True)
        executor = BatchExecutor(ExecutorConfig(workers=2))
        specs = [
            JobSpec(kind="test", job_id=f"job-{i}", label=f"job-{i}",
                    params={"n": i})
            for i in range(3)
        ]
        results = executor.run(specs, _traced_worker)
        assert all(r.ok for r in results)
        events = obs.events()
        job_spans = [e for e in events if e["name"] == "executor.job"]
        stage_spans = [e for e in events if e["name"] == "worker.stage"]
        assert len(job_spans) == 3
        assert len(stage_spans) == 3
        assert {e["trace_id"] for e in events} == {obs.trace_id()}
        # Worker-side stage spans nest under their executor.job span.
        job_ids = {e["span_id"] for e in job_spans}
        assert all(e["parent_id"] in job_ids for e in stage_spans)
        # Worker metrics merged into the parent registry.
        assert obs.metrics_snapshot()["counters"]["worker.calls"] == 3.0

    def test_executor_spans_carry_job_ids(self):
        obs.configure(enabled=True)
        executor = BatchExecutor(ExecutorConfig(workers=1))
        specs = [
            JobSpec(kind="test", job_id="abc123", label="one",
                    params={"n": 1}),
        ]
        executor.run(specs, _traced_worker)
        (job_span,) = [
            e for e in obs.events() if e["name"] == "executor.job"
        ]
        assert job_span["attrs"]["job_id"] == "abc123"
        assert job_span["attrs"]["attempt"] == 1

    def test_disabled_pool_run_collects_nothing(self):
        executor = BatchExecutor(ExecutorConfig(workers=2))
        specs = [
            JobSpec(kind="test", job_id=f"j{i}", label=f"j{i}",
                    params={"n": i})
            for i in range(2)
        ]
        results = executor.run(specs, _traced_worker)
        assert all(r.ok for r in results)
        assert obs.events() == []
        assert obs.metrics_snapshot() is None
