"""Behavioural tests for the congestion-control flavours.

These verify the *qualitative signatures* that make each protocol what it
is — the properties the paper's A/B tests rely on (e.g. Vegas keeps queues
short; Cubic fills them).
"""

import numpy as np
import pytest

from repro.protocols import PROTOCOLS, make_sender
from repro.simulation import units
from repro.simulation.topology import (
    ConstantBandwidth,
    PathConfig,
    PoissonCT,
    run_flow,
)
from repro.trace.metrics import summarize

RATE = units.mbps_to_bytes_per_sec(10.0)
DELAY = units.ms_to_sec(25.0)


def _config(buffer_bdp=4.0, ct_fraction=0.0):
    ct = ()
    if ct_fraction:
        ct = (PoissonCT(rate_bytes_per_sec=ct_fraction * RATE),)
    return PathConfig(
        bandwidth=ConstantBandwidth(RATE),
        propagation_delay=DELAY,
        buffer_bytes=RATE * 2 * DELAY * buffer_bdp,
        cross_traffic=ct,
    )


@pytest.fixture(scope="module")
def summaries():
    out = {}
    for protocol in ("cubic", "reno", "vegas", "bbr"):
        run = run_flow(_config(), protocol, duration=10.0, seed=5)
        out[protocol] = summarize(run.trace)
    return out


class TestRegistry:
    def test_all_protocols_registered(self):
        assert set(PROTOCOLS) == {
            "cubic", "vegas", "reno", "bbr", "cbr", "rtc", "ledbat"
        }

    def test_make_sender_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            make_sender("swift", None, "f", None)


class TestLossBased:
    def test_cubic_fills_the_link(self, summaries):
        assert summaries["cubic"].mean_rate_mbps > 8.0

    def test_reno_fills_the_link(self, summaries):
        assert summaries["reno"].mean_rate_mbps > 8.0

    def test_loss_based_protocols_bloat_the_buffer(self, summaries):
        # 4 BDP buffer at 50 ms base RTT: queueing pushes p95 way up.
        for protocol in ("cubic", "reno"):
            assert summaries[protocol].p95_delay_ms > 120

    def test_cubic_beats_reno_on_throughput_at_long_rtt(self):
        config = PathConfig(
            bandwidth=ConstantBandwidth(RATE),
            propagation_delay=units.ms_to_sec(100.0),
            buffer_bytes=RATE * 2 * 0.1 * 1.0,
        )
        cubic = summarize(
            run_flow(config, "cubic", duration=20.0, seed=6).trace
        )
        reno = summarize(run_flow(config, "reno", duration=20.0, seed=6).trace)
        assert cubic.mean_rate_mbps >= reno.mean_rate_mbps * 0.95


class TestVegas:
    def test_vegas_keeps_delay_low(self, summaries):
        assert summaries["vegas"].p95_delay_ms < 100
        assert (
            summaries["vegas"].p95_delay_ms
            < summaries["cubic"].p95_delay_ms / 2
        )

    def test_vegas_avoids_loss(self, summaries):
        assert summaries["vegas"].loss_percent == pytest.approx(0.0, abs=0.2)

    def test_vegas_still_gets_throughput(self, summaries):
        assert summaries["vegas"].mean_rate_mbps > 6.0


class TestBBR:
    def test_bbr_reaches_high_throughput(self, summaries):
        assert summaries["bbr"].mean_rate_mbps > 7.0

    def test_bbr_delay_below_loss_based(self, summaries):
        assert (
            summaries["bbr"].p95_delay_ms
            < max(summaries["cubic"].p95_delay_ms,
                  summaries["reno"].p95_delay_ms)
        )


class TestCBR:
    def test_cbr_holds_configured_rate(self):
        run = run_flow(
            _config(), "cbr", duration=10.0, seed=7,
            sender_kwargs={"rate_bytes_per_sec": 250_000.0},
        )
        summary = summarize(run.trace)
        assert summary.mean_rate_mbps == pytest.approx(2.0, rel=0.05)

    def test_cbr_does_not_react_to_congestion(self):
        # Offered load 0.9 link + 0.5 link CT: heavy loss, yet the CBR
        # sender keeps blasting at its configured rate.
        run = run_flow(
            _config(ct_fraction=0.5), "cbr", duration=10.0, seed=8,
            sender_kwargs={"rate_bytes_per_sec": 0.9 * RATE},
        )
        sent_rate = run.sender_stats["packets_sent"] * 1500 / 10.0
        assert sent_rate == pytest.approx(0.9 * RATE, rel=0.05)
        assert run.trace.loss_rate > 0.1


class TestRTC:
    def test_rtc_adapts_rate_upward_on_idle_path(self):
        run = run_flow(_config(), "rtc", duration=15.0, seed=9)
        decisions = run.trace  # rate grows over the call
        summary = summarize(run.trace)
        assert summary.mean_rate_mbps > 1.0

    def test_rtc_keeps_delay_low_under_competition(self):
        run = run_flow(_config(ct_fraction=0.4), "rtc", duration=15.0, seed=10)
        summary = summarize(run.trace)
        # The delay-gradient loop backs off before filling the 4-BDP buffer.
        assert summary.p95_delay_ms < 200

    def test_rtc_backs_off_under_overload(self):
        light = run_flow(_config(ct_fraction=0.1), "rtc", duration=15.0, seed=11)
        heavy = run_flow(_config(ct_fraction=1.2), "rtc", duration=15.0, seed=11)
        light_rate = summarize(light.trace).mean_rate_mbps
        heavy_rate = summarize(heavy.trace).mean_rate_mbps
        assert heavy_rate < light_rate


class TestDeterminism:
    @pytest.mark.parametrize("protocol", ["cubic", "vegas", "bbr", "rtc"])
    def test_same_seed_same_trace(self, protocol):
        a = run_flow(_config(ct_fraction=0.2), protocol, duration=3.0, seed=1)
        b = run_flow(_config(ct_fraction=0.2), protocol, duration=3.0, seed=1)
        assert len(a.trace) == len(b.trace)
        assert np.allclose(a.trace.sent_at, b.trace.sent_at)
        assert np.allclose(
            a.trace.delivered_at, b.trace.delivered_at, equal_nan=True
        )
