"""Tests for the §6 'open challenges' extensions: validity limits, the
realism discriminator, and adaptive cross traffic."""

import numpy as np
import pytest

from repro.analysis.realism import realism_test, window_features
from repro.core import iboxnet
from repro.core.adaptive_ct import (
    adaptivity_demonstration,
    fit_adaptive_ct,
)
from repro.core.validity import ValidityRegion
from repro.simulation import units
from repro.simulation.topology import (
    ConstantBandwidth,
    FlowCT,
    PathConfig,
    run_flow,
)

RATE = units.mbps_to_bytes_per_sec(10.0)


class TestValidityRegion:
    @pytest.fixture(scope="class")
    def region(self, vegas_traces):
        return ValidityRegion().fit(vegas_traces[:3])

    def test_training_traces_score_high(self, region, vegas_traces):
        # Individual training traces live inside the pooled envelope
        # (heterogeneous paths mean each trace occupies a different part
        # of it, so per-trace coverage varies but stays high).
        coverages = [region.score(t).coverage for t in vegas_traces[:3]]
        assert min(coverages) > 0.7
        assert float(np.mean(coverages)) > 0.9

    def test_similar_test_trace_in_region(self, region, vegas_traces):
        report = region.score(vegas_traces[3])
        assert report.coverage > 0.7

    def test_out_of_distribution_sender_flagged(self, region):
        """A CBR blaster far above every trained sending rate must be
        reported out of the validity region — the paper's R example."""
        config = PathConfig(
            bandwidth=ConstantBandwidth(4 * RATE),
            propagation_delay=0.02,
            buffer_bytes=1_000_000,
        )
        blaster = run_flow(
            config, "cbr", duration=6.0, seed=1,
            sender_kwargs={"rate_bytes_per_sec": 3.5 * RATE},
        ).trace
        report = region.score(blaster)
        assert not report.is_valid
        assert report.per_feature_violation["sending_rate"] > 0.5
        assert report.worst_feature() in ("sending_rate", "previous_delay")

    def test_report_renders(self, region, vegas_traces):
        text = region.score(vegas_traces[0]).format_report()
        assert "coverage" in text

    def test_score_before_fit_rejected(self, vegas_traces):
        with pytest.raises(RuntimeError):
            ValidityRegion().score(vegas_traces[0])

    def test_feature_mismatch_rejected(self, region, vegas_traces):
        with pytest.raises(ValueError):
            region.score(
                vegas_traces[0], ct=np.zeros(len(vegas_traces[0]))
            )

    def test_fit_requires_traces(self):
        with pytest.raises(ValueError):
            ValidityRegion().fit([])


class TestRealism:
    def test_identical_corpora_indistinguishable(self, vegas_traces):
        """Disjoint samples of the *same* process should defeat the
        discriminator: realism score near 1."""
        result = realism_test(
            vegas_traces[:2], vegas_traces[2:], seed=1
        )
        assert result.realism_score > 0.4

    def test_grossly_wrong_simulator_detected(self, vegas_traces, clean_config):
        """A constant-rate, queue-free path is easily told apart from
        cellular ground truth: realism score near 0."""
        fake = [
            run_flow(clean_config, "cbr", duration=12.0, seed=s,
                     sender_kwargs={"rate_bytes_per_sec": 0.2 * RATE}).trace
            for s in (1, 2)
        ]
        result = realism_test(vegas_traces[:2], fake, seed=1)
        assert result.realism_score < 0.5
        assert result.held_out_accuracy > 0.6

    def test_iboxnet_more_realistic_than_strawman(self, vegas_traces, clean_config):
        """iBoxNet simulations of the same paths should score better than
        an unrelated path's traffic."""
        sims = [
            iboxnet.fit(t).simulate("vegas", duration=12.0, seed=7 + i)
            for i, t in enumerate(vegas_traces[:2])
        ]
        fake = [
            run_flow(clean_config, "cbr", duration=12.0, seed=s,
                     sender_kwargs={"rate_bytes_per_sec": 0.2 * RATE}).trace
            for s in (1, 2)
        ]
        iboxnet_score = realism_test(vegas_traces[:2], sims, seed=2)
        strawman_score = realism_test(vegas_traces[:2], fake, seed=2)
        assert (
            iboxnet_score.realism_score >= strawman_score.realism_score
        )

    def test_window_features_shape(self, cubic_trace):
        features = window_features(cubic_trace, window=2.0)
        assert features.shape[1] == 8
        assert len(features) >= 3

    def test_too_few_windows_rejected(self, cubic_trace):
        with pytest.raises(ValueError):
            realism_test([cubic_trace.subtrace(0.0, 1.0)], [cubic_trace])


class TestAdaptiveCT:
    @pytest.fixture(scope="class")
    def trained(self):
        """Ground truth: one Cubic cross flow competing on a known path."""
        config = PathConfig(
            bandwidth=ConstantBandwidth(RATE),
            propagation_delay=0.025,
            buffer_bytes=250_000,
            cross_traffic=(FlowCT(protocol="cubic"),),
        )
        run = run_flow(config, "cubic", duration=12.0, seed=3)
        model = iboxnet.fit(run.trace)
        adaptive = fit_adaptive_ct(model, run.trace, max_flows=2, seed=3)
        return run, adaptive

    def test_fit_finds_competing_flow(self, trained):
        _, adaptive = trained
        # The true workload was exactly one Cubic flow.
        assert adaptive.n_cubic_flows >= 1
        assert np.isfinite(adaptive.fit_error)

    def test_simulation_matches_training_summary(self, trained):
        run, adaptive = trained
        from repro.trace.metrics import summarize

        sim = summarize(adaptive.simulate("cubic", duration=12.0, seed=9))
        gt = summarize(run.trace)
        assert sim.mean_rate_mbps == pytest.approx(
            gt.mean_rate_mbps, rel=0.5
        )

    def test_cross_traffic_is_adaptive(self, trained):
        """The §6 point: the learnt CT yields more to a greedy sender
        than to a gentle one — impossible with non-adaptive replay."""
        _, adaptive = trained
        if adaptive.n_cubic_flows == 0:
            pytest.skip("fit chose no closed-loop flows")
        shares = adaptivity_demonstration(adaptive, duration=8.0, seed=4)
        # Cubic extracts at least as much as Vegas against adaptive CT.
        assert shares["cubic"] >= 0.8 * shares["vegas"]

    def test_str_rendering(self, trained):
        _, adaptive = trained
        assert "cubic CT flows" in str(adaptive)
