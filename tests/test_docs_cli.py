"""Docs ↔ CLI consistency: every ``repro <cmd>`` the docs name must exist.

README.md and OPERATIONS.md are full of copy-pasteable command lines; a
renamed or removed subcommand must fail CI here rather than silently
rotting the docs.  The check parses the real parser tree out of
``repro.cli.build_parser`` and compares it against every ``repro ...``
invocation found in the docs' code spans (fenced blocks and inline
backticks — prose is ignored to avoid false matches).
"""

from __future__ import annotations

import argparse
import re
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parents[1]
DOC_FILES = ("README.md", "OPERATIONS.md")

_WORD = re.compile(r"^[a-z][a-z-]*$")
_INVOCATION = re.compile(
    r"(?:python -m )?\brepro\s+((?:[a-z][a-z-]*|--?\S+|\S+)"
    r"(?:[ \t]+\S+)*)"
)


def _subcommands(parser: argparse.ArgumentParser) -> dict:
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    return {}


def command_tree() -> dict:
    """``{command: {subcommand, ...}}`` straight from the real parser."""
    tree = {}
    for name, sub in _subcommands(build_parser()).items():
        tree[name] = set(_subcommands(sub))
    return tree


def _code_spans(text: str):
    """Fenced code blocks plus inline backtick spans, fences first."""
    parts = text.split("```")
    for i, part in enumerate(parts):
        if i % 2 == 1:  # inside a fence
            yield part
        else:
            yield from re.findall(r"`([^`\n]+)`", part)


def _doc_invocations(path: Path):
    """(command, subcommand-or-None, span) triples named by one doc."""
    for span in _code_spans(path.read_text()):
        for match in _INVOCATION.finditer(span):
            tokens = match.group(1).split()
            if not tokens or not _WORD.match(tokens[0]):
                continue  # `repro --help`, paths, prose fragments
            command = tokens[0]
            subcommand = None
            if len(tokens) > 1 and _WORD.match(tokens[1]):
                subcommand = tokens[1]
            yield command, subcommand, span.strip()


def test_docs_exist():
    for name in DOC_FILES:
        assert (REPO_ROOT / name).exists(), f"{name} is missing"


@pytest.mark.parametrize("doc", DOC_FILES)
def test_every_documented_command_exists(doc):
    tree = command_tree()
    path = REPO_ROOT / doc
    if not path.exists():
        pytest.skip(f"{doc} not present")
    seen = 0
    for command, subcommand, span in _doc_invocations(path):
        seen += 1
        assert command in tree, (
            f"{doc} names `repro {command}` but cli.py has no such "
            f"command (in: {span[:80]!r})"
        )
        if subcommand is not None and tree[command]:
            assert subcommand in tree[command], (
                f"{doc} names `repro {command} {subcommand}` but "
                f"cli.py only has {sorted(tree[command])} "
                f"(in: {span[:80]!r})"
            )
    assert seen > 0, f"{doc} names no repro commands at all?"


def test_fleet_commands_are_documented():
    """The fleet surface this PR adds must actually be in the docs."""
    for doc in DOC_FILES:
        text = (REPO_ROOT / doc).read_text()
        assert "serve fleet" in text, f"{doc} does not mention serve fleet"


def test_serve_fetch_exists_and_is_documented():
    """The result-fetch surface: a real subcommand, named by the docs."""
    tree = command_tree()
    assert "fetch" in tree["serve"], "cli.py has no `serve fetch`"
    text = (REPO_ROOT / "OPERATIONS.md").read_text()
    assert "serve fetch" in text, "OPERATIONS.md does not mention serve fetch"


def test_storage_campaign_is_wired():
    """`repro chaos --campaign storage` must parse and reach its runner."""
    parser = build_parser()
    args = parser.parse_args(
        ["chaos", "--campaign", "storage", "--seed", "3"]
    )
    assert args.campaign == "storage"
    assert args.seed == 3
    from repro.guard.chaos import run_storage_campaign  # importable

    assert callable(run_storage_campaign)
