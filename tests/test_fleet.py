"""Fleet mode: hash-ring routing, cross-shard roll-up, shard-kill recovery.

Three layers, cheapest first: pure ring properties, offline status
aggregation over synthetic shard state dirs, and one end-to-end drill
that runs a real 2-shard fleet as subprocesses, SIGKILLs a shard
mid-run, and demands exactly-once completion fleet-wide.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve import (
    FleetConfig,
    FleetManager,
    FleetRouter,
    HashRing,
    JobJournal,
    fleet_status,
    format_fleet_status,
    format_status,
    is_fleet_state,
    serve_status,
    submit_via_socket,
)


# ----------------------------------------------------------------------
# HashRing properties
# ----------------------------------------------------------------------
class TestHashRing:
    def test_deterministic_and_total(self):
        ring = HashRing(["shard-0", "shard-1", "shard-2"])
        keys = [f"job-{i}" for i in range(500)]
        owners = {k: ring.owner(k) for k in keys}
        again = HashRing(["shard-2", "shard-1", "shard-0"])  # order-free
        assert all(again.owner(k) == owners[k] for k in keys)
        assert set(owners.values()) == {"shard-0", "shard-1", "shard-2"}

    def test_stability_under_shard_loss(self):
        """Removing a member only remaps *that member's* keys."""
        ring = HashRing(["shard-0", "shard-1", "shard-2"])
        keys = [f"job-{i}" for i in range(1000)]
        owners = {k: ring.owner(k) for k in keys}
        survivors = ring.without("shard-1")
        for key in keys:
            if owners[key] != "shard-1":
                assert survivors.owner(key) == owners[key]
            else:
                assert survivors.owner(key) in ("shard-0", "shard-2")

    def test_readmission_restores_ownership(self):
        ring = HashRing(["shard-0", "shard-1", "shard-2"])
        keys = [f"job-{i}" for i in range(300)]
        owners = {k: ring.owner(k) for k in keys}
        back = ring.without("shard-2").with_member("shard-2")
        assert all(back.owner(k) == owners[k] for k in keys)

    def test_balance_is_roughly_even(self):
        ring = HashRing([f"shard-{i}" for i in range(4)])
        spread = ring.spread([f"job-{i}" for i in range(2000)])
        assert all(count > 200 for count in spread.values())

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing([]).owner("job")


# ----------------------------------------------------------------------
# Offline status: dead-daemon reporting and cross-shard aggregation
# ----------------------------------------------------------------------
def _write_snapshot(state_dir: Path, counters: dict, ts: float) -> None:
    obs_dir = state_dir / "obs"
    obs_dir.mkdir(parents=True, exist_ok=True)
    (obs_dir / "metrics.json").write_text(
        json.dumps(
            {
                "v": 1,
                "ts": ts,
                "metrics": {
                    "counters": counters,
                    "gauges": {},
                    "histograms": {},
                },
                "service": {"queue_depth": 0, "in_flight": {}},
            }
        )
    )


def _seed_shard(
    shard_dir: Path, jobs: list, counters: dict, snapshot_age: float
) -> None:
    journal = JobJournal(shard_dir / "journal", fsync=False)
    for job_id, outcome in jobs:
        request = {"job_id": job_id, "kind": "chaos", "label": job_id,
                   "params": {}}
        journal.submitted(request)
        if outcome == "completed":
            journal.leased(job_id, lease=1)
            journal.completed(job_id, duration_sec=0.1)
        elif outcome == "moved":
            journal.moved(job_id, "elsewhere")
        elif outcome == "leased":
            journal.leased(job_id, lease=1)
    journal.close()
    _write_snapshot(shard_dir, counters, ts=time.time() - snapshot_age)


class TestServeStatusDown:
    def test_dead_daemon_reports_down_with_snapshot_age(self, tmp_path):
        """Satellite fix: status on a dead daemon must not raise."""
        state = tmp_path / "state"
        _seed_shard(state, [("j1", "completed")], {"serve.completed": 1},
                    snapshot_age=42.0)
        # A pid that is long gone: our own dead child.
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        (state / "serve.pid").write_text(str(child.pid))

        status = serve_status(state)
        assert status["daemon"] == "down"
        assert status["live"]["snapshot_age_sec"] == pytest.approx(
            42.0, abs=5.0
        )
        text = format_status(status)
        assert "down" in text
        assert "last snapshot" in text

    def test_live_daemon_reports_up(self, tmp_path):
        state = tmp_path / "state"
        _seed_shard(state, [("j1", "completed")], {}, snapshot_age=0.0)
        (state / "serve.pid").write_text(str(os.getpid()))
        status = serve_status(state)
        assert status["daemon"] == "up"
        assert "up" in format_status(status)

    def test_missing_snapshot_does_not_crash_format(self, tmp_path):
        state = tmp_path / "state"
        journal = JobJournal(state / "journal", fsync=False)
        journal.close()
        status = serve_status(state)
        assert status["daemon"] == "down"
        format_status(status)  # must not raise


class TestFleetStatusAggregation:
    def test_rollup_equals_per_shard_sums(self, tmp_path):
        state = tmp_path / "fleet"
        _seed_shard(
            state / "shard-0",
            [("a", "completed"), ("b", "completed")],
            {"serve.admitted": 2, "serve.completed": 2},
            snapshot_age=1.0,
        )
        _seed_shard(
            state / "shard-1",
            [("c", "completed")],
            {"serve.admitted": 1, "serve.completed": 1, "serve.shed": 4},
            snapshot_age=1.0,
        )
        assert is_fleet_state(state)
        status = fleet_status(state)
        assert status["counts"]["total"] == 3
        assert status["counts"]["completed"] == 3
        # Merged counters are exactly the sums of the shard snapshots.
        assert status["rollup"]["counters"]["serve.admitted"] == 3
        assert status["rollup"]["counters"]["serve.completed"] == 3
        assert status["rollup"]["counters"]["serve.shed"] == 4
        assert status["rollup"]["inputs"] == 2

    def test_moved_job_counts_once_at_its_new_owner(self, tmp_path):
        """A handed-off job is 'rejected: moved' on the dead shard and
        completed on the survivor — the fleet view must count it once,
        as completed."""
        state = tmp_path / "fleet"
        _seed_shard(state / "shard-0", [("x", "moved")], {}, 1.0)
        _seed_shard(state / "shard-1", [("x", "completed")], {}, 1.0)
        status = fleet_status(state)
        assert status["counts"]["total"] == 1
        assert status["counts"]["completed"] == 1
        assert status["counts"]["rejected"] == 0
        (job,) = status["jobs"]
        assert job["status"] == "completed"
        assert job["shard"] == "shard-1"
        assert job["completions"] == 1
        text = format_fleet_status(status)
        assert "DOUBLE-COMPLETED" not in text

    def test_leased_beats_rejected_in_precedence(self, tmp_path):
        state = tmp_path / "fleet"
        _seed_shard(state / "shard-0", [("x", "moved")], {}, 1.0)
        _seed_shard(state / "shard-1", [("x", "leased")], {}, 1.0)
        status = fleet_status(state)
        assert status["jobs"][0]["status"] == "leased"

    def test_single_daemon_dir_is_not_a_fleet(self, tmp_path):
        state = tmp_path / "state"
        _seed_shard(state, [("j", "completed")], {}, 1.0)
        assert not is_fleet_state(state)


# ----------------------------------------------------------------------
# Start-up recovery scan for half-finished handoffs
# ----------------------------------------------------------------------
class TestRecoverMoved:
    def test_orphaned_move_is_resubmitted(self, tmp_path):
        state = tmp_path / "fleet"
        # shard-0 journaled the move but the old manager died before
        # forwarding; no other shard ever saw the job.
        _seed_shard(state / "shard-0", [("lost", "moved")], {}, 1.0)
        _seed_shard(state / "shard-1", [], {}, 1.0)
        manager = FleetManager(FleetConfig(state_dir=state, shards=2))
        manager._recover_moved()
        assert "lost" in manager._pending_handoffs
        # Flagged so a moved tombstone at its (respawned) ring owner
        # cannot dedupe the recovery resubmission away.
        assert manager._pending_handoffs["lost"]["requeue"] is True

    def test_malformed_moved_request_is_surfaced_as_lost(self, tmp_path):
        """A tombstone whose stored request cannot be resubmitted must
        land in the lost-handoffs list, not vanish into a log line."""
        state = tmp_path / "fleet"
        # A moved record for a job that was never submitted leaves only
        # a stub request ({"job_id": ...}, no kind) behind.
        journal = JobJournal(state / "shard-0" / "journal", fsync=False)
        journal.moved("ghost", "elsewhere")
        journal.close()
        _seed_shard(state / "shard-1", [], {}, 1.0)
        manager = FleetManager(FleetConfig(state_dir=state, shards=2))
        manager._recover_moved()
        assert "ghost" not in manager._pending_handoffs
        assert "ghost" in manager._lost_handoffs
        section = manager._fleet_section()
        assert section["lost_handoffs"] == 1
        assert section["lost_handoff_jobs"] == ["ghost"]

    def test_delivered_move_is_left_alone(self, tmp_path):
        state = tmp_path / "fleet"
        _seed_shard(state / "shard-0", [("x", "moved")], {}, 1.0)
        _seed_shard(state / "shard-1", [("x", "completed")], {}, 1.0)
        manager = FleetManager(FleetConfig(state_dir=state, shards=2))
        manager._recover_moved()
        assert manager._pending_handoffs == {}


# ----------------------------------------------------------------------
# Supervision sweeps: empty-ring respawn, wedged-shard escalation,
# undeliverable-handoff surfacing (hand-rigged shard handles; the only
# real subprocesses are inert sleepers standing in for wedged daemons)
# ----------------------------------------------------------------------
class TestFleetSupervision:
    def _manager(self, tmp_path, **overrides) -> FleetManager:
        return FleetManager(
            FleetConfig(state_dir=tmp_path / "fleet", shards=1, **overrides)
        )

    def _sleeper(self) -> subprocess.Popen:
        return subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"]
        )

    def test_empty_ring_respawns_dead_shard(self, tmp_path, monkeypatch):
        """Regression: with every shard dead there is no handoff target,
        and gating respawn on the handoff deadlocked the fleet forever
        (no_live_shard for every request until a manager restart)."""
        manager = self._manager(tmp_path)
        shard = manager.shards[0]
        shard.status = "dead"
        shard.needs_handoff = True
        shard.next_restart_at = 0.0
        spawned = []
        monkeypatch.setattr(
            manager, "_spawn", lambda s: spawned.append(s.name)
        )
        manager._sweep()
        assert spawned == ["shard-0"]
        assert not shard.needs_handoff

    def test_persistent_suspicion_kills_wedged_shard(self, tmp_path):
        """Router forwarding failures against an alive process must
        escalate to a kill + failover, not be discarded every sweep."""
        manager = self._manager(tmp_path, suspect_sweep_limit=3)
        shard = manager.shards[0]
        proc = self._sleeper()
        try:
            shard.process = proc
            shard.status = "live"
            shard.live_since = time.monotonic()
            for _ in range(2):
                manager._note_suspect(shard.name)
                manager._sweep()
                assert shard.status == "live"  # below the limit
            manager._note_suspect(shard.name)
            manager._sweep()
            assert shard.status == "dead"
            assert proc.poll() is not None  # SIGKILLed by the manager
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def test_one_off_suspicion_is_forgiven(self, tmp_path):
        manager = self._manager(tmp_path, suspect_sweep_limit=3)
        shard = manager.shards[0]
        proc = self._sleeper()
        try:
            shard.process = proc
            shard.status = "live"
            shard.live_since = time.monotonic()
            manager._note_suspect(shard.name)
            manager._sweep()
            manager._sweep()  # clean sweep resets the streak
            manager._note_suspect(shard.name)
            manager._sweep()
            assert shard.status == "live"
            assert shard.suspect_sweeps == 1
        finally:
            proc.kill()
            proc.wait(timeout=10)

    def test_stale_heartbeat_kills_wedged_shard(self, tmp_path):
        manager = self._manager(tmp_path, heartbeat_timeout_sec=5.0)
        shard = manager.shards[0]
        proc = self._sleeper()
        try:
            shard.process = proc
            shard.status = "live"
            _write_snapshot(shard.state_dir, {}, ts=time.time() - 60)
            # Grace window: a freshly (re)admitted shard is not judged
            # on the snapshot left over from its previous life.
            shard.live_since = time.monotonic()
            manager._sweep()
            assert shard.status == "live"
            # Long-live shard with a long-stale snapshot: wedged.
            shard.live_since = time.monotonic() - 30.0
            manager._sweep()
            assert shard.status == "dead"
            assert proc.poll() is not None
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def test_undeliverable_handoff_is_surfaced_not_dropped(self, tmp_path):
        """An 'invalid' resubmission response means the job can never
        run anywhere — it must show up in health/stats, not just a log."""
        manager = self._manager(tmp_path)
        request = {"job_id": "bad", "kind": "chaos", "params": {}}
        manager._pending_handoffs["bad"] = request

        async def fake_route(req):
            return {"status": "rejected", "reason": "invalid: boom"}

        manager.router.route = fake_route
        asyncio.run(manager._pump_handoffs())
        assert manager._pending_handoffs == {}
        assert manager._lost_handoffs["bad"]["request"] == request
        section = manager._fleet_section()
        assert section["lost_handoffs"] == 1
        assert section["lost_handoff_jobs"] == ["bad"]


class TestFleetStatusRouterProbe:
    def test_permission_error_means_alive(self, tmp_path, monkeypatch):
        """A fleet pid owned by another user is up, not down — mirror
        serve_status's treatment of PermissionError."""
        state = tmp_path / "fleet"
        _seed_shard(state / "shard-0", [], {}, 1.0)
        (state / "fleet.pid").write_text("4242")

        def fake_kill(pid, sig):
            raise PermissionError(f"pid {pid} belongs to someone else")

        monkeypatch.setattr(os, "kill", fake_kill)
        status = fleet_status(state)
        assert status["router"] == {"pid": 4242, "alive": True}


# ----------------------------------------------------------------------
# Router forwarding (in-process fake shard; no subprocesses)
# ----------------------------------------------------------------------
class TestFleetRouter:
    def _fake_shard(self, socket_path: Path, reply: dict):
        async def handle(reader, writer):
            line = await reader.readline()
            request = json.loads(line)
            response = {**reply, "job_id": request.get("job_id")}
            writer.write((json.dumps(response) + "\n").encode())
            await writer.drain()
            writer.close()

        return asyncio.start_unix_server(handle, path=str(socket_path))

    def test_forwards_and_annotates_shard(self, tmp_path):
        async def scenario():
            shard_sock = tmp_path / "shard.sock"
            server = await self._fake_shard(
                shard_sock, {"status": "accepted"}
            )
            router = FleetRouter(
                tmp_path / "fleet.sock",
                owner_of=lambda job_id: ("shard-7", shard_sock),
                control=lambda verb: {"status": "ok", "verb": verb},
            )
            await router.start()
            try:
                response = await router.route(
                    {"job_id": "j1", "kind": "chaos", "params": {},
                     "label": "j1", "class": "chaos"}
                )
            finally:
                await router.stop()
                server.close()
                await server.wait_closed()
            return response

        response = asyncio.run(scenario())
        assert response["status"] == "accepted"
        assert response["shard"] == "shard-7"
        assert response["job_id"] == "j1"

    def test_unreachable_shard_rejects_and_reports(self, tmp_path):
        suspected = []

        async def scenario():
            router = FleetRouter(
                tmp_path / "fleet.sock",
                owner_of=lambda job_id: (
                    "shard-9", tmp_path / "nowhere.sock"
                ),
                control=lambda verb: {},
                on_shard_error=suspected.append,
            )
            return await router.route(
                {"job_id": "j2", "kind": "chaos", "params": {}}
            )

        response = asyncio.run(scenario())
        assert response["status"] == "rejected"
        assert response["reason"] == "shard_unavailable"
        assert response["retry_after_sec"] > 0
        assert suspected == ["shard-9"]

    def test_no_live_shard_rejects_with_retry_hint(self, tmp_path):
        async def scenario():
            router = FleetRouter(
                tmp_path / "fleet.sock",
                owner_of=lambda job_id: None,
                control=lambda verb: {},
            )
            return await router.route(
                {"job_id": "j3", "kind": "chaos", "params": {}}
            )

        response = asyncio.run(scenario())
        assert response["status"] == "rejected"
        assert response["reason"] == "no_live_shard"


# ----------------------------------------------------------------------
# End-to-end: real fleet, SIGKILL one shard, exactly-once fleet-wide
# ----------------------------------------------------------------------
def _spawn_fleet(state: Path, shards: int, log_path: Path, extra_args=()):
    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    with open(log_path, "w") as log:
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "fleet",
                "--state", str(state),
                "--shards", str(shards),
                "--workers-per-shard", "1",
                "--no-fsync",
                "--snapshot-interval", "0.25",
                "--supervise-interval", "0.1",
                "--max-runtime-sec", "90",
                *extra_args,
            ],
            stdout=log,
            stderr=subprocess.STDOUT,
            env=env,
        )


def _wait_for(predicate, timeout_sec: float, poll: float = 0.1) -> bool:
    deadline = time.monotonic() + timeout_sec
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return False


@pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="POSIX signals required"
)
def test_shard_kill_requeue_drill(tmp_path):
    """Kill one shard of a live 2-shard fleet; every job must complete
    exactly once somewhere, and the fleet must re-admit the shard."""
    state = tmp_path / "fleet"
    jobs = 6
    requests = [
        {
            "kind": "chaos",
            "job_id": f"drill-{i}",
            "label": f"drill-{i}",
            "class": "drill",
            "timeout_sec": 30.0,
            "params": {"fault": "sleep", "sleep_sec": 0.4, "idx": i},
        }
        for i in range(jobs)
    ]

    def fleet_completions() -> dict:
        done = {}
        for shard_dir in sorted(state.glob("shard-*")):
            journal_state = JobJournal.read_state(shard_dir / "journal")
            for job_id, job in journal_state.jobs.items():
                done[job_id] = done.get(job_id, 0) + job.completions
        return done

    fleet = _spawn_fleet(state, shards=2, log_path=tmp_path / "fleet.log")
    try:
        assert _wait_for(
            lambda: (state / "fleet.pid").exists()
            and all(
                (state / f"shard-{i}" / "serve.pid").exists()
                for i in range(2)
            ),
            timeout_sec=30,
        ), (tmp_path / "fleet.log").read_text()[-2000:]

        responses = submit_via_socket(state / "fleet.sock", requests)
        assert all(r["status"] == "accepted" for r in responses), responses
        by_shard = {}
        for r in responses:
            by_shard.setdefault(r["shard"], []).append(r["job_id"])
        victim = max(by_shard, key=lambda s: len(by_shard[s]))
        victim_pid = int((state / victim / "serve.pid").read_text())

        # Let at least one job finish, then SIGKILL the busier shard.
        assert _wait_for(
            lambda: sum(
                1 for n in fleet_completions().values() if n
            ) >= 1,
            timeout_sec=30,
        )
        os.kill(victim_pid, signal.SIGKILL)

        assert _wait_for(
            lambda: all(
                fleet_completions().get(f"drill-{i}", 0) >= 1
                for i in range(jobs)
            ),
            timeout_sec=45,
        ), f"incomplete: {fleet_completions()}"

        # Exactly-once fleet-wide: one completed record per job.
        done = fleet_completions()
        assert all(
            done[f"drill-{i}"] == 1 for i in range(jobs)
        ), f"double completions: {done}"

        # The victim must come back and be re-admitted (new pid marker).
        assert _wait_for(
            lambda: (state / victim / "serve.pid").exists()
            and int((state / victim / "serve.pid").read_text())
            != victim_pid,
            timeout_sec=30,
        )
    finally:
        if fleet.poll() is None:
            fleet.send_signal(signal.SIGTERM)
            try:
                fleet.wait(timeout=40)
            except subprocess.TimeoutExpired:
                fleet.kill()
                fleet.wait(timeout=10)

    assert fleet.returncode == 0, (
        tmp_path / "fleet.log"
    ).read_text()[-2000:]

    # Offline roll-up over the same state dir agrees with the journals.
    status = fleet_status(state)
    assert status["counts"]["completed"] == jobs
    assert not status["router"]["alive"]


@pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="POSIX signals required"
)
def test_single_shard_fleet_recovers_from_kill(tmp_path):
    """Regression for the empty-ring deadlock: killing the only shard of
    a --shards 1 fleet leaves no handoff target, but the manager must
    still respawn it (journal replay requeues its jobs) instead of
    rejecting everything with no_live_shard until restarted by hand."""
    state = tmp_path / "fleet"
    jobs = 3
    requests = [
        {
            "kind": "chaos",
            "job_id": f"solo-{i}",
            "label": f"solo-{i}",
            "class": "solo",
            "timeout_sec": 30.0,
            "params": {"fault": "sleep", "sleep_sec": 0.3, "idx": i},
        }
        for i in range(jobs)
    ]

    def completions() -> dict:
        journal_state = JobJournal.read_state(state / "shard-0" / "journal")
        return {j: job.completions for j, job in journal_state.jobs.items()}

    fleet = _spawn_fleet(state, shards=1, log_path=tmp_path / "fleet.log")
    try:
        assert _wait_for(
            lambda: (state / "fleet.pid").exists()
            and (state / "shard-0" / "serve.pid").exists(),
            timeout_sec=30,
        ), (tmp_path / "fleet.log").read_text()[-2000:]

        responses = submit_via_socket(state / "fleet.sock", requests)
        assert all(r["status"] == "accepted" for r in responses), responses
        victim_pid = int((state / "shard-0" / "serve.pid").read_text())
        os.kill(victim_pid, signal.SIGKILL)

        # The shard must come back on its own and finish every job
        # exactly once (its own replay requeues them; nothing moved).
        assert _wait_for(
            lambda: all(
                completions().get(f"solo-{i}", 0) >= 1 for i in range(jobs)
            ),
            timeout_sec=45,
        ), f"incomplete after respawn: {completions()}"
        assert int((state / "shard-0" / "serve.pid").read_text()) != victim_pid
    finally:
        if fleet.poll() is None:
            fleet.send_signal(signal.SIGTERM)
            try:
                fleet.wait(timeout=40)
            except subprocess.TimeoutExpired:
                fleet.kill()
                fleet.wait(timeout=10)

    assert fleet.returncode == 0, (
        tmp_path / "fleet.log"
    ).read_text()[-2000:]
    done = completions()
    assert all(done[f"solo-{i}"] == 1 for i in range(jobs)), done


@pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="POSIX signals required"
)
def test_tcp_fleet_passes_the_same_kill_drill(tmp_path):
    """Parity check (DESIGN.md §14): a fleet bound on ``tcp:`` must
    survive the same shard-kill drill as the unix fleet — routing,
    journal-first handoff, exactly-once, and shard re-admission all
    ride the transport abstraction, not the socket family."""
    state = tmp_path / "fleet"
    jobs = 4
    requests = [
        {
            "kind": "chaos",
            "job_id": f"tcp-{i}",
            "label": f"tcp-{i}",
            "class": "drill",
            "timeout_sec": 30.0,
            "params": {"fault": "sleep", "sleep_sec": 0.4, "idx": i},
        }
        for i in range(jobs)
    ]

    def fleet_completions() -> dict:
        done = {}
        for shard_dir in sorted(state.glob("shard-*")):
            journal_state = JobJournal.read_state(shard_dir / "journal")
            for job_id, job in journal_state.jobs.items():
                done[job_id] = done.get(job_id, 0) + job.completions
        return done

    fleet = _spawn_fleet(
        state, shards=2, log_path=tmp_path / "fleet.log",
        extra_args=("--bind", "tcp:127.0.0.1:0"),
    )
    try:
        assert _wait_for(
            lambda: (state / "fleet.pid").exists()
            and (state / "fleet.endpoint").exists(),
            timeout_sec=30,
        ), (tmp_path / "fleet.log").read_text()[-2000:]
        endpoint = (state / "fleet.endpoint").read_text().strip()
        assert endpoint.startswith("tcp:127.0.0.1:")
        assert not endpoint.endswith(":0")  # ephemeral port resolved
        # No unix front-door socket exists in tcp mode.
        assert not (state / "fleet.sock").exists()

        responses = submit_via_socket(endpoint, requests)
        assert all(r["status"] == "accepted" for r in responses), responses
        by_shard = {}
        for r in responses:
            by_shard.setdefault(r["shard"], []).append(r["job_id"])
        victim = max(by_shard, key=lambda s: len(by_shard[s]))
        victim_pid = int((state / victim / "serve.pid").read_text())
        os.kill(victim_pid, signal.SIGKILL)

        assert _wait_for(
            lambda: all(
                fleet_completions().get(f"tcp-{i}", 0) >= 1
                for i in range(jobs)
            ),
            timeout_sec=45,
        ), f"incomplete: {fleet_completions()}"
        done = fleet_completions()
        assert all(done[f"tcp-{i}"] == 1 for i in range(jobs)), done

        # The victim respawns with a fresh (tcp-ephemeral) endpoint.
        assert _wait_for(
            lambda: (state / victim / "serve.pid").exists()
            and int((state / victim / "serve.pid").read_text()) != victim_pid
            and (state / victim / "serve.endpoint").exists(),
            timeout_sec=30,
        )
        assert (
            (state / victim / "serve.endpoint").read_text().strip()
            .startswith("tcp:127.0.0.1:")
        )
    finally:
        if fleet.poll() is None:
            fleet.send_signal(signal.SIGTERM)
            try:
                fleet.wait(timeout=40)
            except subprocess.TimeoutExpired:
                fleet.kill()
                fleet.wait(timeout=10)

    assert fleet.returncode == 0, (
        tmp_path / "fleet.log"
    ).read_text()[-2000:]
