"""Tests for the LSTM: gradient checks, state handling, step/forward
consistency."""

import numpy as np
import pytest

from repro.ml.lstm import LSTM, LSTMCell


def check_param_gradients(module, loss_fn, samples=8, eps=1e-6, atol=2e-4):
    """Compare analytic grads (already accumulated) to finite differences
    on a random subset of entries per parameter."""
    rng = np.random.default_rng(123)
    for p in module.parameters():
        flat = p.value.ravel()
        gflat = p.grad.ravel()
        for i in rng.choice(flat.size, size=min(samples, flat.size),
                            replace=False):
            old = flat[i]
            flat[i] = old + eps
            up = loss_fn()
            flat[i] = old - eps
            down = loss_fn()
            flat[i] = old
            numeric = (up - down) / (2 * eps)
            assert numeric == pytest.approx(gflat[i], abs=atol), p.name


class TestLSTMCell:
    def test_output_shape(self):
        cell = LSTMCell(3, 5, np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(2, 7, 3))
        h = cell.forward(x)
        assert h.shape == (2, 7, 5)

    def test_gradient_check(self):
        rng = np.random.default_rng(2)
        cell = LSTMCell(3, 4, rng)
        x = rng.normal(size=(2, 6, 3))
        target = rng.normal(size=(2, 6, 4))

        def loss():
            return float(((cell.forward(x) - target) ** 2).sum())

        cell.zero_grad()
        out = cell.forward(x)
        cell.backward(2 * (out - target))
        check_param_gradients(cell, loss)

    def test_input_gradient_check(self):
        rng = np.random.default_rng(3)
        cell = LSTMCell(3, 4, rng)
        x = rng.normal(size=(1, 5, 3))
        target = rng.normal(size=(1, 5, 4))

        cell.zero_grad()
        out = cell.forward(x)
        grad_x = cell.backward(2 * (out - target))

        eps = 1e-6
        for t in range(5):
            for d in range(3):
                old = x[0, t, d]
                x[0, t, d] = old + eps
                up = float(((cell.forward(x) - target) ** 2).sum())
                x[0, t, d] = old - eps
                down = float(((cell.forward(x) - target) ** 2).sum())
                x[0, t, d] = old
                numeric = (up - down) / (2 * eps)
                assert numeric == pytest.approx(grad_x[0, t, d], abs=2e-4)

    def test_forget_bias_initialised_to_one(self):
        cell = LSTMCell(3, 4, np.random.default_rng(0))
        hidden = cell.hidden_dim
        assert (cell.b.value[hidden : 2 * hidden] == 1.0).all()
        assert (cell.b.value[:hidden] == 0.0).all()

    def test_step_matches_sequence_forward(self):
        rng = np.random.default_rng(4)
        cell = LSTMCell(3, 4, rng)
        x = rng.normal(size=(2, 6, 3))
        hs = cell.forward(x)
        state = None
        for t in range(6):
            h, state = cell.step(x[:, t], state)
            assert np.allclose(h, hs[:, t], atol=1e-12)

    def test_initial_state_passthrough(self):
        rng = np.random.default_rng(5)
        cell = LSTMCell(2, 3, rng)
        x = rng.normal(size=(1, 4, 2))
        h0 = rng.normal(size=(1, 3))
        c0 = rng.normal(size=(1, 3))
        with_state = cell.forward(x, h0=h0, c0=c0)
        cold = cell.forward(x)
        assert not np.allclose(with_state, cold)


class TestStackedLSTM:
    def test_stack_depth(self):
        stack = LSTM(3, 4, num_layers=3, rng=np.random.default_rng(0))
        assert len(stack.layers) == 3
        assert stack.layers[0].input_dim == 3
        assert stack.layers[1].input_dim == 4

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            LSTM(3, 4, num_layers=0, rng=np.random.default_rng(0))

    def test_gradient_check_two_layers(self):
        rng = np.random.default_rng(6)
        stack = LSTM(3, 4, num_layers=2, rng=rng)
        x = rng.normal(size=(2, 5, 3))
        target = rng.normal(size=(2, 5, 4))

        def loss():
            return float(((stack.forward(x) - target) ** 2).sum())

        stack.zero_grad()
        out = stack.forward(x)
        stack.backward(2 * (out - target))
        check_param_gradients(stack, loss, samples=5)

    def test_step_matches_forward(self):
        rng = np.random.default_rng(7)
        stack = LSTM(3, 4, num_layers=2, rng=rng)
        x = rng.normal(size=(1, 6, 3))
        hs = stack.forward(x)
        states = None
        for t in range(6):
            h, states = stack.step(x[:, t], states)
            assert np.allclose(h, hs[:, t], atol=1e-12)

    def test_long_sequence_gradients_bounded(self):
        """BPTT over a long sequence must not explode with forget-bias
        init and small weights."""
        rng = np.random.default_rng(8)
        stack = LSTM(2, 8, num_layers=1, rng=rng)
        x = rng.normal(size=(1, 300, 2))
        stack.zero_grad()
        out = stack.forward(x)
        stack.backward(np.ones_like(out) / out.size)
        total = sum(float(np.abs(p.grad).max()) for p in stack.parameters())
        assert np.isfinite(total)
        assert total < 1e3
