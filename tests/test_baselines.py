"""Tests for the comparison baselines."""

import numpy as np
import pytest

from repro.baselines.replay import ReplayModel, fit_replay_model
from repro.baselines.statistical_loss import fit_statistical_loss_model
from repro.trace.metrics import summarize


class TestStatisticalLoss:
    def test_calibrated_to_training_loss(self, cubic_trace):
        model = fit_statistical_loss_model(cubic_trace)
        assert model.statistical_loss_rate == pytest.approx(
            cubic_trace.loss_rate
        )
        assert not model.include_cross_traffic

    def test_simulated_loss_matches_calibration(self, cubic_trace):
        model = fit_statistical_loss_model(cubic_trace)
        result = model.simulate_run("cubic", duration=8.0, seed=4)
        assert result.trace.loss_rate == pytest.approx(
            cubic_trace.loss_rate, abs=0.03
        )
        # The defining deficiency: no cross traffic is modelled.
        assert result.cross_traffic_bytes == 0

    def test_baseline_distorts_treatment_protocol(self, cubic_trace):
        """The Fig. 3(b) failure mode, as a test: replacing cross traffic
        with i.i.d. loss is wrong in a protocol-dependent direction —
        random loss devastates a loss-averse protocol like Vegas (which
        would see *zero* loss against real queue-building cross traffic),
        so the baseline grossly underpredicts its throughput."""
        from repro.core import iboxnet

        baseline = fit_statistical_loss_model(cubic_trace)
        full = iboxnet.fit(cubic_trace)
        sim_base = summarize(baseline.simulate("vegas", duration=8.0, seed=5))
        sim_full = summarize(full.simulate("vegas", duration=8.0, seed=5))
        assert sim_base.loss_percent > 1.0  # forced random loss
        assert sim_full.loss_percent < 0.5  # Vegas avoids real loss
        assert sim_base.mean_rate_mbps < 0.5 * sim_full.mean_rate_mbps


class TestReplay:
    def test_schedule_extraction(self, cubic_trace):
        model = fit_replay_model(cubic_trace)
        assert len(model.delays) == len(cubic_trace)
        assert model.source_flow_id == cubic_trace.flow_id

    def test_apply_reimposes_delays(self, cubic_trace):
        model = fit_replay_model(cubic_trace)
        replayed = model.apply(cubic_trace)
        assert np.allclose(
            replayed.delays, cubic_trace.delays, equal_nan=True
        )

    def test_wraps_for_longer_inputs(self, cubic_trace, vegas_run):
        model = fit_replay_model(cubic_trace)
        replayed = model.apply(vegas_run.trace)
        assert len(replayed) == len(vegas_run.trace)

    def test_fundamental_flaw_demonstrated(self, clean_config):
        """The §1 criticism, as a test: replay ignores the protocol's own
        impact.  A Cubic flow recorded on an idle path is replayed for a
        sender twice as aggressive — the replayed delays stay identical,
        which no real network would do."""
        from repro.simulation.topology import run_flow

        gentle = run_flow(clean_config, "vegas", duration=6.0, seed=1)
        model = fit_replay_model(gentle.trace)
        aggressive = run_flow(clean_config, "cubic", duration=6.0, seed=2)
        replayed = model.apply(aggressive.trace)
        # Vegas kept the queue empty; Cubic would have filled it, yet the
        # replay hands Cubic Vegas's low delays.
        assert np.nanpercentile(replayed.delays, 95) < np.nanpercentile(
            aggressive.trace.delays, 95
        )

    def test_empty_schedule_rejected(self, cubic_trace):
        model = ReplayModel(delays=np.array([]), source_flow_id="x")
        with pytest.raises(ValueError):
            model.apply(cubic_trace)
