"""Tests for SAX discretization."""

import numpy as np
import pytest

from repro.discovery.sax import (
    SAXConfig,
    gaussian_breakpoints,
    paa,
    positive_delta_breakpoints,
    sax_inter_arrival,
    sax_symbols,
)


class TestBreakpoints:
    def test_gaussian_breakpoints_symmetric(self):
        points = gaussian_breakpoints(4)
        assert len(points) == 3
        assert points[1] == pytest.approx(0.0, abs=1e-12)
        assert points[0] == pytest.approx(-points[2])

    def test_equiprobable(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(size=100_000)
        points = gaussian_breakpoints(5)
        counts = np.histogram(samples, bins=[-np.inf, *points, np.inf])[0]
        assert (np.abs(counts / len(samples) - 0.2) < 0.01).all()

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            gaussian_breakpoints(1)


class TestPAA:
    def test_divisible_length(self):
        series = np.array([1.0, 1.0, 5.0, 5.0])
        assert paa(series, 2) == pytest.approx([1.0, 5.0])

    def test_segments_ge_length_is_identity(self):
        series = np.array([1.0, 2.0])
        assert paa(series, 10) == pytest.approx([1.0, 2.0])

    def test_non_divisible_preserves_mean(self):
        series = np.arange(10.0)
        reduced = paa(series, 3)
        assert len(reduced) == 3
        assert reduced.mean() == pytest.approx(series.mean(), rel=0.2)

    def test_invalid_segments(self):
        with pytest.raises(ValueError):
            paa(np.zeros(5), 0)


class TestClassicSAX:
    def test_alphabet_usage(self):
        rng = np.random.default_rng(1)
        symbols = sax_symbols(rng.normal(size=1000), SAXConfig(alphabet_size=4))
        assert set(symbols) == {"a", "b", "c", "d"}

    def test_monotone_series_is_sorted_symbols(self):
        symbols = sax_symbols(np.linspace(-3, 3, 50), SAXConfig(alphabet_size=3))
        assert list(symbols) == sorted(symbols)

    def test_constant_series_single_symbol(self):
        symbols = sax_symbols(np.ones(20), SAXConfig(alphabet_size=6))
        assert len(set(symbols)) == 1

    def test_empty_and_nan_series(self):
        assert sax_symbols(np.array([])) == ""
        assert sax_symbols(np.array([np.nan, np.nan])) == ""

    def test_paa_reduces_length(self):
        symbols = sax_symbols(
            np.random.default_rng(2).normal(size=100),
            SAXConfig(alphabet_size=4, paa_segments=10),
        )
        assert len(symbols) == 10

    def test_invalid_alphabet_size(self):
        with pytest.raises(ValueError):
            SAXConfig(alphabet_size=1)


class TestInterArrivalSAX:
    def test_a_reserved_for_negative(self):
        deltas = np.array([0.01, -0.005, 0.02, 0.015, -0.001, 0.03])
        symbols = sax_inter_arrival(deltas)
        assert symbols[1] == "a"
        assert symbols[4] == "a"
        assert "a" not in symbols[0] + symbols[2] + symbols[3] + symbols[5]

    def test_positive_values_spread_over_bcdef(self):
        rng = np.random.default_rng(3)
        deltas = rng.exponential(0.01, size=2000)
        symbols = sax_inter_arrival(deltas, alphabet_size=6)
        used = set(symbols)
        assert "a" not in used
        assert used == {"b", "c", "d", "e", "f"}
        # Quantile binning -> roughly equal occupancy.
        counts = [symbols.count(s) for s in "bcdef"]
        assert max(counts) < 2 * min(counts)

    def test_shared_breakpoints_reused(self):
        reference = np.random.default_rng(4).exponential(0.01, size=500)
        breakpoints = positive_delta_breakpoints(reference)
        symbols_a = sax_inter_arrival(reference, breakpoints=breakpoints)
        symbols_b = sax_inter_arrival(
            reference + 1.0, breakpoints=breakpoints
        )
        # A trace whose deltas all exceed the reference's largest
        # breakpoint maps entirely to the top symbol.
        assert set(symbols_b) == {"f"}
        assert set(symbols_a) == {"b", "c", "d", "e", "f"}

    def test_trace_input(self, cubic_trace):
        symbols = sax_inter_arrival(cubic_trace)
        assert len(symbols) == cubic_trace.packets_delivered - 1

    def test_empty(self):
        assert sax_inter_arrival(np.array([])) == ""
