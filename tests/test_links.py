"""Tests for rate processes, the bottleneck server and the token bucket."""

import numpy as np
import pytest

from repro.simulation.delaybox import Sink
from repro.simulation.engine import Simulator
from repro.simulation.links import (
    Bottleneck,
    CellularRateProcess,
    ConstantRateProcess,
    MarkovRateProcess,
    TokenBucket,
    TraceRateProcess,
)
from repro.simulation.packet import Packet
from repro.simulation.queues import DropTailQueue


def _packet(size=1500, seq=0):
    p = Packet(flow_id="f", seq=seq, size=size)
    p.sent_at = 0.0
    return p


class TestRateProcesses:
    def test_constant(self):
        process = ConstantRateProcess(1e6)
        assert process.rate_at(0.0) == 1e6
        assert process.rate_at(100.0) == 1e6

    def test_constant_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantRateProcess(0.0)

    def test_trace_step_function(self):
        process = TraceRateProcess([0.0, 1.0, 2.0], [100.0, 200.0, 50.0])
        assert process.rate_at(0.5) == 100.0
        assert process.rate_at(1.0) == 200.0
        assert process.rate_at(1.99) == 200.0
        assert process.rate_at(10.0) == 50.0  # holds last value

    def test_trace_rejects_bad_schedules(self):
        with pytest.raises(ValueError):
            TraceRateProcess([0.0, 0.0], [1.0, 2.0])  # non-increasing
        with pytest.raises(ValueError):
            TraceRateProcess([0.0], [0.0])  # zero rate
        with pytest.raises(ValueError):
            TraceRateProcess([], [])

    def test_cellular_is_deterministic_given_seed(self):
        a = CellularRateProcess(1e6, duration=5.0, seed=42)
        b = CellularRateProcess(1e6, duration=5.0, seed=42)
        times = np.linspace(0, 5, 50)
        assert all(a.rate_at(t) == b.rate_at(t) for t in times)

    def test_cellular_fluctuates_around_mean(self):
        process = CellularRateProcess(1e6, duration=60.0, seed=1)
        rates = np.array([process.rate_at(t) for t in np.arange(0, 60, 0.1)])
        assert rates.std() > 0
        # Log-space OU around the mean: geometric mean close to nominal.
        assert 0.5e6 < np.exp(np.log(rates).mean()) < 2e6

    def test_cellular_respects_floor(self):
        process = CellularRateProcess(
            1e6, duration=60.0, seed=2, fade_prob=0.5, floor_fraction=0.1
        )
        rates = [process.rate_at(t) for t in np.arange(0, 60, 0.1)]
        assert min(rates) >= 0.1e6 - 1e-9

    def test_markov_switches_between_states(self):
        process = MarkovRateProcess(
            [1e6, 2e6, 4e6], duration=50.0, seed=3, mean_holding=1.0
        )
        rates = {process.rate_at(t) for t in np.arange(0, 50, 0.25)}
        assert len(rates) >= 2
        assert rates <= {1e6, 2e6, 4e6}


class TestBottleneck:
    def test_serialization_delay(self):
        sim = Simulator()
        sink = Sink()
        queue = DropTailQueue(1e6)
        link = Bottleneck(sim, ConstantRateProcess(1500.0), queue, sink)
        link.accept(_packet(size=1500))
        sim.run(until=0.5)
        assert sink.packets_received == 0  # service takes a full second
        sim.run(until=1.01)
        assert sink.packets_received == 1

    def test_back_to_back_service(self):
        sim = Simulator()
        arrivals = []
        sink = Sink(on_packet=lambda p: arrivals.append(sim.now))
        queue = DropTailQueue(1e6)
        link = Bottleneck(sim, ConstantRateProcess(15000.0), queue, sink)
        for i in range(3):
            link.accept(_packet(seq=i))
        sim.run(until=1.0)
        assert arrivals == pytest.approx([0.1, 0.2, 0.3])

    def test_work_conserving_after_idle(self):
        sim = Simulator()
        arrivals = []
        sink = Sink(on_packet=lambda p: arrivals.append(sim.now))
        queue = DropTailQueue(1e6)
        link = Bottleneck(sim, ConstantRateProcess(15000.0), queue, sink)
        link.accept(_packet())
        sim.run(until=1.0)
        sim.schedule(0.0, link.accept, _packet(seq=1))
        sim.run(until=2.0)
        assert arrivals == pytest.approx([0.1, 1.1])

    def test_throughput_matches_rate_under_load(self):
        sim = Simulator()
        sink = Sink()
        queue = DropTailQueue(1e9)
        rate = 150_000.0  # 100 pkts/s
        link = Bottleneck(sim, ConstantRateProcess(rate), queue, sink)
        for i in range(500):
            link.accept(_packet(seq=i))
        sim.run(until=2.0)
        assert sink.packets_received == pytest.approx(200, abs=2)

    def test_busy_time_accounting(self):
        sim = Simulator()
        sink = Sink()
        queue = DropTailQueue(1e6)
        link = Bottleneck(sim, ConstantRateProcess(15000.0), queue, sink)
        for i in range(5):
            link.accept(_packet(seq=i))
        sim.run(until=10.0)
        assert link.busy_time == pytest.approx(0.5)
        assert not link.is_busy


class TestTokenBucket:
    def test_burst_passes_instantly(self):
        sim = Simulator()
        sink = Sink()
        bucket = TokenBucket(sim, rate=1000.0, burst=4500.0, downstream=sink)
        for i in range(3):
            bucket.accept(_packet(seq=i))
        sim.run(until=0.001)
        assert sink.packets_received == 3

    def test_sustained_rate_enforced(self):
        sim = Simulator()
        arrivals = []
        sink = Sink(on_packet=lambda p: arrivals.append(sim.now))
        bucket = TokenBucket(sim, rate=1500.0, burst=1500.0, downstream=sink)
        for i in range(4):
            bucket.accept(_packet(seq=i))
        sim.run(until=10.0)
        assert sink.packets_received == 4
        # First packet free (full bucket), then one per second.
        assert arrivals == pytest.approx([0.0, 1.0, 2.0, 3.0], abs=1e-6)

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TokenBucket(sim, rate=0.0, burst=1.0, downstream=Sink())
