"""Shared fixtures.

Expensive artefacts (simulated runs, trained models) are session-scoped
and deliberately small: the unit suite must stay fast while still
exercising real end-to-end behaviour.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.datasets.pantheon import generate_dataset, generate_run
from repro.simulation import units
from repro.simulation.topology import (
    ConstantBandwidth,
    PathConfig,
    PoissonCT,
    run_flow,
)


@pytest.fixture(autouse=True)
def _reset_obs():
    """Telemetry state is process-global; keep tests isolated."""
    obs.reset()
    yield
    obs.reset()


@pytest.fixture(scope="session")
def simple_config() -> PathConfig:
    """A clean 10 Mb/s path with light Poisson cross traffic."""
    return PathConfig(
        bandwidth=ConstantBandwidth(units.mbps_to_bytes_per_sec(10.0)),
        propagation_delay=units.ms_to_sec(25.0),
        buffer_bytes=250_000,
        cross_traffic=(
            PoissonCT(rate_bytes_per_sec=units.mbps_to_bytes_per_sec(2.0)),
        ),
    )


@pytest.fixture(scope="session")
def clean_config() -> PathConfig:
    """A 10 Mb/s path with no cross traffic and no reordering."""
    return PathConfig(
        bandwidth=ConstantBandwidth(units.mbps_to_bytes_per_sec(10.0)),
        propagation_delay=units.ms_to_sec(25.0),
        buffer_bytes=250_000,
    )


@pytest.fixture(scope="session")
def cubic_run(simple_config):
    """One 10 s Cubic run over the simple path."""
    return run_flow(simple_config, "cubic", duration=10.0, seed=3)


@pytest.fixture(scope="session")
def vegas_run(simple_config):
    """One 10 s Vegas run over the simple path."""
    return run_flow(simple_config, "vegas", duration=10.0, seed=3)


@pytest.fixture(scope="session")
def cubic_trace(cubic_run):
    return cubic_run.trace


@pytest.fixture(scope="session")
def cellular_run():
    """One Pantheon-like cellular run (has reordering + variable rate)."""
    return generate_run(seed=11, protocol="cubic", duration=12.0)


@pytest.fixture(scope="session")
def small_dataset():
    """A small Pantheon-like dataset: 3 paths x {cubic, vegas}, 12 s."""
    return generate_dataset(
        n_paths=3,
        protocols=("cubic", "vegas"),
        duration=12.0,
        base_seed=10,
    )


@pytest.fixture(scope="session")
def vegas_traces():
    """Four Vegas traces over reordering-enabled cellular paths."""
    dataset = generate_dataset(
        n_paths=4, protocols=("vegas",), duration=12.0, base_seed=60
    )
    return dataset.traces()
