"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets.pantheon import PantheonDataset, generate_dataset, generate_run
from repro.datasets.rtc import control_loop_bias_setup, generate_rtc_dataset
from repro.datasets.scenarios import (
    CellularScenarioSampler,
    EthernetScenarioSampler,
    instance_test_config,
)
from repro.simulation import units
from repro.simulation.topology import CellularBandwidth, ConstantBandwidth, FlowCT


class TestScenarioSamplers:
    def test_cellular_ranges_respected(self):
        sampler = CellularScenarioSampler()
        for seed in range(30):
            config = sampler.sample(seed)
            rate = units.bytes_per_sec_to_mbps(config.bandwidth.nominal_rate)
            assert 1.5 <= rate <= 6.0
            assert 0.02 <= config.propagation_delay <= 0.06
            assert config.buffer_bytes > 0
            assert 0.003 <= config.reorder_prob <= 0.015
            assert isinstance(config.bandwidth, CellularBandwidth)

    def test_cellular_ct_mix(self):
        sampler = CellularScenarioSampler()
        kinds = set()
        for seed in range(60):
            config = sampler.sample(seed)
            kinds.add(
                type(config.cross_traffic[0]).__name__
                if config.cross_traffic
                else "None"
            )
        assert {"None", "PoissonCT", "OnOffCT"} <= kinds

    def test_sampling_deterministic(self):
        sampler = CellularScenarioSampler()
        assert sampler.sample(5) == sampler.sample(5)

    def test_ethernet_is_faster_and_clean(self):
        cellular = CellularScenarioSampler().sample(1)
        ethernet = EthernetScenarioSampler().sample(1)
        assert (
            ethernet.bandwidth.nominal_rate > cellular.bandwidth.nominal_rate
        )
        assert ethernet.reorder_prob == 0.0
        assert isinstance(ethernet.bandwidth, ConstantBandwidth)

    def test_instance_config_places_ct_burst(self):
        config = instance_test_config(ct_start=20.0, ct_duration=10.0)
        (spec,) = config.cross_traffic
        assert isinstance(spec, FlowCT)
        assert spec.start == 20.0
        assert spec.stop == 30.0


class TestPantheonDataset:
    def test_generate_run_defaults(self):
        run = generate_run(seed=3, protocol="vegas", duration=6.0)
        assert run.protocol == "vegas"
        assert run.trace.duration == 6.0
        assert len(run.trace) > 100

    def test_dataset_structure(self, small_dataset):
        assert len(small_dataset) == 6  # 3 paths x 2 protocols
        assert len(small_dataset.by_protocol("cubic")) == 3
        assert len(small_dataset.by_path(10)) == 2

    def test_paired_runs_share_path(self, small_dataset):
        pairs = small_dataset.paired_runs("cubic", "vegas")
        assert len(pairs) == 3
        for control, treatment in pairs:
            assert control.path_id == treatment.path_id
            assert control.config == treatment.config

    def test_split_by_path(self, small_dataset):
        train, test = small_dataset.split(0.67)
        train_paths = {r.path_id for r in train.runs}
        test_paths = {r.path_id for r in test.runs}
        assert train_paths.isdisjoint(test_paths)
        assert len(train_paths) == 2
        assert len(test_paths) == 1

    def test_repetitions_differ_but_share_path(self):
        dataset = generate_dataset(
            n_paths=1,
            protocols=("cubic",),
            duration=4.0,
            base_seed=3,
            runs_per_protocol=2,
        )
        a, b = dataset.runs
        assert a.config == b.config
        assert not np.array_equal(
            a.trace.delivered_at, b.trace.delivered_at
        )

    def test_traces_accessor(self, small_dataset):
        assert len(small_dataset.traces("vegas")) == 3
        assert len(small_dataset.traces()) == 6


class TestRTCDataset:
    def test_generation_and_split(self):
        dataset = generate_rtc_dataset(n_calls=4, duration=5.0, base_seed=0)
        assert len(dataset) == 4
        train, test = dataset.split(0.5)
        assert len(train) == 2 and len(test) == 2

    def test_calls_span_congestion_regimes(self):
        dataset = generate_rtc_dataset(n_calls=10, duration=8.0, base_seed=0)
        p95s = [
            float(np.percentile(t.delivered_delays(), 95))
            for t in dataset.traces
            if t.packets_delivered
        ]
        # Wide distribution: some clean calls, some congested ones.
        assert min(p95s) < 0.08
        assert max(p95s) > 2 * min(p95s)

    def test_control_loop_setup_shapes(self):
        train, test, calibration = control_loop_bias_setup(
            n_train=4, n_test=2, duration=6.0
        )
        assert len(train) == 4
        assert len(test) == 2
        assert calibration.protocol == "cubic"
        # CBR test flows exist and suffer real congestion at the top of
        # the sweep.
        worst = test[-1]
        assert np.percentile(worst.delivered_delays(), 95) > 0.1
