"""Tests for RFC 1122-style delayed ACKs."""

import pytest

from repro.protocols.base import Receiver, Sender
from repro.simulation.delaybox import DelayBox
from repro.simulation.engine import Simulator
from repro.simulation.links import Bottleneck, ConstantRateProcess
from repro.simulation.packet import Packet
from repro.simulation.queues import DropTailQueue


def _loop(delayed_ack: bool):
    sim = Simulator()
    sender = Sender(sim, "flow", None)
    ack_path = DelayBox(sim, 0.02, sender)
    receiver = Receiver(
        sim, "flow", ack_path, delayed_ack=delayed_ack
    )
    forward = DelayBox(sim, 0.02, receiver)
    queue = DropTailQueue(120_000)
    sender.downstream = Bottleneck(
        sim, ConstantRateProcess(1.25e6), queue, forward
    )
    return sim, sender, receiver


def test_delayed_acks_halve_ack_traffic():
    results = {}
    for delayed in (False, True):
        sim, sender, receiver = _loop(delayed)
        sender.start()
        sim.run(until=2.0)
        results[delayed] = (receiver.packets_received, receiver.acks_sent)
    # Immediate mode: one ACK per packet.
    assert results[False][1] == results[False][0]
    # Delayed mode: materially fewer ACKs (not exactly half — the ACK
    # clock makes burst sizes odd, and lone tail segments are flushed by
    # the timer).
    packets, acks = results[True]
    assert acks < 0.75 * packets
    assert acks > 0.4 * packets


def test_transfer_still_progresses_with_delayed_acks():
    sim, sender, receiver = _loop(True)
    sender.start()
    sim.run(until=2.0)
    assert receiver.next_expected > 100
    assert sender.timeouts == 0


def test_timer_flushes_a_lone_segment():
    sim = Simulator()
    acks = []

    class AckTap:
        def accept(self, packet):
            acks.append((sim.now, packet.ack))

    receiver = Receiver(
        sim, "flow", AckTap(), delayed_ack=True, delayed_ack_timeout=0.04
    )
    packet = Packet(flow_id="flow", seq=0)
    packet.sent_at = 0.0
    sim.schedule(1.0, receiver.accept, packet)
    sim.run(until=2.0)
    assert len(acks) == 1
    fired_at, ack_number = acks[0]
    assert fired_at == pytest.approx(1.04)
    assert ack_number == 1


def test_out_of_order_acks_immediately():
    sim = Simulator()
    acks = []

    class AckTap:
        def accept(self, packet):
            acks.append((sim.now, packet.ack))

    receiver = Receiver(sim, "flow", AckTap(), delayed_ack=True)
    for seq in (0, 1):  # one full pair -> immediate flush
        p = Packet(flow_id="flow", seq=seq)
        p.sent_at = 0.0
        receiver.accept(p)
    assert len(acks) == 1
    # Now a gap: seq 3 skips 2 -> dupack must go out instantly.
    p = Packet(flow_id="flow", seq=3)
    p.sent_at = 0.0
    receiver.accept(p)
    assert len(acks) == 2
    assert acks[-1][1] == 2  # cumulative point unchanged

    # While the hole persists, further segments also ACK immediately.
    p = Packet(flow_id="flow", seq=4)
    p.sent_at = 0.0
    receiver.accept(p)
    assert len(acks) == 3


def test_fast_retransmit_survives_delayed_acks():
    """Loss recovery must still trigger within dupacks when the receiver
    delays in-order ACKs."""
    sim = Simulator()
    sender = Sender(sim, "flow", None)
    ack_path = DelayBox(sim, 0.02, sender)
    receiver = Receiver(sim, "flow", ack_path, delayed_ack=True)
    forward = DelayBox(sim, 0.02, receiver)
    queue = DropTailQueue(15_000)  # shallow: forces drops
    sender.downstream = Bottleneck(
        sim, ConstantRateProcess(1.25e6), queue, forward
    )
    sender.start()
    sim.run(until=3.0)
    assert queue.stats.dropped_packets > 0
    assert sender.retransmissions > 0
    assert sender.timeouts == 0
