"""Tests for the §3 three-forces cross-traffic estimator."""

import numpy as np
import pytest

from repro.core.cross_traffic import (
    CrossTrafficEstimate,
    estimate_cross_traffic,
    per_packet_cross_traffic,
    reconstruct_queue_occupancy,
)
from repro.core.static_params import estimate_static_params
from repro.simulation import units
from repro.simulation.topology import (
    ConstantBandwidth,
    OnOffCT,
    PathConfig,
    PoissonCT,
    run_flow,
)

RATE = units.mbps_to_bytes_per_sec(10.0)
DELAY = units.ms_to_sec(25.0)


def _run_with_ct(ct, seed=7, duration=15.0):
    config = PathConfig(
        bandwidth=ConstantBandwidth(RATE),
        propagation_delay=DELAY,
        buffer_bytes=250_000,
        cross_traffic=ct,
    )
    return run_flow(config, "cubic", duration=duration, seed=seed)


class TestEstimateDataclass:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            CrossTrafficEstimate(bin_edges=(0.0, 1.0), rates_bytes_per_sec=(1.0, 2.0))

    def test_mean_rate_and_total(self):
        estimate = CrossTrafficEstimate(
            bin_edges=(0.0, 1.0, 3.0),
            rates_bytes_per_sec=(1000.0, 500.0),
        )
        assert estimate.total_bytes() == pytest.approx(2000.0)
        assert estimate.mean_rate == pytest.approx(2000.0 / 3.0)

    def test_at_times_lookup(self):
        estimate = CrossTrafficEstimate(
            bin_edges=(0.0, 1.0, 2.0),
            rates_bytes_per_sec=(100.0, 200.0),
        )
        lookup = estimate.at_times(np.array([-1.0, 0.5, 1.5, 5.0]))
        assert list(lookup) == [0.0, 100.0, 200.0, 0.0]


class TestQueueReconstruction:
    def test_occupancy_nonnegative_and_bounded(self, cubic_run):
        params = estimate_static_params(cubic_run.trace)
        _, occupancy = reconstruct_queue_occupancy(cubic_run.trace, params)
        assert (occupancy >= 0).all()
        # Reconstructed occupancy cannot exceed the estimated buffer much.
        assert occupancy.max() <= params.buffer_bytes * 1.2


class TestEstimation:
    def test_no_cross_traffic_estimates_near_zero(self):
        run = _run_with_ct(())
        params = estimate_static_params(run.trace)
        estimate = estimate_cross_traffic(run.trace, params)
        # Lower bound: must not hallucinate significant CT.
        assert estimate.mean_rate < 0.08 * RATE

    def test_poisson_ct_volume_recovered_as_lower_bound(self):
        true_rate = 0.3 * RATE
        run = _run_with_ct((PoissonCT(rate_bytes_per_sec=true_rate),))
        params = estimate_static_params(run.trace)
        estimate = estimate_cross_traffic(run.trace, params)
        # Conservative lower bound: clearly non-zero, never a wild
        # overestimate.  (The estimate is coupled with the bandwidth
        # estimate: persistent CT depresses the peak-receive-rate reading
        # of b, and the b deficit comes out of the CT reading in turn.)
        assert 0.2 * true_rate < estimate.mean_rate < 1.15 * true_rate

    def test_available_bandwidth_is_preserved(self):
        """The invariant the emulator actually relies on: the learnt
        (b_est - CT_est) matches the true available bandwidth (b - CT),
        even though b and CT are each individually biased low."""
        true_rate = 0.3 * RATE
        run = _run_with_ct((PoissonCT(rate_bytes_per_sec=true_rate),))
        params = estimate_static_params(run.trace)
        estimate = estimate_cross_traffic(run.trace, params)
        learnt_available = params.bandwidth_bytes_per_sec - estimate.mean_rate
        true_available = RATE - true_rate
        assert learnt_available == pytest.approx(true_available, rel=0.15)

    def test_burst_timing_localized(self):
        """An on/off burst must appear in the right bins — the property
        the instance test (Fig. 4) depends on."""
        run = _run_with_ct(
            (PoissonCT(rate_bytes_per_sec=0.5 * RATE, start=5.0, stop=10.0),),
            duration=15.0,
        )
        params = estimate_static_params(run.trace)
        estimate = estimate_cross_traffic(run.trace, params, bin_width=0.5)
        edges = np.asarray(estimate.bin_edges)
        rates = np.asarray(estimate.rates_bytes_per_sec)
        centres = (edges[:-1] + edges[1:]) / 2
        inside = rates[(centres > 5.5) & (centres < 9.5)]
        outside = rates[(centres < 4.0) | (centres > 11.0)]
        assert inside.mean() > 3 * max(outside.mean(), 1e-9)

    def test_busy_fraction_reported(self, cubic_run):
        params = estimate_static_params(cubic_run.trace)
        estimate = estimate_cross_traffic(cubic_run.trace, params)
        assert 0.0 <= estimate.busy_fraction <= 1.0
        # Cubic keeps the queue busy most of the time.
        assert estimate.busy_fraction > 0.5

    def test_stricter_busy_threshold_is_more_conservative(self, cubic_run):
        params = estimate_static_params(cubic_run.trace)
        loose = estimate_cross_traffic(
            cubic_run.trace, params, busy_threshold_packets=0.5
        )
        strict = estimate_cross_traffic(
            cubic_run.trace, params, busy_threshold_packets=8.0
        )
        assert strict.total_bytes() <= loose.total_bytes() + 1e-6

    def test_empty_trace_yields_zero_estimate(self):
        from repro.trace.records import Trace
        from repro.core.static_params import StaticParams

        trace = Trace("f", [], duration=5.0)
        params = StaticParams(1e6, 0.02, 50_000)
        estimate = estimate_cross_traffic(trace, params)
        assert estimate.total_bytes() == 0.0

    def test_invalid_bin_width(self, cubic_run):
        params = estimate_static_params(cubic_run.trace)
        with pytest.raises(ValueError):
            estimate_cross_traffic(cubic_run.trace, params, bin_width=0.0)


class TestPerPacketFeature:
    def test_alignment_with_send_times(self, cubic_run):
        params = estimate_static_params(cubic_run.trace)
        estimate = estimate_cross_traffic(cubic_run.trace, params)
        feature = per_packet_cross_traffic(cubic_run.trace, estimate)
        assert feature.shape == (len(cubic_run.trace),)
        assert (feature >= 0).all()
