"""Tests for trace feature extraction."""

import math

import numpy as np
import pytest

from repro.trace.features import (
    arrival_order_deltas,
    binned_delay_series,
    binned_rate_series,
    inter_send_times,
    packet_features,
    reordering_events,
    reordering_rate_windows,
    sending_rate_at_packets,
    sliding_window_rate,
)
from repro.trace.records import PacketRecord, Trace


def _trace(sends, deliveries, size=1500, duration=None):
    records = [
        PacketRecord(
            uid=i, seq=i, size=size, sent_at=s,
            delivered_at=d if d is not None else math.nan,
        )
        for i, (s, d) in enumerate(zip(sends, deliveries))
    ]
    if duration is None:
        duration = max(sends) + 1.0
    return Trace("f", records, duration=duration)


class TestSlidingWindowRate:
    def test_uniform_stream(self):
        times = np.arange(0.0, 10.0, 0.1)
        sizes = np.full_like(times, 1000.0)
        rates = sliding_window_rate(times, sizes, np.array([5.0]), window=1.0)
        assert rates[0] == pytest.approx(10_000.0)

    def test_window_excludes_future(self):
        times = np.array([0.0, 2.0])
        sizes = np.array([1000.0, 1000.0])
        rate_at_1 = sliding_window_rate(times, sizes, np.array([1.0]), 1.0)
        # Only the packet at t=0 is inside [0, 1); the window is half-open
        # at the evaluation point so the t=2 packet is invisible.
        assert rate_at_1[0] == pytest.approx(1000.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            sliding_window_rate(np.zeros(1), np.zeros(1), np.zeros(1), 0.0)


class TestSendingFeatures:
    def test_sending_rate_paper_definition(self):
        # 10 packets of 1500 B in the second before the last packet.
        sends = list(np.arange(0.0, 1.0, 0.1))
        trace = _trace(sends, [s + 0.01 for s in sends])
        rates = sending_rate_at_packets(trace)
        # At the final packet (t=0.9) the preceding second holds pkts 0..8.
        assert rates[-1] == pytest.approx(9 * 1500.0)

    def test_inter_send_times(self):
        trace = _trace([0.0, 0.1, 0.4], [0.01, 0.11, 0.41])
        spacing = inter_send_times(trace)
        assert spacing == pytest.approx([0.0, 0.1, 0.3])


class TestReordering:
    def test_in_order_trace_has_no_events(self):
        sends = [0.0, 0.1, 0.2, 0.3]
        trace = _trace(sends, [s + 0.05 for s in sends])
        assert not reordering_events(trace).any()
        assert (arrival_order_deltas(trace) > 0).all()

    def test_overtaking_detected(self):
        # Packet 1 takes a detour and arrives after packet 2.
        trace = _trace(
            [0.0, 0.1, 0.2],
            [0.05, 0.35, 0.25],
        )
        deltas = arrival_order_deltas(trace)
        events = reordering_events(trace)
        assert deltas[1] < 0
        assert list(events) == [False, True]

    def test_lost_packets_do_not_create_events(self):
        trace = _trace(
            [0.0, 0.1, 0.2],
            [0.05, None, 0.25],
        )
        assert not reordering_events(trace).any()

    def test_windowed_rates(self):
        # 2 windows: first has 1 reorder among 10 packets, second none.
        sends = list(np.arange(0.0, 2.0, 0.1))
        deliveries = [s + 0.05 for s in sends]
        deliveries[5] = deliveries[4] - 0.01  # reorder event in window 0
        trace = _trace(sends, deliveries, duration=2.0)
        rates = reordering_rate_windows(trace, window=1.0)
        assert len(rates) == 2
        assert rates[0] == pytest.approx(0.1)
        assert rates[1] == 0.0


class TestBinnedSeries:
    def test_rate_series_conserves_bytes(self):
        sends = list(np.arange(0.0, 5.0, 0.01))
        trace = _trace(sends, [s + 0.02 for s in sends], duration=5.0)
        _, rates = binned_rate_series(trace, bin_width=0.5)
        total = (rates * 0.5).sum()
        assert total == pytest.approx(len(sends) * 1500.0, rel=0.01)

    def test_delay_series_nan_in_empty_bins(self):
        trace = _trace([0.1, 2.1], [0.15, 2.2], duration=3.0)
        _, delays = binned_delay_series(trace, bin_width=1.0)
        assert not math.isnan(delays[0])
        assert math.isnan(delays[1])
        assert not math.isnan(delays[2])


class TestPacketFeatures:
    def test_shape_without_ct(self):
        sends = list(np.arange(0.0, 1.0, 0.1))
        trace = _trace(sends, [s + 0.05 for s in sends])
        features = packet_features(trace)
        assert features.shape == (10, 4)

    def test_ct_column_appended(self):
        sends = list(np.arange(0.0, 1.0, 0.1))
        trace = _trace(sends, [s + 0.05 for s in sends])
        ct = np.full(10, 7.0)
        features = packet_features(trace, cross_traffic=ct)
        assert features.shape == (10, 5)
        assert (features[:, 4] == 7.0).all()

    def test_ct_shape_mismatch_rejected(self):
        trace = _trace([0.0, 0.1], [0.05, 0.15])
        with pytest.raises(ValueError):
            packet_features(trace, cross_traffic=np.zeros(5))

    def test_prev_delay_carries_forward_over_losses(self):
        trace = _trace(
            [0.0, 0.1, 0.2, 0.3],
            [0.05, None, None, 0.33],
        )
        features = packet_features(trace)
        prev = features[:, 3]
        assert prev[0] == 0.0
        assert prev[1] == pytest.approx(0.05)
        assert prev[2] == pytest.approx(0.05)  # lost pkt leaves it frozen
        assert prev[3] == pytest.approx(0.05)

    def test_empty_trace(self):
        trace = Trace("f", [], duration=1.0)
        assert packet_features(trace).shape == (0, 4)
