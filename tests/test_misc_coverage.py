"""Focused tests for small utilities and plumbing not covered elsewhere."""

import numpy as np
import pytest

from repro.experiments.common import Scale, format_header
from repro.protocols.cubic import CubicSender
from repro.simulation.crosstraffic import WindowedFlowSource
from repro.simulation.delaybox import Sink
from repro.simulation.engine import Simulator
from repro.simulation.packet import Packet, reset_packet_ids
from repro.simulation.topology import FlowDemux


class TestFormatHeader:
    def test_boxes_the_title(self):
        text = format_header("Fig. X")
        lines = text.split("\n")
        assert lines[1] == "Fig. X"
        assert set(lines[0]) == {"="}
        assert len(lines[0]) >= len("Fig. X")


class TestScaleKnobs:
    def test_quick_fields_positive(self):
        scale = Scale.quick()
        assert scale.n_paths > 0
        assert scale.duration > 0
        assert scale.ml_epochs > 0


class TestFlowDemux:
    def test_routes_by_flow_id(self):
        main, other = Sink(), Sink()
        demux = FlowDemux(default_sink=other)
        demux.register("main", main)
        p_main = Packet(flow_id="main", seq=0)
        p_ct = Packet(flow_id="ct0", seq=0)
        demux.accept(p_main)
        demux.accept(p_ct)
        assert main.packets_received == 1
        assert other.packets_received == 1

    def test_default_sink_created_when_omitted(self):
        demux = FlowDemux()
        demux.accept(Packet(flow_id="anything", seq=0))
        assert demux.default.packets_received == 1


class TestWindowedFlowSource:
    def test_activate_schedules_start_and_stop(self):
        sim = Simulator()
        sink = Sink()
        sender = CubicSender(sim, "ct", sink)
        source = WindowedFlowSource(sender, start=1.0, stop=2.0)
        source.activate(sim)
        sim.run(until=0.5)
        sent_before = sender.packets_sent
        sim.run(until=1.5)
        assert sender.packets_sent > sent_before
        sim.run(until=2.1)
        frozen = sender.packets_sent
        sim.run(until=4.0)
        assert sender.packets_sent == frozen


class TestPacketIdReset:
    def test_counter_restarts(self):
        reset_packet_ids()
        first = Packet(flow_id="f", seq=0)
        assert first.uid == 0
        reset_packet_ids()
        again = Packet(flow_id="f", seq=0)
        assert again.uid == 0


class TestReprs:
    def test_simulator_repr(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        text = repr(sim)
        assert "pending=1" in text

    def test_event_repr_shows_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        assert "cancelled" in repr(event)

    def test_trace_repr(self, cubic_trace):
        text = repr(cubic_trace)
        assert "cubic" in text
        assert "packets=" in text

    def test_parameter_repr(self):
        from repro.ml.layers import Parameter

        assert "shape=(2,)" in repr(Parameter("w", np.zeros(2)))
