"""Tests for the numerical training guards (repro.guard.numeric)."""

import math

import numpy as np
import pytest

from repro import obs
from repro.guard.numeric import DivergenceGuard, sanitize_training_arrays
from repro.ml.model import GaussianSequenceModel


def _model():
    return GaussianSequenceModel(input_dim=3, hidden_dim=8, num_layers=1,
                                 seed=0)


def _data(rng_seed=1, n=4, t=20):
    rng = np.random.default_rng(rng_seed)
    seqs = [rng.normal(size=(t, 3)) for _ in range(n)]
    tgts = [np.abs(rng.normal(size=t)) + 0.01 for _ in range(n)]
    return seqs, tgts


class TestAllowUpdate:
    def test_finite_update_allowed(self):
        guard = DivergenceGuard(_model())
        assert guard.allow_update(1.5, 10.0)
        assert guard.skipped_updates == 0

    @pytest.mark.parametrize(
        "loss,norm",
        [
            (math.nan, 1.0),
            (math.inf, 1.0),
            (1.0, math.nan),
            (1.0, math.inf),
            (1.0, 1e5),  # explosion beyond max_grad_norm=1e4
        ],
    )
    def test_unhealthy_update_vetoed(self, loss, norm):
        guard = DivergenceGuard(_model())
        assert not guard.allow_update(loss, norm)
        assert guard.skipped_updates == 1

    def test_skips_counted_in_metrics(self):
        obs.configure(enabled=True)
        guard = DivergenceGuard(_model())
        guard.allow_update(math.nan, 0.0)
        snapshot = obs.metrics_snapshot()
        assert snapshot["counters"]["guard.skipped_updates"] == 1


class TestRollback:
    def test_healthy_run_keeps_final_params(self):
        model = _model()
        guard = DivergenceGuard(model)
        guard.note_epoch(2.0)
        guard.note_epoch(1.0)
        assert not guard.finalize(1.0)
        assert not guard.rolled_back

    def test_nonfinite_final_loss_rolls_back_to_best(self):
        model = _model()
        guard = DivergenceGuard(model)
        guard.note_epoch(1.0)  # snapshot best here
        best = {k: v.copy() for k, v in model.state_dict().items()}
        for p in model.parameters():
            p.value += 99.0  # later epochs wreck the params
        assert guard.finalize(math.nan)
        assert guard.rolled_back
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(value, best[name])

    def test_nonfinite_params_roll_back_even_with_finite_loss(self):
        model = _model()
        guard = DivergenceGuard(model)
        guard.note_epoch(1.0)
        model.parameters()[0].value[:] = np.nan
        assert guard.finalize(0.9)
        assert all(
            np.all(np.isfinite(p.value)) for p in model.parameters()
        )

    def test_regression_past_tolerance_rolls_back(self):
        model = _model()
        guard = DivergenceGuard(model, rollback_tolerance=2.0)
        guard.note_epoch(1.0)
        # 1.0 best, tolerance band is best + (2-1)*max(|best|,1) = 2.0
        assert guard.finalize(5.0)

    def test_small_regression_tolerated(self):
        guard = DivergenceGuard(_model(), rollback_tolerance=2.0)
        guard.note_epoch(1.0)
        assert not guard.finalize(1.5)

    def test_run_with_no_finite_epoch_restores_initial_state(self):
        model = _model()
        initial = {k: v.copy() for k, v in model.state_dict().items()}
        guard = DivergenceGuard(model)
        for p in model.parameters():
            p.value[:] = np.inf
        assert guard.finalize(math.nan)
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(value, initial[name])

    def test_rollback_counted_in_metrics(self):
        obs.configure(enabled=True)
        guard = DivergenceGuard(_model())
        guard.finalize(math.nan)
        snapshot = obs.metrics_snapshot()
        assert snapshot["counters"]["guard.divergence_rollbacks"] == 1


class TestFitIntegration:
    def test_clean_fit_unaffected(self):
        seqs, tgts = _data()
        log = _model().fit(seqs, tgts, epochs=3)
        assert len(log.losses) == 3
        assert all(math.isfinite(l) for l in log.losses)

    def test_nan_targets_leave_params_finite(self):
        seqs, tgts = _data()
        tgts[0][:] = np.nan
        model = _model()
        model.fit(seqs, tgts, epochs=3)
        assert all(
            np.all(np.isfinite(p.value)) for p in model.parameters()
        )

    def test_iboxml_fit_survives_nan_burst(self, cellular_run):
        from repro.core.iboxml import IBoxMLConfig, IBoxMLModel
        from repro.guard.chaos import inject_trace_fault
        from repro.guard.repair import repair_trace

        corrupted = inject_trace_fault(
            "nan_burst", cellular_run.trace, seed=5
        )
        trace = repair_trace(corrupted).trace
        model = IBoxMLModel(IBoxMLConfig(epochs=2, hidden_dim=8,
                                         num_layers=1))
        log = model.fit([trace])
        assert math.isfinite(log.final_loss)


class TestSanitizeTrainingArrays:
    def test_clean_arrays_pass_through(self):
        feats = np.ones((10, 3))
        tgts = np.ones(10)
        f, t, m, n_bad = sanitize_training_arrays(feats, tgts)
        assert n_bad == 0
        assert f is feats
        assert m.all()

    def test_nonfinite_rows_masked_and_zeroed(self):
        feats = np.ones((5, 3))
        feats[1, 2] = np.nan
        tgts = np.ones(5)
        tgts[3] = np.inf
        f, t, m, n_bad = sanitize_training_arrays(feats, tgts)
        assert n_bad == 2
        assert not m[1] and not m[3]
        assert np.isfinite(f).all() and np.isfinite(t).all()

    def test_existing_mask_respected(self):
        feats = np.ones((4, 2))
        feats[0, 0] = np.nan
        tgts = np.ones(4)
        mask = np.array([False, True, True, True])
        f, t, m, n_bad = sanitize_training_arrays(feats, tgts, mask)
        # Row 0 was already masked out; it is not "new" damage.
        assert n_bad == 0
        assert not m[0]
        assert np.isfinite(f).all()

    def test_counted_in_metrics(self):
        obs.configure(enabled=True)
        feats = np.ones((3, 2))
        feats[1] = np.nan
        sanitize_training_arrays(feats, np.ones(3))
        snapshot = obs.metrics_snapshot()
        assert snapshot["counters"]["guard.nonfinite_inputs"] == 1
