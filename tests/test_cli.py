"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.trace.io import save_trace


@pytest.fixture()
def trace_file(tmp_path, cubic_trace):
    path = tmp_path / "trace.npz"
    save_trace(cubic_trace, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_reproduce_choices(self):
        args = build_parser().parse_args(["reproduce", "fig2"])
        assert args.experiment == "fig2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "fig99"])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "out"])
        assert args.paths == 5
        assert args.protocols == ["cubic", "vegas"]

    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch", "traces"])
        assert args.workers == 1
        assert args.protocols == ["cubic"]
        assert args.manifest_dir is None


class TestGenerate:
    def test_writes_traces(self, tmp_path, capsys):
        code = main([
            "generate", str(tmp_path / "data"),
            "--paths", "2", "--duration", "4", "--protocols", "cubic",
        ])
        assert code == 0
        files = sorted((tmp_path / "data").glob("*.npz"))
        assert len(files) == 2
        assert "Mb/s" in capsys.readouterr().out


class TestFit:
    def test_prints_model(self, trace_file, capsys):
        assert main(["fit", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "IBoxNetModel" in out

    def test_writes_profile(self, trace_file, tmp_path, capsys):
        profile = tmp_path / "profile.json"
        assert main(["fit", str(trace_file), "--profile", str(profile)]) == 0
        data = json.loads(profile.read_text())
        assert data["bandwidth_bytes_per_sec"] > 0
        assert len(data["cross_traffic"]["bin_edges"]) == (
            len(data["cross_traffic"]["rates_bytes_per_sec"]) + 1
        )

    def test_from_profile_skips_fitting(self, trace_file, tmp_path, capsys):
        profile = tmp_path / "profile.json"
        main(["fit", str(trace_file), "--profile", str(profile)])
        fitted = capsys.readouterr().out
        assert main([
            "fit", str(trace_file), "--from-profile", str(profile),
        ]) == 0
        loaded = capsys.readouterr().out
        assert "loaded profile" in loaded
        # Same learnt parameters, no re-fit.
        assert fitted.splitlines()[1] == loaded.splitlines()[1]


class TestSimulate:
    def test_counterfactual_runs(self, trace_file, tmp_path, capsys):
        output = tmp_path / "vegas.npz"
        code = main([
            "simulate", str(trace_file), "vegas",
            "--duration", "4", "--output", str(output),
        ])
        assert code == 0
        assert output.exists()
        out = capsys.readouterr().out
        assert "counterfactual vegas" in out

        from repro.trace.io import load_trace

        predicted = load_trace(output)
        assert predicted.protocol == "vegas"
        assert len(predicted) > 50

    def test_explicit_zero_duration_is_not_ignored(self, trace_file):
        # ``--duration 0`` used to fall back silently to the trace's own
        # duration; now the explicit value is honoured (and rejected by
        # the trace layer as invalid, rather than papered over).
        with pytest.raises(ValueError):
            main(["simulate", str(trace_file), "vegas", "--duration", "0"])


class TestBatch:
    @pytest.fixture()
    def batch_dir(self, tmp_path, cubic_trace):
        directory = tmp_path / "traces"
        directory.mkdir()
        for i in range(2):
            save_trace(cubic_trace, directory / f"{i:02d}_cubic.npz")
        return directory

    def test_empty_directory_errors(self, tmp_path, capsys):
        empty = tmp_path / "none"
        empty.mkdir()
        assert main(["batch", str(empty)]) == 2

    def test_batch_writes_manifest_and_hits_cache(
        self, batch_dir, tmp_path, capsys
    ):
        argv = [
            "batch", str(batch_dir),
            "--protocols", "vegas",
            "--duration", "3",
            "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--manifest-dir", str(tmp_path / "manifests"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        # Both traces hash to the same cache key.  The per-key fit lock
        # lets exactly one worker fit it; depending on scheduling the
        # other either waits on the lock (and then hits) or misses
        # before the winner finished.  Either way at most one fit runs.
        assert (
            "cache 1 hit / 1 miss" in cold
            or "cache 0 hit / 2 miss" in cold
        )

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "cache 2 hit / 0 miss" in warm

        manifests = sorted((tmp_path / "manifests").glob("manifest-*.json"))
        assert len(manifests) == 2
        (warm_path,) = [
            line.rsplit(" ", 1)[1]
            for line in warm.splitlines()
            if line.startswith("manifest written to ")
        ]
        data = json.loads(Path(warm_path).read_text())
        assert data["counts"] == {"total": 2, "ok": 2, "failed": 0}
        assert data["cache"] == {"hits": 2, "misses": 0}

    def test_batch_survives_corrupt_trace(self, batch_dir, tmp_path, capsys):
        (batch_dir / "zz_corrupt.jsonl").write_text("not a trace\n")
        code = main([
            "batch", str(batch_dir),
            "--protocols", "vegas",
            "--duration", "3",
            "--cache-dir", str(tmp_path / "cache"),
            "--retries", "0",
        ])
        assert code == 1  # completed, but reports the failure
        out = capsys.readouterr().out
        assert "FAILED" in out and "zz_corrupt" in out
        assert out.count("ok     ") == 2
