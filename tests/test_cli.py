"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.trace.io import save_trace


@pytest.fixture()
def trace_file(tmp_path, cubic_trace):
    path = tmp_path / "trace.npz"
    save_trace(cubic_trace, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_reproduce_choices(self):
        args = build_parser().parse_args(["reproduce", "fig2"])
        assert args.experiment == "fig2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "fig99"])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "out"])
        assert args.paths == 5
        assert args.protocols == ["cubic", "vegas"]


class TestGenerate:
    def test_writes_traces(self, tmp_path, capsys):
        code = main([
            "generate", str(tmp_path / "data"),
            "--paths", "2", "--duration", "4", "--protocols", "cubic",
        ])
        assert code == 0
        files = sorted((tmp_path / "data").glob("*.npz"))
        assert len(files) == 2
        assert "Mb/s" in capsys.readouterr().out


class TestFit:
    def test_prints_model(self, trace_file, capsys):
        assert main(["fit", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "IBoxNetModel" in out

    def test_writes_profile(self, trace_file, tmp_path, capsys):
        profile = tmp_path / "profile.json"
        assert main(["fit", str(trace_file), "--profile", str(profile)]) == 0
        data = json.loads(profile.read_text())
        assert data["bandwidth_bytes_per_sec"] > 0
        assert len(data["cross_traffic"]["bin_edges"]) == (
            len(data["cross_traffic"]["rates_bytes_per_sec"]) + 1
        )


class TestSimulate:
    def test_counterfactual_runs(self, trace_file, tmp_path, capsys):
        output = tmp_path / "vegas.npz"
        code = main([
            "simulate", str(trace_file), "vegas",
            "--duration", "4", "--output", str(output),
        ])
        assert code == 0
        assert output.exists()
        out = capsys.readouterr().out
        assert "counterfactual vegas" in out

        from repro.trace.io import load_trace

        predicted = load_trace(output)
        assert predicted.protocol == "vegas"
        assert len(predicted) > 50
