"""Tests for repro.obs.live: flusher, SLO tracking, flight recorder."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.obs.live import (
    DEFAULT_RING_SIZE,
    LIVE_VERSION,
    SLO,
    FlightRecorder,
    SLOTracker,
    SnapshotFlusher,
    format_top,
    parse_slo,
    read_snapshot,
)


class TestParseSLO:
    def test_milliseconds(self):
        slo = parse_slo("drill=250ms")
        assert slo.job_class == "drill"
        assert slo.latency_objective_sec == pytest.approx(0.25)
        assert slo.success_target == 0.99

    def test_seconds_suffix_and_target(self):
        slo = parse_slo("fit=1.5s:0.999")
        assert slo.latency_objective_sec == pytest.approx(1.5)
        assert slo.success_target == 0.999

    def test_bare_seconds(self):
        assert parse_slo("x=2").latency_objective_sec == 2.0

    @pytest.mark.parametrize(
        "bad",
        [
            "noequals",
            "cls=",
            "cls=abc",
            "cls=0ms",
            "cls=-1s",
            "cls=1s:0",
            "cls=1s:1",
            "cls=1s:1.5",
            "cls=1s:xyz",
        ],
    )
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            parse_slo(bad)

    def test_budget_property(self):
        assert SLO("x", 1.0, 0.99).budget == pytest.approx(0.01)
        # A 100% target still leaves a non-zero budget (no div-by-zero).
        assert SLO("x", 1.0, 1.0).budget > 0


class TestSLOTracker:
    def _tracker(self, **kwargs):
        return SLOTracker([SLO("drill", 0.1, 0.99)], **kwargs)

    def test_small_window_rolls_forward(self):
        tracker = self._tracker(min_events=10)
        for _ in range(5):
            tracker.observe("drill", 1.0, ok=True)  # all too slow -> bad
        assert tracker.evaluate() == []  # below min_events: no verdict
        for _ in range(5):
            tracker.observe("drill", 1.0, ok=True)
        burns = tracker.evaluate()  # rolled-forward window now has 10
        assert len(burns) == 1
        assert burns[0]["window_total"] == 10
        assert burns[0]["window_bad"] == 10

    def test_burn_rate_math(self):
        tracker = self._tracker(min_events=10, burn_threshold=2.0)
        # 1 bad out of 10 = 10% bad fraction over a 1% budget -> burn 10x.
        for i in range(10):
            tracker.observe("drill", 1.0 if i == 0 else 0.01, ok=True)
        burns = tracker.evaluate()
        assert len(burns) == 1
        assert burns[0]["burn_rate"] == pytest.approx(10.0)

    def test_within_budget_no_burn(self):
        tracker = self._tracker(min_events=10, burn_threshold=2.0)
        for _ in range(100):
            tracker.observe("drill", 0.01, ok=True)
        assert tracker.evaluate() == []

    def test_failure_counts_as_bad_even_when_fast(self):
        tracker = self._tracker(min_events=1)
        tracker.observe("drill", 0.001, ok=False)
        burns = tracker.evaluate()
        assert burns and burns[0]["window_bad"] == 1

    def test_untracked_class_ignored(self):
        tracker = self._tracker(min_events=1)
        tracker.observe("other", 99.0, ok=False)
        assert tracker.evaluate() == []
        assert tracker.status()["drill"]["total"] == 0

    def test_status_budget_used(self):
        tracker = self._tracker(min_events=10)
        for i in range(100):
            tracker.observe("drill", 1.0 if i < 2 else 0.01, ok=True)
        status = tracker.status()["drill"]
        assert status["total"] == 100
        assert status["bad"] == 2
        # 2% bad over a 1% budget: twice the budget consumed.
        assert status["budget_used"] == pytest.approx(2.0)

    def test_window_resets_after_evaluate(self):
        tracker = self._tracker(min_events=5)
        for _ in range(5):
            tracker.observe("drill", 1.0, ok=True)
        assert tracker.evaluate()  # burns, window closes
        assert tracker.evaluate() == []  # fresh empty window


class TestFlightRecorder:
    def test_ring_is_bounded(self, tmp_path):
        recorder = FlightRecorder(tmp_path, ring_size=4)
        for i in range(10):
            recorder.note("tick", i=i)
        path = recorder.dump("test", force=True)
        payload = json.loads(path.read_text())
        assert len(payload["events"]) == 4
        assert [e["i"] for e in payload["events"]] == [6, 7, 8, 9]

    def test_dump_payload_schema(self, tmp_path):
        obs.configure(enabled=True)
        obs.metrics().counter("serve.jobs").inc(3)
        recorder = FlightRecorder(tmp_path)
        recorder.record({"type": "span", "name": "lease"})
        path = recorder.dump("lease_killed", context={"job_id": "j1"})
        assert path is not None and path.name.startswith("flight-")
        payload = json.loads(path.read_text())
        assert payload["v"] == LIVE_VERSION
        assert payload["reason"] == "lease_killed"
        assert payload["context"] == {"job_id": "j1"}
        assert payload["metrics"]["counters"]["serve.jobs"] == 3.0
        assert payload["events"][0]["name"] == "lease"

    def test_rate_limit_per_reason(self, tmp_path):
        clock = [1000.0]
        recorder = FlightRecorder(
            tmp_path, min_interval_sec=1.0, clock=lambda: clock[0]
        )
        assert recorder.dump("breaker_open") is not None
        assert recorder.dump("breaker_open") is None  # same reason, too soon
        assert recorder.dump("lease_killed") is not None  # other reason ok
        assert recorder.dump("breaker_open", force=True) is not None
        clock[0] += 1.5
        assert recorder.dump("breaker_open") is not None
        assert recorder.dumps == 4

    def test_dump_never_raises(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("a file where a directory should be")
        recorder = FlightRecorder(target / "sub")
        assert recorder.dump("whatever", force=True) is None

    def test_default_ring_size(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        assert recorder._ring.maxlen == DEFAULT_RING_SIZE


class TestSnapshotFlusher:
    def test_flush_now_schema_and_files(self, tmp_path):
        obs.configure(enabled=True)
        obs.metrics().counter("serve.jobs").inc()
        obs.metrics().log_histogram("serve.latency_sec.drill").observe(0.02)
        flusher = SnapshotFlusher(
            tmp_path, interval_sec=0.5,
            service_stats=lambda: {"queue_depth": 2, "draining": False},
        )
        snapshot = flusher.flush_now()
        assert snapshot["v"] == LIVE_VERSION
        assert snapshot["interval_sec"] == 0.5
        assert snapshot["service"]["queue_depth"] == 2
        assert snapshot["metrics"]["counters"]["serve.jobs"] == 1.0
        on_disk = read_snapshot(flusher.json_path)
        assert on_disk["service"] == snapshot["service"]
        prom = flusher.prom_path.read_text()
        assert "repro_serve_jobs 1" in prom
        assert 'repro_serve_latency_sec_drill_bucket{le="+Inf"} 1' in prom

    def test_flush_evaluates_slos(self, tmp_path):
        obs.configure(enabled=True)
        tracker = SLOTracker([SLO("drill", 0.1)], min_events=5)
        recorder = FlightRecorder(tmp_path)
        flusher = SnapshotFlusher(
            tmp_path, slo_tracker=tracker, recorder=recorder
        )
        for _ in range(5):
            tracker.observe("drill", 9.0, ok=True)
        snapshot = flusher.flush_now()
        assert snapshot["slo"]["drill"]["bad"] == 5
        # The burn counter increments during evaluation, so it lands in
        # the registry now and in the *next* published snapshot.
        assert obs.metrics().counter("serve.slo_burn").value == 1.0
        # The burn landed in the flight ring too.
        dump = json.loads(recorder.dump("t", force=True).read_text())
        assert any(e.get("type") == "slo_burn" for e in dump["events"])

    def test_counter_deltas_feed_recorder(self, tmp_path):
        obs.configure(enabled=True)
        recorder = FlightRecorder(tmp_path)
        flusher = SnapshotFlusher(tmp_path, recorder=recorder)
        obs.metrics().counter("serve.jobs").inc(2)
        flusher.flush_now()
        obs.metrics().counter("serve.jobs").inc(3)
        flusher.flush_now()
        dump = json.loads(recorder.dump("t", force=True).read_text())
        deltas = [
            e for e in dump["events"] if e.get("type") == "metrics_delta"
        ]
        assert deltas[0]["counters"]["serve.jobs"] == 2.0
        assert deltas[1]["counters"]["serve.jobs"] == 3.0

    def test_readers_never_see_torn_json(self, tmp_path):
        """Hammer flush_now while a reader loop parses the snapshot."""
        obs.configure(enabled=True)
        histogram = obs.metrics().log_histogram("serve.latency_sec.x")
        flusher = SnapshotFlusher(tmp_path, service_stats=lambda: {"n": 1})
        flusher.flush_now()
        stop = threading.Event()
        torn: list = []

        def reader():
            while not stop.is_set():
                try:
                    snapshot = read_snapshot(flusher.json_path)
                    assert snapshot["v"] == LIVE_VERSION
                except Exception as exc:  # pragma: no cover - failure path
                    torn.append(exc)
                    return

        thread = threading.Thread(target=reader)
        thread.start()
        for i in range(200):
            histogram.observe(0.001 * (i + 1))
            flusher.flush_now()
        stop.set()
        thread.join()
        assert not torn
        assert flusher.flushes == 201

    def test_background_thread_flushes_and_survives_errors(self, tmp_path):
        obs.configure(enabled=True)
        flusher = SnapshotFlusher(tmp_path / "obs", interval_sec=0.02)
        flusher.start()
        deadline = threading.Event()
        for _ in range(100):
            if flusher.json_path.exists():
                break
            deadline.wait(0.05)
        flusher.stop(final_flush=True)
        assert flusher.json_path.exists()
        assert flusher.flushes >= 1
        # A second stop is harmless.
        flusher.stop(final_flush=False)


class TestFormatTop:
    def _snapshot(self, ts=1000.0):
        obs.configure(enabled=True)
        registry = obs.metrics()
        for v in (0.01, 0.02, 0.3):
            registry.log_histogram("serve.latency_sec.drill").observe(v)
        registry.counter("serve.jobs.completed").inc(3)
        tracker = SLOTracker([SLO("drill", 0.1)], min_events=1)
        for v in (0.01, 0.02, 0.3):
            tracker.observe("drill", v, ok=True)
        snapshot = {
            "v": LIVE_VERSION,
            "ts": ts,
            "pid": 4242,
            "interval_sec": 2.0,
            "service": {
                "queue_depth": 3,
                "queue_limit": 64,
                "workers": 2,
                "in_flight": {"drill": 1, "fit": 1},
                "draining": False,
                "journal": {"records": 17, "lag_sec": 0.4},
                "breakers": {
                    "drill": {
                        "state": "open", "failures": 5, "cooldown_sec": 9.5
                    }
                },
            },
            "metrics": obs.metrics_snapshot(),
            "slo": tracker.status(),
        }
        return snapshot

    def test_renders_all_sections(self):
        text = format_top(self._snapshot(ts=1000.0), now=1001.0)
        assert "pid 4242" in text
        assert "snapshot age 1.0s" in text
        assert "[STALE]" not in text
        assert "queue depth" in text and "3/64" in text
        assert "active leases" in text and "2/2" in text
        assert "drill=1" in text and "fit=1" in text
        assert "17 records" in text
        assert "open" in text  # breaker state
        assert "p95_ms" in text
        assert "slo_class" in text
        assert "serve.jobs.completed" in text

    def test_stale_flag(self):
        text = format_top(self._snapshot(ts=1000.0), now=1010.0)
        assert "[STALE]" in text

    def test_minimal_snapshot_renders(self):
        text = format_top({"ts": 5.0, "pid": 1}, now=6.0)
        assert "pid 1" in text
