"""Tests for the iBoxML state-space delay model."""

import numpy as np
import pytest

from repro.core.iboxml import (
    IBoxMLConfig,
    IBoxMLModel,
    delay_distribution_error,
)


FAST = IBoxMLConfig(
    hidden_dim=12, num_layers=1, epochs=6, train_seq_len=100,
    rollout_rounds=2,
)


@pytest.fixture(scope="module")
def trained(vegas_traces):
    model = IBoxMLModel(
        IBoxMLConfig(
            hidden_dim=16, num_layers=2, epochs=9, train_seq_len=120,
        )
    )
    model.fit(vegas_traces[:3])
    return model


class TestConfig:
    def test_input_dim_tracks_ct_flag(self):
        assert IBoxMLConfig().input_dim == 4
        assert IBoxMLConfig(include_cross_traffic=True).input_dim == 5


class TestTraining:
    def test_loss_decreases(self, vegas_traces):
        model = IBoxMLModel(FAST)
        log = model.fit(vegas_traces[:2])
        assert log.improved()

    def test_fit_requires_traces(self):
        with pytest.raises(ValueError):
            IBoxMLModel(FAST).fit([])

    def test_fitted_rho_in_range(self, trained):
        assert 0.0 <= trained.fitted_rho_ <= 1.0

    def test_ct_features_alignment_checked(self, vegas_traces):
        model = IBoxMLModel(FAST)
        with pytest.raises(ValueError):
            model.fit(vegas_traces[:2], ct_features=[None])


class TestInference:
    def test_predict_before_fit_rejected(self, vegas_traces):
        with pytest.raises(RuntimeError):
            IBoxMLModel(FAST).predict_delays(vegas_traces[0])

    def test_prediction_shape_and_floor(self, trained, vegas_traces):
        trace = vegas_traces[3]
        delays = trained.predict_delays(trace, sample=False)
        assert delays.shape == (len(trace),)
        assert (delays >= trained.config.min_delay_floor).all()

    def test_free_running_stays_in_training_support(
        self, trained, vegas_traces
    ):
        """The exposure-bias mitigation at work: the free-running unroll
        must not drift to absurd delays."""
        trace = vegas_traces[3]
        predicted = trained.predict_delays(trace, sample=False)
        train_max = max(
            t.delivered_delays().max() for t in vegas_traces[:3]
        )
        assert predicted.mean() < 2 * train_max

    def test_distribution_roughly_matches_ground_truth(
        self, trained, vegas_traces
    ):
        trace = vegas_traces[3]
        predicted = trained.predict_delays(trace, sample=True, seed=1)
        error = delay_distribution_error(
            predicted, trace.delivered_delays()
        )
        gt_mean = trace.delivered_delays().mean()
        assert error < 2.0 * gt_mean

    def test_sampling_adds_dispersion(self, trained, vegas_traces):
        trace = vegas_traces[3]
        mean_only = trained.predict_delays(trace, sample=False)
        sampled = trained.predict_delays(trace, sample=True, seed=2)
        assert sampled.std() > mean_only.std()

    def test_sampling_deterministic_given_seed(self, trained, vegas_traces):
        trace = vegas_traces[3]
        a = trained.predict_delays(trace, sample=True, seed=3)
        b = trained.predict_delays(trace, sample=True, seed=3)
        assert np.allclose(a, b)

    def test_predict_trace_wraps_predictions(self, trained, vegas_traces):
        trace = vegas_traces[3]
        predicted = trained.predict_trace(trace, sample=False)
        assert len(predicted) == len(trace)
        assert predicted.metadata["model"] == "iboxml"
        assert np.allclose(predicted.sent_at, trace.sent_at)
        assert predicted.delivered_mask.all()

    def test_ground_truth_outputs_never_read(self, trained, vegas_traces):
        """Inference must consume only the input side of the trace: wiping
        all delivery times (keeping sends) must not change predictions
        beyond the missing-prev-delay feature... so we check the stronger
        invariant that predictions only use sent_at/sizes by corrupting
        deliveries and comparing."""
        import copy
        import math

        trace = vegas_traces[3]
        baseline = trained.predict_delays(trace, sample=False)
        corrupted = copy.deepcopy(trace)
        for record in corrupted.records:
            if not math.isnan(record.delivered_at):
                record.delivered_at += 0.123  # shift all GT outputs
        corrupted._cache.clear()
        shifted = trained.predict_delays(corrupted, sample=False)
        assert np.allclose(baseline, shifted)


class TestCTFeature:
    def test_ct_feature_is_utilization(self, cubic_trace):
        feature = IBoxMLModel.estimate_ct_feature(cubic_trace)
        assert feature.shape == (len(cubic_trace),)
        assert (feature >= 0).all()
        assert feature.max() < 3.0  # utilization-scaled, not bytes/s

    def test_ct_model_trains_and_predicts(self, vegas_traces):
        config = IBoxMLConfig(
            hidden_dim=12, num_layers=1, epochs=6, train_seq_len=100,
            rollout_rounds=2, include_cross_traffic=True,
        )
        model = IBoxMLModel(config)
        model.fit(vegas_traces[:2])
        delays = model.predict_delays(vegas_traces[2], sample=False)
        assert np.isfinite(delays).all()


class TestLossHead:
    @pytest.fixture(scope="class")
    def lossy_setup(self):
        from repro.datasets.pantheon import generate_dataset

        dataset = generate_dataset(
            n_paths=3, protocols=("cubic",), duration=12.0, base_seed=10
        )
        traces = dataset.traces()
        config = IBoxMLConfig(
            hidden_dim=16, num_layers=1, epochs=6, train_seq_len=120,
            rollout_rounds=2, predict_loss=True,
        )
        model = IBoxMLModel(config)
        model.fit(traces[:2])
        return model, traces

    def test_loss_head_disabled_by_default(self, trained, vegas_traces):
        with pytest.raises(RuntimeError):
            trained.predict_loss_proba(vegas_traces[0])

    def test_loss_probabilities_calibrated(self, lossy_setup):
        model, traces = lossy_setup
        probs = model.predict_loss_proba(traces[2])
        base_rate = np.mean([t.loss_rate for t in traces[:2]])
        assert probs.shape == (len(traces[2]),)
        assert ((probs >= 0) & (probs <= 1)).all()
        assert probs.mean() == pytest.approx(base_rate, rel=1.0)

    def test_predicted_trace_contains_losses(self, lossy_setup):
        model, traces = lossy_setup
        predicted = model.predict_trace(traces[2], sample=True, seed=5)
        assert 0.0 < predicted.loss_rate < 0.3

    def test_mean_mode_never_drops(self, lossy_setup):
        model, traces = lossy_setup
        predicted = model.predict_trace(traces[2], sample=False, seed=5)
        assert predicted.loss_rate == 0.0


class TestDistributionError:
    def test_zero_for_identical(self):
        values = np.linspace(0.01, 0.2, 100)
        assert delay_distribution_error(values, values) == pytest.approx(0.0)

    def test_detects_shift(self):
        values = np.linspace(0.01, 0.2, 100)
        assert delay_distribution_error(
            values + 0.05, values
        ) == pytest.approx(0.05, rel=0.01)

    def test_nan_for_empty(self):
        import math

        assert math.isnan(delay_distribution_error(np.array([]), np.ones(2)))
