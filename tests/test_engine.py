"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.simulation.engine import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(3.0, fired.append, "c")
    sim.run(until=10.0)
    assert fired == ["a", "b", "c"]


def test_simultaneous_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(1.0, fired.append, tag)
    sim.run(until=2.0)
    assert fired == [0, 1, 2, 3, 4]


def test_clock_advances_to_event_times():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run(until=5.0)
    assert seen == [1.5]
    assert sim.now == 5.0  # clock lands on `until` even after draining


def test_run_stops_at_until_leaving_later_events_pending():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(9.0, fired.append, "late")
    sim.run(until=5.0)
    assert fired == ["early"]
    assert sim.pending_events == 1
    sim.run(until=10.0)
    assert fired == ["early", "late"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run(until=2.0)
    with pytest.raises(ValueError):
        sim.schedule_at(1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.cancel(event)
    sim.run(until=5.0)
    assert fired == []
    assert sim.pending_events == 0


def test_cancel_none_is_noop():
    Simulator.cancel(None)  # must not raise


def test_events_scheduled_during_execution_fire():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run(until=10.0)
    assert fired == [0, 1, 2, 3]


def test_zero_delay_event_fires_after_current():
    sim = Simulator()
    fired = []

    def outer():
        sim.schedule(0.0, fired.append, "inner")
        fired.append("outer")

    sim.schedule(1.0, outer)
    sim.run(until=2.0)
    assert fired == ["outer", "inner"]


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, lambda: sim.stop())
    sim.schedule(3.0, fired.append, 3)
    sim.run(until=10.0)
    assert fired == [1]
    # A stopped run can be resumed.
    sim.run(until=10.0)
    assert fired == [1, 3]


def test_step_processes_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step()
    assert fired == ["a"]
    assert sim.step()
    assert fired == ["a", "b"]
    assert not sim.step()


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(7):
        sim.schedule(1.0, lambda: None)
    sim.run(until=2.0)
    assert sim.events_processed == 7


def test_reentrant_run_rejected():
    sim = Simulator()

    def nested():
        with pytest.raises(RuntimeError):
            sim.run(until=5.0)

    sim.schedule(1.0, nested)
    sim.run(until=2.0)


def test_callback_args_passed_through():
    sim = Simulator()
    received = []
    sim.schedule(1.0, lambda a, b, c: received.append((a, b, c)), 1, "x", None)
    sim.run(until=2.0)
    assert received == [(1, "x", None)]
