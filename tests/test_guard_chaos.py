"""Tests for seeded fault injection and the chaos campaign."""

import math

import pytest

from repro.guard.chaos import (
    FILE_FAULTS,
    TRACE_FAULTS,
    chaos_worker,
    inject_file_fault,
    inject_trace_fault,
    make_chaos_job,
    run_campaign,
)
from repro.runtime.executor import BatchExecutor, ExecutorConfig
from repro.trace.io import TraceLoadError, load_trace, save_trace
from repro.trace.validate import validate_trace


def _records_equal(a, b):
    if len(a.records) != len(b.records):
        return False
    for ra, rb in zip(a.records, b.records):
        for name in ("uid", "seq", "size", "is_retransmit"):
            if getattr(ra, name) != getattr(rb, name):
                return False
        for name in ("sent_at", "delivered_at"):
            va, vb = getattr(ra, name), getattr(rb, name)
            if math.isnan(va) != math.isnan(vb):
                return False
            if not math.isnan(va) and va != vb:
                return False
    return True


class TestDeterminism:
    @pytest.mark.parametrize("fault", sorted(TRACE_FAULTS))
    def test_trace_faults_replay_identically(self, fault, cubic_trace):
        a = inject_trace_fault(fault, cubic_trace, seed=42)
        b = inject_trace_fault(fault, cubic_trace, seed=42)
        assert _records_equal(a, b)

    @pytest.mark.parametrize("fault", sorted(TRACE_FAULTS))
    def test_trace_faults_actually_corrupt(self, fault, cubic_trace):
        corrupted = inject_trace_fault(fault, cubic_trace, seed=42)
        assert validate_trace(corrupted) != []

    @pytest.mark.parametrize("fault", sorted(FILE_FAULTS))
    def test_file_faults_replay_identically(self, fault, tmp_path,
                                            cubic_trace):
        paths = []
        for name in ("a", "b"):
            path = tmp_path / f"{name}.jsonl"
            save_trace(cubic_trace, path)
            inject_file_fault(fault, path, seed=9)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_input_trace_untouched(self, cubic_trace):
        before = len(cubic_trace)
        inject_trace_fault("nan_burst", cubic_trace, seed=1)
        assert len(cubic_trace) == before
        assert validate_trace(cubic_trace) == []


class TestFileFaultsThroughLoader:
    @pytest.mark.parametrize("fault", ("garbage_line", "corrupt_field"))
    def test_jsonl_fault_strict_fails_skip_recovers(self, fault, tmp_path,
                                                    cubic_trace):
        path = tmp_path / "t.jsonl"
        save_trace(cubic_trace, path)
        inject_file_fault(fault, path, seed=3)
        with pytest.raises(TraceLoadError):
            load_trace(path, policy="strict")
        loaded = load_trace(path, policy="skip")
        assert len(loaded) == len(cubic_trace) - 1

    def test_truncated_npz_unrecoverable_but_contained(self, tmp_path,
                                                       cubic_trace):
        path = tmp_path / "t.npz"
        save_trace(cubic_trace, path)
        inject_file_fault("truncate", path, seed=3)
        for policy in ("strict", "repair", "skip"):
            with pytest.raises(TraceLoadError):
                load_trace(path, policy=policy)


class TestExecutorDrills:
    def _drill(self, spec, workers=2, **cfg):
        cfg.setdefault("timeout_sec", 60.0)
        cfg.setdefault("max_attempts", 2)
        executor = BatchExecutor(
            ExecutorConfig(workers=workers, **cfg)
        )
        results = executor.run([spec], chaos_worker)
        assert len(results) == 1
        return results[0]

    def test_crash_contained_as_failed_result(self):
        result = self._drill(make_chaos_job("crash"))
        assert result.status == "failed"
        assert result.error.error_type == "RuntimeError"
        assert result.attempts == 2

    def test_kill_contained_as_failed_result(self):
        result = self._drill(make_chaos_job("kill"))
        assert result.status == "failed"

    def test_hang_trips_per_job_timeout(self):
        # The spec's own 1 s limit overrides the 60 s config default.
        spec = make_chaos_job("hang", timeout_sec=1.0, hang_sec=30.0)
        result = self._drill(spec)
        assert result.status == "failed"
        assert result.error.error_type == "TimeoutError"
        assert "1.0" in result.error.message

    def test_normal_job_survives(self):
        result = self._drill(make_chaos_job(None))
        assert result.status == "ok"
        assert result.value == {"fault": None, "ok": True}

    def test_kill_refuses_to_run_in_process(self):
        # Serial/in-process execution must never os._exit the
        # orchestrator (or this very test process).
        with pytest.raises(RuntimeError, match="refusing"):
            chaos_worker(make_chaos_job("kill"))

    def test_timeout_sec_not_part_of_job_id(self):
        a = make_chaos_job("hang", timeout_sec=1.0)
        b = make_chaos_job("hang", timeout_sec=9.0)
        assert a.job_id == b.job_id


def test_campaign_smoke(tmp_path):
    """A reduced campaign: one fault per surface, all guards hold."""
    report = run_campaign(
        tmp_path,
        seed=7,
        policy="repair",
        workers=2,
        duration=1.5,
        trace_faults=["nan_burst"],
        file_faults=["garbage_line"],
        runtime_faults=["crash"],
    )
    assert report.ok, report.format_report()
    assert report.quarantined >= 1
    statuses = set(report.batch_statuses.values())
    assert statuses <= {"ok", "failed"}
    text = report.format_report()
    assert "all guards held" in text
