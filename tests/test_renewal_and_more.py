"""Tests for the renewal loop, LEDBAT, and iBoxML persistence."""

import numpy as np
import pytest

from repro.core import iboxnet
from repro.core.augmentation import LinearReorderPredictor
from repro.core.iboxml import IBoxMLConfig, IBoxMLModel
from repro.core.renewal import (
    discover_missing_behaviours,
    renewal_cycle,
)
from repro.simulation import units
from repro.simulation.topology import ConstantBandwidth, PathConfig, run_flow
from repro.trace.metrics import summarize

RATE = units.mbps_to_bytes_per_sec(10.0)


@pytest.fixture(scope="module")
def sims(vegas_traces):
    return [
        iboxnet.fit(t).simulate("vegas", duration=12.0, seed=50 + i)
        for i, t in enumerate(vegas_traces)
    ]


class TestRenewalLoop:
    def test_discovery_finds_reordering(self, vegas_traces, sims):
        missing = discover_missing_behaviours(vegas_traces, sims)
        assert "a" in missing
        assert missing["a"] > 0.001

    def test_cycle_repairs_and_reports(self, vegas_traces, sims):
        report = renewal_cycle(
            vegas_traces,
            sims,
            predictor_factory=LinearReorderPredictor,
            seed=1,
        )
        assert "a" in report.missing_before
        assert report.repaired_behaviours == ["a"]
        # The reordering gap is closed...
        assert report.recovery("a") > 0.5
        assert "a" not in report.missing_after
        # ...and the loop honestly reports behaviours it has no repair
        # for yet (e.g. the constant-rate emulator never produces the
        # ground truth's smallest inter-arrival quantile).
        for behaviour in report.unrepaired_behaviours:
            assert behaviour in report.missing_after
        assert len(report.augmented_traces) == len(sims)
        assert "renewal" in report.format_report()

    def test_cycle_is_noop_when_nothing_missing(self, vegas_traces):
        report = renewal_cycle(
            vegas_traces,
            list(vegas_traces),
            predictor_factory=LinearReorderPredictor,
        )
        assert report.missing_before == {}
        assert report.repaired_behaviours == []
        assert report.gap_closed == 1.0


class TestLEDBAT:
    def test_scavenges_idle_capacity(self):
        config = PathConfig(
            bandwidth=ConstantBandwidth(RATE),
            propagation_delay=0.025,
            buffer_bytes=400_000,
        )
        run = run_flow(config, "ledbat", duration=10.0, seed=1)
        summary = summarize(run.trace)
        assert summary.mean_rate_mbps > 6.0

    def test_respects_delay_target(self):
        config = PathConfig(
            bandwidth=ConstantBandwidth(RATE),
            propagation_delay=0.025,
            buffer_bytes=800_000,  # 500+ ms of bufferbloat available
        )
        run = run_flow(config, "ledbat", duration=10.0, seed=2)
        delays = run.trace.delivered_delays()
        # Queueing stays near the 100 ms TARGET, not at the buffer limit.
        queueing_p95 = np.percentile(delays, 95) - delays.min()
        assert queueing_p95 < 0.2

    def test_yields_to_cubic(self):
        """The scavenger property: against a Cubic competitor, LEDBAT
        backs off to a small share."""
        from repro.simulation.topology import FlowCT

        config = PathConfig(
            bandwidth=ConstantBandwidth(RATE),
            propagation_delay=0.025,
            buffer_bytes=400_000,
            cross_traffic=(FlowCT(protocol="cubic", start=0.0),),
        )
        run = run_flow(config, "ledbat", duration=12.0, seed=3)
        summary = summarize(run.trace)
        assert summary.mean_rate_mbps < 0.4 * units.bytes_per_sec_to_mbps(
            RATE
        )

    def test_registered_in_protocol_registry(self):
        from repro.protocols import PROTOCOLS

        assert "ledbat" in PROTOCOLS

    def test_invalid_target_rejected(self):
        from repro.protocols.ledbat import LEDBATSender
        from repro.simulation.engine import Simulator

        with pytest.raises(ValueError):
            LEDBATSender(Simulator(), "f", None, target=0.0)


class TestIBoxMLPersistence:
    def test_save_load_roundtrip(self, tmp_path, vegas_traces):
        config = IBoxMLConfig(
            hidden_dim=12, num_layers=1, epochs=4, train_seq_len=100,
            rollout_rounds=1, predict_loss=True, loss_head_epochs=3,
        )
        model = IBoxMLModel(config)
        model.fit(vegas_traces[:2])
        path = tmp_path / "iboxml.npz"
        model.save(path)

        restored = IBoxMLModel.load(path)
        assert restored.config == model.config
        assert restored.fitted_rho_ == model.fitted_rho_
        trace = vegas_traces[2]
        original = model.predict_delays(trace, sample=False)
        roundtrip = restored.predict_delays(trace, sample=False)
        assert np.allclose(original, roundtrip)
        # Loss head survives too.
        assert np.allclose(
            model.predict_loss_proba(trace),
            restored.predict_loss_proba(trace),
        )

    def test_unfitted_save_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            IBoxMLModel().save(tmp_path / "nope.npz")
