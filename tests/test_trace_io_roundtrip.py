"""Save/load equality for both trace formats, including edge cases."""

from __future__ import annotations

import math

import pytest

from repro.trace.io import load_trace, save_trace
from repro.trace.records import PacketRecord, Trace

FORMATS = ("npz", "jsonl")


def assert_traces_equal(a: Trace, b: Trace) -> None:
    assert a.flow_id == b.flow_id
    assert a.protocol == b.protocol
    assert a.duration == b.duration
    assert a.metadata == b.metadata
    assert len(a) == len(b)
    for ra, rb in zip(a.records, b.records):
        assert ra.uid == rb.uid
        assert ra.seq == rb.seq
        assert ra.size == rb.size
        assert ra.sent_at == rb.sent_at
        assert ra.is_retransmit == rb.is_retransmit
        if math.isnan(ra.delivered_at):
            assert math.isnan(rb.delivered_at)
        else:
            assert ra.delivered_at == rb.delivered_at


def roundtrip(trace: Trace, tmp_path, fmt: str) -> Trace:
    path = tmp_path / f"trace.{fmt}"
    save_trace(trace, path)
    return load_trace(path)


@pytest.mark.parametrize("fmt", FORMATS)
class TestRoundTrip:
    def test_empty_trace(self, tmp_path, fmt):
        trace = Trace("empty", [], duration=1.0, protocol="cubic")
        loaded = roundtrip(trace, tmp_path, fmt)
        assert_traces_equal(trace, loaded)
        assert len(loaded) == 0
        assert loaded.loss_rate == 0.0

    def test_single_packet(self, tmp_path, fmt):
        trace = Trace(
            "one",
            [PacketRecord(uid=7, seq=1, size=1500, sent_at=0.25,
                          delivered_at=0.3)],
            duration=1.0,
            protocol="vegas",
            metadata={"note": "solo"},
        )
        assert_traces_equal(trace, roundtrip(trace, tmp_path, fmt))

    def test_single_lost_packet(self, tmp_path, fmt):
        trace = Trace(
            "lost",
            [PacketRecord(uid=1, seq=1, size=100, sent_at=0.0)],
            duration=2.0,
        )
        loaded = roundtrip(trace, tmp_path, fmt)
        assert_traces_equal(trace, loaded)
        assert loaded.records[0].lost
        assert loaded.loss_rate == 1.0

    def test_mixed_trace(self, tmp_path, fmt):
        records = [
            PacketRecord(uid=i, seq=i, size=1000 + i, sent_at=i * 0.01,
                         delivered_at=math.nan if i % 3 == 0 else i * 0.01 + 0.05,
                         is_retransmit=(i % 4 == 0))
            for i in range(25)
        ]
        trace = Trace(
            "mixed", records, duration=5.0, protocol="reno",
            metadata={"seed": 3, "path": "p1"},
        )
        assert_traces_equal(trace, roundtrip(trace, tmp_path, fmt))

    def test_simulated_trace(self, tmp_path, fmt, cubic_trace):
        assert_traces_equal(
            cubic_trace, roundtrip(cubic_trace, tmp_path, fmt)
        )


def test_cross_format_equality(tmp_path):
    """The same trace saved as npz and jsonl loads back identically."""
    records = [
        PacketRecord(uid=i, seq=i, size=1500, sent_at=i * 0.1,
                     delivered_at=i * 0.1 + 0.02)
        for i in range(10)
    ]
    trace = Trace("xfmt", records, duration=2.0, protocol="cubic")
    save_trace(trace, tmp_path / "t.npz")
    save_trace(trace, tmp_path / "t.jsonl")
    assert_traces_equal(
        load_trace(tmp_path / "t.npz"), load_trace(tmp_path / "t.jsonl")
    )
