"""Save/load equality for both trace formats, including edge cases."""

from __future__ import annotations

import math

import pytest

from repro.trace.io import load_trace, save_trace
from repro.trace.records import PacketRecord, Trace

FORMATS = ("npz", "jsonl")


def assert_traces_equal(a: Trace, b: Trace) -> None:
    assert a.flow_id == b.flow_id
    assert a.protocol == b.protocol
    assert a.duration == b.duration
    assert a.metadata == b.metadata
    assert len(a) == len(b)
    for ra, rb in zip(a.records, b.records):
        assert ra.uid == rb.uid
        assert ra.seq == rb.seq
        assert ra.size == rb.size
        assert ra.sent_at == rb.sent_at
        assert ra.is_retransmit == rb.is_retransmit
        if math.isnan(ra.delivered_at):
            assert math.isnan(rb.delivered_at)
        else:
            assert ra.delivered_at == rb.delivered_at


def roundtrip(trace: Trace, tmp_path, fmt: str) -> Trace:
    path = tmp_path / f"trace.{fmt}"
    save_trace(trace, path)
    return load_trace(path)


@pytest.mark.parametrize("fmt", FORMATS)
class TestRoundTrip:
    def test_empty_trace(self, tmp_path, fmt):
        trace = Trace("empty", [], duration=1.0, protocol="cubic")
        loaded = roundtrip(trace, tmp_path, fmt)
        assert_traces_equal(trace, loaded)
        assert len(loaded) == 0
        assert loaded.loss_rate == 0.0

    def test_single_packet(self, tmp_path, fmt):
        trace = Trace(
            "one",
            [PacketRecord(uid=7, seq=1, size=1500, sent_at=0.25,
                          delivered_at=0.3)],
            duration=1.0,
            protocol="vegas",
            metadata={"note": "solo"},
        )
        assert_traces_equal(trace, roundtrip(trace, tmp_path, fmt))

    def test_single_lost_packet(self, tmp_path, fmt):
        trace = Trace(
            "lost",
            [PacketRecord(uid=1, seq=1, size=100, sent_at=0.0)],
            duration=2.0,
        )
        loaded = roundtrip(trace, tmp_path, fmt)
        assert_traces_equal(trace, loaded)
        assert loaded.records[0].lost
        assert loaded.loss_rate == 1.0

    def test_mixed_trace(self, tmp_path, fmt):
        records = [
            PacketRecord(uid=i, seq=i, size=1000 + i, sent_at=i * 0.01,
                         delivered_at=math.nan if i % 3 == 0 else i * 0.01 + 0.05,
                         is_retransmit=(i % 4 == 0))
            for i in range(25)
        ]
        trace = Trace(
            "mixed", records, duration=5.0, protocol="reno",
            metadata={"seed": 3, "path": "p1"},
        )
        assert_traces_equal(trace, roundtrip(trace, tmp_path, fmt))

    def test_simulated_trace(self, tmp_path, fmt, cubic_trace):
        assert_traces_equal(
            cubic_trace, roundtrip(cubic_trace, tmp_path, fmt)
        )


class TestLoadErrors:
    """Malformed files fail with path + line context, not a bare KeyError."""

    def _write_jsonl(self, tmp_path, lines):
        path = tmp_path / "bad.jsonl"
        header = (
            '{"format_version": 1, "flow_id": "f", "protocol": "cubic", '
            '"duration": 1.0, "metadata": {}}'
        )
        path.write_text("\n".join([header, *lines]) + "\n")
        return path

    def _row(self, uid, sent=0.0):
        return (
            f'{{"uid": {uid}, "seq": {uid}, "size": 1500, '
            f'"sent_at": {sent}, "delivered_at": {sent + 0.05}, '
            f'"is_retransmit": false}}'
        )

    def test_malformed_line_reports_path_and_line_number(self, tmp_path):
        from repro.trace.io import TraceLoadError

        path = self._write_jsonl(
            tmp_path, [self._row(0), "{not json", self._row(1, 0.1)]
        )
        with pytest.raises(TraceLoadError) as exc_info:
            load_trace(path)
        err = exc_info.value
        assert err.path == path
        assert err.total == 1
        assert f"{path}:3" in str(err)
        assert "{not json" in str(err)

    def test_max_errors_bounds_detail_but_counts_all(self, tmp_path):
        from repro.trace.io import TraceLoadError

        bad = ["{oops"] * 30
        path = self._write_jsonl(tmp_path, bad)
        with pytest.raises(TraceLoadError) as exc_info:
            load_trace(path, max_errors=5)
        err = exc_info.value
        assert err.total == 30
        assert len(err.errors) == 5
        assert "25 more error(s)" in str(err)

    def test_skip_policy_loads_good_lines_and_counts(self, tmp_path):
        path = self._write_jsonl(
            tmp_path, [self._row(0), "garbage", self._row(1, 0.1)]
        )
        trace = load_trace(path, policy="skip")
        assert len(trace) == 2
        assert trace.metadata["malformed_lines"] == 1

    def test_nonnumeric_field_reports_type(self, tmp_path):
        from repro.trace.io import TraceLoadError

        row = (
            '{"uid": "??", "seq": 0, "size": 1500, "sent_at": 0.0, '
            '"delivered_at": 0.05, "is_retransmit": false}'
        )
        path = self._write_jsonl(tmp_path, [row])
        with pytest.raises(TraceLoadError, match="uid"):
            load_trace(path)

    def test_bad_header_duration_strict_vs_skip(self, tmp_path):
        from repro.trace.io import TraceLoadError

        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"format_version": 1, "flow_id": "f", "protocol": "cubic", '
            '"duration": null, "metadata": {}}\n' + self._row(0) + "\n"
        )
        with pytest.raises(TraceLoadError, match="duration"):
            load_trace(path)
        trace = load_trace(path, policy="skip")
        assert trace.duration > 0
        assert "repaired_duration" in trace.metadata

    def test_truncated_npz_raises_trace_load_error(self, tmp_path):
        from repro.trace.io import TraceLoadError

        trace = Trace(
            "t",
            [PacketRecord(uid=0, seq=0, size=1500, sent_at=0.0,
                          delivered_at=0.05)],
            duration=1.0,
        )
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceLoadError, match="npz"):
            load_trace(path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "nope.npz")

    def test_strict_load_validates_invariants(self, tmp_path):
        # A parseable file whose physics are broken (delivery before
        # send) must fail a strict load, not just a malformed one.
        row = (
            '{"uid": 0, "seq": 0, "size": 1500, "sent_at": 1.0, '
            '"delivered_at": 0.5, "is_retransmit": false}'
        )
        path = self._write_jsonl(tmp_path, [row])
        with pytest.raises(ValueError, match="invalid"):
            load_trace(path)
        # repair voids the impossible delivery to loss instead.
        repaired = load_trace(path, policy="repair")
        assert len(repaired) == 1
        assert repaired.records[0].lost

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="policy"):
            load_trace(tmp_path / "t.jsonl", policy="lenient")


def test_cross_format_equality(tmp_path):
    """The same trace saved as npz and jsonl loads back identically."""
    records = [
        PacketRecord(uid=i, seq=i, size=1500, sent_at=i * 0.1,
                     delivered_at=i * 0.1 + 0.02)
        for i in range(10)
    ]
    trace = Trace("xfmt", records, duration=2.0, protocol="cubic")
    save_trace(trace, tmp_path / "t.npz")
    save_trace(trace, tmp_path / "t.jsonl")
    assert_traces_equal(
        load_trace(tmp_path / "t.npz"), load_trace(tmp_path / "t.jsonl")
    )
