"""Tests for the repro.obs.profile sampling profiler."""

from __future__ import annotations

import threading
import time

from repro.obs.profile import SamplingProfiler, _frame_label


def _busy_loop(stop: threading.Event) -> float:
    x = 0.0
    while not stop.is_set():
        for i in range(2000):
            x += i * 0.5
    return x


def _profile_busy(interval_sec=0.001, duration=0.25, **kwargs):
    """Run the profiler against a busy worker thread; return it stopped."""
    stop = threading.Event()
    worker = threading.Thread(target=_busy_loop, args=(stop,), name="busy")
    worker.start()
    try:
        profiler = SamplingProfiler(interval_sec=interval_sec, **kwargs)
        with profiler:
            time.sleep(duration)
    finally:
        stop.set()
        worker.join()
    return profiler


class TestSamplingProfiler:
    def test_collects_samples_from_other_threads(self):
        profiler = _profile_busy()
        assert profiler.samples > 10
        assert profiler.wall_sec > 0
        lines = profiler.collapsed().splitlines()
        assert lines, "expected at least one stack"
        # The busy loop must appear, attributed to its function.
        assert any("_busy_loop" in line for line in lines)

    def test_collapsed_format(self):
        profiler = _profile_busy(duration=0.1)
        lines = profiler.collapsed().splitlines()
        assert lines
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert stack, f"bad collapsed line: {line!r}"
            assert count.isdigit()
            for frame in stack.split(";"):
                assert ":" in frame  # module:function labels

    def test_stacks_are_outermost_first(self):
        profiler = _profile_busy(duration=0.2)
        busy_lines = [
            line
            for line in profiler.collapsed().splitlines()
            if "_busy_loop" in line
        ]
        assert busy_lines
        stack = busy_lines[0].rpartition(" ")[0].split(";")
        # Thread bootstrap frames are outermost, the target innermost.
        assert "_busy_loop" in stack[-1]

    def test_sample_once_skips_own_thread(self):
        profiler = SamplingProfiler()
        profiler.sample_once(skip_ident=threading.get_ident())
        assert not any(
            ":test_sample_once_skips_own_thread" in line
            for line in profiler.collapsed().splitlines()
        )

    def test_write_atomic(self, tmp_path):
        profiler = _profile_busy(duration=0.1)
        path = profiler.write(tmp_path / "sub" / "profile.collapsed")
        assert path.exists()
        assert path.read_text() == profiler.collapsed()
        assert not list(path.parent.glob("*.tmp*"))

    def test_top_functions(self):
        profiler = _profile_busy(duration=0.2)
        top = profiler.top_functions(limit=5)
        assert top and len(top) <= 5
        assert all(count >= 1 for _, count in top)
        assert any("_busy_loop" in label for label, _ in top)

    def test_max_samples_bounds_collection(self):
        # One tick may record a stack per live thread, so the cap can
        # overshoot by at most (threads - 1); it must not keep growing.
        profiler = _profile_busy(
            interval_sec=0.0001, duration=0.2, max_samples=5
        )
        assert profiler.samples <= 5 + threading.active_count() + 2

    def test_start_stop_idempotent(self):
        profiler = SamplingProfiler(interval_sec=0.001)
        profiler.start()
        profiler.start()  # second start is a no-op
        profiler.stop()
        profiler.stop()
        assert profiler.wall_sec >= 0

    def test_rejects_bad_interval(self):
        import pytest

        with pytest.raises(ValueError):
            SamplingProfiler(interval_sec=0)

    def test_frame_label(self):
        import sys

        frame = sys._getframe()
        assert _frame_label(frame) == f"{__name__}:test_frame_label"
