"""Tests for trace metrics and persistence."""

import math

import numpy as np
import pytest

from repro.trace.io import load_trace, load_traces, save_trace, save_traces
from repro.trace.metrics import (
    loss_percent,
    mean_rate_mbps,
    p95_delay_ms,
    summarize,
)
from repro.trace.records import PacketRecord, Trace


def _trace(n=100, delay=0.05, loss_every=0):
    records = []
    for i in range(n):
        delivered = i * 0.01 + delay
        if loss_every and i % loss_every == 0:
            delivered = math.nan
        records.append(
            PacketRecord(
                uid=i, seq=i, size=1500, sent_at=i * 0.01,
                delivered_at=delivered,
            )
        )
    return Trace("f", records, duration=1.0, protocol="cubic",
                 metadata={"seed": 1})


class TestMetrics:
    def test_p95_delay(self):
        trace = _trace(delay=0.05)
        assert p95_delay_ms(trace) == pytest.approx(50.0)

    def test_p95_nan_for_all_lost(self):
        trace = _trace(n=4, loss_every=1)
        assert math.isnan(p95_delay_ms(trace))

    def test_loss_percent(self):
        trace = _trace(n=100, loss_every=10)
        assert loss_percent(trace) == pytest.approx(10.0)

    def test_mean_rate(self):
        trace = _trace(n=100)
        # 100 * 1500 B in 1 s = 1.2 Mb/s
        assert mean_rate_mbps(trace) == pytest.approx(1.2)

    def test_mean_rate_counts_delivered_only(self):
        lossy = _trace(n=100, loss_every=2)
        assert mean_rate_mbps(lossy) == pytest.approx(0.6)

    def test_summary_roundtrip(self):
        summary = summarize(_trace())
        assert summary.packets_sent == 100
        assert summary.packets_delivered == 100
        assert "cubic" in str(summary)


class TestIO:
    @pytest.mark.parametrize("suffix", [".jsonl", ".npz"])
    def test_roundtrip(self, tmp_path, suffix):
        trace = _trace(loss_every=7)
        path = tmp_path / f"trace{suffix}"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.flow_id == trace.flow_id
        assert loaded.protocol == trace.protocol
        assert loaded.duration == trace.duration
        assert loaded.metadata == trace.metadata
        assert len(loaded) == len(trace)
        assert np.allclose(loaded.sent_at, trace.sent_at)
        assert np.allclose(
            loaded.delivered_at, trace.delivered_at, equal_nan=True
        )
        assert [r.is_retransmit for r in loaded.records] == [
            r.is_retransmit for r in trace.records
        ]

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace(_trace(), tmp_path / "trace.csv")
        with pytest.raises(ValueError):
            load_trace(tmp_path / "missing.csv")

    def test_directory_roundtrip(self, tmp_path):
        traces = [_trace(), _trace(n=50)]
        paths = save_traces(traces, tmp_path / "corpus", fmt="npz")
        assert len(paths) == 2
        loaded = load_traces(tmp_path / "corpus")
        assert [len(t) for t in loaded] == [100, 50]

    def test_version_check(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(_trace(), path)
        content = path.read_text().replace(
            '"format_version": 1', '"format_version": 99'
        )
        path.write_text(content)
        with pytest.raises(ValueError, match="version"):
            load_trace(path)

    def test_real_trace_roundtrip(self, tmp_path, cubic_trace):
        path = tmp_path / "real.npz"
        save_trace(cubic_trace, path)
        loaded = load_trace(path)
        assert summarize(loaded).p95_delay_ms == pytest.approx(
            summarize(cubic_trace).p95_delay_ms
        )
