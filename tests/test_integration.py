"""End-to-end integration tests: miniature versions of the paper's
experiments wired through the public API."""

import numpy as np
import pytest

from repro.analysis.kmeans import KMeans, cluster_purity
from repro.analysis.stats import distributions_match
from repro.core import iboxnet
from repro.core.abtest import ensemble_test, instance_test
from repro.trace.metrics import summarize


class TestEnsemblePipeline:
    @pytest.fixture(scope="class")
    def ensemble(self, small_dataset):
        return ensemble_test(small_dataset, duration=12.0)

    def test_one_model_per_control_run(self, ensemble, small_dataset):
        assert len(ensemble.models) == len(
            small_dataset.by_protocol("cubic")
        )

    def test_simulated_summaries_cover_both_protocols(self, ensemble):
        assert len(ensemble.sim_summaries["cubic"]) == 3
        assert len(ensemble.sim_summaries["vegas"]) == 3

    def test_counterfactual_ordering_preserved(self, ensemble):
        """The headline sanity property: in simulation as in truth, Vegas
        is the low-delay protocol and Cubic the high-throughput one."""
        def med(table, protocol, getter):
            return np.nanmedian([getter(s) for s in table[protocol]])

        for table in (ensemble.gt_summaries, ensemble.sim_summaries):
            assert med(table, "vegas", lambda s: s.p95_delay_ms) < med(
                table, "cubic", lambda s: s.p95_delay_ms
            )

    def test_format_table_renders(self, ensemble):
        text = ensemble.format_table()
        assert "cubic GT" in text and "vegas iBoxNet" in text


class TestInstancePipeline:
    def test_miniature_instance_test_clusters_perfectly(self):
        result = instance_test(
            runs_per_instance=2, duration=40.0,
            ct_offsets=(0.0, 25.0), ct_duration=8.0, base_seed=1,
        )
        assert result.purity == 1.0
        assert len(result.models) == 2
        assert result.features.shape == (8, 4)


class TestCounterfactualAccuracy:
    def test_vegas_prediction_close_to_truth(self, small_dataset):
        """Per-path check: iBoxNet trained on Cubic predicts Vegas's
        summary metrics within a factor of ~2 on every path."""
        pairs = small_dataset.paired_runs("cubic", "vegas")
        for control, treatment in pairs:
            model = iboxnet.fit(control.trace)
            predicted = summarize(
                model.simulate("vegas", duration=12.0, seed=control.seed)
            )
            actual = summarize(treatment.trace)
            assert predicted.mean_rate_mbps == pytest.approx(
                actual.mean_rate_mbps, rel=1.0
            )
            if np.isfinite(actual.p95_delay_ms):
                assert predicted.p95_delay_ms == pytest.approx(
                    actual.p95_delay_ms, rel=1.5
                )


class TestPublicAPI:
    def test_top_level_imports(self):
        import repro

        assert repro.__version__
        assert hasattr(repro.core, "iboxnet")
        assert hasattr(repro.experiments, "fig2_ensemble")

    def test_quickstart_docstring_flow(self):
        from repro.core import iboxnet as ibn
        from repro.datasets import pantheon

        run = pantheon.generate_run(seed=1, protocol="cubic", duration=6.0)
        model = ibn.fit(run.trace)
        predicted = model.simulate("vegas", duration=6.0, seed=2)
        assert predicted.summary().packets_sent > 0
