"""Tests for the §3.1 'ideal' ensemble parameter distribution and the
variable-bandwidth extension."""

import numpy as np
import pytest

from repro.core import iboxnet
from repro.core.ensemble import (
    ParameterDistribution,
    fit_parameter_distribution,
)
from repro.core.iboxnet import estimate_bandwidth_schedule
from repro.simulation import units
from repro.simulation.topology import (
    PathConfig,
    ScheduledBandwidth,
    run_flow,
)


@pytest.fixture(scope="module")
def fitted_models(small_dataset):
    return [
        iboxnet.fit(run.trace)
        for run in small_dataset.by_protocol("cubic")
    ] + [
        iboxnet.fit(run.trace)
        for run in small_dataset.by_protocol("vegas")
    ]


class TestParameterDistribution:
    def test_fit_requires_two_models(self, fitted_models):
        with pytest.raises(ValueError):
            fit_parameter_distribution(fitted_models[:1])

    def test_sampled_parameters_in_training_ballpark(self, fitted_models):
        distribution = fit_parameter_distribution(fitted_models)
        sampled = distribution.sample(30, seed=1)
        assert len(sampled) == 30
        train_b = [
            m.params.bandwidth_bytes_per_sec for m in fitted_models
        ]
        sampled_b = [m.params.bandwidth_bytes_per_sec for m in sampled]
        # Log-space Gaussian: samples concentrate around the corpus.
        assert min(train_b) / 5 < np.median(sampled_b) < max(train_b) * 5
        for model in sampled:
            assert model.params.buffer_bytes >= 1500.0
            assert model.params.propagation_delay > 0

    def test_ct_level_rescaled(self, fitted_models):
        distribution = fit_parameter_distribution(fitted_models)
        sampled = distribution.sample(20, seed=2)
        levels = [
            m.cross_traffic.mean_rate
            / m.params.bandwidth_bytes_per_sec
            for m in sampled
        ]
        assert all(level >= 0 for level in levels)
        assert max(levels) < 3.0

    def test_sampled_models_are_runnable(self, fitted_models):
        distribution = fit_parameter_distribution(fitted_models)
        model = distribution.sample(1, seed=3)[0]
        trace = model.simulate("vegas", duration=4.0, seed=4)
        assert len(trace) > 50

    def test_sampling_deterministic(self, fitted_models):
        distribution = fit_parameter_distribution(fitted_models)
        a = distribution.sample(5, seed=7)
        b = distribution.sample(5, seed=7)
        for model_a, model_b in zip(a, b):
            assert model_a.params == model_b.params

    def test_correlation_accessor(self, fitted_models):
        distribution = fit_parameter_distribution(fitted_models)
        value = distribution.correlation("bandwidth", "buffer")
        assert -1.0 <= value <= 1.0


class TestBandwidthSchedule:
    def test_recovers_a_rate_step(self):
        """A link that halves its rate mid-run must show up in the learnt
        schedule."""
        rate = units.mbps_to_bytes_per_sec(10.0)
        config = PathConfig(
            bandwidth=ScheduledBandwidth(
                times=(0.0, 6.0), rates=(rate, rate / 2)
            ),
            propagation_delay=0.02,
            buffer_bytes=150_000,
        )
        run = run_flow(config, "cubic", duration=12.0, seed=5)
        times, rates = estimate_bandwidth_schedule(
            run.trace, schedule_window=2.0
        )
        first_half = np.mean([r for t, r in zip(times, rates) if t < 5.0])
        second_half = np.mean([r for t, r in zip(times, rates) if t >= 7.0])
        assert first_half == pytest.approx(rate, rel=0.15)
        assert second_half == pytest.approx(rate / 2, rel=0.15)

    def test_variable_bandwidth_model_emulates_the_step(self):
        rate = units.mbps_to_bytes_per_sec(10.0)
        config = PathConfig(
            bandwidth=ScheduledBandwidth(
                times=(0.0, 6.0), rates=(rate, rate / 2)
            ),
            propagation_delay=0.02,
            buffer_bytes=150_000,
        )
        run = run_flow(config, "cubic", duration=12.0, seed=5)
        schedule = estimate_bandwidth_schedule(run.trace)
        model = iboxnet.fit(run.trace).with_variable_bandwidth(schedule)
        sim = model.simulate("cubic", duration=12.0, seed=6)
        from repro.trace.features import binned_rate_series

        _, sim_rates = binned_rate_series(sim, bin_width=2.0)
        # The emulated flow's rate drops by roughly half across the step.
        assert sim_rates[4] < 0.75 * sim_rates[1]

    def test_invalid_windows_rejected(self, cubic_trace):
        with pytest.raises(ValueError):
            estimate_bandwidth_schedule(cubic_trace, schedule_window=0.0)
