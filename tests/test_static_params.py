"""Tests for the §3 static-parameter estimators, validated against the
simulator's known ground truth — a check the paper's authors could not do
on real paths."""

import math

import pytest

from repro.core.static_params import (
    estimate_bandwidth,
    estimate_buffer,
    estimate_from_flows,
    estimate_propagation_delay,
    estimate_static_params,
)
from repro.simulation import units
from repro.simulation.topology import (
    ConstantBandwidth,
    PathConfig,
    PoissonCT,
    run_flow,
)
from repro.trace.records import PacketRecord, Trace

RATE = units.mbps_to_bytes_per_sec(10.0)
DELAY = units.ms_to_sec(25.0)
BUFFER = 250_000.0


@pytest.fixture(scope="module")
def saturating_run():
    config = PathConfig(
        bandwidth=ConstantBandwidth(RATE),
        propagation_delay=DELAY,
        buffer_bytes=BUFFER,
    )
    return run_flow(config, "cubic", duration=15.0, seed=3)


class TestBandwidth:
    def test_recovers_true_bandwidth(self, saturating_run):
        estimate = estimate_bandwidth(saturating_run.trace)
        assert estimate == pytest.approx(RATE, rel=0.03)

    def test_short_bursts_suffice(self):
        """§3: 'even if the sender does not fill the bottleneck link on a
        sustained basis, short bursts would still enable accurate
        estimation'. Cubic's slow-start burst early in the flow saturates
        briefly even though Vegas-style usage would not."""
        config = PathConfig(
            bandwidth=ConstantBandwidth(RATE),
            propagation_delay=DELAY,
            buffer_bytes=BUFFER,
        )
        run = run_flow(config, "cubic", duration=4.0, seed=4)
        estimate = estimate_bandwidth(run.trace)
        assert estimate == pytest.approx(RATE, rel=0.05)

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError):
            estimate_bandwidth(Trace("f", [], duration=1.0))


class TestPropagationDelay:
    def test_recovers_base_delay(self, saturating_run):
        estimate = estimate_propagation_delay(saturating_run.trace)
        # Min observed delay = propagation + one serialization time.
        expected = DELAY + 1500 / RATE
        assert estimate == pytest.approx(expected, rel=0.05)


class TestBuffer:
    def test_recovers_buffer_when_filled(self, saturating_run):
        params = estimate_static_params(saturating_run.trace)
        # Cubic fills the buffer before each loss event.
        assert params.buffer_bytes == pytest.approx(BUFFER, rel=0.15)

    def test_never_below_one_mtu(self):
        records = [
            PacketRecord(uid=i, seq=i, size=1500, sent_at=i * 0.1,
                         delivered_at=i * 0.1 + 0.05)
            for i in range(10)
        ]
        trace = Trace("f", records, duration=1.0)
        assert estimate_buffer(trace, 1e6) >= 1500.0

    def test_percentile_trim_reduces_estimate(self, saturating_run):
        full = estimate_buffer(saturating_run.trace, RATE, 100.0)
        trimmed = estimate_buffer(saturating_run.trace, RATE, 99.0)
        assert trimmed <= full


class TestAggregation:
    def test_multi_flow_aggregation_beats_single_nonsaturating_flow(self):
        """§6: aggregating across flows rescues the saturation assumption.
        An RTC flow alone badly underestimates bandwidth; adding one
        saturating Cubic flow fixes the aggregate."""
        config = PathConfig(
            bandwidth=ConstantBandwidth(RATE),
            propagation_delay=DELAY,
            buffer_bytes=BUFFER,
        )
        rtc = run_flow(config, "rtc", duration=8.0, seed=5).trace
        cubic = run_flow(config, "cubic", duration=8.0, seed=5).trace
        alone = estimate_bandwidth(rtc)
        aggregated = estimate_from_flows([rtc, cubic])
        assert alone < 0.9 * RATE
        assert aggregated.bandwidth_bytes_per_sec == pytest.approx(
            RATE, rel=0.05
        )

    def test_rejects_empty_collection(self):
        with pytest.raises(ValueError):
            estimate_from_flows([])


class TestEndToEnd:
    def test_full_estimation_on_cross_traffic_path(self, cubic_run, simple_config):
        params = estimate_static_params(cubic_run.trace)
        # Persistent cross traffic takes a share of every 1 s window, so
        # the peak-receive-rate estimator reads slightly low — a known,
        # graceful degradation (§6); the deficit is what the cross-traffic
        # estimate then accounts for.
        assert params.bandwidth_bytes_per_sec == pytest.approx(RATE, rel=0.15)
        assert params.bandwidth_bytes_per_sec <= RATE * 1.02
        assert params.propagation_delay == pytest.approx(
            DELAY + 1500 / RATE, rel=0.1
        )
        assert str(params)  # human-readable rendering works
