"""Tests for the packet data type."""

import pytest

from repro.simulation.packet import Packet


def test_uids_are_unique():
    packets = [Packet(flow_id="f", seq=i) for i in range(100)]
    uids = {p.uid for p in packets}
    assert len(uids) == 100


def test_retransmissions_get_distinct_uids():
    first = Packet(flow_id="f", seq=5)
    second = Packet(flow_id="f", seq=5, is_retransmit=True)
    assert first.uid != second.uid


def test_delay_none_before_delivery():
    packet = Packet(flow_id="f", seq=0)
    assert packet.delay is None
    packet.sent_at = 1.0
    assert packet.delay is None


def test_delay_computed_after_delivery():
    packet = Packet(flow_id="f", seq=0)
    packet.sent_at = 1.0
    packet.delivered_at = 1.25
    assert packet.delay == pytest.approx(0.25)


def test_non_positive_size_rejected():
    with pytest.raises(ValueError):
        Packet(flow_id="f", seq=0, size=0)
    with pytest.raises(ValueError):
        Packet(flow_id="f", seq=0, size=-100)


def test_repr_distinguishes_ack():
    data = Packet(flow_id="f", seq=1)
    ack = Packet(flow_id="f", seq=-1, is_ack=True, ack=2)
    assert "DATA" in repr(data)
    assert "ACK" in repr(ack)
