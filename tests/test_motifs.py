"""Tests for motif mining and pattern diffing."""

import pytest

from repro.discovery.motifs import (
    aggregate_frequencies,
    diff_patterns,
    pattern_frequencies,
    top_motifs,
)


class TestFrequencies:
    def test_length_one(self):
        freqs = pattern_frequencies("aabb", 1)
        assert freqs == {"a": 0.5, "b": 0.5}

    def test_length_two(self):
        freqs = pattern_frequencies("abab", 2)
        assert freqs["ab"] == pytest.approx(2 / 3)
        assert freqs["ba"] == pytest.approx(1 / 3)

    def test_too_short_string(self):
        assert pattern_frequencies("a", 2) == {}
        assert pattern_frequencies("", 1) == {}

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            pattern_frequencies("abc", 0)

    def test_aggregate_weights_by_positions(self):
        freqs = aggregate_frequencies(["aaa", "b"], 1)
        assert freqs["a"] == pytest.approx(0.75)
        assert freqs["b"] == pytest.approx(0.25)

    def test_frequencies_sum_to_one(self):
        freqs = pattern_frequencies("abcabcabdd", 2)
        assert sum(freqs.values()) == pytest.approx(1.0)


class TestTopMotifs:
    def test_ranking(self):
        motifs = top_motifs("aaabbc", 1, k=2)
        assert motifs[0][0] == "a"
        assert motifs[1][0] == "b"

    def test_k_limits_output(self):
        assert len(top_motifs("abcdef", 1, k=3)) == 3


class TestDiff:
    def test_venn_decomposition(self):
        gt = ["aabbcc"]
        sim = ["bbccdd"]
        diff = diff_patterns(gt, sim, length=1)
        assert set(diff.only_ground_truth) == {"a"}
        assert set(diff.only_simulated) == {"d"}
        assert set(diff.shared) == {"b", "c"}

    def test_paper_scenario_reordering_missing(self):
        """Fig. 8(a): pattern 'a' present in GT, absent in the simulator."""
        gt = ["bcbcabcbca", "bcbcbabc"]
        sim = ["bcbcbcbcbc", "bcbcbc"]
        diff = diff_patterns(gt, sim, length=1)
        assert diff.missing_behaviours == ["a"]
        diff2 = diff_patterns(gt, sim, length=2)
        missing2 = [p for p in diff2.only_ground_truth if "a" in p]
        assert missing2  # higher-order patterns involving 'a' also missing

    def test_min_frequency_floor(self):
        gt = ["a" + "b" * 9999]
        sim = ["b" * 10000]
        strict = diff_patterns(gt, sim, length=1, min_frequency=0.01)
        assert "a" not in strict.only_ground_truth
        loose = diff_patterns(gt, sim, length=1, min_frequency=1e-6)
        assert "a" in loose.only_ground_truth

    def test_shared_preserves_both_frequencies(self):
        diff = diff_patterns(["ab"], ["aab"], length=1)
        f_gt, f_sim = diff.shared["a"]
        assert f_gt == pytest.approx(0.5)
        assert f_sim == pytest.approx(2 / 3)

    def test_format_table(self):
        diff = diff_patterns(["aabb"], ["bbcc"], length=1)
        table = diff.format_table()
        assert "pattern" in table
        assert "a" in table
