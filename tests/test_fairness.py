"""Tests for multi-flow competition and Jain's fairness index."""

import numpy as np
import pytest

from repro.analysis.fairness import (
    CompetitionResult,
    jains_index,
    run_competing_flows,
)
from repro.simulation import units
from repro.simulation.topology import ConstantBandwidth, PathConfig

RATE = units.mbps_to_bytes_per_sec(12.0)


def _config(buffer_bdp=2.0):
    delay = units.ms_to_sec(20.0)
    return PathConfig(
        bandwidth=ConstantBandwidth(RATE),
        propagation_delay=delay,
        buffer_bytes=RATE * 2 * delay * buffer_bdp,
    )


class TestJainsIndex:
    def test_equal_allocations_score_one(self):
        assert jains_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog_scores_one_over_n(self):
        assert jains_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            x = rng.uniform(0, 10, size=rng.integers(2, 8))
            value = jains_index(x)
            assert 1.0 / len(x) - 1e-9 <= value <= 1.0 + 1e-9

    def test_scale_invariant(self):
        x = [1.0, 2.0, 3.0]
        assert jains_index(x) == pytest.approx(
            jains_index([10 * v for v in x])
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            jains_index([])
        with pytest.raises(ValueError):
            jains_index([-1.0, 2.0])


class TestCompetition:
    def test_two_cubics_share_fairly(self):
        result = run_competing_flows(
            _config(), ["cubic", "cubic"], duration=15.0, seed=1
        )
        assert result.fairness > 0.85
        total = sum(result.goodputs.values())
        assert total == pytest.approx(RATE, rel=0.15)

    def test_cubic_starves_vegas(self):
        """The classic inter-protocol unfairness: a loss-based flow fills
        the queue, a delay-based one retreats."""
        result = run_competing_flows(
            _config(buffer_bdp=4.0), ["cubic", "vegas"], duration=15.0, seed=2
        )
        shares = result.shares()
        assert shares["cubic-0"] > 2 * shares["vegas-1"]
        assert result.fairness < 0.95

    def test_ledbat_yields_completely(self):
        result = run_competing_flows(
            _config(buffer_bdp=4.0), ["cubic", "ledbat"], duration=15.0, seed=3
        )
        assert result.shares()["ledbat-1"] < 0.25

    def test_stagger_delays_later_flows(self):
        result = run_competing_flows(
            _config(), ["cubic", "cubic"], duration=10.0, seed=4, stagger=5.0
        )
        first = result.traces["cubic-0"]
        second = result.traces["cubic-1"]
        assert second.sent_at.min() >= 5.0
        assert result.goodputs["cubic-0"] > result.goodputs["cubic-1"]

    def test_traces_are_complete(self):
        result = run_competing_flows(
            _config(), ["cubic", "vegas"], duration=8.0, seed=5
        )
        for trace in result.traces.values():
            assert len(trace) > 100
        assert "Jain" in result.format_report()

    def test_requires_protocols(self):
        with pytest.raises(ValueError):
            run_competing_flows(_config(), [], duration=5.0)
