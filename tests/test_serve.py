"""Tests for repro.serve: journal, breaker, queue, locks, and daemon.

Daemon tests drive :meth:`ServeDaemon.tick` directly instead of
:meth:`run` so each scheduling step is deterministic; only the worker
child processes are real.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro import obs
from repro.runtime.locks import LockTimeout, ProcessLock, file_lock
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.obs.live import SLO
from repro.serve.client import (
    format_status,
    query_daemon,
    read_live_snapshot,
    serve_status,
    submit_to_spool,
    submit_via_socket,
)
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.journal import JobJournal, record_crc_ok, seal_record
from repro.serve.queue import AdmissionQueue
from repro.serve.supervisor import _write_result, quarantine_result, read_result
from repro.serve.requests import BadRequest, normalize_request, request_to_spec


def _req(i: int, fault=None, job_class: str = "drill", **params):
    """A chaos-kind request: fault=None completes immediately."""
    return {
        "kind": "chaos",
        "params": {"fault": fault, "i": i, **params},
        "label": f"drill:{i}",
        "class": job_class,
        "timeout_sec": 30.0,
    }


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_roundtrip_replay(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=False)
        request = normalize_request(_req(0))
        journal.submitted(request)
        journal.leased(request["job_id"], 1, pid=123)
        journal.completed(request["job_id"], duration_sec=0.5, cache_hit=True)
        journal.close()

        state = JobJournal.read_state(tmp_path)
        assert state.counts()["completed"] == 1
        job = state.jobs[request["job_id"]]
        assert job.attempts == 1
        assert job.completions == 1
        assert job.cache_hit is True
        assert job.duration_sec == 0.5

    def test_torn_tail_is_truncated_and_survives_replay(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=False)
        first = normalize_request(_req(0))
        second = normalize_request(_req(1))
        journal.submitted(first)
        journal.completed(first["job_id"])
        journal.close()

        # Simulate a SIGKILL mid-append: half a record, no newline.
        with open(tmp_path / JobJournal.ACTIVE, "a", encoding="utf-8") as fh:
            fh.write('{"v":1,"type":"submitted","job_id":"to')

        reopened = JobJournal(tmp_path, fsync=False)
        assert reopened.state.counts()["completed"] == 1
        # The torn tail is gone from disk, so new appends stay parseable.
        data = (tmp_path / JobJournal.ACTIVE).read_bytes()
        assert data.endswith(b"\n")
        reopened.submitted(second)
        reopened.close()
        state = JobJournal.read_state(tmp_path)
        assert state.counts() == {
            "total": 2, "pending": 1, "leased": 0,
            "completed": 1, "failed": 0, "rejected": 0,
        }

    def test_undecodable_complete_line_is_corrupt_not_torn(self, tmp_path):
        # A garbage line *with* its newline was fully written by someone
        # — that is corruption, not a torn tail (only a missing trailing
        # newline on the final line of the final segment is torn).
        journal = JobJournal(tmp_path, fsync=False)
        journal.submitted(normalize_request(_req(0)))
        journal.close()
        with open(tmp_path / JobJournal.ACTIVE, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
        state = JobJournal.read_state(tmp_path)
        assert state.torn_records == 0
        assert state.corrupt_records == 1
        assert state.corrupt_segments == [JobJournal.ACTIVE]
        assert state.counts()["total"] == 1

    def test_rotation_and_compaction_preserve_state(self, tmp_path):
        journal = JobJournal(
            tmp_path, fsync=False,
            max_segment_bytes=256, compact_after_segments=2,
        )
        requests = [normalize_request(_req(i)) for i in range(8)]
        for request in requests:
            journal.submitted(request)
            journal.leased(request["job_id"], 1)
            journal.completed(request["job_id"], duration_sec=0.1)
        live = journal.state.counts()
        assert live["completed"] == 8
        # Rotation happened (tiny segments), and compaction folded the
        # rotated segments away again.
        assert not list(tmp_path.glob("wal-*.jsonl"))
        journal.close()
        replayed = JobJournal.read_state(tmp_path)
        assert replayed.counts() == live
        assert [j.request["job_id"] for j in replayed.in_order()] == [
            r["job_id"] for r in requests
        ]

    def test_duplicate_submit_is_deduped(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=False)
        request = normalize_request(_req(0))
        journal.submitted(request)
        journal.submitted(request)
        journal.close()
        assert journal.state.duplicate_submits == 1
        assert len(journal.state.jobs) == 1

    def test_requeue_reverts_lease_but_never_completion(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=False)
        request = normalize_request(_req(0))
        journal.submitted(request)
        journal.leased(request["job_id"], 1)
        journal.requeued(request["job_id"], "orphaned_lease")
        assert journal.state.jobs[request["job_id"]].status == "pending"
        journal.completed(request["job_id"])
        journal.requeued(request["job_id"], "bogus")
        assert journal.state.jobs[request["job_id"]].status == "completed"
        journal.close()

    def test_requeue_reverts_rejection_for_resubmission(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=False)
        request = normalize_request(_req(0))
        journal.submitted(request)
        journal.rejected(request["job_id"], "overloaded", retry_after_sec=2.0)
        assert journal.state.jobs[request["job_id"]].status == "rejected"
        journal.requeued(request["job_id"], "resubmitted")
        job = journal.state.jobs[request["job_id"]]
        assert job.status == "pending"
        assert job.reason is None
        journal.close()
        replayed = JobJournal.read_state(tmp_path)
        assert replayed.jobs[request["job_id"]].status == "pending"

    def test_concurrent_appends_never_tear_records(self, tmp_path):
        # Socket-intake threads and the main loop append concurrently;
        # tiny segments force rotation + compaction under contention.
        journal = JobJournal(
            tmp_path, fsync=False,
            max_segment_bytes=4096, compact_after_segments=2,
        )
        threads_n, per_thread = 4, 200

        def _hammer(t: int) -> None:
            for i in range(per_thread):
                journal.submitted(
                    {"job_id": f"job-{t}-{i}", "kind": "chaos", "params": {}}
                )

        threads = [
            threading.Thread(target=_hammer, args=(t,))
            for t in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        journal.close()
        state = JobJournal.read_state(tmp_path)
        assert state.torn_records == 0
        assert len(state.jobs) == threads_n * per_thread


# ----------------------------------------------------------------------
# Journal corruption matrix (PR 10): torn vs corrupt, CRC envelopes
# ----------------------------------------------------------------------
def _tamper_record(segment, rtype: str, job_id: str) -> bool:
    """Flip a field inside the first matching record WITHOUT resealing,
    so the stored CRC no longer matches the canonical body."""
    lines = segment.read_text(encoding="utf-8").splitlines()
    for i, line in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if record.get("type") == rtype and record.get("job_id") == job_id:
            record["ts"] = float(record.get("ts") or 0.0) + 1.0
            lines[i] = json.dumps(record, separators=(",", ":"))
            segment.write_text("\n".join(lines) + "\n", encoding="utf-8")
            return True
    return False


class TestJournalCorruption:
    @pytest.mark.parametrize("rtype", ["submitted", "leased", "completed",
                                       "rejected"])
    def test_bitflip_in_each_record_type_is_skipped_and_flagged(
        self, tmp_path, rtype
    ):
        journal = JobJournal(tmp_path, fsync=False)
        request = normalize_request(_req(0))
        job_id = request["job_id"]
        journal.submitted(request)
        if rtype in ("leased", "completed"):
            journal.leased(job_id, 1, pid=123)
        if rtype == "completed":
            journal.completed(job_id, duration_sec=0.5)
        if rtype == "rejected":
            journal.rejected(job_id, "overloaded", retry_after_sec=2.0)
        journal.close()

        assert _tamper_record(tmp_path / JobJournal.ACTIVE, rtype, job_id)
        state = JobJournal.read_state(tmp_path)
        assert state.corrupt_records == 1
        assert state.torn_records == 0
        assert job_id in state.suspect_jobs
        assert JobJournal.ACTIVE in state.corrupt_segments
        # The damaged record must NOT have been applied.
        job = state.jobs.get(job_id)
        if rtype == "submitted":
            assert job is None
        elif rtype == "leased":
            assert job.status == "pending" and job.attempts == 0
        elif rtype == "completed":
            # The job's last good state (leased) is not terminal: the
            # corrupt completion is never believed.
            assert job.status == "leased" and job.completions == 0
        elif rtype == "rejected":
            assert job.status == "pending" and job.reason is None

    def test_bitflip_in_snapshot_job_record_is_corrupt(self, tmp_path):
        # Compaction snapshots carry the same envelope: damage one and
        # replay must refuse it rather than resurrect a wrong state.
        journal = JobJournal(
            tmp_path, fsync=False,
            max_segment_bytes=256, compact_after_segments=2,
        )
        requests = [normalize_request(_req(i)) for i in range(8)]
        for request in requests:
            journal.submitted(request)
            journal.leased(request["job_id"], 1)
            journal.completed(request["job_id"], duration_sec=0.1)
        journal.close()
        victim = requests[0]["job_id"]
        assert _tamper_record(tmp_path / JobJournal.ACTIVE, "job", victim)
        state = JobJournal.read_state(tmp_path)
        assert state.corrupt_records == 1
        assert victim in state.suspect_jobs
        assert victim not in state.jobs  # absolute record refused whole
        assert state.counts()["completed"] == 7

    def test_torn_looking_line_in_rotated_segment_is_corrupt(self, tmp_path):
        # A line without a trailing newline is only "torn" at the very
        # end of the journal; at a rotation boundary it means the
        # segment lost bytes mid-history — corruption.
        journal = JobJournal(tmp_path, fsync=False)
        first = normalize_request(_req(0))
        journal.submitted(first)
        journal.rotate()
        second = normalize_request(_req(1))
        journal.submitted(second)
        journal.close()
        rotated = sorted(tmp_path.glob("wal-*.jsonl"))[0]
        with open(rotated, "a", encoding="utf-8") as fh:
            fh.write('{"v":2,"type":"completed","job_id":"to')
        state = JobJournal.read_state(tmp_path)
        assert state.torn_records == 0
        assert state.corrupt_records == 1
        assert rotated.name in state.corrupt_segments
        assert state.counts()["total"] == 2

    def test_unknown_version_with_valid_crc_is_preserved(self, tmp_path):
        # Forward compat: a record sealed by a NEWER writer whose
        # checksum holds must be applied, not dropped as corrupt.
        journal = JobJournal(tmp_path, fsync=False)
        request = normalize_request(_req(0))
        journal.submitted(request)
        journal.close()
        future = seal_record({
            "v": 99, "type": "completed", "job_id": request["job_id"],
            "duration_sec": 0.25, "from": "the future",
        })
        assert record_crc_ok(future)
        with open(tmp_path / JobJournal.ACTIVE, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(future, separators=(",", ":")) + "\n")
        state = JobJournal.read_state(tmp_path)
        assert state.corrupt_records == 0
        job = state.jobs[request["job_id"]]
        assert job.status == "completed"
        assert job.duration_sec == 0.25

    def test_v2_record_without_crc_is_corrupt(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=False)
        request = normalize_request(_req(0))
        journal.submitted(request)
        journal.close()
        naked = {"v": 2, "type": "completed", "job_id": request["job_id"]}
        with open(tmp_path / JobJournal.ACTIVE, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(naked, separators=(",", ":")) + "\n")
        state = JobJournal.read_state(tmp_path)
        assert state.corrupt_records == 1
        assert state.jobs[request["job_id"]].status == "pending"

    def test_writer_quarantines_corrupt_segment_copy(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=False)
        request = normalize_request(_req(0))
        journal.submitted(request)
        journal.completed(request["job_id"])
        journal.close()
        assert _tamper_record(
            tmp_path / JobJournal.ACTIVE, "completed", request["job_id"]
        )
        reopened = JobJournal(tmp_path, fsync=False)
        quarantined = list((tmp_path / "quarantine").glob("*"))
        assert len(quarantined) == 1
        # The copy preserves the damaged bytes for post-mortem while the
        # live journal keeps appending to the original.
        assert quarantined[0].name == JobJournal.ACTIVE
        reopened.completed(request["job_id"])
        reopened.close()
        assert JobJournal.read_state(tmp_path).counts()["completed"] == 1

    def test_result_corrupt_requeue_voids_exactly_one_completion(
        self, tmp_path
    ):
        # Read-repair semantics: a ``result_corrupt*`` requeue (and only
        # that) reverts a completed job AND decrements its completion
        # count, so the re-execution that follows nets out exactly-once.
        journal = JobJournal(tmp_path, fsync=False)
        request = normalize_request(_req(0))
        journal.submitted(request)
        journal.leased(request["job_id"], 1)
        journal.completed(request["job_id"])
        journal.requeued(request["job_id"], "result_corrupt_corrupt")
        job = journal.state.jobs[request["job_id"]]
        assert job.status == "pending"
        assert job.completions == 0
        journal.leased(request["job_id"], 2)
        journal.completed(request["job_id"])
        journal.close()
        replayed = JobJournal.read_state(tmp_path)
        job = replayed.jobs[request["job_id"]]
        assert job.status == "completed"
        assert job.completions == 1


# ----------------------------------------------------------------------
# Result envelope (PR 10): checksummed artifacts
# ----------------------------------------------------------------------
class TestResultEnvelope:
    def test_roundtrip_is_checksummed_and_valid(self, tmp_path):
        path = tmp_path / "results" / "abc.json"
        payload = {"status": "ok", "job_id": "abc", "value": {"x": 1},
                   "duration_sec": 0.5}
        _write_result(path, payload)
        envelope = json.loads(path.read_text())
        assert envelope["v"] == 2
        assert record_crc_ok(envelope)
        read, verdict = read_result(path)
        assert verdict == "valid"
        assert read == payload

    def test_bitflip_reads_corrupt_and_quarantines(self, tmp_path):
        path = tmp_path / "results" / "abc.json"
        _write_result(path, {"status": "ok", "job_id": "abc"})
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        read, verdict = read_result(path)
        assert read is None
        assert verdict == "corrupt"
        moved = quarantine_result(path)
        assert moved is not None and moved.exists()
        assert not path.exists()
        assert read_result(path) == (None, "missing")

    def test_legacy_bare_payload_still_reads(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"status": "ok", "job_id": "abc"}))
        read, verdict = read_result(path)
        assert verdict == "valid"
        assert read["status"] == "ok"

    def test_quarantine_of_missing_file_is_noop(self, tmp_path):
        assert quarantine_result(tmp_path / "nope.json") is None
        assert not (tmp_path / "quarantine").exists()


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    @pytest.fixture()
    def clocked(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, cooldown_sec=10.0, clock=clock
        )
        return breaker, clock

    def test_opens_after_threshold_consecutive_failures(self, clocked):
        obs.configure(enabled=True)
        breaker, _ = clocked
        for _ in range(2):
            breaker.record_failure("sim")
        assert breaker.state("sim") == CLOSED
        assert breaker.allow("sim")
        breaker.record_failure("sim")
        assert breaker.state("sim") == OPEN
        assert not breaker.allow("sim")
        counters = obs.metrics_snapshot()["counters"]
        assert counters["breaker.open"] == 1

    def test_success_resets_the_failure_streak(self, clocked):
        breaker, _ = clocked
        breaker.record_failure("sim")
        breaker.record_failure("sim")
        breaker.record_success("sim")
        breaker.record_failure("sim")
        breaker.record_failure("sim")
        assert breaker.state("sim") == CLOSED

    def test_half_open_admits_exactly_one_probe(self, clocked):
        breaker, clock = clocked
        for _ in range(3):
            breaker.record_failure("sim")
        clock.now += 10.0
        assert breaker.state("sim") == HALF_OPEN
        assert breaker.allow("sim")       # the probe
        assert not breaker.allow("sim")   # everyone else still waits

    def test_probe_success_closes(self, clocked):
        breaker, clock = clocked
        for _ in range(3):
            breaker.record_failure("sim")
        clock.now += 10.0
        assert breaker.allow("sim")
        breaker.record_success("sim")
        assert breaker.state("sim") == CLOSED
        assert breaker.allow("sim")

    def test_probe_failure_reopens_and_restarts_cooldown(self, clocked):
        breaker, clock = clocked
        for _ in range(3):
            breaker.record_failure("sim")
        clock.now += 10.0
        assert breaker.allow("sim")
        breaker.record_failure("sim")
        assert breaker.state("sim") == OPEN
        clock.now += 9.0
        assert not breaker.allow("sim")
        clock.now += 1.0
        assert breaker.allow("sim")

    def test_classes_are_independent(self, clocked):
        breaker, _ = clocked
        for _ in range(3):
            breaker.record_failure("bad")
        assert not breaker.allow("bad")
        assert breaker.allow("good")


# ----------------------------------------------------------------------
# Admission queue
# ----------------------------------------------------------------------
class TestAdmissionQueue:
    def test_fifo_and_front_push(self):
        queue = AdmissionQueue(limit=4)
        assert queue.push({"job_id": "a"})
        assert queue.push({"job_id": "b"})
        assert queue.push({"job_id": "c"}, front=True)
        assert [queue.pop()["job_id"] for _ in range(3)] == ["c", "a", "b"]
        assert queue.pop() is None

    def test_full_queue_sheds_and_force_bypasses(self):
        queue = AdmissionQueue(limit=2)
        assert queue.push({"job_id": "a"})
        assert queue.push({"job_id": "b"})
        assert queue.full
        assert not queue.push({"job_id": "c"})
        assert len(queue) == 2
        # Crash-recovery requeues were already admitted once; the cap
        # must never drop them.
        assert queue.push({"job_id": "d"}, force=True)
        assert len(queue) == 3

    def test_retry_after_hint_scales_with_backlog(self):
        queue = AdmissionQueue(limit=64)
        queue.ema_service_sec = 2.0
        empty_hint = queue.retry_after_hint(workers=1)
        for i in range(9):
            queue.push({"job_id": str(i)})
        assert queue.retry_after_hint(workers=1) == 20.0
        assert queue.retry_after_hint(workers=4) == 5.0
        assert queue.retry_after_hint(workers=1) > empty_hint
        assert queue.retry_after_hint(workers=1000) >= 1.0

    def test_service_time_ema(self):
        queue = AdmissionQueue(limit=4)
        queue.observe_service_time(11.0, alpha=0.5)
        assert queue.ema_service_sec == 6.0
        queue.observe_service_time(0.0)  # ignored
        assert queue.ema_service_sec == 6.0

    def test_limit_validated(self):
        with pytest.raises(ValueError):
            AdmissionQueue(limit=0)


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
class TestRequests:
    def test_defaults_and_content_hashed_id(self):
        a = normalize_request({"kind": "chaos", "params": {"i": 1}})
        b = normalize_request({"kind": "chaos", "params": {"i": 1}})
        c = normalize_request({"kind": "chaos", "params": {"i": 2}})
        assert a["job_id"] == b["job_id"] != c["job_id"]
        assert a["class"] == "chaos"

    def test_timeout_propagates_into_spec(self):
        request = normalize_request(_req(0))
        spec = request_to_spec(request)
        assert spec.timeout_sec == 30.0
        assert spec.kind == "chaos"

    @pytest.mark.parametrize("raw", [
        "not a dict",
        {"kind": "no-such-kind"},
        {"kind": "chaos", "params": []},
        {"kind": "chaos", "timeout_sec": -1},
        {"kind": "chaos", "timeout_sec": "soon"},
    ])
    def test_bad_requests_rejected(self, raw):
        with pytest.raises(BadRequest):
            normalize_request(raw)


# ----------------------------------------------------------------------
# Locks
# ----------------------------------------------------------------------
class TestLocks:
    def test_uncontended_lock_reports_no_wait(self, tmp_path):
        with file_lock(tmp_path / "x.lock") as waited:
            assert waited is False

    def test_contended_lock_waits_and_reports_it(self, tmp_path):
        path = tmp_path / "x.lock"
        held = threading.Event()

        def _holder():
            with file_lock(path):
                held.set()
                time.sleep(0.3)

        thread = threading.Thread(target=_holder)
        thread.start()
        assert held.wait(5.0)
        with file_lock(path, timeout=5.0) as waited:
            assert waited is True
        thread.join()

    def test_lock_timeout(self, tmp_path):
        path = tmp_path / "x.lock"
        held = threading.Event()
        release = threading.Event()

        def _holder():
            with file_lock(path):
                held.set()
                release.wait(5.0)

        thread = threading.Thread(target=_holder)
        thread.start()
        assert held.wait(5.0)
        with pytest.raises(LockTimeout):
            with file_lock(path, timeout=0.1, poll_interval=0.01):
                pass
        release.set()
        thread.join()

    def test_process_lock_is_exclusive_until_released(self, tmp_path):
        first = ProcessLock(tmp_path / "serve.lock")
        second = ProcessLock(tmp_path / "serve.lock")
        assert first.acquire()
        assert not second.acquire()
        first.release()
        assert second.acquire()
        second.release()


# ----------------------------------------------------------------------
# Daemon (tick-driven)
# ----------------------------------------------------------------------
def _run_until(daemon: ServeDaemon, predicate, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        daemon.tick()
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError("daemon did not reach the expected state in time")


@pytest.fixture()
def serve_dir(tmp_path):
    return tmp_path


@pytest.fixture()
def daemon_factory(serve_dir):
    daemons = []

    def _make(**overrides):
        kwargs = dict(
            state_dir=serve_dir / "state",
            spool_dir=serve_dir / "spool",
            workers=1,
            queue_limit=8,
            poll_interval=0.01,
            drain_timeout_sec=10.0,
            fsync=False,
        )
        kwargs.update(overrides)
        daemon = ServeDaemon(ServeConfig(**kwargs))
        daemons.append(daemon)
        return daemon

    yield _make
    for daemon in daemons:
        daemon.supervisor.kill_all()
        daemon._stop_socket()
        try:
            daemon.journal.close()
        except Exception:
            pass
        daemon._lock_file.release()


class TestServeDaemon:
    def test_accepts_runs_and_drains_with_complete_manifest(
        self, daemon_factory, serve_dir
    ):
        daemon = daemon_factory(workers=2)
        for i in range(3):
            response = daemon.admit(_req(i))
            assert response["status"] == "accepted"
        _run_until(
            daemon, lambda: daemon.journal.state.counts()["completed"] == 3
        )
        manifest_path = daemon.drain()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["command"] == "serve"
        assert [j["status"] for j in manifest["jobs"]] == ["ok"] * 3
        # Every completion left a durable result artifact.
        for job in manifest["jobs"]:
            assert (serve_dir / "state" / "results"
                    / f"{job['job_id']}.json").exists()

    def test_sweep_job_submits_and_completes(
        self, daemon_factory, serve_dir
    ):
        from repro.sweep import ScenarioGrid, SweepPath

        grid = ScenarioGrid(
            paths=(
                SweepPath(
                    bandwidth_bytes_per_sec=1.25e6,
                    propagation_delay=0.02,
                    buffer_bytes=50_000.0,
                    label="serve-sweep",
                ),
            ),
            protocols=("cubic", "reno"),
            seeds=(0, 1),
            duration=1.0,
        )
        daemon = daemon_factory()
        response = daemon.admit(
            {
                "kind": "sweep",
                "params": {"grid": grid.to_params()},
                "label": "sweep:serve-test",
                "timeout_sec": 60.0,
            }
        )
        assert response["status"] == "accepted"
        _run_until(
            daemon, lambda: daemon.journal.state.counts()["completed"] == 1
        )
        result_path = (
            serve_dir / "state" / "results" / f"{response['job_id']}.json"
        )
        result, verdict = read_result(result_path)
        assert verdict == "valid"
        assert result["status"] == "ok"
        value = result["value"]
        assert value["grid_id"] == grid.grid_id
        assert value["n_scenarios"] == 4
        assert value["n_faulted"] == 0
        assert all(
            row["status"] == "ok" for row in value["scenarios"]
        )
        manifest_path = daemon.drain()
        manifest = json.loads(manifest_path.read_text())
        assert [j["status"] for j in manifest["jobs"]] == ["ok"]
        assert manifest["jobs"][0]["kind"] == "sweep"

    def test_spool_intake_retires_files_to_done(
        self, daemon_factory, serve_dir
    ):
        daemon = daemon_factory()
        spool_file = submit_to_spool(serve_dir / "spool", [_req(0), _req(1)])
        daemon.tick()
        assert not spool_file.exists()
        assert (serve_dir / "spool" / "done" / spool_file.name).exists()
        assert daemon.journal.state.counts()["total"] == 2

    def test_duplicate_submission_is_idempotent(self, daemon_factory):
        daemon = daemon_factory()
        first = daemon.admit(_req(0))
        second = daemon.admit(_req(0))
        assert first["status"] == "accepted"
        assert second["status"] == "duplicate"
        assert second["job_id"] == first["job_id"]
        assert daemon.journal.state.counts()["total"] == 1

    def test_invalid_request_is_rejected_not_fatal(self, daemon_factory):
        obs.configure(enabled=True)
        daemon = daemon_factory()
        response = daemon.admit({"kind": "no-such-kind"})
        assert response == {
            "status": "rejected",
            "reason": "invalid",
            "detail": response["detail"],
        }
        assert obs.metrics_snapshot()["counters"]["serve.invalid"] == 1

    def test_load_shed_under_full_queue(self, daemon_factory):
        obs.configure(enabled=True)
        daemon = daemon_factory(queue_limit=1)
        accepted = daemon.admit(_req(0))
        shed = daemon.admit(_req(1))
        assert accepted["status"] == "accepted"
        assert shed["status"] == "rejected"
        assert shed["reason"] == "overloaded"
        assert shed["retry_after_sec"] >= 1.0
        counters = obs.metrics_snapshot()["counters"]
        assert counters["serve.shed"] == 1
        # The shed job is journaled as rejected — visible in status, and
        # resubmittable once load drops.
        assert daemon.journal.state.jobs[shed["job_id"]].status == "rejected"

    def test_shed_job_resubmitted_after_backoff_is_accepted(
        self, daemon_factory, serve_dir
    ):
        daemon = daemon_factory(queue_limit=1)
        first = daemon.admit(_req(0))
        shed = daemon.admit(_req(1))
        assert shed["status"] == "rejected"
        assert shed["reason"] == "overloaded"
        # The client honours retry_after_sec; by then the queue drained.
        _run_until(
            daemon,
            lambda: daemon.journal.state.jobs[first["job_id"]].status
            == "completed",
        )
        retry = daemon.admit(_req(1))
        assert retry["status"] == "accepted"
        assert retry["job_id"] == shed["job_id"]
        _run_until(
            daemon,
            lambda: daemon.journal.state.jobs[retry["job_id"]].status
            == "completed",
        )
        assert daemon.journal.state.jobs[retry["job_id"]].completions == 1
        # Replay agrees: the resubmission record survives a restart.
        daemon.journal.flush()
        state = JobJournal.read_state(serve_dir / "state" / "journal")
        assert state.counts()["completed"] == 2

    def test_circuit_open_rejection_is_resubmittable(self, daemon_factory):
        daemon = daemon_factory(
            breaker_threshold=1, breaker_cooldown_sec=0.5
        )
        bad = daemon.admit(_req(0, fault="crash", job_class="bad"))
        _run_until(
            daemon,
            lambda: daemon.journal.state.jobs[bad["job_id"]].terminal,
        )
        # New work of the open class is short-circuited at the door,
        # with a retry-after hint that is actually honourable.
        rejected = daemon.admit(_req(1, job_class="bad"))
        assert rejected["status"] == "rejected"
        assert rejected["reason"] == "circuit_open"
        assert rejected["retry_after_sec"] > 0
        time.sleep(0.6)  # cooldown elapses; breaker half-opens
        retry = daemon.admit(_req(1, job_class="bad"))
        assert retry["status"] == "accepted"
        _run_until(
            daemon,
            lambda: daemon.journal.state.jobs[retry["job_id"]].terminal,
        )
        job = daemon.journal.state.jobs[retry["job_id"]]
        assert job.status == "completed"
        assert job.completions == 1

    def test_moved_tombstone_is_not_resubmittable(self, daemon_factory):
        """A fleet ``moved:<shard>`` tombstone must dedupe — the job
        belongs to another shard now, and re-running it here would
        break fleet-wide exactly-once — except for the fleet manager's
        ``requeue``-flagged recovery resubmission."""
        daemon = daemon_factory()
        request = normalize_request(_req(0))
        daemon.journal.submitted(request)
        daemon.journal.moved(request["job_id"], "shard-1")

        response = daemon.admit(_req(0))
        assert response["status"] == "duplicate"
        assert response["state"] == "moved"
        assert response["moved_to"] == "shard-1"
        job = daemon.journal.state.jobs[request["job_id"]]
        assert job.status == "rejected"  # tombstone untouched

        revived = daemon.admit({**_req(0), "requeue": True})
        assert revived["status"] == "accepted"
        job = daemon.journal.state.jobs[request["job_id"]]
        assert job.status == "pending"
        assert "requeue" not in job.request  # flag is transport-only

    def test_admitted_job_is_deferred_not_rejected_by_open_breaker(
        self, daemon_factory
    ):
        daemon = daemon_factory(
            breaker_threshold=1, breaker_cooldown_sec=0.3
        )
        bad = daemon.admit(_req(0, fault="crash", job_class="flaky"))
        good = daemon.admit(_req(1, job_class="flaky"))
        assert good["status"] == "accepted"
        _run_until(
            daemon,
            lambda: daemon.journal.state.jobs[bad["job_id"]].terminal,
        )
        # The crash opened the breaker; the already-accepted job is
        # parked (still pending in the journal), never rejected.
        _run_until(daemon, lambda: len(daemon._deferred) == 1)
        assert daemon.journal.state.jobs[good["job_id"]].status == "pending"
        # After cooldown it becomes the half-open probe and completes,
        # closing the breaker.
        _run_until(
            daemon,
            lambda: daemon.journal.state.jobs[good["job_id"]].terminal,
        )
        job = daemon.journal.state.jobs[good["job_id"]]
        assert job.status == "completed"
        assert daemon.breaker.state("flaky") == CLOSED

    def test_draining_daemon_rejects_new_work(self, daemon_factory):
        daemon = daemon_factory()
        daemon.draining = True
        response = daemon.admit(_req(0))
        assert response["status"] == "rejected"
        assert response["reason"] == "draining"
        assert response["retry_after_sec"] > 0

    def test_drain_waits_for_inflight_lease(self, daemon_factory, serve_dir):
        daemon = daemon_factory()
        daemon.admit(_req(0, fault="sleep", sleep_sec=0.4))
        _run_until(daemon, lambda: daemon.supervisor.busy == 1)
        manifest_path = daemon.drain()
        manifest = json.loads(manifest_path.read_text())
        assert [j["status"] for j in manifest["jobs"]] == ["ok"]
        state = JobJournal.read_state(serve_dir / "state" / "journal")
        assert state.counts()["completed"] == 1

    def test_drain_timeout_requeues_not_loses(self, daemon_factory, serve_dir):
        daemon = daemon_factory(drain_timeout_sec=0.2)
        daemon.admit(_req(0, fault="sleep", sleep_sec=30.0))
        _run_until(daemon, lambda: daemon.supervisor.busy == 1)
        manifest_path = daemon.drain()
        manifest = json.loads(manifest_path.read_text())
        (row,) = manifest["jobs"]
        assert row["status"] == "failed"
        assert row["error"]["error_type"] == "Drained"
        # ...but the journal still owns the job: the next daemon resumes it.
        state = JobJournal.read_state(serve_dir / "state" / "journal")
        assert state.counts()["pending"] == 1

    def test_sigkill_recovery_requeues_and_completes(
        self, daemon_factory, serve_dir
    ):
        first = daemon_factory()
        for i in range(3):
            first.admit(_req(i))
        # Lease one so recovery sees both pending and orphaned-leased jobs.
        first._dispatch()
        assert first.supervisor.busy == 1
        # Simulate SIGKILL: no drain, no requeue, just gone.
        first.supervisor.kill_all()
        first.journal.close()
        first._lock_file.release()

        second = daemon_factory()
        assert second.recovered == 3
        _run_until(
            second, lambda: second.journal.state.counts()["completed"] == 3
        )
        for job in second.journal.state.jobs.values():
            assert job.completions == 1  # exactly-once accounting

    def test_crash_looping_job_is_bounded(self, daemon_factory):
        obs.configure(enabled=True)
        daemon = daemon_factory(max_leases=2)
        daemon.supervisor.backoff_base = 0.02
        response = daemon.admit(_req(0, fault="kill"))
        job_id = response["job_id"]
        _run_until(
            daemon,
            lambda: daemon.journal.state.jobs[job_id].terminal,
        )
        job = daemon.journal.state.jobs[job_id]
        assert job.status == "failed"
        assert job.error["error_type"] == "WorkerCrashLoop"
        assert job.attempts == 2
        counters = obs.metrics_snapshot()["counters"]
        assert counters["supervisor.restarts"] == 2

    def test_breaker_short_circuits_failing_class(self, daemon_factory):
        daemon = daemon_factory(breaker_threshold=1)
        first = daemon.admit(_req(0, fault="crash", job_class="bad"))
        _run_until(
            daemon,
            lambda: daemon.journal.state.jobs[first["job_id"]].terminal,
        )
        assert daemon.journal.state.jobs[first["job_id"]].status == "failed"
        second = daemon.admit(_req(1, fault="crash", job_class="bad"))
        _run_until(
            daemon,
            lambda: daemon.journal.state.jobs[second["job_id"]].terminal,
        )
        job = daemon.journal.state.jobs[second["job_id"]]
        assert job.status == "rejected"
        assert job.reason == "circuit_open"
        assert job.attempts == 0  # never leased

    def test_second_daemon_on_same_state_dir_refused(
        self, daemon_factory, serve_dir
    ):
        daemon_factory()
        with pytest.raises(RuntimeError, match="serve.lock"):
            ServeDaemon(ServeConfig(
                state_dir=serve_dir / "state",
                spool_dir=serve_dir / "spool",
                fsync=False,
            ))

    def test_socket_admission_roundtrip(self, daemon_factory, serve_dir):
        daemon = daemon_factory(socket_path=serve_dir / "serve.sock")
        daemon._start_socket()
        responses = submit_via_socket(
            serve_dir / "serve.sock", [_req(0), _req(0), {"bad": True}]
        )
        assert responses[0]["status"] == "accepted"
        assert responses[1]["status"] == "duplicate"
        assert responses[2]["status"] == "rejected"
        _run_until(
            daemon, lambda: daemon.journal.state.counts()["completed"] == 1
        )

    def test_status_reads_journal_without_touching_it(
        self, daemon_factory, serve_dir
    ):
        daemon = daemon_factory()
        daemon.admit(_req(0))
        _run_until(
            daemon, lambda: daemon.journal.state.counts()["completed"] == 1
        )
        status = serve_status(serve_dir / "state")
        assert status["counts"]["completed"] == 1
        assert status["jobs"][0]["completions"] == 1
        assert "completed" in format_status(status)


# ----------------------------------------------------------------------
# Durable result plane (PR 10): fetch, read-repair, disk-full shedding
# ----------------------------------------------------------------------
class TestDurableResultPlane:
    def test_fetch_verb_returns_verified_result(self, daemon_factory):
        daemon = daemon_factory()
        response = daemon.admit(_req(0))
        _run_until(
            daemon, lambda: daemon.journal.state.counts()["completed"] == 1
        )
        fetched = daemon._handle_verb(
            {"verb": "fetch", "job_id": response["job_id"]}
        )
        assert fetched["status"] == "ok"
        assert fetched["state"] == "completed"
        assert fetched["result"]["status"] == "ok"
        assert fetched["result"]["job_id"] == response["job_id"]

    def test_fetch_unknown_job_is_not_found(self, daemon_factory):
        daemon = daemon_factory()
        fetched = daemon._handle_verb({"verb": "fetch", "job_id": "f" * 64})
        assert fetched == {"status": "not_found", "job_id": "f" * 64}

    def test_fetch_pending_job_gives_retry_hint(self, daemon_factory):
        daemon = daemon_factory()
        response = daemon.admit(_req(0, fault="sleep", sleep_sec=5.0))
        fetched = daemon._handle_verb(
            {"verb": "fetch", "job_id": response["job_id"]}
        )
        assert fetched["status"] == "pending"
        assert fetched["state"] in ("pending", "leased")
        assert fetched["retry_after_sec"] > 0
        daemon.supervisor.kill_all()

    def test_fetch_corrupt_result_read_repairs_exactly_once(
        self, daemon_factory, serve_dir
    ):
        daemon = daemon_factory()
        response = daemon.admit(_req(0))
        job_id = response["job_id"]
        _run_until(
            daemon, lambda: daemon.journal.state.counts()["completed"] == 1
        )
        result_path = serve_dir / "state" / "results" / f"{job_id}.json"
        blob = bytearray(result_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        result_path.write_bytes(bytes(blob))

        # The corrupt artifact is never served: quarantined, completion
        # voided, job re-executed.
        fetched = daemon._handle_verb({"verb": "fetch", "job_id": job_id})
        assert fetched["status"] == "pending"
        assert fetched["state"] == "repairing"
        assert list(
            (serve_dir / "state" / "results" / "quarantine").glob("*")
        )
        assert daemon.journal.state.jobs[job_id].status == "pending"
        _run_until(
            daemon,
            lambda: daemon.journal.state.jobs[job_id].status == "completed",
        )
        fetched = daemon._handle_verb({"verb": "fetch", "job_id": job_id})
        assert fetched["status"] == "ok"
        assert fetched["result"]["status"] == "ok"
        # Exactly-once ledger: the voided completion does not count.
        assert daemon.journal.state.jobs[job_id].completions == 1
        daemon.journal.flush()
        replayed = JobJournal.read_state(serve_dir / "state" / "journal")
        assert replayed.jobs[job_id].completions == 1

    def test_wal_write_fault_sheds_disk_full_then_self_clears(
        self, daemon_factory
    ):
        from repro.guard.chaos import _ENOSPCFile

        daemon = daemon_factory(disk_probe_interval_sec=0.01)
        daemon.journal._fh = _ENOSPCFile(daemon.journal._fh)
        response = daemon.admit(_req(0))
        assert response["status"] == "rejected"
        assert response["reason"] == "disk_full"
        assert response["retry_after_sec"] > 0
        assert daemon._shedding == "disk_full"
        health = daemon._handle_verb({"verb": "health"})
        assert health["health"]["shedding"] == "disk_full"
        # Probe gated: still shedding inside the interval.
        daemon._disk_probe_at = time.monotonic() + 30.0
        assert daemon.admit(_req(0))["reason"] == "disk_full"
        # The "disk" heals — the probe's reopen() drops the poisoned
        # handle — and admission must recover without a restart.
        daemon._disk_probe_at = 0.0
        retry = daemon.admit(_req(0))
        assert retry["status"] == "accepted"
        assert daemon._shedding is None
        _run_until(
            daemon, lambda: daemon.journal.state.counts()["completed"] == 1
        )
        assert daemon.journal.state.jobs[retry["job_id"]].completions == 1

    def test_recovery_repairs_completion_from_artifact(
        self, daemon_factory, serve_dir
    ):
        # The SIGKILL-between-result-write-and-journal-append window:
        # WAL says leased, the checksummed artifact says done.  Recovery
        # must journal the completion from the artifact, not re-run.
        request = normalize_request(_req(0))
        job_id = request["job_id"]
        journal = JobJournal(serve_dir / "state" / "journal", fsync=False)
        journal.submitted(request)
        journal.leased(job_id, 1, pid=999999)
        journal.close()
        _write_result(
            serve_dir / "state" / "results" / f"{job_id}.json",
            {"status": "ok", "job_id": job_id, "value": {"ok": True},
             "cache_hit": False, "duration_sec": 0.125},
        )
        daemon = daemon_factory()
        assert daemon.recovered == 0  # repaired, not requeued
        job = daemon.journal.state.jobs[job_id]
        assert job.status == "completed"
        assert job.completions == 1
        assert job.attempts == 1
        assert job.duration_sec == 0.125
        fetched = daemon._handle_verb({"verb": "fetch", "job_id": job_id})
        assert fetched["status"] == "ok"

    def test_recovery_reverifies_suspect_completion(
        self, daemon_factory, serve_dir
    ):
        # A job named by a corrupt journal record is only believed
        # completed if its artifact's checksum holds; here it does not,
        # so the completion is voided and the job re-runs.
        request = normalize_request(_req(0))
        job_id = request["job_id"]
        journal = JobJournal(serve_dir / "state" / "journal", fsync=False)
        journal.submitted(request)
        journal.leased(job_id, 1)
        journal.completed(request["job_id"], duration_sec=0.5)
        # A second, corrupt record naming the same job makes it suspect.
        journal.close()
        segment = serve_dir / "state" / "journal" / JobJournal.ACTIVE
        with open(segment, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(
                {"v": 2, "type": "leased", "job_id": job_id, "lease": 2}
            ) + "\n")
        result_path = serve_dir / "state" / "results" / f"{job_id}.json"
        _write_result(result_path, {"status": "ok", "job_id": job_id})
        blob = bytearray(result_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        result_path.write_bytes(bytes(blob))

        daemon = daemon_factory()
        assert job_id in daemon.journal.state.suspect_jobs
        _run_until(
            daemon,
            lambda: daemon.journal.state.jobs[job_id].status == "completed",
        )
        assert daemon.journal.state.jobs[job_id].completions == 1
        fetched = daemon._handle_verb({"verb": "fetch", "job_id": job_id})
        assert fetched["status"] == "ok"
        assert fetched["result"]["status"] == "ok"

    def test_fetch_over_socket_and_resilient_wait(
        self, daemon_factory, serve_dir
    ):
        from repro.serve.client import fetch_result
        from repro.serve.transport import ResilientClient

        daemon = daemon_factory(socket_path=serve_dir / "serve.sock")
        daemon._start_socket()
        response = daemon.admit(_req(0, fault="sleep", sleep_sec=0.2))
        job_id = response["job_id"]
        stop = threading.Event()

        def pump():
            while not stop.is_set():
                daemon.tick()
                if daemon.journal.state.counts()["completed"] >= 1:
                    return
                time.sleep(0.02)

        pumper = threading.Thread(target=pump)
        pumper.start()
        try:
            client = ResilientClient(
                serve_dir / "serve.sock", deadline_sec=20.0
            )
            fetched = client.fetch(job_id, wait=True)
        finally:
            stop.set()
            pumper.join()
        assert fetched["status"] == "ok"
        assert fetched["result"]["status"] == "ok"
        # The one-shot helper agrees now that the job settled.
        assert fetch_result(serve_dir / "serve.sock", job_id)["status"] == "ok"


# ----------------------------------------------------------------------
# Live observability wiring (PR 7)
# ----------------------------------------------------------------------
class TestServeLiveObs:
    def test_daemon_self_enables_telemetry(self, daemon_factory):
        daemon_factory()
        assert obs.enabled()

    def test_live_obs_false_leaves_obs_alone(self, daemon_factory):
        obs.reset()
        daemon_factory(live_obs=False)
        assert not obs.enabled()

    def test_stats_verb_over_socket(self, daemon_factory, serve_dir):
        daemon = daemon_factory(socket_path=serve_dir / "serve.sock")
        daemon._start_socket()
        daemon.admit(_req(0))
        _run_until(
            daemon, lambda: daemon.journal.state.counts()["completed"] == 1
        )
        response = query_daemon(serve_dir / "serve.sock", "stats")
        assert response["status"] == "ok"
        stats = response["stats"]
        service = stats["service"]
        assert service["queue_depth"] == 0
        assert service["workers"] == 1
        assert service["counts"]["completed"] == 1
        assert service["journal"]["records"] >= 3  # submit+lease+complete
        assert service["journal"]["lag_sec"] is not None
        assert "drill" in service["breakers"]
        metrics = stats["metrics"]
        assert metrics["counters"]["serve.completed"] == 1.0
        assert "serve.latency_sec.drill" in metrics["histograms"]

    def test_health_verb_and_unknown_verb(self, daemon_factory, serve_dir):
        daemon = daemon_factory(socket_path=serve_dir / "serve.sock")
        daemon._start_socket()
        health = query_daemon(serve_dir / "serve.sock", "health")
        assert health["status"] == "ok"
        assert health["health"]["draining"] is False
        assert health["health"]["pid"] > 0
        bad = query_daemon(serve_dir / "serve.sock", "reboot")
        assert bad["status"] == "rejected"
        assert bad["reason"] == "invalid"

    def test_per_class_latency_histograms(self, daemon_factory):
        daemon = daemon_factory(workers=2)
        daemon.admit(_req(0, job_class="drill"))
        daemon.admit(_req(1, job_class="Weird-Class"))
        _run_until(
            daemon, lambda: daemon.journal.state.counts()["completed"] == 2
        )
        registry = obs.metrics()
        assert registry.log_histogram("serve.latency_sec.drill").count == 1
        # Class names are sanitised into metric-name-safe labels.
        assert (
            registry.log_histogram("serve.latency_sec.weird_class").count
            == 1
        )

    def test_serve_status_live_section(self, daemon_factory, serve_dir):
        daemon = daemon_factory()
        daemon.admit(_req(0))
        _run_until(
            daemon, lambda: daemon.journal.state.counts()["completed"] == 1
        )
        daemon.flusher.flush_now()
        snapshot = read_live_snapshot(serve_dir / "state")
        assert snapshot is not None
        assert snapshot["age_sec"] < 60.0
        status = serve_status(serve_dir / "state")
        live = status["live"]
        assert live["queue_depth"] == 0
        assert live["draining"] is False
        assert live["in_flight"] == {}
        assert "live: queue_depth=0" in format_status(status)

    def test_status_without_snapshot_has_no_live_section(
        self, daemon_factory, serve_dir
    ):
        daemon = daemon_factory()
        daemon.admit(_req(0))
        _run_until(
            daemon, lambda: daemon.journal.state.counts()["completed"] == 1
        )
        status = serve_status(serve_dir / "state")
        assert "live" not in status
        assert "live:" not in format_status(status)

    def test_flusher_publishes_prometheus_and_json(
        self, daemon_factory, serve_dir
    ):
        daemon = daemon_factory()
        daemon.admit(_req(0))
        _run_until(
            daemon, lambda: daemon.journal.state.counts()["completed"] == 1
        )
        daemon.flusher.flush_now()
        obs_dir = serve_dir / "state" / "obs"
        snapshot = json.loads((obs_dir / "metrics.json").read_text())
        assert snapshot["service"]["counts"]["completed"] == 1
        prom = (obs_dir / "metrics.prom").read_text()
        assert "repro_serve_completed 1" in prom
        assert 'repro_serve_latency_sec_drill_bucket{le="+Inf"} 1' in prom

    def test_flight_dump_on_lease_timeout(self, daemon_factory, serve_dir):
        daemon = daemon_factory()
        request = _req(0, fault="hang", hang_sec=30.0)
        request["timeout_sec"] = 1.0
        daemon.admit(request)
        _run_until(
            daemon, lambda: daemon.journal.state.counts()["failed"] == 1
        )
        dumps = sorted((serve_dir / "state" / "obs").glob("flight-*.json"))
        assert dumps, "expected a flight dump after the SIGKILLed lease"
        payload = json.loads(dumps[-1].read_text())
        assert payload["reason"] == "lease_killed"
        assert payload["context"]["job_class"] == "drill"
        assert isinstance(payload["events"], list)
        assert payload["metrics"]["counters"]["serve.failed"] == 1.0

    def test_slo_tracking_wired_into_daemon(self, daemon_factory):
        daemon = daemon_factory(
            slos=(SLO("drill", latency_objective_sec=0.000001),)
        )
        daemon.admit(_req(0))
        _run_until(
            daemon, lambda: daemon.journal.state.counts()["completed"] == 1
        )
        # The job completed but blew its (absurd) latency objective.
        status = daemon.slo_tracker.status()["drill"]
        assert status["total"] == 1
        assert status["bad"] == 1
        payload = daemon._stats_payload()
        assert payload["slo"]["drill"]["bad"] == 1
