"""Tests for the trace data model."""

import math

import numpy as np
import pytest

from repro.simulation.packet import Packet
from repro.trace.records import PacketRecord, Trace, TraceRecorder


def _records(n=5, spacing=0.1, delay=0.05):
    return [
        PacketRecord(
            uid=i, seq=i, size=1500, sent_at=i * spacing,
            delivered_at=i * spacing + delay,
        )
        for i in range(n)
    ]


class TestPacketRecord:
    def test_lost_when_nan(self):
        record = PacketRecord(uid=0, seq=0, size=1500, sent_at=1.0)
        assert record.lost
        assert math.isnan(record.delay)

    def test_delay(self):
        record = PacketRecord(
            uid=0, seq=0, size=1500, sent_at=1.0, delivered_at=1.07
        )
        assert not record.lost
        assert record.delay == pytest.approx(0.07)


class TestTrace:
    def test_records_sorted_by_send_time(self):
        shuffled = list(reversed(_records()))
        trace = Trace("f", shuffled, duration=1.0)
        assert list(trace.seqs) == [0, 1, 2, 3, 4]

    def test_loss_rate(self):
        records = _records(4)
        records[1].delivered_at = math.nan
        trace = Trace("f", records, duration=1.0)
        assert trace.loss_rate == pytest.approx(0.25)
        assert trace.packets_delivered == 3

    def test_delivered_delays_excludes_losses(self):
        records = _records(4)
        records[0].delivered_at = math.nan
        trace = Trace("f", records, duration=1.0)
        assert len(trace.delivered_delays()) == 3
        assert np.all(trace.delivered_delays() == pytest.approx(0.05))

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            Trace("f", _records(), duration=0.0)

    def test_subtrace_rebases_time(self):
        trace = Trace("f", _records(10), duration=1.0)
        sub = trace.subtrace(0.3, 0.7)
        assert len(sub) == 4  # packets sent at 0.3, 0.4, 0.5, 0.6
        assert sub.sent_at.min() == pytest.approx(0.0)
        assert sub.duration == pytest.approx(0.4)

    def test_subtrace_invalid_window(self):
        trace = Trace("f", _records(), duration=1.0)
        with pytest.raises(ValueError):
            trace.subtrace(0.5, 0.5)

    def test_summary_convenience(self):
        trace = Trace("f", _records(), duration=1.0, protocol="cubic")
        summary = trace.summary()
        assert summary.protocol == "cubic"
        assert summary.packets_sent == 5

    def test_empty_trace(self):
        trace = Trace("f", [], duration=1.0)
        assert trace.loss_rate == 0.0
        assert len(trace.delivered_delays()) == 0


class TestTraceRecorder:
    def test_send_then_delivery_matched_by_uid(self):
        recorder = TraceRecorder("f", protocol="cubic")
        packet = Packet(flow_id="f", seq=0)
        packet.sent_at = 1.0
        recorder.record_send(packet)
        packet.delivered_at = 1.05
        recorder.record_delivery(packet)
        trace = recorder.finish(duration=2.0)
        assert trace.records[0].delay == pytest.approx(0.05)

    def test_unmatched_delivery_ignored(self):
        recorder = TraceRecorder("f")
        stranger = Packet(flow_id="f", seq=9)
        stranger.delivered_at = 1.0
        recorder.record_delivery(stranger)  # no send recorded: no crash
        assert len(recorder.finish(duration=1.0)) == 0

    def test_duplicate_send_rejected(self):
        recorder = TraceRecorder("f")
        packet = Packet(flow_id="f", seq=0)
        packet.sent_at = 0.0
        recorder.record_send(packet)
        with pytest.raises(ValueError):
            recorder.record_send(packet)

    def test_undelivered_packets_are_lost(self):
        recorder = TraceRecorder("f")
        packet = Packet(flow_id="f", seq=0)
        packet.sent_at = 0.0
        recorder.record_send(packet)
        trace = recorder.finish(duration=1.0)
        assert trace.records[0].lost

    def test_retransmissions_tracked_separately(self):
        recorder = TraceRecorder("f")
        first = Packet(flow_id="f", seq=0)
        first.sent_at = 0.0
        recorder.record_send(first)
        again = Packet(flow_id="f", seq=0, is_retransmit=True)
        again.sent_at = 1.0
        recorder.record_send(again)
        again.delivered_at = 1.05
        recorder.record_delivery(again)
        trace = recorder.finish(duration=2.0)
        assert len(trace) == 2
        assert trace.records[0].lost
        assert trace.records[1].is_retransmit
        assert not trace.records[1].lost
