"""Tests for Parameter, Module and Dense (including gradient checks)."""

import numpy as np
import pytest

from repro.ml.layers import Dense, Module, Parameter


def numeric_gradient(f, array, eps=1e-6):
    grad = np.zeros_like(array)
    flat = array.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        up = f()
        flat[i] = old - eps
        down = f()
        flat[i] = old
        gflat[i] = (up - down) / (2 * eps)
    return grad


class TestParameter:
    def test_zero_grad(self):
        p = Parameter("w", np.ones((2, 2)))
        p.grad += 5.0
        p.zero_grad()
        assert (p.grad == 0).all()


class TestModuleRegistry:
    def test_collects_nested_parameters(self):
        class Inner(Module):
            def __init__(self):
                self.w = Parameter("inner.w", np.zeros(3))

        class Outer(Module):
            def __init__(self):
                self.a = Parameter("a", np.zeros(2))
                self.inner = Inner()
                self.stack = [Inner(), Inner()]

        outer = Outer()
        names = [p.name for p in outer.parameters()]
        assert names.count("inner.w") == 3
        assert "a" in names
        assert outer.num_parameters() == 2 + 3 * 3

    def test_state_dict_roundtrip(self):
        rng = np.random.default_rng(0)
        dense = Dense(3, 2, rng, name="d")
        state = dense.state_dict()
        dense.W.value[:] = 0.0
        dense.load_state_dict(state)
        assert np.allclose(dense.W.value, state["d.W"])

    def test_state_dict_shape_mismatch_rejected(self):
        rng = np.random.default_rng(0)
        dense = Dense(3, 2, rng, name="d")
        bad = {k: np.zeros(99) for k in dense.state_dict()}
        with pytest.raises(ValueError):
            dense.load_state_dict(bad)

    def test_duplicate_names_rejected(self):
        class Dupe(Module):
            def __init__(self):
                self.a = Parameter("same", np.zeros(1))
                self.b = Parameter("same", np.zeros(1))

        with pytest.raises(ValueError):
            Dupe().state_dict()


class TestDense:
    @pytest.mark.parametrize("activation", [None, "tanh", "relu", "sigmoid"])
    def test_gradients_match_numeric(self, activation):
        rng = np.random.default_rng(1)
        dense = Dense(4, 3, rng, activation=activation)
        x = rng.normal(size=(5, 4))
        target = rng.normal(size=(5, 3))

        def loss():
            out = dense.forward(x)
            return float(((out - target) ** 2).sum())

        dense.zero_grad()
        out = dense.forward(x)
        grad_out = 2 * (out - target)
        grad_x = dense.backward(grad_out)

        numeric_w = numeric_gradient(loss, dense.W.value)
        assert np.allclose(dense.W.grad, numeric_w, atol=1e-4)
        numeric_b = numeric_gradient(loss, dense.b.value)
        assert np.allclose(dense.b.grad, numeric_b, atol=1e-4)
        numeric_x = numeric_gradient(loss, x)
        assert np.allclose(grad_x, numeric_x, atol=1e-4)

    def test_3d_input_supported(self):
        rng = np.random.default_rng(2)
        dense = Dense(4, 2, rng)
        x = rng.normal(size=(3, 7, 4))
        out = dense.forward(x)
        assert out.shape == (3, 7, 2)
        grad = dense.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError):
            Dense(2, 2, np.random.default_rng(0), activation="gelu")

    def test_backward_before_forward_rejected(self):
        dense = Dense(2, 2, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            dense.backward(np.zeros((1, 2)))
