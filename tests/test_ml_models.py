"""Tests for the sequence models, scaler and logistic regression."""

import numpy as np
import pytest

from repro.ml.logistic import LogisticRegression
from repro.ml.model import (
    BernoulliSequenceModel,
    GaussianSequenceModel,
    _pad_batch,
)
from repro.ml.scalers import StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, size=(200, 4))
        scaled = StandardScaler().fit_transform(x)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_not_divided_by_zero(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        scaled = StandardScaler().fit_transform(x)
        assert np.isfinite(scaled).all()

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(x)
        assert np.allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_column_helpers(self):
        x = np.column_stack([np.arange(10.0), 10 * np.arange(10.0)])
        scaler = StandardScaler().fit(x)
        col = scaler.transform_column(x[:, 1], 1)
        assert np.allclose(
            scaler.inverse_transform_column(col, 1), x[:, 1]
        )

    def test_use_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_3d_fit(self):
        x = np.random.default_rng(2).normal(size=(4, 5, 3))
        scaled = StandardScaler().fit_transform(x)
        assert scaled.shape == x.shape


class TestPadBatch:
    def test_padding_and_mask(self):
        xs = [np.ones((3, 2)), np.ones((5, 2))]
        ys = [np.ones(3), np.ones(5)]
        x, y, mask = _pad_batch(xs, ys, None)
        assert x.shape == (2, 5, 2)
        assert mask[0].tolist() == [True] * 3 + [False] * 2
        assert mask[1].all()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            _pad_batch([np.ones((3, 2))], [np.ones(4)], None)


class TestGaussianSequenceModel:
    def test_learns_a_simple_mapping(self):
        rng = np.random.default_rng(3)
        sequences = [rng.normal(size=(30, 2)) for _ in range(10)]
        targets = [2.0 * s[:, 0] - s[:, 1] for s in sequences]
        model = GaussianSequenceModel(2, hidden_dim=12, num_layers=1, seed=0)
        log = model.fit(sequences, targets, epochs=40, lr=1e-2, seed=1)
        assert log.improved()
        mu, _ = model.forward(sequences[0][None])
        residual = np.abs(mu[0] - targets[0]).mean()
        assert residual < 0.5

    def test_sigma_head_tracks_noise_level(self):
        rng = np.random.default_rng(4)
        sequences = [rng.normal(size=(40, 1)) for _ in range(10)]
        noise = 0.5
        targets = [
            s[:, 0] + rng.normal(0, noise, size=40) for s in sequences
        ]
        model = GaussianSequenceModel(1, hidden_dim=8, num_layers=1, seed=0)
        model.fit(sequences, targets, epochs=60, lr=1e-2, seed=2)
        _, log_sigma = model.forward(sequences[0][None])
        learned_sigma = float(np.exp(log_sigma).mean())
        assert learned_sigma == pytest.approx(noise, rel=0.5)

    def test_masked_positions_ignored(self):
        rng = np.random.default_rng(5)
        sequences = [rng.normal(size=(20, 1)) for _ in range(6)]
        targets = [s[:, 0].copy() for s in sequences]
        masks = []
        for t in targets:
            mask = np.ones(20, dtype=bool)
            mask[::4] = False
            t[~mask] = 1e9  # poison masked positions
            masks.append(mask)
        model = GaussianSequenceModel(1, hidden_dim=8, num_layers=1, seed=0)
        log = model.fit(sequences, targets, masks, epochs=20, lr=1e-2)
        assert np.isfinite(log.final_loss)

    def test_step_matches_forward(self):
        rng = np.random.default_rng(6)
        model = GaussianSequenceModel(2, hidden_dim=6, num_layers=2, seed=3)
        x = rng.normal(size=(1, 5, 2))
        mu_seq, ls_seq = model.forward(x)
        states = None
        for t in range(5):
            mu, sigma, states = model.step(x[:, t], states)
            assert mu[0] == pytest.approx(mu_seq[0, t], abs=1e-12)
            assert sigma[0] == pytest.approx(
                np.exp(ls_seq[0, t]), abs=1e-12
            )

    def test_mismatched_inputs_rejected(self):
        model = GaussianSequenceModel(2, hidden_dim=4)
        with pytest.raises(ValueError):
            model.fit([np.zeros((5, 2))], [np.zeros(5), np.zeros(5)])


class TestBernoulliSequenceModel:
    def test_learns_threshold_rule(self):
        rng = np.random.default_rng(7)
        sequences = [rng.normal(size=(50, 1)) for _ in range(10)]
        labels = [(s[:, 0] > 0.5).astype(int) for s in sequences]
        model = BernoulliSequenceModel(1, hidden_dim=8, num_layers=1, seed=0)
        model.fit(sequences, labels, epochs=40, lr=1e-2, seed=1)
        probs = model.predict_proba(sequences[0])
        predictions = (probs > 0.5).astype(int)
        accuracy = (predictions == labels[0]).mean()
        assert accuracy > 0.85


class TestLogisticRegression:
    def test_separable_problem(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(400, 2))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        model = LogisticRegression(epochs=500, lr=0.5).fit(x, y)
        assert model.score(x, y) > 0.95

    def test_probabilities_calibrated_on_base_rate(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=(2000, 2))
        y = (rng.random(2000) < 0.05).astype(int)  # features carry no info
        model = LogisticRegression(epochs=300).fit(x, y)
        assert model.predict_proba(x).mean() == pytest.approx(0.05, abs=0.02)

    def test_input_validation(self):
        model = LogisticRegression()
        with pytest.raises(ValueError):
            model.fit(np.zeros(10), np.zeros(10))
        with pytest.raises(RuntimeError):
            LogisticRegression().predict_proba(np.zeros((2, 2)))
