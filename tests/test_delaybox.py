"""Tests for delay, jitter and reorder boxes."""

import numpy as np
import pytest

from repro.simulation.delaybox import DelayBox, JitterBox, ReorderBox, Sink
from repro.simulation.engine import Simulator
from repro.simulation.packet import Packet


def _packet(seq=0):
    p = Packet(flow_id="f", seq=seq)
    p.sent_at = 0.0
    return p


class TestDelayBox:
    def test_fixed_delay(self):
        sim = Simulator()
        arrivals = []
        sink = Sink(on_packet=lambda p: arrivals.append(sim.now))
        box = DelayBox(sim, 0.05, sink)
        sim.schedule(0.0, box.accept, _packet())
        sim.run(until=1.0)
        assert arrivals == pytest.approx([0.05])

    def test_preserves_order(self):
        sim = Simulator()
        order = []
        sink = Sink(on_packet=lambda p: order.append(p.seq))
        box = DelayBox(sim, 0.05, sink)
        for i in range(5):
            sim.schedule(i * 0.001, box.accept, _packet(seq=i))
        sim.run(until=1.0)
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            DelayBox(Simulator(), -0.1, Sink())


class TestJitterBox:
    def test_zero_jitter_is_passthrough(self):
        sim = Simulator()
        arrivals = []
        sink = Sink(on_packet=lambda p: arrivals.append(sim.now))
        box = JitterBox(sim, sink, jitter_std=0.0)
        sim.schedule(0.5, box.accept, _packet())
        sim.run(until=1.0)
        assert arrivals == pytest.approx([0.5])

    def test_jitter_delays_are_nonnegative(self):
        sim = Simulator()
        arrivals = []
        sink = Sink(on_packet=lambda p: arrivals.append(sim.now))
        box = JitterBox(
            sim, sink, jitter_std=0.01, rng=np.random.default_rng(0)
        )
        for i in range(50):
            sim.schedule(1.0, box.accept, _packet(seq=i))
        sim.run(until=5.0)
        assert all(t >= 1.0 for t in arrivals)
        assert len(set(arrivals)) > 1  # actually jittering


class TestReorderBox:
    def test_no_reordering_at_probability_zero(self):
        sim = Simulator()
        order = []
        sink = Sink(on_packet=lambda p: order.append(p.seq))
        box = ReorderBox(sim, sink, reorder_prob=0.0, detour_delay=0.1)
        for i in range(10):
            sim.schedule(i * 0.001, box.accept, _packet(seq=i))
        sim.run(until=1.0)
        assert order == list(range(10))
        assert box.detoured_packets == 0

    def test_detours_cause_overtaking(self):
        sim = Simulator()
        order = []
        sink = Sink(on_packet=lambda p: order.append(p.seq))
        box = ReorderBox(
            sim,
            sink,
            reorder_prob=0.3,
            detour_delay=0.05,
            rng=np.random.default_rng(2),
        )
        for i in range(100):
            sim.schedule(i * 0.002, box.accept, _packet(seq=i))
        sim.run(until=2.0)
        assert box.detoured_packets > 0
        assert order != sorted(order)
        assert sorted(order) == list(range(100))  # nothing lost

    def test_detour_rate_matches_probability(self):
        sim = Simulator()
        sink = Sink()
        box = ReorderBox(
            sim,
            sink,
            reorder_prob=0.2,
            detour_delay=0.01,
            rng=np.random.default_rng(3),
        )
        n = 2000
        for i in range(n):
            sim.schedule(0.0, box.accept, _packet(seq=i))
        sim.run(until=1.0)
        assert box.detoured_packets / n == pytest.approx(0.2, abs=0.03)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            ReorderBox(Simulator(), Sink(), reorder_prob=1.5, detour_delay=0.1)


class TestSink:
    def test_counts_packets_and_bytes(self):
        sink = Sink()
        for i in range(3):
            sink.accept(Packet(flow_id="f", seq=i, size=1000))
        assert sink.packets_received == 3
        assert sink.bytes_received == 3000

    def test_keep_packets_flag(self):
        sink = Sink()
        sink.keep_packets = True
        packet = Packet(flow_id="f", seq=0)
        sink.accept(packet)
        assert sink.received == [packet]
