"""Batch budget enforcement and checkpoint/resume semantics."""

import pytest

from repro import obs
from repro.guard.chaos import chaos_worker, make_chaos_job
from repro.runtime.batch import run_batch
from repro.runtime.executor import BatchExecutor, ExecutorConfig
from repro.runtime.jobs import make_simulate_job
from repro.runtime.manifest import RunManifest
from repro.trace.io import save_trace


@pytest.fixture(scope="module")
def batch_env(tmp_path_factory):
    """Three small saved traces plus a shared cache/manifest area."""
    from repro.datasets.pantheon import generate_run

    root = tmp_path_factory.mktemp("resume")
    data_dir = root / "data"
    data_dir.mkdir()
    for i in range(3):
        run = generate_run(seed=20 + i, protocol="cubic", duration=1.5)
        save_trace(run.trace, data_dir / f"t{i}.jsonl")
    return {
        "traces": sorted(data_dir.glob("*.jsonl")),
        "cache_dir": root / "cache",
        "manifest_dir": root / "manifests",
    }


def _batch(env, paths=None, **kwargs):
    kwargs.setdefault("config", ExecutorConfig(workers=1))
    return run_batch(
        paths if paths is not None else env["traces"],
        protocols=["cubic"],
        duration=1.5,
        seed=0,
        cache_dir=env["cache_dir"],
        manifest_dir=env["manifest_dir"],
        **kwargs,
    )


class TestBudget:
    def test_config_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="budget_sec"):
            ExecutorConfig(budget_sec=0)

    def test_serial_budget_leaves_complete_manifest(self, batch_env):
        obs.configure(enabled=True)
        results, manifest, manifest_path = _batch(
            batch_env,
            config=ExecutorConfig(workers=1, budget_sec=1e-4),
        )
        assert manifest_path is not None
        # Every job is accounted for, nothing hangs or vanishes.
        assert len(results) == 3
        assert all(r.status in ("ok", "failed") for r in results)
        exhausted = [
            r for r in results
            if r.error and r.error.error_type == "BudgetExhausted"
        ]
        # A 0.1 ms budget cannot cover three fits.
        assert exhausted
        assert all(r.attempts == 0 for r in exhausted)
        counters = obs.metrics_snapshot()["counters"]
        assert counters["executor.budget_exhausted"] == len(exhausted)

    def test_pool_budget_vs_job_timeout_disambiguation(self):
        # No per-job timeout: a hung worker can only be the budget's
        # fault, so it must resolve to BudgetExhausted, not TimeoutError.
        specs = [
            make_chaos_job(None),
            make_chaos_job("hang", hang_sec=30.0),
        ]
        executor = BatchExecutor(
            ExecutorConfig(workers=2, budget_sec=2.0, max_attempts=1)
        )
        results = executor.run(specs, chaos_worker)
        by_label = {r.spec.label: r for r in results}
        assert by_label["chaos:normal"].status == "ok"
        hung = by_label["chaos:hang"]
        assert hung.status == "failed"
        assert hung.error.error_type == "BudgetExhausted"


class TestResume:
    def test_resume_skips_ok_jobs_and_matches_uninterrupted(self, batch_env):
        obs.configure(enabled=True)
        # "Interrupted" run: only the first two traces got done.
        _, m1, m1_path = _batch(batch_env, paths=batch_env["traces"][:2])
        assert m1.counts == {"total": 2, "ok": 2, "failed": 0}
        executed_before = obs.metrics_snapshot()["counters"].get(
            "executor.jobs_ok", 0
        )

        results, m2, _ = _batch(batch_env, resume_from=m1_path)
        assert m2.resumed_from == m1.run_id
        assert [r.status for r in results] == ["ok", "ok", "ok"]

        resumed = [r for r in results if r.resumed]
        executed = [r for r in results if not r.resumed]
        assert len(resumed) == 2 and len(executed) == 1
        # Carried-over results have no recomputed value; the executed
        # one went through the worker and carries real summaries.
        assert all(r.value is None for r in resumed)
        assert "summaries" in executed[0].value
        counters = obs.metrics_snapshot()["counters"]
        assert counters["batch.resumed_jobs"] == 2
        # Only the one incomplete job touched the executor.
        assert counters["executor.jobs_ok"] - executed_before == 1

        # The resumed manifest is equivalent to an uninterrupted run.
        _, full, _ = _batch(batch_env)
        key = lambda m: [(j["job_id"], j["status"]) for j in m.jobs]
        assert key(m2) == key(full)
        assert [j["resumed"] for j in m2.jobs] == [True, True, False]

    def test_resume_report_mentions_carryover(self, batch_env):
        _, m1, m1_path = _batch(batch_env, paths=batch_env["traces"][:1])
        _, m2, _ = _batch(batch_env, resume_from=m1_path)
        assert "carried over from run" in m2.format_report()
        assert m1.run_id in m2.format_report()

    def test_resumed_manifest_roundtrips(self, batch_env, tmp_path):
        _, m1, m1_path = _batch(batch_env, paths=batch_env["traces"][:1])
        _, m2, _ = _batch(batch_env, resume_from=m1_path)
        path = m2.write(tmp_path)
        loaded = RunManifest.load(path)
        assert loaded.resumed_from == m1.run_id
        assert loaded.jobs == m2.jobs

    def test_failed_jobs_rerun_on_resume(self, batch_env, tmp_path):
        # A manifest where one job failed: resume must re-execute it.
        _, m1, _ = _batch(batch_env)
        m1.jobs[1]["status"] = "failed"
        m1.jobs[1]["error"] = {"error_type": "TimeoutError", "message": "x"}
        doctored = m1.write(tmp_path)
        results, m2, _ = _batch(batch_env, resume_from=doctored)
        assert [r.resumed for r in results] == [True, False, True]
        assert all(r.status == "ok" for r in results)

    def test_resume_from_missing_manifest_raises(self, batch_env, tmp_path):
        with pytest.raises(FileNotFoundError):
            _batch(batch_env, resume_from=tmp_path / "nope.json")

    def test_resume_from_wrong_version_raises(self, batch_env, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"manifest_version": 99}')
        with pytest.raises(ValueError, match="manifest version"):
            _batch(batch_env, resume_from=bad)


class TestJobIdentity:
    def test_repair_policy_is_part_of_job_identity(self, batch_env):
        path = batch_env["traces"][0]
        strict = make_simulate_job(path, protocols=["cubic"], duration=1.5,
                                   seed=0, repair_policy="strict")
        repair = make_simulate_job(path, protocols=["cubic"], duration=1.5,
                                   seed=0, repair_policy="repair")
        assert strict.job_id != repair.job_id

    def test_cache_dir_is_not_part_of_job_identity(self, batch_env):
        path = batch_env["traces"][0]
        a = make_simulate_job(path, protocols=["cubic"], duration=1.5,
                              seed=0, cache_dir="/tmp/a")
        b = make_simulate_job(path, protocols=["cubic"], duration=1.5,
                              seed=0, cache_dir="/tmp/b")
        assert a.job_id == b.job_id

    def test_resumed_flag_in_describe(self, batch_env):
        _, m1, m1_path = _batch(batch_env, paths=batch_env["traces"][:1])
        results, _, _ = _batch(batch_env, resume_from=m1_path)
        described = results[0].describe()
        assert described["resumed"] is True
