"""Tests for path construction and the flow runner."""

import numpy as np
import pytest

from repro.simulation import units
from repro.simulation.topology import (
    CellularBandwidth,
    ConstantBandwidth,
    FlowCT,
    OnOffCT,
    PathConfig,
    PoissonCT,
    ReplayCT,
    ScheduledBandwidth,
    run_flow,
)


RATE = units.mbps_to_bytes_per_sec(10.0)


def test_path_config_validation():
    with pytest.raises(ValueError):
        PathConfig(
            bandwidth=ConstantBandwidth(RATE),
            propagation_delay=-0.1,
            buffer_bytes=1000,
        )
    with pytest.raises(ValueError):
        PathConfig(
            bandwidth=ConstantBandwidth(RATE),
            propagation_delay=0.01,
            buffer_bytes=0,
        )


def test_min_rtt_includes_both_directions():
    config = PathConfig(
        bandwidth=ConstantBandwidth(RATE),
        propagation_delay=0.03,
        buffer_bytes=10_000,
        ack_delay=0.02,
    )
    assert config.min_rtt == pytest.approx(0.05)
    symmetric = PathConfig(
        bandwidth=ConstantBandwidth(RATE),
        propagation_delay=0.03,
        buffer_bytes=10_000,
    )
    assert symmetric.min_rtt == pytest.approx(0.06)


def test_bandwidth_specs_build():
    assert ConstantBandwidth(RATE).build(10.0, 0).rate_at(3.0) == RATE
    cellular = CellularBandwidth(RATE).build(10.0, 1)
    assert cellular.rate_at(5.0) > 0
    scheduled = ScheduledBandwidth((0.0, 5.0), (RATE, RATE / 2)).build(10.0, 0)
    assert scheduled.rate_at(6.0) == RATE / 2


def test_run_flow_produces_complete_trace(clean_config):
    result = run_flow(clean_config, "cubic", duration=5.0, seed=1)
    trace = result.trace
    assert len(trace) > 100
    assert trace.duration == 5.0
    assert trace.protocol == "cubic"
    # All sends happened within the window.
    assert trace.sent_at.max() <= 5.0
    # Deliveries may spill slightly past, but delays stay physical.
    delays = trace.delivered_delays()
    assert delays.min() >= clean_config.propagation_delay


def test_run_flow_records_queue_and_sender_stats(simple_config):
    result = run_flow(simple_config, "cubic", duration=5.0, seed=2)
    assert result.queue_peak_bytes > 0
    assert result.sender_stats["packets_sent"] == len(result.trace)


def test_cross_traffic_competes_for_bandwidth(clean_config):
    quiet = run_flow(clean_config, "cubic", duration=8.0, seed=3)
    busy_config = PathConfig(
        bandwidth=clean_config.bandwidth,
        propagation_delay=clean_config.propagation_delay,
        buffer_bytes=clean_config.buffer_bytes,
        cross_traffic=(PoissonCT(rate_bytes_per_sec=0.5 * RATE),),
    )
    busy = run_flow(busy_config, "cubic", duration=8.0, seed=3)
    assert (
        busy.trace.summary().mean_rate_mbps
        < quiet.trace.summary().mean_rate_mbps
    )
    assert busy.cross_traffic_bytes > 0


def test_flow_ct_is_closed_loop(clean_config):
    config = PathConfig(
        bandwidth=clean_config.bandwidth,
        propagation_delay=clean_config.propagation_delay,
        buffer_bytes=clean_config.buffer_bytes,
        cross_traffic=(FlowCT(protocol="cubic", start=0.0, stop=4.0),),
    )
    result = run_flow(config, "cubic", duration=8.0, seed=4)
    from repro.trace.features import binned_rate_series

    _, rates = binned_rate_series(result.trace, bin_width=1.0)
    # While the CT flow competes (0-4s), the main flow gets roughly half;
    # afterwards it recovers towards full capacity.
    assert rates[2] < rates[7]


def test_replay_ct_spec(clean_config):
    config = PathConfig(
        bandwidth=clean_config.bandwidth,
        propagation_delay=clean_config.propagation_delay,
        buffer_bytes=clean_config.buffer_bytes,
        cross_traffic=(
            ReplayCT(
                bin_edges=(0.0, 2.0, 4.0),
                rates_bytes_per_sec=(0.5 * RATE, 0.0),
            ),
        ),
    )
    result = run_flow(config, "cubic", duration=6.0, seed=5)
    assert result.cross_traffic_bytes == pytest.approx(RATE, rel=0.02)


def test_path_seed_pins_path_but_not_workload():
    config = PathConfig(
        bandwidth=CellularBandwidth(RATE),
        propagation_delay=0.02,
        buffer_bytes=100_000,
        cross_traffic=(PoissonCT(rate_bytes_per_sec=0.3 * RATE),),
    )
    a = run_flow(config, "cubic", duration=3.0, seed=1, path_seed=42)
    b = run_flow(config, "cubic", duration=3.0, seed=2, path_seed=42)
    # Different workload seeds -> different traces...
    assert not np.array_equal(a.trace.delivered_at, b.trace.delivered_at)
    # ...but the identical bandwidth realisation (checked indirectly: the
    # same path seed with the same workload seed is fully reproducible).
    c = run_flow(config, "cubic", duration=3.0, seed=2, path_seed=42)
    assert np.allclose(
        b.trace.delivered_at, c.trace.delivered_at, equal_nan=True
    )


def test_warmup_delays_flow_start(clean_config):
    result = run_flow(clean_config, "cubic", duration=5.0, seed=6, warmup=2.0)
    assert result.trace.sent_at.min() >= 2.0
