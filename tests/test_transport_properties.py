"""Property-based tests on the transport and estimation layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cross_traffic import CrossTrafficEstimate
from repro.core.static_params import estimate_bandwidth
from repro.discovery.sax import positive_delta_breakpoints
from repro.protocols.base import Receiver
from repro.simulation.crosstraffic import RateReplaySource
from repro.simulation.delaybox import Sink
from repro.simulation.engine import Simulator
from repro.simulation.packet import Packet
from repro.trace.records import PacketRecord, Trace


class _AckCollector:
    def __init__(self):
        self.acks = []

    def accept(self, packet):
        self.acks.append(packet.ack)


@given(
    arrival_order=st.permutations(list(range(12))),
)
@settings(max_examples=50)
def test_cumulative_ack_reaches_total_regardless_of_order(arrival_order):
    """Whatever order packets arrive in, once all have arrived the
    cumulative ACK is exactly one past the highest sequence."""
    sim = Simulator()
    tap = _AckCollector()
    receiver = Receiver(sim, "f", tap, cumulative=True)
    for seq in arrival_order:
        p = Packet(flow_id="f", seq=seq)
        p.sent_at = 0.0
        receiver.accept(p)
    assert tap.acks[-1] == 12
    # The cumulative ACK never decreases.
    assert all(b >= a for a, b in zip(tap.acks, tap.acks[1:]))


@given(
    arrival_order=st.permutations(list(range(10))),
)
@settings(max_examples=50)
def test_media_ack_tracks_highest_seen(arrival_order):
    sim = Simulator()
    tap = _AckCollector()
    receiver = Receiver(sim, "f", tap, cumulative=False)
    highest = -1
    for seq in arrival_order:
        p = Packet(flow_id="f", seq=seq)
        p.sent_at = 0.0
        receiver.accept(p)
        highest = max(highest, seq)
        assert tap.acks[-1] == highest + 1


@given(
    rate=st.floats(min_value=10_000.0, max_value=5e6),
    gap_factor=st.floats(min_value=1.0, max_value=3.0),
)
@settings(max_examples=25, deadline=None)
def test_bandwidth_estimator_never_exceeds_delivery_physics(rate, gap_factor):
    """For a synthetic trace delivered at a constant rate, the estimate
    equals that rate; stretching the gaps can only lower it."""
    n = 300
    spacing = 1500.0 / rate * gap_factor
    records = [
        PacketRecord(
            uid=i, seq=i, size=1500,
            sent_at=i * spacing,
            delivered_at=i * spacing + 0.01,
        )
        for i in range(n)
    ]
    trace = Trace("f", records, duration=n * spacing + 1)
    estimate = estimate_bandwidth(trace)
    assert estimate <= rate / gap_factor * 1.05 + 1500  # physics bound


@given(
    rates=st.lists(
        st.floats(min_value=0.0, max_value=2e6), min_size=1, max_size=20
    ),
    bin_width=st.floats(min_value=0.1, max_value=2.0),
)
@settings(max_examples=30, deadline=None)
def test_ct_replay_volume_matches_estimate(rates, bin_width):
    """The replay source reproduces the estimated volume to within one
    packet."""
    edges = np.arange(0.0, (len(rates) + 0.5) * bin_width, bin_width)[
        : len(rates) + 1
    ]
    if len(edges) != len(rates) + 1:
        return
    estimate = CrossTrafficEstimate(
        bin_edges=tuple(edges), rates_bytes_per_sec=tuple(rates)
    )
    sim = Simulator()
    sink = Sink()
    RateReplaySource(sim, sink, edges, rates)
    sim.run(until=float(edges[-1]) + 1.0)
    assert abs(sink.bytes_received - estimate.total_bytes()) <= 1500.0


@given(
    deltas=st.lists(
        st.floats(min_value=-0.1, max_value=0.5, allow_nan=False),
        min_size=10,
        max_size=300,
    ),
    alphabet=st.integers(min_value=3, max_value=8),
)
@settings(max_examples=50)
def test_positive_breakpoints_are_sorted(deltas, alphabet):
    breakpoints = positive_delta_breakpoints(
        np.asarray(deltas), alphabet_size=alphabet
    )
    assert len(breakpoints) == alphabet - 2
    assert (np.diff(breakpoints) >= -1e-12).all()


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_flow_runs_are_reproducible_for_any_seed(seed):
    """Determinism is a hard invariant across the whole stack."""
    from repro.simulation import units
    from repro.simulation.topology import (
        CellularBandwidth,
        PathConfig,
        PoissonCT,
        run_flow,
    )

    config = PathConfig(
        bandwidth=CellularBandwidth(units.mbps_to_bytes_per_sec(5.0)),
        propagation_delay=0.02,
        buffer_bytes=120_000,
        reorder_prob=0.01,
        cross_traffic=(
            PoissonCT(rate_bytes_per_sec=units.mbps_to_bytes_per_sec(1.0)),
        ),
    )
    a = run_flow(config, "cubic", duration=2.0, seed=seed)
    b = run_flow(config, "cubic", duration=2.0, seed=seed)
    assert len(a.trace) == len(b.trace)
    assert np.allclose(
        a.trace.delivered_at, b.trace.delivered_at, equal_nan=True
    )
