"""Tests for ``repro obs summarize`` and its aggregation helpers."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.summarize import (
    format_event_tally,
    format_span_table,
    load_events,
    span_stats,
    summarize_path,
)


def _span(name, wall, status="ok", trace_id="t1"):
    return {
        "v": 1, "type": "span", "name": name, "trace_id": trace_id,
        "span_id": "s", "parent_id": None, "ts": 0.0,
        "wall_sec": wall, "cpu_sec": wall, "status": status,
    }


def _event(name, trace_id="t1"):
    return {
        "v": 1, "type": "event", "name": name, "trace_id": trace_id,
        "span_id": None, "ts": 0.0, "level": "info", "logger": "repro.test",
        "fields": {},
    }


@pytest.fixture()
def event_log(tmp_path):
    events = [
        _span("executor.job", 0.2),
        _span("executor.job", 0.4),
        _span("fit.static_params", 0.05),
        _span("fit.static_params", 0.01, status="error"),
        _event("executor.retry"),
        _event("executor.retry"),
        _event("train.epoch"),
    ]
    path = tmp_path / "events.jsonl"
    path.write_text("".join(json.dumps(e) + "\n" for e in events))
    return path


class TestLoadAndAggregate:
    def test_load_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            json.dumps(_span("a.b", 0.1)) + "\n"
            + "{ not json\n\n"
            + json.dumps(_span("a.b", 0.2)) + "\n"
        )
        assert len(load_events(path)) == 2

    def test_span_stats(self, event_log):
        rows = span_stats(load_events(event_log))
        by_stage = {r["stage"]: r for r in rows}
        job = by_stage["executor.job"]
        assert job["count"] == 2
        assert job["errors"] == 0
        assert job["total_sec"] == pytest.approx(0.6)
        assert job["mean_sec"] == pytest.approx(0.3)
        assert job["max_sec"] == pytest.approx(0.4)
        fit = by_stage["fit.static_params"]
        assert fit["errors"] == 1
        # Sorted by total time, descending.
        assert rows[0]["stage"] == "executor.job"

    def test_span_table_renders(self, event_log):
        table = format_span_table(load_events(event_log))
        lines = table.splitlines()
        assert lines[0].split() == [
            "stage", "count", "errors", "total_s",
            "mean_ms", "p50_ms", "p95_ms", "max_ms",
        ]
        assert any("executor.job" in line for line in lines)

    def test_event_tally(self, event_log):
        tally = format_event_tally(load_events(event_log))
        lines = tally.splitlines()
        # Most frequent first.
        assert "executor.retry" in lines[2]
        assert "train.epoch" in lines[3]

    def test_no_spans_message(self):
        assert format_span_table([_event("x")]) == "no spans recorded"


class TestSummarizePath:
    def test_event_log_view(self, event_log):
        out = summarize_path(event_log)
        assert "7 events, 1 trace(s)" in out
        assert "executor.job" in out
        assert "executor.retry" in out

    def test_metrics_snapshot_view(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("cache.hits").inc(3)
        reg.histogram("executor.job_sec").observe(0.2)
        path = reg.write_json(tmp_path / "metrics.json")
        out = summarize_path(path)
        assert "metrics snapshot" in out
        assert "cache.hits" in out
        assert "executor.job_sec" in out

    def test_manifest_view(self, tmp_path):
        manifest = {
            "manifest_version": 1,
            "run_id": "run-1",
            "command": "batch",
            "workers": 2,
            "wall_time_sec": 1.5,
            "jobs": [
                {"label": "simulate:a.npz", "job_id": "aa" * 16,
                 "status": "ok", "attempts": 1, "duration_sec": 0.3,
                 "cache_hit": True},
                {"label": "simulate:b.npz", "job_id": "bb" * 16,
                 "status": "failed", "attempts": 2, "duration_sec": 0.1},
            ],
            "metrics": {"counters": {"cache.hits": 1.0}},
        }
        path = tmp_path / "manifest-run-1.json"
        path.write_text(json.dumps(manifest))
        out = summarize_path(path)
        assert "run run-1 (batch, 2 worker(s), 1.50s wall)" in out
        assert "simulate:a.npz" in out
        assert "hit" in out
        assert "cache.hits" in out

    def test_unrecognized_raises(self, tmp_path):
        path = tmp_path / "junk.txt"
        path.write_text("hello\nworld\n")
        with pytest.raises(ValueError):
            summarize_path(path)


class TestCli:
    def test_cli_summarize_event_log(self, event_log, capsys):
        assert main(["obs", "summarize", str(event_log)]) == 0
        out = capsys.readouterr().out
        assert "executor.job" in out

    def test_cli_summarize_missing_file(self, tmp_path, capsys):
        assert main(["obs", "summarize", str(tmp_path / "nope.json")]) == 2

    def test_cli_summarize_unrecognized(self, tmp_path, capsys):
        path = tmp_path / "junk.txt"
        path.write_text("hello\n")
        assert main(["obs", "summarize", str(path)]) == 2

class TestMergeAndMultiPath:
    def _write_registry(self, tmp_path, name, values, hits):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("cache.hits").inc(hits)
        for v in values:
            reg.log_histogram("serve.latency_sec.drill").observe(v)
        return reg.write_json(tmp_path / name)

    def test_merged_totals_equal_single_file_sums(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.summarize import merge_metrics_files

        values = [0.01, 0.02, 0.3, 1.2, 0.07, 0.5]
        a = self._write_registry(tmp_path, "a.json", values[:3], hits=2)
        b = self._write_registry(tmp_path, "b.json", values[3:], hits=5)
        merged = merge_metrics_files([a, b])
        # Equal to one registry that saw the whole stream.
        whole = MetricsRegistry()
        whole.counter("cache.hits").inc(7)
        for v in values:
            whole.log_histogram("serve.latency_sec.drill").observe(v)
        expected = whole.snapshot()
        assert merged["counters"] == expected["counters"]
        got = merged["histograms"]["serve.latency_sec.drill"]
        want = expected["histograms"]["serve.latency_sec.drill"]
        # Addition order differs between the two paths; sums agree to ulp.
        assert got.pop("sum") == pytest.approx(want.pop("sum"))
        assert got == want

    def test_merge_unwraps_live_snapshots(self, tmp_path):
        import json as _json

        from repro.obs.summarize import merge_metrics_files

        plain = self._write_registry(tmp_path, "plain.json", [0.1], hits=1)
        live = tmp_path / "live.json"
        live.write_text(
            _json.dumps(
                {
                    "v": 1,
                    "ts": 0.0,
                    "service": {"queue_depth": 0},
                    "metrics": {
                        "counters": {"cache.hits": 4.0},
                        "gauges": {},
                        "histograms": {},
                    },
                }
            )
        )
        merged = merge_metrics_files([plain, live])
        assert merged["counters"]["cache.hits"] == 5.0

    def test_summarize_paths_merges_metrics(self, tmp_path):
        from repro.obs.summarize import summarize_paths

        a = self._write_registry(tmp_path, "a.json", [0.1, 0.2], hits=1)
        b = self._write_registry(tmp_path, "b.json", [0.3], hits=2)
        out = summarize_paths([a, b])
        assert "2 file(s)" in out or "a.json" in out
        assert "cache.hits" in out
        # Merged count: 3 observations across both files.
        assert "serve.latency_sec.drill" in out

    def test_summarize_paths_single_delegates(self, event_log):
        from repro.obs.summarize import summarize_paths

        assert summarize_paths([event_log]) == summarize_path(event_log)

    def test_summarize_paths_mixed_inputs(self, tmp_path, event_log):
        from repro.obs.summarize import summarize_paths

        metrics = self._write_registry(tmp_path, "m.json", [0.1], hits=1)
        out = summarize_paths([event_log, metrics])
        assert "executor.job" in out  # span table from the event log
        assert "cache.hits" in out  # metrics section

    def test_classify_artifact(self, tmp_path, event_log):
        from repro.obs.summarize import classify_artifact

        metrics = self._write_registry(tmp_path, "m.json", [], hits=1)
        assert classify_artifact(metrics) == "metrics"
        assert classify_artifact(event_log) == "events"
        manifest = tmp_path / "manifest.json"
        manifest.write_text(json.dumps({"manifest_version": 1, "jobs": []}))
        assert classify_artifact(manifest) == "manifest"

    def test_cli_glob_expansion(self, tmp_path, capsys):
        self._write_registry(tmp_path, "shard-0.json", [0.1], hits=1)
        self._write_registry(tmp_path, "shard-1.json", [0.2], hits=2)
        assert (
            main(["obs", "summarize", str(tmp_path / "shard-*.json")]) == 0
        )
        out = capsys.readouterr().out
        assert "cache.hits" in out

    def test_cli_glob_no_match(self, tmp_path, capsys):
        assert (
            main(["obs", "summarize", str(tmp_path / "missing-*.json")]) == 2
        )
