"""Tests for the NetEm-like emulator built from learnt parameters."""

import numpy as np
import pytest

from repro.simulation import units
from repro.simulation.emulator import (
    EmulatorConfig,
    NetworkEmulator,
    RandomLossBox,
)
from repro.simulation.delaybox import Sink
from repro.simulation.packet import Packet

RATE = units.mbps_to_bytes_per_sec(10.0)


def _config(**overrides):
    base = dict(
        bandwidth_bytes_per_sec=RATE,
        propagation_delay=0.025,
        buffer_bytes=200_000.0,
    )
    base.update(overrides)
    return EmulatorConfig(**base)


def test_emulated_flow_sees_configured_path():
    emulator = NetworkEmulator(_config())
    result = emulator.run("cubic", duration=5.0, seed=1)
    summary = result.trace.summary()
    assert summary.mean_rate_mbps == pytest.approx(10.0, rel=0.15)
    min_delay = result.trace.delivered_delays().min()
    assert min_delay == pytest.approx(0.025 + 1500 / RATE, abs=0.002)


def test_cross_traffic_replay_reduces_goodput():
    no_ct = NetworkEmulator(_config()).run("cubic", duration=5.0, seed=2)
    edges = tuple(np.arange(0.0, 5.5, 0.5))
    rates = tuple([0.5 * RATE] * (len(edges) - 1))
    with_ct = NetworkEmulator(
        _config(ct_bin_edges=edges, ct_rates_bytes_per_sec=rates)
    ).run("cubic", duration=5.0, seed=2)
    assert (
        with_ct.trace.summary().mean_rate_mbps
        < no_ct.trace.summary().mean_rate_mbps - 1.0
    )


def test_include_cross_traffic_false_disables_replay():
    edges = tuple(np.arange(0.0, 5.5, 0.5))
    rates = tuple([0.5 * RATE] * (len(edges) - 1))
    config = _config(
        ct_bin_edges=edges,
        ct_rates_bytes_per_sec=rates,
        include_cross_traffic=False,
    )
    result = NetworkEmulator(config).run("cubic", duration=5.0, seed=3)
    assert result.cross_traffic_bytes == 0


def test_statistical_loss_rate_applied():
    config = _config(statistical_loss_rate=0.05)
    result = NetworkEmulator(config).run("cubic", duration=5.0, seed=4)
    assert result.trace.loss_rate == pytest.approx(0.05, abs=0.02)


def test_statistical_loss_supersedes_ct_replay():
    edges = (0.0, 5.0)
    config = _config(
        ct_bin_edges=edges,
        ct_rates_bytes_per_sec=(0.5 * RATE,),
        statistical_loss_rate=0.02,
    )
    path_config = config.to_path_config()
    assert path_config.cross_traffic == ()


def test_scheduled_bandwidth_override():
    config = _config(
        bandwidth_schedule=((0.0, 2.0), (RATE, RATE / 5)),
    )
    result = NetworkEmulator(config).run("cubic", duration=4.0, seed=5)
    from repro.trace.features import binned_rate_series

    _, rates = binned_rate_series(result.trace, bin_width=1.0)
    assert rates[0] > rates[3] * 2


class TestRandomLossBox:
    def test_loss_rate_matches(self):
        rng = np.random.default_rng(0)
        sink = Sink()
        box = RandomLossBox(sink, loss_rate=0.3, rng=rng)
        n = 5000
        for i in range(n):
            box.accept(Packet(flow_id="f", seq=i))
        assert box.dropped / n == pytest.approx(0.3, abs=0.02)
        assert sink.packets_received == n - box.dropped

    def test_zero_rate_passes_everything(self):
        sink = Sink()
        box = RandomLossBox(sink, 0.0, np.random.default_rng(0))
        for i in range(100):
            box.accept(Packet(flow_id="f", seq=i))
        assert sink.packets_received == 100

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            RandomLossBox(Sink(), 1.0, np.random.default_rng(0))
