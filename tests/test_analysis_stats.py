"""Tests for KS helpers, CDF utilities and the Table 1 metric."""

import numpy as np
import pytest

from repro.analysis.stats import (
    cdf_points,
    distributions_match,
    ks_statistic,
    percentile_error_table,
    summary_distribution_ks,
)
from repro.trace.metrics import TraceSummary


def _summary(rate, p95, loss):
    return TraceSummary(
        flow_id="f", protocol="x", packets_sent=100, packets_delivered=99,
        mean_rate_mbps=rate, p95_delay_ms=p95, loss_percent=loss,
        mean_delay_ms=p95 / 2,
    )


class TestKS:
    def test_identical_samples_match(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=200)
        stat, p = ks_statistic(a, a)
        assert stat == 0.0
        assert p == 1.0

    def test_shifted_distributions_detected(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, size=300)
        b = rng.normal(3, 1, size=300)
        assert not distributions_match(a, b)

    def test_same_distribution_matches(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=300)
        b = rng.normal(size=300)
        assert distributions_match(a, b)

    def test_nan_filtered(self):
        a = np.array([1.0, 2.0, np.nan, 3.0])
        b = np.array([1.0, 2.0, 3.0])
        stat, _ = ks_statistic(a, b)
        assert stat == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_statistic([], [1.0])


class TestCDF:
    def test_points(self):
        values, probs = cdf_points([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert probs == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        values, probs = cdf_points([])
        assert len(values) == 0


class TestPercentileErrorTable:
    def test_zero_for_identical(self):
        values = np.linspace(10, 300, 40)
        row = percentile_error_table(values, values, label="x")
        assert row.p50_ms == 0.0
        assert row.mean_ms == 0.0

    def test_detects_constant_shift(self):
        gt = np.linspace(100, 200, 50)
        row = percentile_error_table(gt + 30, gt)
        assert row.p25_ms == pytest.approx(30.0)
        assert row.p50_ms == pytest.approx(30.0)
        assert row.mean_ms == pytest.approx(30.0)
        assert row.mean_pct == pytest.approx(20.0, rel=0.05)

    def test_str_contains_percentages(self):
        gt = np.linspace(100, 200, 50)
        row = percentile_error_table(gt * 1.5, gt, label="Yes")
        assert "Yes" in str(row)
        assert "%" in str(row)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile_error_table([], [1.0])


class TestSummaryKS:
    def test_per_axis_results(self):
        gt = [_summary(1.0 + i / 10, 100 + i, i / 10) for i in range(10)]
        sim = [_summary(1.0 + i / 10, 100 + i, i / 10) for i in range(10)]
        results = summary_distribution_ks(gt, sim)
        assert set(results) == {
            "p95_delay_ms", "loss_percent", "mean_rate_mbps"
        }
        for stat, p in results.values():
            assert stat == 0.0
