"""Tests for the shared transport machinery (reliability, RTT, recovery)."""

import pytest

from repro.protocols.base import Receiver, Sender
from repro.simulation import units
from repro.simulation.delaybox import DelayBox
from repro.simulation.engine import Simulator
from repro.simulation.links import Bottleneck, ConstantRateProcess
from repro.simulation.packet import Packet
from repro.simulation.queues import DropTailQueue


def build_loop(
    rate_bytes=1.25e6,
    buffer_bytes=60_000,
    delay=0.02,
    sender_cls=Sender,
    **sender_kwargs,
):
    """Minimal sender -> bottleneck -> receiver -> ACK loop."""
    sim = Simulator()
    sender = sender_cls(sim, "flow", None, **sender_kwargs)
    ack_path = DelayBox(sim, delay, sender)
    receiver = Receiver(sim, "flow", ack_path)
    forward = DelayBox(sim, delay, receiver)
    queue = DropTailQueue(buffer_bytes)
    bottleneck = Bottleneck(sim, ConstantRateProcess(rate_bytes), queue, forward)
    sender.downstream = bottleneck
    return sim, sender, receiver, queue


def test_bulk_transfer_progresses():
    sim, sender, receiver, _ = build_loop()
    sender.start()
    sim.run(until=2.0)
    assert receiver.packets_received > 100
    assert sender.snd_una > 100


def test_window_limits_inflight():
    sim, sender, receiver, _ = build_loop()
    sender.max_cwnd = 5.0
    sender.cwnd = 5.0
    sender.ssthresh = 5.0
    sender.start()
    sim.run(until=0.005)  # before any ACK returns
    assert sender.packets_sent == 5


def test_rtt_estimation_converges():
    sim, sender, _, _ = build_loop(delay=0.02)
    sender.start()
    sim.run(until=1.0)
    # min RTT = 2 * 20ms prop + transmission (1.2ms @ 10Mb/s).
    assert sender.min_rtt == pytest.approx(0.0412, abs=0.002)
    assert sender.srtt is not None
    assert sender.srtt >= sender.min_rtt


def test_loss_triggers_fast_retransmit_not_timeout():
    sim, sender, receiver, queue = build_loop(buffer_bytes=15_000)
    sender.start()
    sim.run(until=3.0)
    assert queue.stats.dropped_packets > 0
    assert sender.retransmissions > 0
    assert sender.loss_events > 0
    # SACK-lite recovery should repair burst losses without RTOs.
    assert sender.timeouts == 0


def test_reliability_no_gaps_at_receiver():
    sim, sender, receiver, queue = build_loop(buffer_bytes=15_000)
    sender.start()
    sim.run(until=3.0)
    sender.shutdown()
    sim.run(until=5.0)
    assert queue.stats.dropped_packets > 0  # losses actually happened
    # Cumulative point advanced past thousands of packets => every gap
    # was repaired by retransmission.
    assert receiver.next_expected > 1000


def test_shutdown_stops_transmission():
    sim, sender, receiver, _ = build_loop()
    sender.start()
    sim.run(until=0.5)
    sender.shutdown()
    sent_at_shutdown = sender.packets_sent
    sim.run(until=2.0)
    assert sender.packets_sent == sent_at_shutdown


def test_ack_of_foreign_flow_ignored():
    sim, sender, _, _ = build_loop()
    sender.start()
    sim.run(until=0.1)
    una_before = sender.snd_una
    foreign = Packet(
        flow_id="other", seq=-1, is_ack=True, ack=10_000
    )
    sender.accept(foreign)
    assert sender.snd_una == una_before


def test_karns_rule_skips_retransmitted_samples():
    sim, sender, _, _ = build_loop()
    sender.start()
    sim.run(until=0.2)
    srtt_before = sender.srtt
    retransmit_ack = Packet(
        flow_id="flow",
        seq=-1,
        is_ack=True,
        ack=sender.snd_una,
        echo_seq=0,
        echo_sent_at=0.0,
    )
    retransmit_ack.is_retransmit = True
    sample = sender._take_rtt_sample(retransmit_ack)
    assert sample is None
    assert sender.srtt == srtt_before


def test_rto_fires_when_acks_stop():
    # Receiver that swallows everything: no ACKs at all.
    sim = Simulator()
    sender = Sender(sim, "flow", None)
    from repro.simulation.delaybox import Sink

    queue = DropTailQueue(1e6)
    bottleneck = Bottleneck(
        sim, ConstantRateProcess(1.25e6), queue, Sink()
    )
    sender.downstream = bottleneck
    sender.start()
    sim.run(until=5.0)
    assert sender.timeouts >= 1
    assert sender.cwnd == 1.0 or sender.cwnd <= sender.ssthresh


def test_rto_backoff_doubles():
    sim = Simulator()
    sender = Sender(sim, "flow", None)
    from repro.simulation.delaybox import Sink

    queue = DropTailQueue(1e6)
    sender.downstream = Bottleneck(
        sim, ConstantRateProcess(1.25e6), queue, Sink()
    )
    sender.start()
    sim.run(until=10.0)
    assert sender.timeouts >= 2
    assert sender.rto > 1.0  # backed off beyond the initial RTO


def test_media_receiver_acks_highest_seen():
    sim = Simulator()
    acks = []

    class AckTap:
        def accept(self, packet):
            acks.append(packet.ack)

    receiver = Receiver(sim, "flow", AckTap(), cumulative=False)
    for seq in (0, 1, 3, 4):  # 2 is lost
        p = Packet(flow_id="flow", seq=seq)
        p.sent_at = 0.0
        receiver.accept(p)
    assert acks == [1, 2, 4, 5]


def test_cumulative_receiver_holds_at_gap():
    sim = Simulator()
    acks = []

    class AckTap:
        def accept(self, packet):
            acks.append(packet.ack)

    receiver = Receiver(sim, "flow", AckTap(), cumulative=True)
    for seq in (0, 1, 3, 4):
        p = Packet(flow_id="flow", seq=seq)
        p.sent_at = 0.0
        receiver.accept(p)
    assert acks == [1, 2, 2, 2]
    # Hole filled -> cumulative jumps past buffered packets.
    p = Packet(flow_id="flow", seq=2)
    p.sent_at = 0.0
    receiver.accept(p)
    assert acks[-1] == 5
