"""Tests for repro.sweep — the vectorized flow-level sweep engine.

Covers the scenario grid (hashing, round-trips, chunking), the lockstep
flow core (determinism, sanity, NaN-row isolation), the cellular rate
matrix equivalence with the scalar process, the fidelity golden gate at
its pinned tolerances, the flow-vs-packet throughput ratio, and the CLI.
"""

import json

import numpy as np
import pytest

from repro import cli
from repro.simulation.links import CellularRateProcess, cellular_rate_matrix
from repro.sweep import (
    DEFAULT_TOLERANCES,
    ScenarioGrid,
    SweepPath,
    golden_grid,
    pack_fleet,
    run_fidelity,
    run_fleet,
    run_scenarios,
    split_grid,
)

MBPS = 125_000.0


def small_grid(protocols=("cubic", "reno"), seeds=(0, 1), duration=2.0):
    return ScenarioGrid(
        paths=(
            SweepPath(
                bandwidth_bytes_per_sec=10 * MBPS,
                propagation_delay=0.025,
                buffer_bytes=125_000.0,
                label="t10",
            ),
            SweepPath(
                bandwidth_bytes_per_sec=4 * MBPS,
                propagation_delay=0.04,
                buffer_bytes=40_000.0,
                label="t4",
            ),
        ),
        protocols=protocols,
        seeds=seeds,
        duration=duration,
    )


# ----------------------------------------------------------------------
# Scenario grid
# ----------------------------------------------------------------------
class TestScenarioGrid:
    def test_expand_is_the_full_cross_product(self):
        grid = small_grid()
        scenarios = grid.expand()
        assert len(scenarios) == len(grid) == 2 * 2 * 2
        labels = {s.label for s in scenarios}
        assert len(labels) == 8  # all distinct

    def test_grid_id_is_content_derived(self):
        grid = small_grid()
        assert grid.grid_id == small_grid().grid_id
        assert grid.grid_id != small_grid(seeds=(0, 2)).grid_id

    def test_scenario_ids_are_stable_and_distinct(self):
        scenarios = small_grid().expand()
        ids = [s.scenario_id for s in scenarios]
        assert len(set(ids)) == len(ids)
        assert ids == [s.scenario_id for s in small_grid().expand()]

    def test_params_round_trip(self):
        grid = small_grid()
        clone = ScenarioGrid.from_params(
            json.loads(json.dumps(grid.to_params()))
        )
        assert clone == grid
        assert clone.grid_id == grid.grid_id

    def test_unknown_protocol_is_rejected_with_available_list(self):
        with pytest.raises(ValueError, match="ledbat"):
            small_grid(protocols=("cubic", "ledbat"))

    def test_split_grid_covers_exactly_the_scenarios(self):
        grid = small_grid(seeds=tuple(range(5)))
        chunks = split_grid(grid, chunk_size=4)
        assert all(len(c) <= 4 for c in chunks)
        chunk_ids = [
            s.scenario_id for chunk in chunks for s in chunk.expand()
        ]
        assert sorted(chunk_ids) == sorted(
            s.scenario_id for s in grid.expand()
        )

    def test_from_profile_maps_iboxnet_fields(self):
        profile = {
            "bandwidth_bytes_per_sec": 2e6,
            "propagation_delay_sec": 0.03,
            "buffer_bytes": 60_000.0,
            "include_cross_traffic": True,
            "cross_traffic": {
                "bin_edges": [0.0, 1.0, 2.0],
                "rates_bytes_per_sec": [1e5, 2e5],
            },
        }
        path = SweepPath.from_profile(profile, label="learnt")
        assert path.bandwidth_bytes_per_sec == 2e6
        assert path.propagation_delay == 0.03
        assert path.ct_rates_bytes_per_sec == (1e5, 2e5)
        fleet = pack_fleet(
            ScenarioGrid(
                paths=(path,), protocols=("cubic",), seeds=(0,), duration=2.5
            ).expand()
        )
        # Replayed CT series lands on the interval grid as a step fn.
        assert fleet.cross_rate[0, 0] == 1e5
        assert fleet.cross_rate[0, 150] == 2e5
        assert fleet.cross_rate[0, -1] == 2e5


# ----------------------------------------------------------------------
# Cellular rate matrix
# ----------------------------------------------------------------------
class TestCellularRateMatrix:
    def test_rows_match_the_scalar_process(self):
        means = [1.5e6, 4e5, 2.5e6]
        seeds = [3, 11, 42]
        times, rates = cellular_rate_matrix(means, duration=5.0, seeds=seeds)
        for i, (mean, seed) in enumerate(zip(means, seeds)):
            scalar = CellularRateProcess(mean, duration=5.0, seed=seed)
            expected = np.array([scalar.rate_at(t) for t in times])
            np.testing.assert_array_equal(rates[i], expected)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            cellular_rate_matrix([1e6, 2e6], duration=5.0, seeds=[1])
        with pytest.raises(ValueError):
            cellular_rate_matrix([-1.0], duration=5.0, seeds=[1])


# ----------------------------------------------------------------------
# Flow core
# ----------------------------------------------------------------------
class TestFlowCore:
    def test_deterministic_across_runs(self):
        first = run_scenarios(small_grid().expand())
        second = run_scenarios(small_grid().expand())
        for a, b in zip(first.scenarios, second.scenarios):
            assert a.to_dict() == b.to_dict()

    def test_throughput_bounded_by_bottleneck(self):
        fleet = run_scenarios(small_grid(duration=4.0).expand())
        for s in fleet.scenarios:
            assert s.status == "ok"
            cap_mbps = (10 if s.label.startswith("t10") else 4)
            # Delivery credit leads the drain slightly (queue fill), so
            # allow a few percent above the line rate.
            assert s.mean_rate_mbps <= cap_mbps * 1.05
            assert s.mean_rate_mbps > 0.3 * cap_mbps
            assert np.isfinite(s.mean_delay_ms)
            assert s.p95_delay_ms >= s.mean_delay_ms * 0.5
            assert 0.0 <= s.loss_percent <= 100.0

    def test_delay_floor_is_the_propagation_delay(self):
        fleet = run_scenarios(small_grid(duration=3.0).expand())
        for s in fleet.scenarios:
            floor_ms = 25.0 if s.label.startswith("t10") else 40.0
            assert s.mean_delay_ms >= floor_ms

    def test_all_protocols_run(self):
        grid = small_grid(
            protocols=("cubic", "reno", "vegas", "bbr", "cbr", "rtc"),
            seeds=(0,),
        )
        fleet = run_scenarios(grid.expand())
        assert fleet.n_faulted == 0
        assert {s.protocol for s in fleet.scenarios} == {
            "cubic", "reno", "vegas", "bbr", "cbr", "rtc",
        }

    def test_nan_row_is_isolated_and_reported(self):
        scenarios = small_grid(duration=2.0).expand()
        clean = run_fleet(pack_fleet(scenarios))
        poisoned_fleet = pack_fleet(scenarios)
        poisoned_fleet.service_rate[2, :] = np.nan
        poisoned = run_fleet(poisoned_fleet)
        assert poisoned.scenarios[2].status == "faulted"
        assert poisoned.scenarios[2].fault_reason
        assert poisoned.n_faulted == 1
        for i, (a, b) in enumerate(
            zip(clean.scenarios, poisoned.scenarios)
        ):
            if i == 2:
                continue
            assert b.status == "ok"
            assert b.mean_rate_mbps == a.mean_rate_mbps
            assert b.mean_delay_ms == a.mean_delay_ms
            assert b.p95_delay_ms == a.p95_delay_ms
            assert b.loss_percent == a.loss_percent

    def test_negative_parameter_row_is_faulted(self):
        fleet = pack_fleet(small_grid(duration=1.0).expand())
        fleet.buffer_bytes[0] = -5.0
        result = run_fleet(fleet)
        assert result.scenarios[0].status == "faulted"
        assert all(s.status == "ok" for s in result.scenarios[1:])

    def test_emits_sweep_telemetry(self):
        from repro import obs

        obs.configure(enabled=True)
        run_scenarios(small_grid(duration=1.0).expand())
        snapshot = obs.metrics_snapshot()
        assert snapshot["counters"]["sweep.scenarios"] == 8
        assert "sweep.scenarios_per_sec" in snapshot["histograms"]


# ----------------------------------------------------------------------
# Fidelity golden gate (pinned tolerances; drift fails tier-1)
# ----------------------------------------------------------------------
class TestFidelityGolden:
    def test_golden_grid_passes_pinned_tolerances(self):
        report = run_fidelity(grid=golden_grid())
        assert report.tolerances == DEFAULT_TOLERANCES
        assert report.passed, report.format_report()
        # The gate is meaningful only if it measured something.
        assert len(report.comparisons) == len(golden_grid())
        assert report.worst["throughput_rel"] <= 0.15
        assert report.worst["mean_delay_rel"] <= 0.15
        assert report.worst["loss_abs"] <= 0.02

    def test_report_dict_is_json_able(self):
        grid = ScenarioGrid(
            paths=(golden_grid().paths[0],),
            protocols=("reno",),
            seeds=(1,),
            duration=3.0,
        )
        report = run_fidelity(grid=grid)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["n_scenarios"] == 1
        assert set(payload["worst"]) == set(DEFAULT_TOLERANCES)


# ----------------------------------------------------------------------
# Flow-vs-packet throughput (the reason this subsystem exists)
# ----------------------------------------------------------------------
class TestSweepSpeedup:
    def test_flow_core_is_50x_faster_than_packet_engine(self):
        from repro.bench.harness import run_case
        from repro.bench.suites import CASES

        flow = run_case(CASES["sweep.flow_1k"], quick=True, repeats=1,
                        warmup=1)
        packet = run_case(CASES["sweep.packet_ref"], quick=True, repeats=1,
                          warmup=0)
        ratio = flow.throughput_per_sec / packet.throughput_per_sec
        assert ratio >= 50.0, (
            f"flow {flow.throughput_per_sec:.0f}/s vs packet "
            f"{packet.throughput_per_sec:.1f}/s = {ratio:.1f}x"
        )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestSweepCLI:
    def test_sweep_run_writes_manifest_and_results(self, tmp_path, capsys):
        rc = cli.main([
            "sweep", "run",
            "--bandwidth-mbps", "8",
            "--delay-ms", "20",
            "--buffer-kb", "80",
            "--protocols", "cubic", "reno",
            "--seeds", "2",
            "--duration", "1.5",
            "--manifest-dir", str(tmp_path / "manifests"),
            "--output", str(tmp_path / "out.json"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 scenario(s), 0 faulted" in out
        payload = json.loads((tmp_path / "out.json").read_text())
        assert len(payload["scenarios"]) == 4
        assert all(
            row["status"] == "ok" for row in payload["scenarios"]
        )
        manifests = list((tmp_path / "manifests").glob("manifest-*.json"))
        assert len(manifests) == 1
        manifest = json.loads(manifests[0].read_text())
        assert manifest["command"] == "sweep"
        assert all(j["status"] == "ok" for j in manifest["jobs"])

    def test_sweep_run_from_grid_file(self, tmp_path, capsys):
        grid_path = tmp_path / "grid.json"
        grid = small_grid(duration=1.0)
        grid_path.write_text(json.dumps(grid.to_params()))
        rc = cli.main(["sweep", "run", "--grid", str(grid_path)])
        assert rc == 0
        assert grid.grid_id[:12] in capsys.readouterr().out

    def test_sweep_run_rejects_bad_grid_file(self, tmp_path):
        bad = tmp_path / "grid.json"
        bad.write_text("{not json")
        assert cli.main(["sweep", "run", "--grid", str(bad)]) == 2

    def test_sweep_run_rejects_unknown_protocol(self):
        rc = cli.main([
            "sweep", "run", "--protocols", "carrier-pigeon",
            "--duration", "1.0",
        ])
        assert rc == 2
