"""Tests for the repro.obs metrics registry and exporters."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.metrics import (
    DURATION_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        c = Counter("executor.retries")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("pool.workers")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3.0


class TestHistogram:
    def test_buckets_and_stats(self):
        h = Histogram("job.sec", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(56.05)
        assert h.counts == [1, 2, 1, 1]  # last is the +Inf bucket
        assert h.min == 0.05
        assert h.max == 50.0
        assert h.mean == pytest.approx(56.05 / 5)

    def test_quantile_clamped_to_observed_range(self):
        h = Histogram("x", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        assert h.quantile(0.0) == 0.5
        assert h.quantile(1.0) == 3.0
        assert 0.5 <= h.quantile(0.5) <= 3.0

    def test_quantile_empty_is_nan(self):
        assert math.isnan(Histogram("x").quantile(0.5))

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("x").quantile(1.5)

    def test_merge_accumulates(self):
        a = Histogram("x", buckets=(1.0, 2.0))
        b = Histogram("x", buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b.describe())
        assert a.count == 3
        assert a.min == 0.5
        assert a.max == 9.0
        assert a.counts == [1, 1, 1]

    def test_merge_rejects_bucket_mismatch(self):
        a = Histogram("x", buckets=(1.0,))
        b = Histogram("x", buckets=(2.0,))
        with pytest.raises(ValueError):
            a.merge(b.describe())


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        assert reg.histogram("c.d") is reg.histogram("c.d")
        assert len(reg) == 2

    def test_rejects_bad_names(self):
        reg = MetricsRegistry()
        for bad in ("Executor.retries", "1abc", "a..b", "a-b", ""):
            with pytest.raises(ValueError):
                reg.counter(bad)

    def test_snapshot_schema(self):
        reg = MetricsRegistry()
        reg.counter("cache.hits").inc(2)
        reg.gauge("pool.size").set(4)
        reg.histogram("job.sec").observe(0.3)
        snap = reg.snapshot()
        assert snap["counters"] == {"cache.hits": 2.0}
        assert snap["gauges"] == {"pool.size": 4.0}
        hist = snap["histograms"]["job.sec"]
        assert hist["count"] == 1
        assert hist["buckets"] == list(DURATION_BUCKETS)
        # Snapshot must be JSON-serialisable as-is.
        json.dumps(snap)

    def test_merge_snapshot_semantics(self):
        parent = MetricsRegistry()
        parent.counter("cache.hits").inc(1)
        parent.gauge("pool.size").set(1)
        worker = MetricsRegistry()
        worker.counter("cache.hits").inc(2)
        worker.counter("cache.misses").inc(1)
        worker.gauge("pool.size").set(7)
        worker.histogram("job.sec").observe(0.1)
        parent.merge_snapshot(worker.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["cache.hits"] == 3.0  # counters add
        assert snap["counters"]["cache.misses"] == 1.0
        assert snap["gauges"]["pool.size"] == 7.0  # gauges: last write wins
        assert snap["histograms"]["job.sec"]["count"] == 1

    def test_merge_none_is_noop(self):
        reg = MetricsRegistry()
        reg.merge_snapshot(None)
        assert len(reg) == 0

    def test_write_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        path = reg.write_json(tmp_path / "sub" / "metrics.json")
        assert json.loads(path.read_text())["counters"]["a.b"] == 1.0

    def test_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("executor.retries").inc(2)
        reg.gauge("pool.size").set(4)
        h = reg.histogram("job.sec", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = reg.to_prometheus_text()
        assert "# TYPE repro_executor_retries counter" in text
        assert "repro_executor_retries 2" in text
        assert "repro_pool_size 4" in text
        # Cumulative buckets: 1 under 0.1, 2 under 1.0, 3 under +Inf.
        assert 'repro_job_sec_bucket{le="0.1"} 1' in text
        assert 'repro_job_sec_bucket{le="1"} 2' in text
        assert 'repro_job_sec_bucket{le="+Inf"} 3' in text
        assert "repro_job_sec_count 3" in text

    def test_null_registry_is_inert(self):
        NULL_REGISTRY.counter("anything at all!").inc()
        NULL_REGISTRY.gauge("x").set(1)
        NULL_REGISTRY.histogram("y").observe(2)
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }
