"""Tests for the repro.obs metrics registry and exporters."""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.obs.metrics import (
    DURATION_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    LogHistogram,
    MetricsRegistry,
    histogram_from_snapshot,
)


class TestCounter:
    def test_increments(self):
        c = Counter("executor.retries")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("pool.workers")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3.0


class TestHistogram:
    def test_buckets_and_stats(self):
        h = Histogram("job.sec", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(56.05)
        assert h.counts == [1, 2, 1, 1]  # last is the +Inf bucket
        assert h.min == 0.05
        assert h.max == 50.0
        assert h.mean == pytest.approx(56.05 / 5)

    def test_quantile_clamped_to_observed_range(self):
        h = Histogram("x", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        assert h.quantile(0.0) == 0.5
        assert h.quantile(1.0) == 3.0
        assert 0.5 <= h.quantile(0.5) <= 3.0

    def test_quantile_empty_is_nan(self):
        assert math.isnan(Histogram("x").quantile(0.5))

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("x").quantile(1.5)

    def test_merge_accumulates(self):
        a = Histogram("x", buckets=(1.0, 2.0))
        b = Histogram("x", buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b.describe())
        assert a.count == 3
        assert a.min == 0.5
        assert a.max == 9.0
        assert a.counts == [1, 1, 1]

    def test_merge_rejects_bucket_mismatch(self):
        a = Histogram("x", buckets=(1.0,))
        b = Histogram("x", buckets=(2.0,))
        with pytest.raises(ValueError):
            a.merge(b.describe())


class TestLogHistogram:
    def test_observe_and_stats(self):
        h = LogHistogram("serve.latency_sec.drill")
        for v in (0.001, 0.01, 0.1, 1.0, 10.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(11.111)
        assert h.min == 0.001
        assert h.max == 10.0
        assert h.mean == pytest.approx(11.111 / 5)

    def test_zero_and_negative_values_bucket_separately(self):
        h = LogHistogram("x.y")
        h.observe(0.0)
        h.observe(-1.0)
        h.observe(0.5)
        assert h.zero_count == 2
        assert h.count == 3
        assert sum(h.counts.values()) == 1

    def test_quantile_relative_error_bounded(self):
        # Bucket width bounds relative quantile error by (factor - 1).
        h = LogHistogram("x.y", factor=1.1)
        values = [0.001 * (1.07 ** i) for i in range(200)]
        for v in values:
            h.observe(v)
        values.sort()
        for q in (0.5, 0.95, 0.99):
            exact = values[min(len(values) - 1, int(q * len(values)))]
            approx = h.quantile(q)
            assert abs(approx - exact) / exact < 0.15

    def test_quantile_clamped_and_empty(self):
        h = LogHistogram("x.y")
        assert math.isnan(h.quantile(0.5))
        h.observe(2.0)
        assert h.quantile(0.0) == 2.0
        assert h.quantile(1.0) == 2.0

    def test_merge_is_layout_free(self):
        # The point of log buckets: two independently created
        # histograms always merge — no bucket agreement needed.
        a = LogHistogram("x.y")
        b = LogHistogram("x.y")
        for v in (0.01, 0.02, 5.0):
            a.observe(v)
        for v in (0.5, 100.0, 0.0):
            b.observe(v)
        a.merge(b.describe())
        assert a.count == 6
        assert a.zero_count == 1
        assert a.min == 0.0
        assert a.max == 100.0
        assert a.sum == pytest.approx(105.53)

    def test_merge_totals_equal_single_stream(self):
        import random

        rng = random.Random(42)
        values = [rng.expovariate(10.0) for _ in range(600)]
        whole = LogHistogram("x.y")
        for v in values:
            whole.observe(v)
        parts = [LogHistogram("x.y") for _ in range(3)]
        for i, v in enumerate(values):
            parts[i % 3].observe(v)
        merged = LogHistogram("x.y")
        for part in parts:
            merged.merge(part.describe())
        assert merged.count == whole.count
        assert merged.sum == pytest.approx(whole.sum)
        assert merged.counts == whole.counts
        assert merged.quantile(0.95) == pytest.approx(whole.quantile(0.95))

    def test_merge_rejects_kind_and_factor_mismatch(self):
        log = LogHistogram("x.y")
        with pytest.raises(ValueError):
            log.merge(Histogram("x.y").describe())
        other = LogHistogram("x.y", factor=2.0)
        other.observe(1.0)
        with pytest.raises(ValueError):
            log.merge(other.describe())

    def test_describe_round_trips_through_json(self):
        h = LogHistogram("x.y")
        for v in (0.003, 0.4, 7.0):
            h.observe(v)
        described = json.loads(json.dumps(h.describe()))
        rebuilt = histogram_from_snapshot("x.y", described)
        assert isinstance(rebuilt, LogHistogram)
        assert rebuilt.count == 3
        assert rebuilt.counts == h.counts

    def test_histogram_from_snapshot_fixed_kind(self):
        h = Histogram("x.y", buckets=(1.0, 2.0))
        h.observe(1.5)
        rebuilt = histogram_from_snapshot("x.y", h.describe())
        assert isinstance(rebuilt, Histogram)
        assert rebuilt.counts == h.counts


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        assert reg.histogram("c.d") is reg.histogram("c.d")
        assert len(reg) == 2

    def test_rejects_bad_names(self):
        reg = MetricsRegistry()
        for bad in ("Executor.retries", "1abc", "a..b", "a-b", ""):
            with pytest.raises(ValueError):
                reg.counter(bad)

    def test_snapshot_schema(self):
        reg = MetricsRegistry()
        reg.counter("cache.hits").inc(2)
        reg.gauge("pool.size").set(4)
        reg.histogram("job.sec").observe(0.3)
        snap = reg.snapshot()
        assert snap["counters"] == {"cache.hits": 2.0}
        assert snap["gauges"] == {"pool.size": 4.0}
        hist = snap["histograms"]["job.sec"]
        assert hist["count"] == 1
        assert hist["buckets"] == list(DURATION_BUCKETS)
        # Snapshot must be JSON-serialisable as-is.
        json.dumps(snap)

    def test_merge_snapshot_semantics(self):
        parent = MetricsRegistry()
        parent.counter("cache.hits").inc(1)
        parent.gauge("pool.size").set(1)
        worker = MetricsRegistry()
        worker.counter("cache.hits").inc(2)
        worker.counter("cache.misses").inc(1)
        worker.gauge("pool.size").set(7)
        worker.histogram("job.sec").observe(0.1)
        parent.merge_snapshot(worker.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["cache.hits"] == 3.0  # counters add
        assert snap["counters"]["cache.misses"] == 1.0
        assert snap["gauges"]["pool.size"] == 7.0  # gauges: last write wins
        assert snap["histograms"]["job.sec"]["count"] == 1

    def test_merge_none_is_noop(self):
        reg = MetricsRegistry()
        reg.merge_snapshot(None)
        assert len(reg) == 0

    def test_write_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        path = reg.write_json(tmp_path / "sub" / "metrics.json")
        assert json.loads(path.read_text())["counters"]["a.b"] == 1.0

    def test_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("executor.retries").inc(2)
        reg.gauge("pool.size").set(4)
        h = reg.histogram("job.sec", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = reg.to_prometheus_text()
        assert "# TYPE repro_executor_retries counter" in text
        assert "repro_executor_retries 2" in text
        assert "repro_pool_size 4" in text
        # Cumulative buckets: 1 under 0.1, 2 under 1.0, 3 under +Inf.
        assert 'repro_job_sec_bucket{le="0.1"} 1' in text
        assert 'repro_job_sec_bucket{le="1"} 2' in text
        assert 'repro_job_sec_bucket{le="+Inf"} 3' in text
        assert "repro_job_sec_count 3" in text

    def test_prometheus_log_histogram_golden(self):
        # Exact exposition text for a log histogram: the zero bucket is
        # le="0", each sparse bucket is cumulative, +Inf closes the set.
        reg = MetricsRegistry()
        h = reg.log_histogram("job.sec", factor=10.0)
        for v in (0.0, 0.5, 5.0):
            h.observe(v)
        assert reg.to_prometheus_text() == (
            "# TYPE repro_job_sec histogram\n"
            'repro_job_sec_bucket{le="0"} 1\n'
            'repro_job_sec_bucket{le="1"} 2\n'
            'repro_job_sec_bucket{le="10"} 3\n'
            'repro_job_sec_bucket{le="+Inf"} 3\n'
            "repro_job_sec_sum 5.5\n"
            "repro_job_sec_count 3\n"
        )

    def test_prometheus_fixed_histogram_golden(self):
        reg = MetricsRegistry()
        h = reg.histogram("job.sec", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert reg.to_prometheus_text() == (
            "# TYPE repro_job_sec histogram\n"
            'repro_job_sec_bucket{le="0.1"} 1\n'
            'repro_job_sec_bucket{le="1"} 2\n'
            'repro_job_sec_bucket{le="+Inf"} 3\n'
            "repro_job_sec_sum 5.55\n"
            "repro_job_sec_count 3\n"
        )

    def test_log_histogram_accessor_kind_guard(self):
        reg = MetricsRegistry()
        reg.histogram("a.b")
        with pytest.raises(TypeError):
            reg.log_histogram("a.b")
        reg.log_histogram("c.d")
        with pytest.raises(TypeError):
            reg.histogram("c.d")

    def test_null_registry_is_inert(self):
        NULL_REGISTRY.counter("anything at all!").inc()
        NULL_REGISTRY.gauge("x").set(1)
        NULL_REGISTRY.histogram("y").observe(2)
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

class TestConcurrency:
    """Registry instruments must be safe to hammer from many threads."""

    def _hammer(self, n_threads, fn):
        barrier = threading.Barrier(n_threads)

        def run():
            barrier.wait()
            fn()

        threads = [threading.Thread(target=run) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_counter_exact_under_contention(self):
        reg = MetricsRegistry()

        def work():
            c = reg.counter("hits")
            for _ in range(10_000):
                c.inc()

        self._hammer(4, work)
        assert reg.counter("hits").value == 40_000.0

    def test_log_histogram_exact_count_under_contention(self):
        reg = MetricsRegistry()

        def work():
            h = reg.log_histogram("lat.sec")
            for i in range(5_000):
                h.observe(0.001 + (i % 10) * 0.01)

        self._hammer(4, work)
        h = reg.log_histogram("lat.sec")
        assert h.count == 20_000
        assert sum(h.counts.values()) == 20_000

    def test_get_or_create_race_returns_one_instrument(self):
        reg = MetricsRegistry()
        seen = []
        lock = threading.Lock()

        def work():
            c = reg.counter("raced")
            with lock:
                seen.append(c)

        self._hammer(8, work)
        assert len(set(id(c) for c in seen)) == 1


class TestOverhead:
    def test_disabled_path_is_cheap(self):
        # When obs is disabled every instrument call must be a no-op on
        # the NULL_REGISTRY.  Guard with a generous absolute bound so the
        # test only fails on a real regression (e.g. lock acquisition or
        # dict churn sneaking into the disabled path), not on CI noise.
        import time as _time

        from repro import obs

        obs.reset()
        assert not obs.enabled()
        registry = obs.metrics()
        assert registry is NULL_REGISTRY
        start = _time.perf_counter()
        for _ in range(100_000):
            registry.counter("x.y").inc()
            registry.log_histogram("x.z").observe(0.5)
        elapsed = _time.perf_counter() - start
        obs.reset()
        assert elapsed < 2.0, f"disabled-path overhead too high: {elapsed:.2f}s"
