"""Tests for trace invariant validation."""

import math

import pytest

from repro.trace.records import PacketRecord, Trace
from repro.trace.validate import assert_valid, validate_trace


def _record(uid=0, seq=0, size=1500, sent=0.0, delivered=0.05,
            retransmit=False):
    return PacketRecord(
        uid=uid, seq=seq, size=size, sent_at=sent,
        delivered_at=delivered, is_retransmit=retransmit,
    )


def test_sound_trace_passes():
    records = [
        _record(uid=i, seq=i, sent=i * 0.01, delivered=i * 0.01 + 0.05)
        for i in range(20)
    ]
    trace = Trace("f", records, duration=1.0)
    assert validate_trace(trace) == []
    assert_valid(trace)  # does not raise


def test_simulator_traces_are_sound(cubic_trace, cellular_run):
    assert validate_trace(cubic_trace) == []
    assert validate_trace(cellular_run.trace) == []


def test_duplicate_uid_detected():
    records = [_record(uid=1, seq=0), _record(uid=1, seq=1, sent=0.1)]
    problems = validate_trace(Trace("f", records, duration=1.0))
    assert any("uid" in p for p in problems)


def test_delivery_before_send_detected():
    records = [_record(uid=0, sent=1.0, delivered=0.5)]
    problems = validate_trace(Trace("f", records, duration=2.0))
    assert any("before" in p for p in problems)


def test_send_beyond_duration_detected():
    records = [_record(uid=0, sent=5.0, delivered=5.05)]
    problems = validate_trace(Trace("f", records, duration=1.0))
    assert any("duration" in p for p in problems)


def test_duplicate_first_transmission_seq_detected():
    records = [
        _record(uid=0, seq=3),
        _record(uid=1, seq=3, sent=0.1),
    ]
    problems = validate_trace(Trace("f", records, duration=1.0))
    assert any("sequence" in p for p in problems)


def test_retransmission_same_seq_allowed():
    records = [
        _record(uid=0, seq=3, delivered=math.nan),
        _record(uid=1, seq=3, sent=0.2, delivered=0.3, retransmit=True),
    ]
    assert validate_trace(Trace("f", records, duration=1.0)) == []


def test_implausible_delay_detected():
    records = [_record(uid=0, delivered=90.0)]
    problems = validate_trace(Trace("f", records, duration=100.0))
    assert any("implausibly" in p for p in problems)


def test_assert_valid_raises_with_details():
    records = [_record(uid=0, sent=1.0, delivered=0.5)]
    with pytest.raises(ValueError, match="invalid"):
        assert_valid(Trace("bad", records, duration=2.0))


def test_empty_trace_is_valid():
    assert validate_trace(Trace("f", [], duration=1.0)) == []


def test_nan_send_timestamp_detected():
    records = [_record(uid=0), _record(uid=1, seq=1, sent=math.nan,
                                       delivered=math.nan)]
    problems = validate_trace(Trace("f", records, duration=1.0))
    assert any("non-finite send" in p for p in problems)


def test_nonmonotonic_send_timestamps_detected():
    records = [
        _record(uid=0, seq=0, sent=0.1, delivered=0.15),
        _record(uid=1, seq=1, sent=0.5, delivered=0.55),
    ]
    trace = Trace("f", records, duration=1.0)
    # The constructor sorts, so model post-construction corruption (the
    # documented programming error the validator exists to catch).
    trace.records.reverse()
    trace._cache.clear()
    problems = validate_trace(trace)
    assert any("sorted" in p for p in problems)


def test_negative_delay_has_distinct_message():
    records = [_record(uid=0, sent=1.0, delivered=0.5)]
    problems = validate_trace(Trace("f", records, duration=2.0))
    assert any("negative delays" in p for p in problems)
    # The softer "at or before" message must not double-report.
    assert not any("at or before" in p for p in problems)


def test_nonfinite_duration_detected():
    records = [_record(uid=0)]
    problems = validate_trace(Trace("f", records, duration=math.inf))
    assert any("non-finite declared duration" in p for p in problems)


def test_nonfinite_size_detected():
    records = [_record(uid=0, size=math.nan)]
    problems = validate_trace(Trace("f", records, duration=1.0))
    assert any("non-finite packet sizes" in p for p in problems)


def test_infinite_delivery_detected_but_nan_is_loss():
    inf_rec = [_record(uid=0, delivered=math.inf)]
    problems = validate_trace(Trace("f", inf_rec, duration=1.0))
    assert any("infinite" in p for p in problems)
    lost = [_record(uid=0, delivered=math.nan)]
    assert validate_trace(Trace("f", lost, duration=1.0)) == []
