"""Tests for the repro.runtime batch subsystem."""

from __future__ import annotations

import json
import time

import pytest

from repro import obs
from repro.core import iboxnet
from repro.runtime.cache import ProfileCache
from repro.runtime.executor import BatchExecutor, ExecutorConfig
from repro.runtime.jobs import (
    JobSpec,
    content_hash,
    make_experiment_job,
    make_fit_job,
    make_simulate_job,
)
from repro.runtime.manifest import MANIFEST_VERSION, RunManifest
from repro.runtime.batch import fit_profiles, run_batch, run_jobs
from repro.trace.io import save_trace, trace_file_digest


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    """Three small saved cubic traces (plus room for corruption)."""
    from repro.datasets.pantheon import generate_run

    directory = tmp_path_factory.mktemp("traces")
    for i in range(3):
        run = generate_run(seed=40 + i, protocol="cubic", duration=3.0)
        save_trace(run.trace, directory / f"{i:02d}_cubic.npz")
    return directory


@pytest.fixture(scope="module")
def trace_paths(trace_dir):
    return sorted(trace_dir.glob("*.npz"))


# ----------------------------------------------------------------------
# Jobs: content-derived identity
# ----------------------------------------------------------------------
class TestJobs:
    def test_same_inputs_same_id(self, trace_paths):
        a = make_fit_job(trace_paths[0])
        b = make_fit_job(trace_paths[0])
        assert a.job_id == b.job_id

    def test_different_trace_different_id(self, trace_paths):
        assert (
            make_fit_job(trace_paths[0]).job_id
            != make_fit_job(trace_paths[1]).job_id
        )

    def test_fit_kwargs_change_id(self, trace_paths):
        base = make_fit_job(trace_paths[0])
        tweaked = make_fit_job(
            trace_paths[0], fit_kwargs={"bandwidth_window": 0.5}
        )
        assert base.job_id != tweaked.job_id

    def test_operational_knobs_do_not_change_id(self, trace_paths):
        base = make_fit_job(trace_paths[0])
        routed = make_fit_job(
            trace_paths[0], extra_params={"cache_dir": "/somewhere/else"}
        )
        assert base.job_id == routed.job_id

    def test_trace_bytes_change_id(self, trace_paths, tmp_path):
        copy = tmp_path / "copy.npz"
        data = trace_paths[0].read_bytes()
        copy.write_bytes(data)
        assert make_fit_job(copy).job_id == make_fit_job(trace_paths[0]).job_id
        copy.write_bytes(data + b"\0")
        assert make_fit_job(copy).job_id != make_fit_job(trace_paths[0]).job_id

    def test_simulate_id_covers_protocols(self, trace_paths):
        a = make_simulate_job(trace_paths[0], ["vegas"], 3.0, 0)
        b = make_simulate_job(trace_paths[0], ["cubic"], 3.0, 0)
        assert a.job_id != b.job_id

    def test_experiment_job_id_stable(self):
        assert (
            make_experiment_job("fig2").job_id
            == make_experiment_job("fig2").job_id
        )
        assert (
            make_experiment_job("fig2").job_id
            != make_experiment_job("fig2", scale="paper").job_id
        )

    def test_content_hash_order_insensitive(self):
        assert content_hash("k", {"a": 1, "b": 2}) == content_hash(
            "k", {"b": 2, "a": 1}
        )


# ----------------------------------------------------------------------
# Profile cache
# ----------------------------------------------------------------------
class TestProfileCache:
    def test_miss_then_hit(self, trace_paths, tmp_path):
        cache = ProfileCache(tmp_path / "cache")
        model, hit = cache.fit_cached(trace_paths[0])
        assert not hit
        again, hit = cache.fit_cached(trace_paths[0])
        assert hit
        assert again == model
        assert len(cache) == 1

    def test_key_sensitive_to_fit_kwargs(self, trace_paths, tmp_path):
        cache = ProfileCache(tmp_path / "cache")
        assert cache.key_for(trace_paths[0]) != cache.key_for(
            trace_paths[0], {"ct_bin_width": 0.25}
        )

    def test_key_uses_trace_bytes(self, trace_paths, tmp_path):
        cache = ProfileCache(tmp_path / "cache")
        copy = tmp_path / "copy.npz"
        copy.write_bytes(trace_paths[0].read_bytes())
        # Same bytes at a different path: same key (content addressing).
        assert cache.key_for(copy) == cache.key_for(trace_paths[0])

    def test_corrupt_entry_is_a_miss_and_removed(self, trace_paths, tmp_path):
        cache = ProfileCache(tmp_path / "cache")
        cache.fit_cached(trace_paths[0])
        key = cache.key_for(trace_paths[0])
        cache.path_for(key).write_text("{ not json")
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()

    def test_clear(self, trace_paths, tmp_path):
        cache = ProfileCache(tmp_path / "cache")
        cache.fit_cached(trace_paths[0])
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_stats_counters(self, trace_paths, tmp_path):
        cache = ProfileCache(tmp_path / "cache")
        cache.fit_cached(trace_paths[0])
        cache.fit_cached(trace_paths[0])
        assert cache.stats() == {"hits": 1, "misses": 1}


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------
def _echo_worker(spec: JobSpec):
    return {"echo": spec.params["n"], "cache_hit": spec.params["n"] % 2 == 0}


def _picky_worker(spec: JobSpec):
    if spec.params["n"] == 1:
        raise RuntimeError("job one always fails")
    return spec.params["n"] * 10


def _flaky_worker(spec: JobSpec):
    marker = spec.params["marker"]
    from pathlib import Path

    if not Path(marker).exists():
        Path(marker).write_text("seen")
        raise RuntimeError("first attempt fails")
    return "recovered"


def _sleepy_worker(spec: JobSpec):
    time.sleep(spec.params["sleep"])
    return "woke"


def _specs(n, **extra):
    return [
        JobSpec(kind="test", job_id=f"job-{i}", label=f"job-{i}",
                params={"n": i, **extra})
        for i in range(n)
    ]


class TestExecutor:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_results_in_order_with_cache_hits(self, workers):
        executor = BatchExecutor(ExecutorConfig(workers=workers))
        results = executor.run(_specs(4), _echo_worker)
        assert [r.value["echo"] for r in results] == [0, 1, 2, 3]
        assert [r.cache_hit for r in results] == [True, False, True, False]
        assert all(r.ok for r in results)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_failure_is_isolated(self, workers):
        executor = BatchExecutor(
            ExecutorConfig(workers=workers, max_attempts=1)
        )
        results = executor.run(_specs(3), _picky_worker)
        assert [r.ok for r in results] == [True, False, True]
        failed = results[1]
        assert failed.error.error_type == "RuntimeError"
        assert "job one" in failed.error.message
        assert results[2].value == 20

    @pytest.mark.parametrize("workers", [1, 2])
    def test_retry_recovers(self, tmp_path, workers):
        spec = JobSpec(
            kind="test", job_id="flaky", label="flaky",
            params={"marker": str(tmp_path / f"marker-{workers}")},
        )
        executor = BatchExecutor(
            ExecutorConfig(workers=workers, max_attempts=2, backoff_sec=0.01)
        )
        (result,) = executor.run([spec], _flaky_worker)
        assert result.ok
        assert result.value == "recovered"
        assert result.attempts == 2

    def test_retries_exhausted(self, tmp_path):
        executor = BatchExecutor(
            ExecutorConfig(workers=1, max_attempts=3, backoff_sec=0.0)
        )
        (result,) = executor.run(_specs(2)[1:2], _picky_worker)
        assert not result.ok
        assert result.attempts == 3

    def test_timeout_fails_job_not_batch(self):
        executor = BatchExecutor(
            ExecutorConfig(workers=2, timeout_sec=1.0, max_attempts=1)
        )
        specs = [
            JobSpec(kind="test", job_id="slow", label="slow",
                    params={"sleep": 30.0}),
            JobSpec(kind="test", job_id="fast", label="fast",
                    params={"sleep": 0.0}),
        ]
        start = time.monotonic()
        results = executor.run(specs, _sleepy_worker)
        assert time.monotonic() - start < 20.0
        assert [r.ok for r in results] == [False, True]
        assert results[0].error.error_type == "TimeoutError"

    def test_empty_batch(self):
        assert BatchExecutor().run([], _echo_worker) == []

    def test_jitter_varies_backoff(self):
        executor = BatchExecutor(
            ExecutorConfig(backoff_sec=1.0, jitter=0.5)
        )
        delays = {executor._backoff_delay(2) for _ in range(50)}
        assert len(delays) > 1
        assert all(0.5 <= d <= 1.5 for d in delays)

    def test_zero_jitter_is_deterministic(self):
        executor = BatchExecutor(
            ExecutorConfig(backoff_sec=0.25, jitter=0.0)
        )
        assert executor._backoff_delay(2) == 0.25
        assert executor._backoff_delay(3) == 0.5
        assert executor._backoff_delay(4) == 1.0

    def test_jitter_validated(self):
        with pytest.raises(ValueError):
            ExecutorConfig(jitter=1.5)


class TestExecutorTelemetry:
    """Failure paths must leave a metrics/event trail when enabled."""

    def _counters(self):
        return obs.metrics_snapshot()["counters"]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_ok_and_failed_counters(self, workers):
        obs.configure(enabled=True)
        executor = BatchExecutor(
            ExecutorConfig(workers=workers, max_attempts=1)
        )
        executor.run(_specs(3), _picky_worker)
        counters = self._counters()
        assert counters["executor.jobs_ok"] == 2.0
        assert counters["executor.jobs_failed"] == 1.0
        snap = obs.metrics_snapshot()
        assert snap["histograms"]["executor.job_sec"]["count"] == 3

    @pytest.mark.parametrize("workers", [1, 2])
    def test_retry_counter_and_event(self, tmp_path, workers):
        obs.configure(enabled=True)
        spec = JobSpec(
            kind="test", job_id="flaky", label="flaky",
            params={"marker": str(tmp_path / f"m-{workers}")},
        )
        executor = BatchExecutor(
            ExecutorConfig(workers=workers, max_attempts=2, backoff_sec=0.01)
        )
        (result,) = executor.run([spec], _flaky_worker)
        assert result.ok
        assert self._counters()["executor.retries"] == 1.0
        (retry,) = [
            e for e in obs.events()
            if e["type"] == "event" and e["name"] == "executor.retry"
        ]
        assert retry["fields"]["job_id"] == "flaky"
        assert retry["fields"]["attempt"] == 2
        assert retry["fields"]["delay_sec"] >= 0.0

    def test_timeout_counter(self):
        obs.configure(enabled=True)
        executor = BatchExecutor(
            ExecutorConfig(workers=2, timeout_sec=0.5, max_attempts=1)
        )
        specs = [
            JobSpec(kind="test", job_id="slow", label="slow",
                    params={"sleep": 30.0}),
        ]
        (result,) = executor.run(specs, _sleepy_worker)
        assert not result.ok
        assert self._counters()["executor.timeouts"] == 1.0
        (timeout_event,) = [
            e for e in obs.events()
            if e["type"] == "event" and e["name"] == "executor.timeout"
        ]
        assert timeout_event["fields"]["job_id"] == "slow"

    def test_disabled_executor_records_nothing(self):
        executor = BatchExecutor(ExecutorConfig(workers=1, max_attempts=1))
        executor.run(_specs(2), _picky_worker)
        assert obs.metrics_snapshot() is None
        assert obs.events() == []


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
class TestManifest:
    def test_write_load_roundtrip(self, tmp_path, trace_paths):
        _, results = fit_profiles(
            trace_paths[:2], cache_dir=tmp_path / "cache"
        )
        _, manifest = run_jobs([], command="noop")
        manifest.jobs = [r.describe() for r in results]
        path = manifest.write(tmp_path / "manifests")
        loaded = RunManifest.load(path)
        assert loaded.run_id == manifest.run_id
        assert loaded.counts == {"total": 2, "ok": 2, "failed": 0}
        assert loaded.cache == {"hits": 0, "misses": 2}
        data = json.loads(path.read_text())
        assert data["manifest_version"] == MANIFEST_VERSION

    def test_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"manifest_version": 999}))
        with pytest.raises(ValueError):
            RunManifest.load(path)

    def test_metrics_embedded_when_enabled(self, tmp_path, trace_paths):
        obs.configure(enabled=True)
        results, manifest, manifest_path = run_batch(
            trace_paths[:2],
            protocols=["vegas"],
            duration=3.0,
            cache_dir=tmp_path / "cache",
            manifest_dir=tmp_path / "manifests",
            config=ExecutorConfig(workers=2),
        )
        assert manifest.metrics is not None
        assert manifest.metrics["counters"]["executor.jobs_ok"] == 2.0
        loaded = RunManifest.load(manifest_path)
        assert loaded.metrics == manifest.metrics
        # Worker-side executor.job spans join manifest rows on job_id.
        span_ids = {
            e["attrs"]["job_id"]
            for e in obs.events()
            if e["type"] == "span" and e["name"] == "executor.job"
        }
        assert span_ids == {j["job_id"] for j in manifest.jobs}

    def test_metrics_absent_when_disabled(self, tmp_path, trace_paths):
        _, manifest, manifest_path = run_batch(
            trace_paths[:1],
            protocols=["vegas"],
            duration=3.0,
            cache_dir=tmp_path / "cache",
            manifest_dir=tmp_path / "manifests",
        )
        assert manifest.metrics is None
        assert "metrics" not in json.loads(manifest_path.read_text())


# ----------------------------------------------------------------------
# Batch orchestration (the acceptance-criteria path)
# ----------------------------------------------------------------------
class TestRunBatch:
    def test_cold_then_warm_run(self, trace_paths, tmp_path):
        kwargs = dict(
            protocols=["vegas"],
            duration=3.0,
            cache_dir=tmp_path / "cache",
            manifest_dir=tmp_path / "manifests",
            config=ExecutorConfig(workers=2),
        )
        results, manifest, manifest_path = run_batch(trace_paths, **kwargs)
        assert manifest.counts == {"total": 3, "ok": 3, "failed": 0}
        assert manifest.cache == {"hits": 0, "misses": 3}
        assert manifest_path.exists()

        results2, manifest2, _ = run_batch(trace_paths, **kwargs)
        assert manifest2.cache == {"hits": 3, "misses": 0}
        # Identical inputs -> identical content-addressed job ids.
        assert [j["job_id"] for j in manifest.jobs] == [
            j["job_id"] for j in manifest2.jobs
        ]
        # Cached fits must reproduce the cold-run predictions exactly.
        for cold, warm in zip(results, results2):
            assert cold.value["summaries"] == warm.value["summaries"]

    def test_corrupt_trace_yields_structured_failure(
        self, trace_paths, tmp_path
    ):
        corrupt = tmp_path / "corrupt.npz"
        corrupt.write_bytes(b"not a trace at all")
        results, manifest, _ = run_batch(
            [*trace_paths, corrupt],
            protocols=["vegas"],
            duration=3.0,
            cache_dir=tmp_path / "cache",
            config=ExecutorConfig(workers=2, max_attempts=1),
        )
        assert manifest.counts["failed"] == 1
        assert manifest.counts["ok"] == 3
        (failure,) = manifest.failures
        assert failure["error"]["error_type"]
        assert "corrupt" in failure["label"]

    def test_output_dir_saves_predictions(self, trace_paths, tmp_path):
        out = tmp_path / "out"
        run_batch(
            trace_paths[:1],
            protocols=["vegas"],
            duration=3.0,
            cache_dir=tmp_path / "cache",
            output_dir=out,
        )
        (saved,) = sorted(out.glob("*.npz"))
        from repro.trace.io import load_trace

        assert load_trace(saved).protocol == "vegas"


class TestFitProfiles:
    def test_failed_fit_leaves_none(self, trace_paths, tmp_path):
        corrupt = tmp_path / "bad.jsonl"
        corrupt.write_text("definitely not json\n")
        models, results = fit_profiles(
            [trace_paths[0], corrupt],
            cache_dir=tmp_path / "cache",
            config=ExecutorConfig(workers=1, max_attempts=1),
        )
        assert models[0] is not None
        assert models[1] is None
        assert not results[1].ok

    def test_distribution_from_paths(self, trace_paths, tmp_path):
        from repro.core.ensemble import fit_distribution_from_paths

        dist = fit_distribution_from_paths(
            trace_paths, workers=2, cache_dir=tmp_path / "cache"
        )
        assert dist.n_sources == 3
        assert len(dist.sample(2, seed=0)) == 2


# ----------------------------------------------------------------------
# Profile round-trip (the to_profile/from_profile satellite)
# ----------------------------------------------------------------------
class TestProfileRoundTrip:
    def test_lossless(self, trace_paths):
        from repro.trace.io import load_trace

        model = iboxnet.fit(load_trace(trace_paths[0]))
        assert iboxnet.from_profile(iboxnet.to_profile(model)) == model

    def test_round_trips_ablations_and_schedule(self, trace_paths):
        from repro.trace.io import load_trace

        model = iboxnet.fit(load_trace(trace_paths[0]))
        model = model.with_statistical_loss(0.02).with_variable_bandwidth(
            ((0.0, 1.0), (125_000.0, 250_000.0))
        )
        restored = iboxnet.from_profile(iboxnet.to_profile(model))
        assert restored == model
        assert restored.bandwidth_schedule == ((0.0, 1.0), (125_000.0, 250_000.0))

    def test_accepts_version1_profiles(self, trace_paths):
        from repro.trace.io import load_trace

        model = iboxnet.fit(load_trace(trace_paths[0]))
        legacy = iboxnet.to_profile(model)
        # Strip everything version 1 did not have.
        for key in (
            "profile_version",
            "include_cross_traffic",
            "statistical_loss_rate",
            "bandwidth_schedule",
        ):
            legacy.pop(key)
        legacy["cross_traffic"].pop("busy_fraction")
        restored = iboxnet.from_profile(legacy)
        assert restored.params == model.params
        assert restored.cross_traffic.bin_edges == model.cross_traffic.bin_edges

    def test_rejects_future_versions(self):
        with pytest.raises(ValueError):
            iboxnet.from_profile({"profile_version": 99, "cross_traffic": {}})

    def test_digest_stable(self, trace_paths):
        assert trace_file_digest(trace_paths[0]) == trace_file_digest(
            trace_paths[0]
        )
