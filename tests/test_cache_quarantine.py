"""Corrupt cache entries are quarantined, never served or fatal."""

import json

import pytest

from repro import obs
from repro.guard.chaos import tear_cache_entry
from repro.runtime.cache import ProfileCache
from repro.trace.io import save_trace


@pytest.fixture(scope="module")
def fitted(tmp_path_factory):
    """One fitted trace in a warm cache, shared read-only by key."""
    from repro.datasets.pantheon import generate_run

    root = tmp_path_factory.mktemp("cacheq")
    trace_path = root / "t.jsonl"
    save_trace(generate_run(seed=31, duration=1.5).trace, trace_path)
    cache = ProfileCache(root / "cache")
    model, hit = cache.fit_cached(trace_path)
    assert not hit and model is not None
    key = cache.key_for(trace_path)
    return {
        "trace_path": trace_path,
        "key": key,
        "profile": json.loads(cache.path_for(key).read_text()),
    }


@pytest.fixture
def cache(tmp_path, fitted):
    """A fresh cache pre-seeded with the known-good profile."""
    c = ProfileCache(tmp_path / "cache")
    c.put_profile(fitted["key"], fitted["profile"])
    return c


class TestQuarantine:
    def test_torn_write_quarantined_not_served(self, cache, fitted):
        obs.configure(enabled=True)
        key = fitted["key"]
        tear_cache_entry(cache, key)
        assert cache.get_profile(key) is None
        # Moved, not deleted: the damage stays inspectable.
        assert not cache.path_for(key).exists()
        assert (cache.quarantine_dir / f"{key}.json").exists()
        counters = obs.metrics_snapshot()["counters"]
        assert counters["cache.quarantined"] == 1

    def test_truncated_json_quarantined(self, cache, fitted):
        key = fitted["key"]
        cache.path_for(key).write_text('{"profile_version":')
        assert cache.get_profile(key) is None
        assert (cache.quarantine_dir / f"{key}.json").exists()

    def test_wrong_schema_quarantined(self, cache, fitted):
        key = fitted["key"]
        cache.path_for(key).write_text('{"not": "a profile"}')
        assert cache.get_profile(key) is None
        assert (cache.quarantine_dir / f"{key}.json").exists()

    def test_non_dict_json_quarantined(self, cache, fitted):
        key = fitted["key"]
        cache.path_for(key).write_text("[1, 2, 3]")
        assert cache.get_profile(key) is None
        assert (cache.quarantine_dir / f"{key}.json").exists()

    def test_unloadable_profile_quarantined_via_get(self, cache, fitted):
        # Valid JSON, right header, garbage body: json-level checks pass
        # and from_profile is what rejects it.
        key = fitted["key"]
        version = fitted["profile"]["profile_version"]
        cache.path_for(key).write_text(
            json.dumps({"profile_version": version, "junk": True})
        )
        assert cache.get(key) is None
        assert (cache.quarantine_dir / f"{key}.json").exists()

    def test_plain_miss_not_quarantined(self, cache):
        assert cache.get_profile("0" * 64) is None
        assert not cache.quarantine_dir.exists()


class TestAccountingAfterQuarantine:
    def test_len_and_clear_exclude_quarantine(self, cache, fitted):
        key = fitted["key"]
        assert len(cache) == 1
        tear_cache_entry(cache, key)
        cache.get_profile(key)  # triggers the quarantine move
        assert len(cache) == 0
        assert cache.clear() == 0
        assert (cache.quarantine_dir / f"{key}.json").exists()

    def test_fit_cached_refits_after_quarantine(self, cache, fitted):
        key = fitted["key"]
        tear_cache_entry(cache, key)
        model, hit = cache.fit_cached(fitted["trace_path"])
        assert not hit and model is not None
        # The clean slot is repopulated; next call is a hit again.
        assert cache.path_for(key).exists()
        _, hit = cache.fit_cached(fitted["trace_path"])
        assert hit

    def test_corruption_counts_as_miss_in_stats(self, cache, fitted):
        key = fitted["key"]
        assert cache.get_profile(key) is not None
        tear_cache_entry(cache, key)
        assert cache.get_profile(key) is None
        assert cache.stats() == {"hits": 1, "misses": 1}
