"""Tests for the trace sanitize/repair pipeline (repro.guard.repair)."""

import math

import pytest

from repro import obs
from repro.guard.chaos import TRACE_FAULTS, inject_trace_fault
from repro.guard.repair import (
    REPAIR_POLICIES,
    RepairReport,
    check_policy,
    repair_trace,
    sanitize_trace,
)
from repro.trace.records import PacketRecord, Trace
from repro.trace.validate import validate_trace


def _record(uid=0, seq=None, size=1500, sent=0.0, delivered=None,
            retransmit=False):
    if seq is None:
        seq = uid
    if delivered is None:
        delivered = sent + 0.05
    return PacketRecord(
        uid=uid, seq=seq, size=size, sent_at=sent,
        delivered_at=delivered, is_retransmit=retransmit,
    )


def _clean_trace(n=20):
    records = [
        _record(uid=i, sent=i * 0.01, delivered=i * 0.01 + 0.05)
        for i in range(n)
    ]
    return Trace("clean", records, duration=1.0)


class TestRepairTrace:
    def test_clean_trace_returned_unchanged(self):
        trace = _clean_trace()
        report = repair_trace(trace)
        assert report.trace is trace
        assert not report.repaired
        assert report.total_repairs == 0

    def test_duplicate_uids_dropped_keeping_first(self):
        records = [
            _record(uid=0, sent=0.0),
            _record(uid=0, seq=1, sent=0.1),
            _record(uid=1, seq=2, sent=0.2),
        ]
        report = repair_trace(Trace("f", records, duration=1.0))
        assert report.actions == {"drop_duplicate_uid": 1}
        assert report.dropped == 1
        assert [r.uid for r in report.trace.records] == [0, 1]
        assert report.trace.records[0].sent_at == 0.0

    def test_negative_delay_voided_to_loss(self):
        records = [_record(uid=0, sent=1.0, delivered=0.5)]
        report = repair_trace(Trace("f", records, duration=2.0))
        assert report.actions == {"void_negative_delay": 1}
        assert report.trace.records[0].lost

    def test_implausible_delay_voided_to_loss(self):
        records = [_record(uid=0, sent=0.0, delivered=90.0)]
        report = repair_trace(Trace("f", records, duration=100.0))
        assert report.actions == {"void_implausible_delay": 1}
        assert report.trace.records[0].lost

    def test_nan_sent_dropped_and_inf_delivery_voided(self):
        records = [
            _record(uid=0),
            _record(uid=1, sent=math.nan, delivered=math.nan),
            _record(uid=2, sent=0.2, delivered=math.inf),
        ]
        report = repair_trace(Trace("f", records, duration=1.0))
        assert report.actions["drop_bad_sent_at"] == 1
        assert report.actions["void_nonfinite_delivery"] == 1
        uids = [r.uid for r in report.trace.records]
        assert 1 not in uids
        inf_rec = next(r for r in report.trace.records if r.uid == 2)
        assert inf_rec.lost

    def test_bad_sizes_dropped(self):
        records = [_record(uid=0), _record(uid=1, sent=0.1, size=-1500)]
        report = repair_trace(Trace("f", records, duration=1.0))
        assert report.actions == {"drop_bad_size": 1}
        assert len(report.trace) == 1

    def test_duplicate_first_transmission_marked_retransmit(self):
        records = [
            _record(uid=0, seq=5, sent=0.0),
            _record(uid=1, seq=5, sent=0.1),
        ]
        report = repair_trace(Trace("f", records, duration=1.0))
        assert report.actions == {"mark_retransmit": 1}
        assert not report.trace.records[0].is_retransmit
        assert report.trace.records[1].is_retransmit

    def test_overrun_duration_extended(self):
        records = [_record(uid=0, sent=5.0, delivered=5.05)]
        report = repair_trace(Trace("f", records, duration=1.0))
        assert "extend_duration" in report.actions
        assert report.trace.duration >= 5.0

    def test_input_trace_never_mutated(self):
        records = [
            _record(uid=0, sent=1.0, delivered=0.5),
            _record(uid=0, seq=1, sent=1.1),
        ]
        trace = Trace("f", records, duration=2.0)
        before = len(trace)
        repair_trace(trace)
        assert len(trace) == before
        assert trace.records[0].delivered_at == 0.5

    def test_metadata_notes_repairs(self):
        records = [_record(uid=0, sent=1.0, delivered=0.5)]
        report = repair_trace(Trace("f", records, duration=2.0))
        assert report.trace.metadata["repaired"] == report.actions

    def test_repairs_counted_in_metrics(self):
        obs.configure(enabled=True)
        records = [
            _record(uid=0, sent=1.0, delivered=0.5),
            _record(uid=0, seq=1, sent=1.1),
        ]
        repair_trace(Trace("f", records, duration=2.0))
        snapshot = obs.metrics_snapshot()
        assert snapshot["counters"]["guard.repairs"] == 2


@pytest.mark.parametrize("fault", sorted(TRACE_FAULTS))
def test_every_chaos_fault_repairs_to_validity(fault, cellular_run):
    """The contract: repair output passes validation for every injector."""
    corrupted = inject_trace_fault(fault, cellular_run.trace, seed=123)
    repaired = repair_trace(corrupted).trace
    assert validate_trace(repaired) == []


class TestSanitizeAndPolicy:
    def test_policies_tuple(self):
        assert REPAIR_POLICIES == ("strict", "repair", "skip")
        for policy in REPAIR_POLICIES:
            assert check_policy(policy) == policy

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="lenient"):
            check_policy("lenient")

    def test_sanitize_strict_raises_on_violation(self):
        records = [_record(uid=0, sent=1.0, delivered=0.5)]
        with pytest.raises(ValueError, match="invalid"):
            sanitize_trace(Trace("f", records, duration=2.0), "strict")

    def test_sanitize_skip_returns_input(self):
        records = [_record(uid=0, sent=1.0, delivered=0.5)]
        trace = Trace("f", records, duration=2.0)
        assert sanitize_trace(trace, "skip") is trace

    def test_sanitize_repair_fixes(self):
        records = [_record(uid=0, sent=1.0, delivered=0.5)]
        trace = Trace("f", records, duration=2.0)
        repaired = sanitize_trace(trace, "repair")
        assert validate_trace(repaired) == []


def test_repair_report_describe():
    records = [_record(uid=0, sent=1.0, delivered=0.5)]
    report = repair_trace(Trace("f", records, duration=2.0))
    described = report.describe()
    assert described["flow_id"] == "f"
    assert described["actions"] == {"void_negative_delay": 1}
    assert described["dropped"] == 0
    assert isinstance(report, RepairReport)
