"""Property-based tests (hypothesis) on core data structures and
invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.stats import cdf_points, percentile_error_table
from repro.discovery.motifs import pattern_frequencies
from repro.discovery.sax import paa, sax_inter_arrival
from repro.ml.losses import binary_cross_entropy_with_logits, gaussian_nll
from repro.ml.scalers import StandardScaler
from repro.simulation.engine import Simulator
from repro.simulation.packet import Packet
from repro.simulation.queues import DropTailQueue
from repro.trace.features import sliding_window_rate
from repro.trace.records import PacketRecord, Trace

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=60
    )
)
def test_event_ordering_invariant(delays):
    """Whatever the scheduling order, events fire sorted by time."""
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run(until=11.0)
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    sizes=st.lists(
        st.integers(min_value=1, max_value=3000), min_size=1, max_size=80
    ),
    capacity=st.integers(min_value=1500, max_value=50_000),
)
def test_queue_conservation(sizes, capacity):
    """bytes in == bytes queued + bytes dropped + bytes dequeued."""
    queue = DropTailQueue(capacity)
    offered = 0
    for i, size in enumerate(sizes):
        offered += size
        queue.push(Packet(flow_id="f", seq=i, size=size), 0.0)
        if i % 3 == 0:
            queue.pop(0.0)
    accounted = (
        queue.bytes_queued
        + queue.stats.dropped_bytes
        + queue.stats.dequeued_bytes
    )
    assert accounted == offered
    assert queue.bytes_queued <= capacity


@given(
    sizes=st.lists(
        st.integers(min_value=1, max_value=3000), min_size=1, max_size=50
    )
)
def test_queue_capacity_never_exceeded(sizes):
    queue = DropTailQueue(10_000)
    peak = 0
    for i, size in enumerate(sizes):
        queue.push(Packet(flow_id="f", seq=i, size=size), 0.0)
        peak = max(peak, queue.bytes_queued)
    assert peak <= 10_000


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=50
    ),
    window=st.floats(min_value=0.1, max_value=5.0),
)
def test_sliding_window_rate_nonnegative_and_bounded(times, window):
    times = np.sort(np.asarray(times))
    sizes = np.full(len(times), 1500.0)
    rates = sliding_window_rate(times, sizes, times, window)
    assert (rates >= 0).all()
    assert (rates <= len(times) * 1500.0 / window + 1e-6).all()


@given(
    deltas=hnp.arrays(
        dtype=float,
        shape=st.integers(min_value=1, max_value=200),
        elements=st.floats(
            min_value=-1.0, max_value=1.0, allow_nan=False
        ),
    )
)
def test_sax_a_iff_negative(deltas):
    symbols = sax_inter_arrival(deltas)
    clean = deltas[~np.isnan(deltas)]
    for symbol, delta in zip(symbols, clean):
        assert (symbol == "a") == (delta < 0)


@given(
    series=hnp.arrays(
        dtype=float,
        shape=st.integers(min_value=1, max_value=100),
        elements=finite_floats,
    ),
    segments=st.integers(min_value=1, max_value=20),
)
def test_paa_output_within_input_range(series, segments):
    reduced = paa(series, segments)
    assert len(reduced) == min(segments, len(series))
    assert reduced.min() >= series.min() - 1e-9
    assert reduced.max() <= series.max() + 1e-9


@given(
    text=st.text(alphabet="abc", min_size=1, max_size=200),
    length=st.integers(min_value=1, max_value=3),
)
def test_pattern_frequencies_sum_to_one(text, length):
    freqs = pattern_frequencies(text, length)
    if len(text) >= length:
        assert sum(freqs.values()) == pytest.approx(1.0)
    else:
        assert freqs == {}


@given(
    data=hnp.arrays(
        dtype=float,
        shape=st.tuples(
            st.integers(min_value=2, max_value=50),
            st.integers(min_value=1, max_value=5),
        ),
        elements=finite_floats,
    )
)
def test_scaler_roundtrip_property(data):
    scaler = StandardScaler().fit(data)
    recovered = scaler.inverse_transform(scaler.transform(data))
    assert np.allclose(recovered, data, atol=1e-6 * (1 + np.abs(data).max()))


@given(
    mu=hnp.arrays(dtype=float, shape=8,
                  elements=st.floats(-10, 10, allow_nan=False)),
    target=hnp.arrays(dtype=float, shape=8,
                      elements=st.floats(-10, 10, allow_nan=False)),
)
def test_gaussian_nll_finite(mu, target):
    log_sigma = np.zeros(8)
    loss, gmu, gls = gaussian_nll(mu, log_sigma, target)
    assert np.isfinite(loss)
    assert np.isfinite(gmu).all()
    assert np.isfinite(gls).all()


@given(
    logits=hnp.arrays(dtype=float, shape=8,
                      elements=st.floats(-50, 50, allow_nan=False)),
    labels=hnp.arrays(dtype=bool, shape=8),
)
def test_bce_nonnegative_and_finite(logits, labels):
    loss, grad = binary_cross_entropy_with_logits(
        logits, labels.astype(float)
    )
    assert loss >= 0.0
    assert np.isfinite(grad).all()


@given(
    values=st.lists(finite_floats, min_size=1, max_size=100)
)
def test_cdf_points_monotone(values):
    xs, ps = cdf_points(values)
    assert (np.diff(xs) >= 0).all()
    assert (np.diff(ps) > 0).all()
    assert ps[-1] == pytest.approx(1.0)


@given(
    shift=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)
def test_percentile_error_scales_with_shift(shift):
    gt = np.linspace(50.0, 150.0, 30)
    row = percentile_error_table(gt + shift, gt)
    assert row.p50_ms == pytest.approx(shift, abs=1e-6)


@given(
    sends=st.lists(
        st.floats(min_value=0.0, max_value=9.0), min_size=2, max_size=60
    ),
    delay=st.floats(min_value=0.001, max_value=0.5),
)
def test_trace_invariants(sends, delay):
    records = [
        PacketRecord(uid=i, seq=i, size=1500, sent_at=s,
                     delivered_at=s + delay)
        for i, s in enumerate(sends)
    ]
    trace = Trace("f", records, duration=10.0)
    # Sorted by send time; delays all equal the constant.
    assert (np.diff(trace.sent_at) >= 0).all()
    assert trace.delivered_delays() == pytest.approx(
        np.full(len(sends), delay)
    )
    assert trace.loss_rate == 0.0
