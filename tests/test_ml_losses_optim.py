"""Tests for loss functions, optimizers and gradient clipping."""

import numpy as np
import pytest

from repro.ml.layers import Parameter
from repro.ml.losses import (
    binary_cross_entropy_with_logits,
    gaussian_nll,
    mse,
)
from repro.ml.optim import SGD, Adam, clip_gradients_by_global_norm


class TestMSE:
    def test_value_and_gradient(self):
        pred = np.array([1.0, 2.0])
        target = np.array([0.0, 0.0])
        loss, grad = mse(pred, target)
        assert loss == pytest.approx(2.5)
        assert grad == pytest.approx([1.0, 2.0])

    def test_mask_excludes_positions(self):
        pred = np.array([1.0, 100.0])
        target = np.zeros(2)
        mask = np.array([True, False])
        loss, grad = mse(pred, target, mask)
        assert loss == pytest.approx(1.0)
        assert grad[1] == 0.0

    def test_mask_shape_checked(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(3), np.zeros(4, dtype=bool))


class TestGaussianNLL:
    def test_gradients_match_numeric(self):
        rng = np.random.default_rng(0)
        mu = rng.normal(size=(4,))
        log_sigma = rng.normal(size=(4,)) * 0.3
        target = rng.normal(size=(4,))
        loss, gmu, gls = gaussian_nll(mu, log_sigma, target)
        eps = 1e-6
        for i in range(4):
            for arr, grad in ((mu, gmu), (log_sigma, gls)):
                old = arr[i]
                arr[i] = old + eps
                up, _, _ = gaussian_nll(mu, log_sigma, target)
                arr[i] = old - eps
                down, _, _ = gaussian_nll(mu, log_sigma, target)
                arr[i] = old
                assert (up - down) / (2 * eps) == pytest.approx(
                    grad[i], abs=1e-5
                )

    def test_minimised_at_truth(self):
        target = np.array([1.0, 2.0])
        at_truth, _, _ = gaussian_nll(target, np.log(np.full(2, 0.5)), target)
        off, _, _ = gaussian_nll(target + 1.0, np.log(np.full(2, 0.5)), target)
        assert at_truth < off

    def test_sigma_floor_blocks_collapse(self):
        target = np.zeros(2)
        loss, _, gls = gaussian_nll(
            target, np.full(2, -100.0), target
        )
        assert np.isfinite(loss)
        assert (gls == 0).all()  # no gradient through the clamp


class TestBCE:
    def test_matches_reference(self):
        logits = np.array([0.0, 2.0, -2.0])
        target = np.array([1.0, 1.0, 0.0])
        loss, grad = binary_cross_entropy_with_logits(logits, target)
        probs = 1 / (1 + np.exp(-logits))
        reference = -np.mean(
            target * np.log(probs) + (1 - target) * np.log(1 - probs)
        )
        assert loss == pytest.approx(reference)
        assert grad == pytest.approx((probs - target) / 3)

    def test_numerically_stable_at_extremes(self):
        logits = np.array([500.0, -500.0])
        target = np.array([1.0, 0.0])
        loss, grad = binary_cross_entropy_with_logits(logits, target)
        assert np.isfinite(loss)
        assert np.isfinite(grad).all()

    def test_pos_weight_scales_positive_term(self):
        logits = np.array([0.0])
        target = np.array([1.0])
        base, _ = binary_cross_entropy_with_logits(logits, target)
        weighted, _ = binary_cross_entropy_with_logits(
            logits, target, pos_weight=3.0
        )
        assert weighted == pytest.approx(3.0 * base)


class TestClipping:
    def test_scales_down_when_above_norm(self):
        p = Parameter("w", np.zeros(4))
        p.grad[:] = [3.0, 0.0, 4.0, 0.0]  # norm 5
        pre = clip_gradients_by_global_norm([p], max_norm=1.0)
        assert pre == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_untouched_when_below_norm(self):
        p = Parameter("w", np.zeros(2))
        p.grad[:] = [0.3, 0.4]
        clip_gradients_by_global_norm([p], max_norm=1.0)
        assert p.grad == pytest.approx([0.3, 0.4])

    def test_invalid_norm_rejected(self):
        with pytest.raises(ValueError):
            clip_gradients_by_global_norm([], max_norm=0.0)


class TestOptimizers:
    def _quadratic_descent(self, optimizer_factory, steps=200):
        p = Parameter("x", np.array([5.0, -3.0]))
        optimizer = optimizer_factory([p])
        for _ in range(steps):
            p.grad = 2 * p.value  # d/dx of x^2
            optimizer.step()
        return p.value

    def test_sgd_converges(self):
        final = self._quadratic_descent(lambda ps: SGD(ps, lr=0.1))
        assert np.abs(final).max() < 1e-6

    def test_sgd_momentum_converges(self):
        final = self._quadratic_descent(
            lambda ps: SGD(ps, lr=0.05, momentum=0.9)
        )
        assert np.abs(final).max() < 1e-4

    def test_adam_converges(self):
        final = self._quadratic_descent(
            lambda ps: Adam(ps, lr=0.2), steps=400
        )
        assert np.abs(final).max() < 1e-3

    def test_adam_bias_correction_first_step(self):
        p = Parameter("x", np.array([1.0]))
        adam = Adam([p], lr=0.1)
        p.grad = np.array([1.0])
        adam.step()
        # With bias correction the first step is ~lr regardless of betas.
        assert p.value[0] == pytest.approx(0.9, abs=1e-6)

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)
        with pytest.raises(ValueError):
            Adam([], lr=-1.0)
