"""Tests for repro.serve.transport and the network-chaos proxy.

Covers DESIGN.md §14: endpoint parsing, frame assembly with oversize
resync, the one-shot exchange's partial-batch contract, ResilientClient
retry / backoff / retry-after / deadline semantics against scripted
fake servers, the hardened daemon intake (oversize, garbage, idle
eviction, duplicate dedupe) over both unix and tcp, the asyncio
router's equivalents, and :class:`NetChaosProxy` determinism.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import threading
import time
from pathlib import Path

import pytest

from repro import obs
from repro.guard.netchaos import NetChaosConfig, NetChaosProxy
from repro.serve.daemon import ENDPOINT_FILE, ServeConfig, ServeDaemon
from repro.serve.router import FleetRouter
from repro.serve.transport import (
    MAX_FRAME_BYTES,
    DeadlineExceeded,
    Endpoint,
    FrameAssembler,
    FrameTooLargeError,
    ProtocolError,
    ResilientClient,
    RetryBudgetExceeded,
    TransportError,
    encode_frame,
    exchange,
    frame_too_large_response,
    parse_endpoint,
)

_CHUNK = 65536


@pytest.fixture(autouse=True)
def _enable_obs():
    """Client-side transport counters only record when obs is live
    (daemon tests self-enable; pure-client tests must opt in)."""
    obs.configure(enabled=True)
    yield


# ----------------------------------------------------------------------
# Scripted fake servers: one handler per accepted connection, in order
# ----------------------------------------------------------------------
def _recv_objects(conn: socket.socket, n: int, timeout: float = 5.0):
    """Read ``n`` complete request frames off a blocking socket."""
    assembler = FrameAssembler()
    out = []
    conn.settimeout(timeout)
    while len(out) < n:
        data = conn.recv(_CHUNK)
        if not data:
            raise AssertionError(f"client closed after {len(out)}/{n} frames")
        for kind, payload in assembler.feed(data):
            assert kind == "frame", kind
            out.append(json.loads(payload))
    return out


def _recv_frame(conn: socket.socket, timeout: float = 5.0):
    """One response frame off a raw socket (None on EOF)."""
    assembler = FrameAssembler()
    conn.settimeout(timeout)
    while True:
        data = conn.recv(_CHUNK)
        if not data:
            return None
        events = assembler.feed(data)
        if events:
            kind, payload = events[0]
            assert kind == "frame", kind
            return json.loads(payload)


def answer(n: int, make_response=None):
    """A script that answers ``n`` requests, then closes the connection."""
    make_response = make_response or (
        lambda req: {"status": "accepted", "i": req.get("i")}
    )

    def script(conn):
        for _ in range(n):
            req = _recv_objects(conn, 1)[0]
            conn.sendall(encode_frame(make_response(req)))

    return script


def answer_all(make_response=None, seen=None):
    """A script that answers every request until the client hangs up."""
    make_response = make_response or (
        lambda req: {"status": "accepted", "i": req.get("i")}
    )

    def script(conn):
        assembler = FrameAssembler()
        conn.settimeout(5.0)
        while True:
            try:
                data = conn.recv(_CHUNK)
            except (socket.timeout, OSError):
                return
            if not data:
                return
            for kind, payload in assembler.feed(data):
                req = json.loads(payload)
                if seen is not None:
                    seen.append(req.get("i"))
                try:
                    conn.sendall(encode_frame(make_response(req)))
                except OSError:
                    return

    return script


def torn_answer(conn):
    """Read one request, send half a response frame, hang up."""
    _recv_objects(conn, 1)
    conn.sendall(b'{"status": "acc')


def idle_script(conn):
    """Accept the connection but never answer anything."""
    conn.settimeout(2.0)
    try:
        conn.recv(_CHUNK)
    except (socket.timeout, OSError):
        pass


class ScriptedServer:
    """Threaded unix-socket server running one script per connection.

    Connections beyond the script list reuse the last script, so an
    ``answer_all`` tail serves every reconnect a retrying client makes.
    """

    def __init__(self, tmp_path: Path, scripts):
        self.endpoint = parse_endpoint(tmp_path / "scripted.sock")
        self.scripts = list(scripts)
        self.connections = 0
        self._server = self.endpoint.listen()
        self._server.settimeout(0.2)
        self._done = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        index = 0
        while not self._done.is_set():
            try:
                conn, _ = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.connections += 1
            if self.scripts:
                script = self.scripts[min(index, len(self.scripts) - 1)]
            else:
                script = idle_script
            index += 1
            try:
                script(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self):
        self._done.set()
        try:
            self._server.close()
        except OSError:
            pass
        self._thread.join(timeout=5)
        self.endpoint.cleanup()


@pytest.fixture()
def scripted(tmp_path):
    servers = []

    def make(*scripts):
        server = ScriptedServer(tmp_path, scripts)
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.close()


class FakeTime:
    """Injectable clock + sleep so retry pacing asserts deterministically."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, sec):
        self.sleeps.append(sec)
        self.now += sec


def _client(endpoint, ft=None, **overrides):
    kwargs = dict(
        deadline_sec=30.0,
        max_attempts=6,
        backoff_base_sec=0.001,
        backoff_max_sec=0.002,
        connect_timeout_sec=2.0,
        io_timeout_sec=5.0,
        rng=random.Random(0),
    )
    kwargs.update(overrides)
    rng = kwargs.pop("rng")
    if ft is not None:
        kwargs.update(sleep=ft.sleep, clock=ft.clock)
    return ResilientClient(endpoint, rng=rng, **kwargs)


# ----------------------------------------------------------------------
# Endpoint parsing
# ----------------------------------------------------------------------
class TestEndpointParsing:
    def test_bare_string_path_is_unix(self, tmp_path):
        endpoint = parse_endpoint(str(tmp_path / "a.sock"))
        assert endpoint.scheme == "unix"
        assert endpoint.path == tmp_path / "a.sock"

    def test_path_object_is_unix(self, tmp_path):
        endpoint = parse_endpoint(tmp_path / "a.sock")
        assert endpoint.scheme == "unix"
        assert endpoint.describe() == f"unix:{tmp_path / 'a.sock'}"

    def test_unix_scheme(self):
        endpoint = parse_endpoint("unix:/tmp/x.sock")
        assert (endpoint.scheme, endpoint.path) == ("unix", Path("/tmp/x.sock"))

    def test_tcp_scheme(self):
        endpoint = parse_endpoint("tcp:127.0.0.1:8931")
        assert (endpoint.scheme, endpoint.host, endpoint.port) == (
            "tcp", "127.0.0.1", 8931,
        )
        assert endpoint.describe() == "tcp:127.0.0.1:8931"

    def test_endpoint_passthrough(self):
        endpoint = Endpoint(scheme="tcp", host="h", port=1)
        assert parse_endpoint(endpoint) is endpoint

    @pytest.mark.parametrize(
        "spec",
        ["tcp:hostonly", "tcp::99", "tcp:h:notaport", "tcp:h:70000", "unix:"],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_endpoint(spec)


# ----------------------------------------------------------------------
# Frame assembly
# ----------------------------------------------------------------------
class TestFrameAssembler:
    def test_torn_frame_across_feeds(self):
        assembler = FrameAssembler()
        assert assembler.feed(b'{"a"') == []
        events = assembler.feed(b': 1}\n{"b"')
        assert events == [("frame", b'{"a": 1}')]
        assert assembler.pending_bytes == 4

    def test_many_frames_in_one_chunk(self):
        assembler = FrameAssembler()
        events = assembler.feed(b'{"i": 0}\n{"i": 1}\n{"i": 2}\n')
        assert [json.loads(p)["i"] for _, p in events] == [0, 1, 2]
        assert assembler.pending_bytes == 0

    def test_oversize_complete_frame_is_flagged_next_frame_fine(self):
        assembler = FrameAssembler(max_bytes=16)
        events = assembler.feed(b"x" * 40 + b'\n{"ok": 1}\n')
        assert events == [("too_large", 40), ("frame", b'{"ok": 1}')]

    def test_streamed_oversize_resyncs_at_next_newline(self):
        assembler = FrameAssembler(max_bytes=16)
        events = assembler.feed(b"y" * 20)
        assert events == [("too_large", 20)]
        # Still inside the oversized frame: flagged once, then discarded.
        assert assembler.feed(b"y" * 50) == []
        events = assembler.feed(b'tail\n{"ok": 2}\n')
        assert events == [("frame", b'{"ok": 2}')]

    def test_frame_too_large_response_shape(self):
        response = frame_too_large_response(123)
        assert response == {
            "status": "rejected",
            "reason": "frame_too_large",
            "max_frame_bytes": 123,
        }
        assert obs.metrics().counter("transport.frames_too_large").value == 1


# ----------------------------------------------------------------------
# exchange: one-shot, fail-fast, partials attached
# ----------------------------------------------------------------------
class TestExchange:
    def test_batch_roundtrip_in_order(self, scripted):
        server = scripted(answer(3))
        responses = exchange(server.endpoint, [{"i": i} for i in range(3)])
        assert [r["i"] for r in responses] == [0, 1, 2]

    def test_mid_batch_close_attaches_partial_responses(self, scripted):
        server = scripted(answer(1))
        with pytest.raises(ProtocolError) as err:
            exchange(server.endpoint, [{"i": 0}, {"i": 1}])
        assert [r["i"] for r in err.value.responses] == [0]
        assert err.value.retryable is True

    def test_torn_response_frame_then_close(self, scripted):
        server = scripted(torn_answer)
        with pytest.raises(ProtocolError) as err:
            exchange(server.endpoint, [{"i": 0}])
        assert err.value.responses == []

    def test_oversized_request_refused_client_side(self, scripted):
        server = scripted(idle_script)
        with pytest.raises(FrameTooLargeError) as err:
            exchange(
                server.endpoint,
                [{"pad": "x" * 200}],
                max_frame_bytes=64,
            )
        assert err.value.retryable is False
        assert err.value.responses == []

    def test_connect_failure_is_classified(self, tmp_path):
        with pytest.raises(ProtocolError) as err:
            exchange(tmp_path / "missing.sock", [{"i": 0}], timeout=0.5)
        assert err.value.retryable is True
        assert isinstance(err.value, ConnectionError)  # legacy except-clauses


# ----------------------------------------------------------------------
# ResilientClient: retries, partial resubmission, pacing, deadlines
# ----------------------------------------------------------------------
class TestResilientClient:
    def test_reconnects_after_mid_batch_close(self, scripted):
        seen = []
        server = scripted(answer(1), answer_all(seen=seen))
        client = _client(server.endpoint)
        responses = client.submit([{"i": 0}, {"i": 1}])
        assert [r["status"] for r in responses] == ["accepted", "accepted"]
        assert [r["i"] for r in responses] == [0, 1]
        assert server.connections == 2
        # Only the unanswered request was resubmitted on reconnect.
        assert seen == [1]
        assert obs.metrics().counter("transport.retries").value >= 1
        assert obs.metrics().counter("transport.reconnects").value >= 1

    def test_torn_response_then_recovery(self, scripted):
        server = scripted(torn_answer, answer(1))
        client = _client(server.endpoint)
        assert client.call({"i": 7})["status"] == "accepted"
        assert server.connections == 2

    def test_retry_after_hint_is_honored(self, scripted):
        def overloaded(req):
            return {
                "status": "rejected",
                "reason": "overloaded",
                "retry_after_sec": 5.0,
            }

        server = scripted(answer(1, overloaded), answer(1))
        ft = FakeTime()
        client = _client(server.endpoint, ft=ft)
        response = client.call({"i": 0})
        assert response["status"] == "accepted"
        # The pause was the server's hint, not the (tiny) backoff.
        assert ft.sleeps[0] == 5.0
        assert (
            obs.metrics().counter("transport.retry_after_honored").value == 1
        )

    def test_retry_after_capped_by_deadline_budget(self, scripted):
        def overloaded(req):
            return {
                "status": "rejected",
                "reason": "overloaded",
                "retry_after_sec": 100.0,
            }

        server = scripted(answer(1, overloaded), answer(1, overloaded))
        ft = FakeTime()
        client = _client(server.endpoint, ft=ft, deadline_sec=8.0)
        with pytest.raises(DeadlineExceeded) as err:
            client.call({"i": 0})
        # Never sleeps past the budget: one capped pause, then classified.
        assert ft.sleeps == [8.0]
        assert err.value.attempts == 1
        assert err.value.retryable is True
        assert err.value.responses == []
        assert (
            obs.metrics().counter("transport.deadline_exhausted").value == 1
        )

    def test_retry_budget_exhausted_against_dead_endpoint(self, tmp_path):
        ft = FakeTime()
        client = _client(
            tmp_path / "nobody-home.sock", ft=ft, max_attempts=3,
        )
        with pytest.raises(RetryBudgetExceeded) as err:
            client.call({"i": 0})
        assert err.value.attempts == 3
        assert err.value.retryable is True
        assert isinstance(err.value.last_error, ProtocolError)
        assert obs.metrics().counter("transport.gave_up").value == 1
        assert len(ft.sleeps) == 3  # one bounded backoff per failure

    def test_oversized_request_raises_immediately_no_retries(self, scripted):
        server = scripted(idle_script)
        client = _client(server.endpoint, max_frame_bytes=64)
        with pytest.raises(FrameTooLargeError) as err:
            client.call({"pad": "x" * 200})
        assert err.value.retryable is False
        assert obs.metrics().counter("transport.retries").value == 0

    def test_attempt_latency_histogram_is_fed(self, scripted):
        server = scripted(answer(1))
        _client(server.endpoint).call({"i": 0})
        assert (
            obs.metrics().log_histogram("transport.attempt_sec").count >= 1
        )


# ----------------------------------------------------------------------
# Daemon intake hardening, unix/tcp parity over the same matrix
# ----------------------------------------------------------------------
def _job(i: int, **params):
    return {
        "kind": "chaos",
        "params": {"fault": None, "i": i, **params},
        "label": f"transport:{i}",
        "class": "transport",
        "timeout_sec": 30.0,
    }


def _run_until(daemon: ServeDaemon, predicate, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        daemon.tick()
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError("daemon did not reach the expected state in time")


@pytest.fixture()
def daemon_factory(tmp_path):
    daemons = []

    def make(scheme="unix", **overrides):
        index = len(daemons)
        if scheme == "tcp":
            bind = "tcp:127.0.0.1:0"
        else:
            bind = f"unix:{tmp_path / f'serve-{index}.sock'}"
        kwargs = dict(
            state_dir=tmp_path / f"state-{index}",
            spool_dir=tmp_path / f"spool-{index}",
            workers=1,
            queue_limit=16,
            poll_interval=0.01,
            fsync=False,
            bind=bind,
        )
        kwargs.update(overrides)
        daemon = ServeDaemon(ServeConfig(**kwargs))
        daemon._start_socket()
        daemons.append(daemon)
        return daemon

    yield make
    for daemon in daemons:
        daemon.supervisor.kill_all()
        daemon._stop_socket()
        try:
            daemon.journal.close()
        except Exception:
            pass
        daemon._lock_file.release()


@pytest.mark.parametrize("scheme", ["unix", "tcp"])
class TestDaemonIntakeParity:
    """The same hardening matrix must hold on unix and tcp binds."""

    def test_endpoint_file_matches_bound_endpoint(self, daemon_factory, scheme):
        daemon = daemon_factory(scheme)
        published = (
            daemon.config.state_dir / ENDPOINT_FILE
        ).read_text().strip()
        assert published == daemon.bound.describe()
        if scheme == "tcp":
            assert daemon.bound.port != 0  # ephemeral port resolved

    def test_submit_then_duplicate(self, daemon_factory, scheme):
        daemon = daemon_factory(scheme)
        first = exchange(daemon.bound, [_job(0)])[0]
        assert first["status"] == "accepted"
        again = exchange(daemon.bound, [_job(0)])[0]
        assert again["status"] == "duplicate"
        assert again["job_id"] == first["job_id"]

    def test_oversize_frame_rejected_connection_survives(
        self, daemon_factory, scheme
    ):
        daemon = daemon_factory(scheme, max_frame_bytes=1024)
        with daemon.bound.connect(timeout=5.0) as conn:
            conn.sendall(b"z" * 4096 + b"\n")
            response = _recv_frame(conn)
            assert response["status"] == "rejected"
            assert response["reason"] == "frame_too_large"
            assert response["max_frame_bytes"] == 1024
            # Same connection, next frame parses normally (resync).
            conn.sendall(encode_frame({"verb": "health"}))
            assert _recv_frame(conn)["status"] in ("ok", "degraded")
        assert (
            obs.metrics().counter("transport.frames_too_large").value == 1
        )

    def test_garbage_frame_counted_and_answered_invalid(
        self, daemon_factory, scheme
    ):
        daemon = daemon_factory(scheme)
        with daemon.bound.connect(timeout=5.0) as conn:
            conn.sendall(b"this is not json\n")
            response = _recv_frame(conn)
            assert response["status"] == "rejected"
            assert response["reason"] == "invalid"
        assert (
            obs.metrics().counter("transport.malformed_frames").value == 1
        )

    def test_slow_loris_client_is_evicted(self, daemon_factory, scheme):
        daemon = daemon_factory(scheme, intake_idle_sec=0.2)
        with daemon.bound.connect(timeout=5.0) as conn:
            conn.sendall(b'{"kind"')  # half a frame, then silence
            conn.settimeout(5.0)
            assert conn.recv(_CHUNK) == b""  # server hung up on us
        assert obs.metrics().counter("transport.idle_evicted").value == 1


class TestDaemonExactlyOnce:
    def test_duplicate_delivery_not_double_executed(self, daemon_factory):
        """Deliver the same request twice (as a retrying client would):
        one accepted, one ``duplicate``, exactly one execution."""
        daemon = daemon_factory()
        responses = exchange(daemon.bound, [_job(0), _job(0)])
        assert [r["status"] for r in responses] == ["accepted", "duplicate"]
        job_id = responses[0]["job_id"]
        _run_until(
            daemon,
            lambda: daemon.journal.state.counts()["completed"] == 1,
        )
        assert daemon.journal.state.jobs[job_id].completions == 1

    def test_resilient_client_end_to_end(self, daemon_factory):
        daemon = daemon_factory("tcp")
        client = _client(daemon.bound)
        responses = client.submit([_job(i) for i in range(3)])
        assert all(r["status"] == "accepted" for r in responses)
        assert client.query("health")["status"] in ("ok", "degraded")
        _run_until(
            daemon,
            lambda: daemon.journal.state.counts()["completed"] == 3,
        )


# ----------------------------------------------------------------------
# Router intake: same hardening, asyncio side
# ----------------------------------------------------------------------
class TestRouterIntake:
    def test_oversize_rejected_then_connection_usable(self, tmp_path):
        async def scenario():
            router = FleetRouter(
                tmp_path / "fleet.sock",
                owner_of=lambda job_id: None,
                control=lambda verb: {"status": "ok", "verb": verb},
                max_frame_bytes=1024,
            )
            await router.start()
            try:
                reader, writer = await asyncio.open_unix_connection(
                    str(tmp_path / "fleet.sock")
                )
                writer.write(b"w" * 4096 + b"\n")
                writer.write(encode_frame({"verb": "stats"}))
                await writer.drain()
                first = json.loads(await reader.readline())
                second = json.loads(await reader.readline())
                writer.close()
                return first, second
            finally:
                await router.stop()

        first, second = asyncio.run(scenario())
        assert first["reason"] == "frame_too_large"
        assert second == {"status": "ok", "verb": "stats"}
        assert (
            obs.metrics().counter("transport.frames_too_large").value == 1
        )

    def test_idle_client_is_evicted(self, tmp_path):
        async def scenario():
            router = FleetRouter(
                tmp_path / "fleet.sock",
                owner_of=lambda job_id: None,
                control=lambda verb: {},
                idle_timeout_sec=0.2,
            )
            await router.start()
            try:
                reader, writer = await asyncio.open_unix_connection(
                    str(tmp_path / "fleet.sock")
                )
                eof = await asyncio.wait_for(reader.read(), timeout=5.0)
                writer.close()
                return eof
            finally:
                await router.stop()

        assert asyncio.run(scenario()) == b""
        assert obs.metrics().counter("transport.idle_evicted").value == 1

    def test_tcp_bind_forwards_to_shard(self, tmp_path):
        """A tcp-bound router forwarding to a unix shard: the cross-node
        front door over the single-host shard fabric."""

        async def scenario():
            shard_sock = tmp_path / "shard.sock"

            async def handle(reader, writer):
                line = await reader.readline()
                request = json.loads(line)
                writer.write(encode_frame(
                    {"status": "accepted", "job_id": request.get("job_id")}
                ))
                await writer.drain()
                writer.close()

            server = await asyncio.start_unix_server(
                handle, path=str(shard_sock)
            )
            router = FleetRouter(
                "tcp:127.0.0.1:0",
                owner_of=lambda job_id: ("shard-3", shard_sock),
                control=lambda verb: {"status": "ok"},
            )
            await router.start()
            try:
                reader, writer = await asyncio.open_connection(
                    router.bound.host, router.bound.port
                )
                writer.write(encode_frame(
                    {"job_id": "jx", "kind": "chaos", "params": {},
                     "label": "jx", "class": "chaos"}
                ))
                await writer.drain()
                response = json.loads(await reader.readline())
                writer.close()
                return response
            finally:
                await router.stop()
                server.close()
                await server.wait_closed()

        response = asyncio.run(scenario())
        assert response["status"] == "accepted"
        assert response["shard"] == "shard-3"


# ----------------------------------------------------------------------
# The network-chaos proxy
# ----------------------------------------------------------------------
class TestNetChaosProxy:
    def test_clean_relay_with_no_faults(self, scripted, tmp_path):
        server = scripted(answer_all())
        with NetChaosProxy(
            tmp_path / "front.sock", server.endpoint, NetChaosConfig(seed=1)
        ) as proxy:
            responses = exchange(
                proxy.bound, [{"i": i} for i in range(3)]
            )
        assert [r["i"] for r in responses] == [0, 1, 2]
        stats = proxy.stats()
        assert stats["frames"] == 6  # 3 requests + 3 responses
        assert all(
            stats[k] == 0
            for k in ("dropped", "duplicated", "delayed", "truncated",
                      "severed")
        )

    def test_duplicated_request_hits_daemon_dedupe(
        self, daemon_factory, tmp_path
    ):
        """Every request frame duplicated on the wire: the daemon must
        answer the copy ``duplicate`` and execute exactly once."""
        daemon = daemon_factory("tcp")
        config = NetChaosConfig(seed=2, dup_prob=1.0, direction="request")
        with NetChaosProxy(
            "tcp:127.0.0.1:0", daemon.bound, config
        ) as proxy:
            response = exchange(proxy.bound, [_job(0)])[0]
            assert response["status"] == "accepted"
            _run_until(
                daemon,
                lambda: daemon.journal.state.counts()["completed"] == 1,
            )
        assert proxy.stats()["duplicated"] == 1
        job = daemon.journal.state.jobs[response["job_id"]]
        assert job.completions == 1
        assert obs.metrics().counter("chaos.net.duplicated").value == 1

    def test_truncated_response_is_torn_then_severed(self, scripted, tmp_path):
        server = scripted(answer_all())
        config = NetChaosConfig(
            seed=3, truncate_prob=1.0, direction="response"
        )
        with NetChaosProxy(
            tmp_path / "front.sock", server.endpoint, config
        ) as proxy:
            with pytest.raises(ProtocolError):
                exchange(proxy.bound, [{"i": 0}], timeout=5.0)
        assert proxy.stats()["truncated"] == 1

    def test_resilient_client_survives_lossy_request_path(
        self, scripted, tmp_path
    ):
        server = scripted(answer_all())
        config = NetChaosConfig(seed=5, drop_prob=0.5, direction="request")
        with NetChaosProxy(
            tmp_path / "front.sock", server.endpoint, config
        ) as proxy:
            client = _client(
                proxy.bound,
                io_timeout_sec=0.3,
                deadline_sec=20.0,
                max_attempts=30,
            )
            responses = client.submit([{"i": i} for i in range(4)])
        assert [r["i"] for r in responses] == [0, 1, 2, 3]
        assert proxy.stats()["dropped"] >= 1

    def test_same_seed_replays_identical_fault_sequence(
        self, tmp_path
    ):
        """The campaign contract: a failing seed replays byte-identically."""

        def run_once(label):
            server = ScriptedServer(tmp_path / label, [answer_all()])
            try:
                config = NetChaosConfig(
                    seed=11, drop_prob=0.4, direction="request"
                )
                with NetChaosProxy(
                    tmp_path / label / "front.sock",
                    server.endpoint,
                    config,
                ) as proxy:
                    client = _client(
                        proxy.bound,
                        io_timeout_sec=0.3,
                        deadline_sec=20.0,
                        max_attempts=30,
                    )
                    for i in range(6):
                        assert client.call({"i": i})["i"] == i
                return proxy.stats()
            finally:
                server.close()

        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        first = run_once("a")
        second = run_once("b")
        assert first == second
        assert first["dropped"] >= 1

    def test_direction_validation(self):
        with pytest.raises(ValueError):
            NetChaosConfig(direction="sideways")
