"""repro.bench: harness statistics, result schema, baseline comparison,
and the ``repro bench`` CLI."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BenchCase,
    PreparedCase,
    compare_reports,
    default_output_name,
    load_report,
    run_case,
    run_suite,
)
from repro.bench.harness import CaseResult, mad, median, percentile
from repro.bench.results import BenchReport
from repro.cli import main


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------


def test_median_odd_even():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([4.0, 1.0, 2.0, 3.0]) == 2.5


def test_percentile_nearest_rank():
    xs = [float(i) for i in range(1, 11)]  # 1..10
    assert percentile(xs, 90.0) == 9.0
    assert percentile(xs, 100.0) == 10.0
    assert percentile(xs, 0.0) == 1.0


def test_mad_robust_to_outlier():
    assert mad([1.0, 1.0, 1.0, 100.0]) == 0.0
    assert mad([1.0, 2.0, 3.0]) == 1.0


def test_stats_reject_empty():
    with pytest.raises(ValueError):
        median([])
    with pytest.raises(ValueError):
        percentile([], 50.0)


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


def _counting_case(counter):
    def make(quick):
        def fn():
            counter["calls"] += 1

        def ref():
            counter["ref_calls"] += 1

        def cleanup():
            counter["cleaned"] += 1

        return PreparedCase(fn=fn, ref_fn=ref, items=10, unit="widgets",
                            cleanup=cleanup)

    return BenchCase(name="test.counting", make=make, description="test")


def test_run_case_call_protocol():
    counter = {"calls": 0, "ref_calls": 0, "cleaned": 0}
    result = run_case(_counting_case(counter), repeats=4, warmup=2)
    assert counter["calls"] == 6  # warmup + timed
    assert counter["ref_calls"] == 6
    assert counter["cleaned"] == 1
    assert len(result.times_sec) == 4
    assert result.items == 10
    assert result.unit == "widgets"
    assert result.speedup_vs_ref is not None


def test_run_case_items_from_fn():
    case = BenchCase(
        name="test.dynamic",
        make=lambda quick: PreparedCase(fn=lambda: 123, items=None),
    )
    result = run_case(case, repeats=2, warmup=0)
    assert result.items == 123


def test_run_case_cleanup_on_failure():
    counter = {"cleaned": 0}

    def make(quick):
        def boom():
            raise RuntimeError("kaboom")

        return PreparedCase(
            fn=boom,
            cleanup=lambda: counter.__setitem__(
                "cleaned", counter["cleaned"] + 1
            ),
        )

    with pytest.raises(RuntimeError):
        run_case(BenchCase(name="test.boom", make=make), repeats=1, warmup=0)
    assert counter["cleaned"] == 1


def test_run_suite_records_case_errors():
    from repro.bench import suites

    broken = BenchCase(
        name="test.broken",
        make=lambda quick: (_ for _ in ()).throw(RuntimeError("nope")),
    )
    suites.CASES["test.broken"] = broken
    try:
        report = run_suite(filters=["test.broken"], quick=True)
    finally:
        del suites.CASES["test.broken"]
    case = report.case("test.broken")
    assert case is not None
    assert "nope" in case.error
    # an errored case round-trips through JSON too
    restored = BenchReport.from_dict(report.to_dict())
    assert restored.case("test.broken").error == case.error


def test_run_suite_unknown_filter():
    with pytest.raises(ValueError):
        run_suite(filters=["no.such.case"])


# ---------------------------------------------------------------------------
# Results schema
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def quick_report():
    # ml.lstm_step is the cheapest real case; one repeat keeps this a
    # smoke test of the full pipeline, not a benchmark.
    return run_suite(filters=["ml.lstm_step"], quick=True, repeats=1,
                     warmup=0)


def test_report_schema(quick_report, tmp_path):
    d = quick_report.to_dict()
    assert d["schema_version"] == BENCH_SCHEMA_VERSION
    assert d["quick"] is True
    assert set(d["cases"]) == {"ml.lstm_step"}
    case = d["cases"]["ml.lstm_step"]
    for key in ("median_sec", "p90_sec", "mad_sec", "times_sec", "items",
                "unit", "throughput_per_sec", "speedup_vs_ref"):
        assert key in case
    path = quick_report.write(tmp_path / "BENCH_test.json")
    loaded = load_report(path)
    assert loaded.case("ml.lstm_step").median_sec == pytest.approx(
        quick_report.case("ml.lstm_step").median_sec
    )


def test_load_rejects_unknown_schema_version(quick_report, tmp_path):
    d = quick_report.to_dict()
    d["schema_version"] = 999
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(d))
    with pytest.raises(ValueError, match="schema_version"):
        load_report(path)


def test_default_output_name():
    name = default_output_name("ci.runner.07")
    assert name == "BENCH_ci-runner-07.json"
    assert default_output_name("a b/c") == "BENCH_a-b-c.json"


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


def _report_with_times(times_by_name):
    return BenchReport(
        cases=[
            CaseResult(name=name, times_sec=times, items=1, unit="items",
                       repeats=len(times), warmup=0)
            for name, times in times_by_name.items()
        ],
        host="test",
        platform={},
        created_unix=0.0,
    )


def test_compare_flags_synthetic_2x_slowdown():
    baseline = _report_with_times({"a": [1.0, 1.0], "b": [1.0, 1.0]})
    current = _report_with_times({"a": [2.0, 2.0], "b": [1.0, 1.0]})
    result = compare_reports(current, baseline, threshold=1.5)
    assert result.has_regressions
    assert [d.name for d in result.regressions] == ["a"]
    assert result.deltas[0].ratio == pytest.approx(2.0)
    assert "REGRESSION" in result.format_report()


def test_compare_detects_improvement_and_ok():
    baseline = _report_with_times({"a": [2.0], "b": [1.0]})
    current = _report_with_times({"a": [1.0], "b": [1.1]})
    result = compare_reports(current, baseline, threshold=1.5)
    assert not result.has_regressions
    assert [d.name for d in result.improvements] == ["a"]


def test_compare_handles_disjoint_cases():
    baseline = _report_with_times({"a": [1.0], "gone": [1.0]})
    current = _report_with_times({"a": [1.0], "new": [1.0]})
    result = compare_reports(current, baseline)
    assert result.only_current == ["new"]
    assert result.only_baseline == ["gone"]
    assert not result.has_regressions


def test_compare_errored_current_case_regresses():
    baseline = _report_with_times({"a": [1.0]})
    current = BenchReport(
        cases=[CaseResult(name="a", times_sec=[], items=0, unit="items",
                          repeats=0, warmup=0, error="RuntimeError: x")],
        host="test", platform={}, created_unix=0.0,
    )
    result = compare_reports(current, baseline)
    assert result.has_regressions
    assert result.errored == ["a"]


def test_compare_rejects_bad_threshold():
    r = _report_with_times({"a": [1.0]})
    with pytest.raises(ValueError):
        compare_reports(r, r, threshold=1.0)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_bench_run_quick_smoke(tmp_path, capsys):
    out = tmp_path / "BENCH_cli.json"
    code = main([
        "bench", "run", "--quick", "--filter", "ml.lstm_step",
        "--repeats", "1", "--output", str(out),
    ])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "ml.lstm_step" in stdout
    data = json.loads(out.read_text())
    assert data["schema_version"] == BENCH_SCHEMA_VERSION
    assert "ml.lstm_step" in data["cases"]
    # bench runs force telemetry on, so the shared obs histograms ride
    # along in the report
    assert "metrics" in data


def test_cli_bench_list(capsys):
    assert main(["bench", "run", "--list"]) == 0
    stdout = capsys.readouterr().out
    assert "ml.unroll" in stdout
    assert "sim.engine" in stdout


def test_cli_bench_compare(tmp_path, capsys):
    baseline = _report_with_times({"a": [1.0]})
    current = _report_with_times({"a": [2.5]})
    base_path = baseline.write(tmp_path / "base.json")
    cur_path = current.write(tmp_path / "cur.json")
    # warn-only by default
    assert main([
        "bench", "compare", str(cur_path), "--baseline", str(base_path),
    ]) == 0
    stdout = capsys.readouterr().out
    assert "REGRESSION" in stdout
    assert "warn-only" in stdout
    # fatal when asked
    assert main([
        "bench", "compare", str(cur_path), "--baseline", str(base_path),
        "--fail-on-regression",
    ]) == 1
    # missing baseline file is a usage error
    assert main([
        "bench", "compare", str(cur_path), "--baseline",
        str(tmp_path / "missing.json"),
    ]) == 2
