"""Tests for unit conversions."""

import pytest

from repro.simulation import units


def test_mbps_roundtrip():
    assert units.bytes_per_sec_to_mbps(
        units.mbps_to_bytes_per_sec(12.5)
    ) == pytest.approx(12.5)


def test_kbps_roundtrip():
    assert units.bytes_per_sec_to_kbps(
        units.kbps_to_bytes_per_sec(300.0)
    ) == pytest.approx(300.0)


def test_mbps_reference_value():
    # 8 Mb/s == 1 MB/s
    assert units.mbps_to_bytes_per_sec(8.0) == pytest.approx(1_000_000.0)


def test_ms_roundtrip():
    assert units.sec_to_ms(units.ms_to_sec(123.0)) == pytest.approx(123.0)


def test_bdp():
    # 1 MB/s * 100 ms = 100 kB
    assert units.bdp_bytes(1_000_000.0, 0.1) == pytest.approx(100_000.0)
