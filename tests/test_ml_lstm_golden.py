"""Golden-output tests: optimized hot paths vs preserved originals.

The optimized LSTM forward/step and the iBoxML unroll restructure GEMMs
(split weights, whole-sequence input projection, fused-tanh gates).  All
of that is algebraically the same function; the only legitimate drift is
floating-point association.  These tests pin the optimized paths to the
faithful pre-optimization implementations in ``repro.bench.reference``
at ≤1e-9 — far above fp-association noise (~1e-15), far below anything
behavioural.
"""

import numpy as np
import pytest

from repro.bench import reference
from repro.core.iboxml import IBoxMLConfig, IBoxMLModel
from repro.ml.lstm import LSTM
from repro.ml.model import GaussianSequenceModel

GOLDEN_ATOL = 1e-9


@pytest.fixture()
def stack():
    return LSTM(input_dim=4, hidden_dim=16, num_layers=2,
                rng=np.random.default_rng(7))


def test_forward_matches_reference(stack):
    x = np.random.default_rng(1).normal(size=(3, 40, 4))
    got = stack.forward(x)
    want = reference.reference_stack_forward(stack, x)
    np.testing.assert_allclose(got, want, atol=GOLDEN_ATOL, rtol=0)


def test_step_matches_reference(stack):
    rng = np.random.default_rng(2)
    states = ref_states = None
    for _ in range(25):
        x_t = rng.normal(size=(2, 4))
        got, states = stack.step(x_t, states)
        want, ref_states = reference.reference_stack_step(
            stack, x_t, ref_states
        )
        np.testing.assert_allclose(got, want, atol=GOLDEN_ATOL, rtol=0)
    for (h, c), (rh, rc) in zip(states, ref_states):
        np.testing.assert_allclose(h, rh, atol=GOLDEN_ATOL, rtol=0)
        np.testing.assert_allclose(c, rc, atol=GOLDEN_ATOL, rtol=0)


def test_gaussian_model_step_matches_reference():
    model = GaussianSequenceModel(
        input_dim=4, hidden_dim=16, num_layers=2, seed=3
    )
    rng = np.random.default_rng(4)
    states = ref_states = None
    for _ in range(10):
        x_t = rng.normal(size=(1, 4))
        mu, sigma, states = model.step(x_t, states)
        rmu, rsigma, ref_states = reference.reference_model_step(
            model, x_t, ref_states
        )
        np.testing.assert_allclose(mu, rmu, atol=GOLDEN_ATOL, rtol=0)
        np.testing.assert_allclose(sigma, rsigma, atol=GOLDEN_ATOL, rtol=0)


@pytest.fixture(scope="module")
def unroll_model():
    from repro.bench.suites import _unroll_model

    return _unroll_model(hidden=16, layers=2, n=120, seed=5)


@pytest.mark.parametrize("sample", [False, True])
def test_unroll_matches_reference(unroll_model, sample):
    """The free-running unroll: same delays, both modes, same RNG path."""
    model, feats = unroll_model
    got = model._unroll_features_inner(feats, sample, seed=42)
    want = reference.reference_unroll(model, feats, sample, seed=42)
    np.testing.assert_allclose(got, want, atol=GOLDEN_ATOL, rtol=0)


def test_unroll_float32_within_documented_tolerance(unroll_model):
    """The float32 fast path tracks float64 to the tolerance documented
    in IBoxMLConfig.unroll_dtype / PERFORMANCE.md (~1e-5 relative)."""
    model, feats = unroll_model
    f64 = model._unroll_features_inner(feats, True, seed=42)
    f32 = model._unroll_features_inner(feats, True, seed=42, dtype="float32")
    np.testing.assert_allclose(f32, f64, rtol=1e-4)


def test_unroll_dtype_config_roundtrip(tmp_path):
    """unroll_dtype is honoured from config and survives save/load."""
    from repro.trace.records import PacketRecord, Trace

    rng = np.random.default_rng(0)
    sent = np.cumsum(rng.exponential(1e-3, size=80))
    records = [
        PacketRecord(uid=i, seq=i, size=1000, sent_at=float(t),
                     delivered_at=float(t) + 0.02)
        for i, t in enumerate(sent)
    ]
    trace = Trace("dtype-rt", records, duration=float(sent[-1]) + 1.0)
    model = IBoxMLModel(IBoxMLConfig(
        hidden_dim=8, num_layers=1, epochs=1, rollout_rounds=1,
        unroll_dtype="float32",
    ))
    model.fit([trace])
    path = tmp_path / "model.npz"
    model.save(path)
    loaded = IBoxMLModel.load(path)
    assert loaded.config.unroll_dtype == "float32"
    np.testing.assert_allclose(
        loaded.predict_delays(trace, seed=1),
        model.predict_delays(trace, seed=1),
        rtol=1e-6,
    )
