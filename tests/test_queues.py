"""Tests for droptail and RED queues."""

import numpy as np
import pytest

from repro.simulation.packet import Packet
from repro.simulation.queues import DropTailQueue, REDQueue


def _packet(size=1500, seq=0):
    return Packet(flow_id="f", seq=seq, size=size)


class TestDropTail:
    def test_fifo_order(self):
        queue = DropTailQueue(capacity_bytes=10_000)
        packets = [_packet(seq=i) for i in range(5)]
        for p in packets:
            assert queue.push(p, now=0.0)
        popped = [queue.pop(0.0).seq for _ in range(5)]
        assert popped == [0, 1, 2, 3, 4]

    def test_byte_accounting(self):
        queue = DropTailQueue(capacity_bytes=10_000)
        queue.push(_packet(size=1000), 0.0)
        queue.push(_packet(size=500), 0.0)
        assert queue.bytes_queued == 1500
        queue.pop(0.0)
        assert queue.bytes_queued == 500

    def test_overflow_drops_arriving_packet(self):
        queue = DropTailQueue(capacity_bytes=3000)
        assert queue.push(_packet(size=1500), 0.0)
        assert queue.push(_packet(size=1500), 0.0)
        overflow = _packet(size=1500, seq=2)
        assert not queue.push(overflow, 0.0)
        assert overflow.dropped
        assert queue.stats.dropped_packets == 1
        # The queued packets are untouched.
        assert len(queue) == 2

    def test_exact_fit_admitted(self):
        queue = DropTailQueue(capacity_bytes=3000)
        assert queue.push(_packet(size=1500), 0.0)
        assert queue.push(_packet(size=1500), 0.0)  # exactly at capacity

    def test_pop_empty_returns_none(self):
        queue = DropTailQueue(capacity_bytes=1000)
        assert queue.pop(0.0) is None

    def test_peak_occupancy_tracked(self):
        queue = DropTailQueue(capacity_bytes=10_000)
        for i in range(4):
            queue.push(_packet(), 0.0)
        queue.pop(0.0)
        assert queue.stats.peak_occupancy_bytes == 4 * 1500

    def test_occupancy_samples_recorded_when_enabled(self):
        queue = DropTailQueue(capacity_bytes=10_000, record_occupancy=True)
        queue.push(_packet(), 1.0)
        queue.pop(2.0)
        times = [t for t, _ in queue.stats.occupancy_samples]
        occupancy = [o for _, o in queue.stats.occupancy_samples]
        assert times == [1.0, 2.0]
        assert occupancy == [1500, 0]

    def test_drop_rate(self):
        queue = DropTailQueue(capacity_bytes=1500)
        queue.push(_packet(), 0.0)
        queue.push(_packet(), 0.0)  # dropped
        assert queue.stats.drop_rate == pytest.approx(0.5)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity_bytes=0)


class TestRED:
    def test_under_min_threshold_never_drops(self):
        rng = np.random.default_rng(0)
        queue = REDQueue(capacity_bytes=100_000, rng=rng)
        for i in range(10):
            assert queue.push(_packet(seq=i), 0.0)
        assert queue.stats.dropped_packets == 0

    def test_hard_limit_always_drops(self):
        queue = REDQueue(capacity_bytes=3000)
        queue.push(_packet(), 0.0)
        queue.push(_packet(), 0.0)
        assert not queue.push(_packet(), 0.0)

    def test_probabilistic_drops_between_thresholds(self):
        rng = np.random.default_rng(1)
        queue = REDQueue(
            capacity_bytes=30_000,
            min_thresh=0.01,
            max_thresh=0.99,
            max_drop_prob=0.5,
            ewma_weight=1.0,  # track instantaneous occupancy
            rng=rng,
        )
        admitted = 0
        offered = 0
        for i in range(200):
            if queue.bytes_queued >= 15_000:
                queue.pop(0.0)
            offered += 1
            if queue.push(_packet(seq=i), 0.0):
                admitted += 1
        # Some but not all packets should be dropped in the ramp.
        assert 0 < queue.stats.dropped_packets < offered

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            REDQueue(capacity_bytes=1000, min_thresh=0.9, max_thresh=0.3)
