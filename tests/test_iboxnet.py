"""Tests for the iBoxNet model: fit, simulate, ablations."""

import numpy as np
import pytest

from repro.core import iboxnet
from repro.simulation import units
from repro.simulation.topology import (
    ConstantBandwidth,
    OnOffCT,
    PathConfig,
    run_flow,
)
from repro.trace.metrics import summarize

RATE = units.mbps_to_bytes_per_sec(10.0)
DELAY = units.ms_to_sec(25.0)


@pytest.fixture(scope="module")
def training_run():
    config = PathConfig(
        bandwidth=ConstantBandwidth(RATE),
        propagation_delay=DELAY,
        buffer_bytes=250_000,
        cross_traffic=(
            OnOffCT(
                peak_rate_bytes_per_sec=0.4 * RATE, mean_on=2.0, mean_off=2.0
            ),
        ),
    )
    return run_flow(config, "cubic", duration=15.0, seed=7)


@pytest.fixture(scope="module")
def model(training_run):
    return iboxnet.fit(training_run.trace)


class TestFit:
    def test_learns_sane_parameters(self, model):
        assert model.params.bandwidth_bytes_per_sec == pytest.approx(
            RATE, rel=0.1
        )
        assert model.params.propagation_delay == pytest.approx(
            DELAY + 1500 / RATE, rel=0.1
        )
        assert model.source_protocol == "cubic"
        assert 0 <= model.source_loss_rate < 0.2

    def test_model_is_frozen(self, model):
        with pytest.raises(Exception):
            model.params = None

    def test_str_rendering(self, model):
        text = str(model)
        assert "Mb/s" in text


class TestSimulate:
    def test_same_protocol_roundtrip(self, model, training_run):
        simulated = model.simulate("cubic", duration=15.0, seed=99)
        gt = summarize(training_run.trace)
        sim = summarize(simulated)
        assert sim.mean_rate_mbps == pytest.approx(
            gt.mean_rate_mbps, rel=0.25
        )
        assert sim.p95_delay_ms == pytest.approx(gt.p95_delay_ms, rel=0.35)

    def test_counterfactual_protocol_ordering(self, model, training_run):
        """Vegas on the learnt path must show its signature: far lower
        delay than Cubic, both on the learnt model and in truth."""
        sim_cubic = summarize(model.simulate("cubic", duration=15.0, seed=1))
        sim_vegas = summarize(model.simulate("vegas", duration=15.0, seed=1))
        assert sim_vegas.p95_delay_ms < sim_cubic.p95_delay_ms / 2
        gt_vegas = summarize(
            run_flow(training_run.config, "vegas", duration=15.0, seed=1).trace
        )
        assert sim_vegas.p95_delay_ms == pytest.approx(
            gt_vegas.p95_delay_ms, rel=0.5
        )

    def test_simulate_run_exposes_internals(self, model):
        result = model.simulate_run("cubic", duration=5.0, seed=2)
        assert result.queue_peak_bytes > 0
        assert result.trace.metadata["emulated"]

    def test_deterministic_given_seed(self, model):
        a = model.simulate("vegas", duration=5.0, seed=3)
        b = model.simulate("vegas", duration=5.0, seed=3)
        assert np.allclose(a.delivered_at, b.delivered_at, equal_nan=True)


class TestAblations:
    def test_without_cross_traffic(self, model):
        ablated = model.without_cross_traffic()
        assert not ablated.include_cross_traffic
        # Parameters are shared; only the CT injector is disabled.
        assert ablated.params == model.params
        sim_full = summarize(model.simulate("cubic", duration=10.0, seed=4))
        sim_ablated = summarize(
            ablated.simulate("cubic", duration=10.0, seed=4)
        )
        # Without competing traffic the flow gets more of the link.
        assert sim_ablated.mean_rate_mbps > sim_full.mean_rate_mbps

    def test_statistical_loss_baseline(self, model):
        baseline = model.with_statistical_loss(0.03)
        result = baseline.simulate_run("cubic", duration=10.0, seed=5)
        assert result.trace.loss_rate == pytest.approx(0.03, abs=0.015)
        assert result.cross_traffic_bytes == 0

    def test_emulator_config_propagates_everything(self, model):
        config = model.emulator_config()
        assert config.bandwidth_bytes_per_sec == model.params.bandwidth_bytes_per_sec
        assert config.ct_bin_edges == model.cross_traffic.bin_edges
