"""Tests for the §5.1 reordering predictors and delay modification."""

import numpy as np
import pytest

from repro.core import iboxnet
from repro.core.augmentation import (
    LinearReorderPredictor,
    LSTMReorderPredictor,
    apply_reordering,
    augment_iboxnet_trace,
    naive_random_reordering,
    reorder_features,
    reorder_labels,
    sample_reorder_flags,
)
from repro.trace.features import reordering_events


@pytest.fixture(scope="module")
def iboxnet_sim(vegas_traces):
    """A reordering-free iBoxNet simulation of the last cellular path."""
    model = iboxnet.fit(vegas_traces[-1])
    return model.simulate("vegas", duration=12.0, seed=123)


class TestLabelsAndFeatures:
    def test_labels_match_reordering_events(self, vegas_traces):
        trace = vegas_traces[0]
        labels = reorder_labels(trace)
        assert labels.shape == (trace.packets_delivered,)
        assert labels[0] == 0
        assert labels[1:].sum() == reordering_events(trace).sum()

    def test_features_shape(self, vegas_traces):
        trace = vegas_traces[0]
        features = reorder_features(trace)
        assert features.shape == (trace.packets_delivered, 3)

    def test_ground_truth_has_reordering(self, vegas_traces):
        # The cellular paths do reorder; otherwise §5.1 has nothing to find.
        rates = [reorder_labels(t).mean() for t in vegas_traces]
        assert max(rates) > 0.001

    def test_iboxnet_sim_has_none(self, iboxnet_sim):
        assert reorder_labels(iboxnet_sim).sum() == 0


class TestApplyReordering:
    def test_flagged_packets_become_events(self, iboxnet_sim):
        n = iboxnet_sim.packets_delivered
        flags = np.zeros(n, dtype=bool)
        flags[10] = True
        flags[100] = True
        augmented = apply_reordering(iboxnet_sim, flags)
        events = reorder_labels(augmented)
        # At least one flag lands; a flag is (correctly) skipped when the
        # pull-back would deliver the packet before its own send time.
        assert 1 <= events.sum() <= 2

    def test_delivery_never_precedes_send(self, iboxnet_sim):
        n = iboxnet_sim.packets_delivered
        rng = np.random.default_rng(0)
        flags = rng.random(n) < 0.05
        flags[0] = False
        augmented = apply_reordering(iboxnet_sim, flags, rng=rng)
        delays = augmented.delivered_at - augmented.sent_at
        assert (delays[augmented.delivered_mask] > 0).all()

    def test_original_trace_unmodified(self, iboxnet_sim):
        before = iboxnet_sim.delivered_at.copy()
        flags = np.ones(iboxnet_sim.packets_delivered, dtype=bool)
        flags[0] = False
        apply_reordering(iboxnet_sim, flags)
        assert np.array_equal(
            before, iboxnet_sim.delivered_at, equal_nan=True
        )

    def test_flag_count_checked(self, iboxnet_sim):
        with pytest.raises(ValueError):
            apply_reordering(iboxnet_sim, np.zeros(3, dtype=bool))


class TestNaiveRandom:
    def test_matches_requested_rate(self, iboxnet_sim):
        augmented = naive_random_reordering(
            iboxnet_sim, rate=0.05, rng=np.random.default_rng(1)
        )
        achieved = reorder_labels(augmented).mean()
        assert achieved == pytest.approx(0.05, abs=0.02)

    def test_invalid_rate_rejected(self, iboxnet_sim):
        with pytest.raises(ValueError):
            naive_random_reordering(iboxnet_sim, rate=1.5)


class TestPredictors:
    @pytest.fixture(scope="class")
    def linear(self, vegas_traces):
        return LinearReorderPredictor().fit(vegas_traces[:3])

    @pytest.fixture(scope="class")
    def lstm(self, vegas_traces):
        return LSTMReorderPredictor(epochs=6).fit(vegas_traces[:3])

    def test_linear_probabilities_valid(self, linear, vegas_traces):
        probs = linear.predict_proba(vegas_traces[3])
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_linear_roughly_calibrated(self, linear, vegas_traces):
        base_rate = np.concatenate(
            [reorder_labels(t) for t in vegas_traces[:3]]
        ).mean()
        probs = np.concatenate(
            [linear.predict_proba(t) for t in vegas_traces[:3]]
        )
        assert probs.mean() == pytest.approx(base_rate, rel=0.6)

    def test_lstm_calibration_correction(self, lstm, vegas_traces):
        base_rate = np.concatenate(
            [reorder_labels(t) for t in vegas_traces[:3]]
        ).mean()
        probs = np.concatenate(
            [lstm.predict_proba(t) for t in vegas_traces[:3]]
        )
        assert probs.mean() == pytest.approx(base_rate, rel=0.6)

    def test_lstm_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            LSTMReorderPredictor().predict_proba(None)

    def test_augmentation_restores_reordering(
        self, lstm, iboxnet_sim, vegas_traces
    ):
        augmented = augment_iboxnet_trace(iboxnet_sim, lstm, seed=5)
        achieved = reorder_labels(augmented).mean()
        gt_rate = np.mean(
            [reorder_labels(t).mean() for t in vegas_traces]
        )
        assert achieved > 0
        # Same order of magnitude as the ground-truth rate.
        assert achieved < 8 * max(gt_rate, 0.002)

    def test_sample_flags_deterministic(self):
        probs = np.full(100, 0.3)
        a = sample_reorder_flags(probs, np.random.default_rng(1))
        b = sample_reorder_flags(probs, np.random.default_rng(1))
        assert np.array_equal(a, b)
