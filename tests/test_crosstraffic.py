"""Tests for cross-traffic sources."""

import numpy as np
import pytest

from repro.simulation.crosstraffic import (
    OnOffSource,
    PoissonSource,
    RateReplaySource,
)
from repro.simulation.delaybox import Sink
from repro.simulation.engine import Simulator


class TestPoissonSource:
    def test_mean_rate(self):
        sim = Simulator()
        sink = Sink()
        PoissonSource(sim, sink, rate_bytes_per_sec=150_000.0, seed=1)
        sim.run(until=20.0)
        observed = sink.bytes_received / 20.0
        assert observed == pytest.approx(150_000.0, rel=0.1)

    def test_zero_rate_emits_nothing(self):
        sim = Simulator()
        sink = Sink()
        PoissonSource(sim, sink, rate_bytes_per_sec=0.0, seed=1)
        sim.run(until=5.0)
        assert sink.packets_received == 0

    def test_start_stop_window(self):
        sim = Simulator()
        times = []
        sink = Sink(on_packet=lambda p: times.append(sim.now))
        PoissonSource(
            sim, sink, rate_bytes_per_sec=1.5e6, seed=2, start=2.0, stop=4.0
        )
        sim.run(until=10.0)
        assert times
        assert min(times) >= 2.0
        assert max(times) <= 4.0 + 0.1

    def test_deterministic_given_seed(self):
        def run(seed):
            sim = Simulator()
            times = []
            sink = Sink(on_packet=lambda p: times.append(sim.now))
            PoissonSource(sim, sink, rate_bytes_per_sec=1e6, seed=seed)
            sim.run(until=2.0)
            return times

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestOnOffSource:
    def test_long_run_mean_rate(self):
        sim = Simulator()
        sink = Sink()
        OnOffSource(
            sim,
            sink,
            peak_rate_bytes_per_sec=1e6,
            mean_on=1.0,
            mean_off=1.0,
            seed=3,
        )
        sim.run(until=60.0)
        observed = sink.bytes_received / 60.0
        assert observed == pytest.approx(0.5e6, rel=0.25)

    def test_burstiness(self):
        """On/off traffic should have idle gaps far longer than the
        packet spacing during bursts."""
        sim = Simulator()
        times = []
        sink = Sink(on_packet=lambda p: times.append(sim.now))
        OnOffSource(
            sim,
            sink,
            peak_rate_bytes_per_sec=1.5e6,
            mean_on=0.5,
            mean_off=2.0,
            seed=4,
        )
        sim.run(until=30.0)
        gaps = np.diff(times)
        assert gaps.max() > 20 * np.median(gaps)


class TestRateReplaySource:
    def test_replays_configured_volume(self):
        sim = Simulator()
        sink = Sink()
        edges = np.arange(0.0, 10.5, 0.5)
        rates = np.full(len(edges) - 1, 300_000.0)
        RateReplaySource(sim, sink, edges, rates)
        sim.run(until=11.0)
        expected = 300_000.0 * 10.0
        assert sink.bytes_received == pytest.approx(expected, rel=0.01)

    def test_zero_bins_emit_nothing(self):
        sim = Simulator()
        times = []
        sink = Sink(on_packet=lambda p: times.append(sim.now))
        edges = [0.0, 1.0, 2.0, 3.0]
        rates = [1.5e6, 0.0, 1.5e6]
        RateReplaySource(sim, sink, edges, rates)
        sim.run(until=4.0)
        in_quiet_bin = [t for t in times if 1.0 <= t < 2.0]
        assert not in_quiet_bin

    def test_fractional_carryover(self):
        """Sub-packet-per-bin rates must accumulate instead of vanishing."""
        sim = Simulator()
        sink = Sink()
        edges = np.arange(0.0, 10.1, 0.1)
        rates = np.full(100, 3000.0)  # 300 bytes per 0.1 s bin = 0.2 pkt
        RateReplaySource(sim, sink, edges, rates)
        sim.run(until=11.0)
        assert sink.packets_received == pytest.approx(20, abs=1)

    def test_mismatched_edges_rejected(self):
        with pytest.raises(ValueError):
            RateReplaySource(Simulator(), Sink(), [0.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            RateReplaySource(Simulator(), Sink(), [0.0, 1.0], [-5.0])
