"""Interrupt checkpointing (SIGINT/SIGTERM mid-batch) and the cache
fit lock.

The executor-level contract: a KeyboardInterrupt (which the CLI's
signal handlers raise for SIGINT/SIGTERM) stops the batch, records
every unfinished job as ``Interrupted``, and still returns a full
result list — so the partial manifest is written and ``--resume``
re-runs exactly the jobs the signal cut short.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import Future

import pytest

from repro import obs
from repro.cli import (
    _CAUGHT_SIGNAL,
    _install_batch_signal_handlers,
    _interrupt_exit_code,
)
from repro.runtime import batch
from repro.runtime.cache import ProfileCache
from repro.runtime.executor import BatchExecutor, ExecutorConfig
from repro.runtime.jobs import JobSpec
from repro.runtime.batch import run_jobs
from repro.trace.io import save_trace


def _interrupt_on_one(spec: JobSpec):
    if spec.params["n"] == 1:
        raise KeyboardInterrupt
    return spec.params["n"] * 10


def _well_behaved(spec: JobSpec):
    return spec.params["n"] * 10


def _slow_job_zero(spec: JobSpec):
    if spec.params["n"] == 0:
        time.sleep(3.0)
    return spec.params["n"] * 10


def _specs(n):
    return [
        JobSpec(kind="test", job_id=f"job-{i}", label=f"job-{i}",
                params={"n": i})
        for i in range(n)
    ]


class TestExecutorInterrupt:
    def test_serial_interrupt_checkpoints_remaining_jobs(self):
        obs.configure(enabled=True)
        executor = BatchExecutor(ExecutorConfig(workers=1))
        results = executor.run(_specs(4), _interrupt_on_one)
        assert executor.interrupted
        assert len(results) == 4
        assert results[0].ok and results[0].value == 0
        for result in results[1:]:
            assert not result.ok
            assert result.error.error_type == "Interrupted"
            assert result.attempts == 0
        counters = obs.metrics_snapshot()["counters"]
        assert counters["executor.interrupted"] == 1

    def test_harvest_keeps_done_futures_drops_unfinished(self):
        executor = BatchExecutor(ExecutorConfig(workers=2))
        spec = _specs(1)[0]
        done = Future()
        done.set_result(("ok", 42, 0.01, None))
        harvested = executor._harvest_finished(done, spec, 1)
        assert harvested.ok
        assert harvested.value == 42
        assert executor._harvest_finished(Future(), spec, 1) is None
        cancelled = Future()
        cancelled.cancel()
        assert executor._harvest_finished(cancelled, spec, 1) is None

    def test_pool_interrupt_keeps_already_finished_results(self):
        # job-0 sleeps well past the SIGINT; jobs 1 and 2 finish almost
        # immediately in their own pool workers.  The interrupt lands
        # while the orchestrator waits on job-0 — the contract is that
        # the finished results survive and only job-0 is Interrupted.
        executor = BatchExecutor(ExecutorConfig(workers=3))
        timer = threading.Timer(
            1.0, os.kill, args=(os.getpid(), signal.SIGINT)
        )
        timer.start()
        try:
            results = executor.run(_specs(3), _slow_job_zero)
        finally:
            timer.cancel()
        assert executor.interrupted
        assert len(results) == 3
        by_id = {r.spec.job_id: r for r in results}
        assert not by_id["job-0"].ok
        assert by_id["job-0"].error.error_type == "Interrupted"
        assert by_id["job-1"].ok and by_id["job-1"].value == 10
        assert by_id["job-2"].ok and by_id["job-2"].value == 20

    def test_interrupted_run_resumes(self, tmp_path, monkeypatch):
        monkeypatch.setitem(batch._WORKERS, "test", _interrupt_on_one)
        specs = _specs(3)
        config = ExecutorConfig(workers=1)
        results, manifest = run_jobs(specs, config=config, command="batch")
        assert [r.ok for r in results] == [True, False, False]
        manifest_path = manifest.write(tmp_path)

        # Second run, signal-free: only the interrupted jobs re-execute.
        monkeypatch.setitem(batch._WORKERS, "test", _well_behaved)
        from repro.runtime.manifest import RunManifest

        resumed_results, resumed_manifest = run_jobs(
            specs,
            config=config,
            command="batch",
            resume_manifest=RunManifest.load(manifest_path),
        )
        assert [r.ok for r in resumed_results] == [True, True, True]
        assert [r.resumed for r in resumed_results] == [True, False, False]
        assert resumed_manifest.counts["ok"] == 3


class TestSignalHandlers:
    @pytest.fixture(autouse=True)
    def _restore_signals(self):
        old_int = signal.getsignal(signal.SIGINT)
        old_term = signal.getsignal(signal.SIGTERM)
        _CAUGHT_SIGNAL["signum"] = None
        yield
        signal.signal(signal.SIGINT, old_int)
        signal.signal(signal.SIGTERM, old_term)
        _CAUGHT_SIGNAL["signum"] = None

    @pytest.mark.parametrize("signum,code", [
        (signal.SIGINT, 130),
        (signal.SIGTERM, 143),
    ])
    def test_signal_becomes_keyboard_interrupt_and_exit_code(
        self, signum, code
    ):
        _install_batch_signal_handlers()
        with pytest.raises(KeyboardInterrupt):
            os.kill(os.getpid(), signum)
        assert _CAUGHT_SIGNAL["signum"] == signum
        assert _interrupt_exit_code() == code

    def test_default_exit_code_is_sigint(self):
        assert _interrupt_exit_code() == 130


# ----------------------------------------------------------------------
# Cache fit lock
# ----------------------------------------------------------------------
def _fit_once(args):
    cache_root, trace_path = args
    cache = ProfileCache(cache_root)
    _, hit = cache.fit_cached(trace_path)
    return hit


class TestCacheFitLock:
    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        from repro.datasets.pantheon import generate_run

        run = generate_run(seed=91, protocol="cubic", duration=3.0)
        path = tmp_path_factory.mktemp("fitlock") / "trace.npz"
        save_trace(run.trace, path)
        return path

    def test_concurrent_misses_fit_exactly_once(self, tmp_path, trace_path):
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        with ctx.Pool(3) as pool:
            hits = pool.map(
                _fit_once, [(tmp_path / "cache", trace_path)] * 3
            )
        # Whoever wins the per-key lock fits; everyone else reads the
        # winner's entry as a hit.  Never three duplicate fits.
        assert sorted(hits) == [False, True, True]
        cache = ProfileCache(tmp_path / "cache")
        assert len(cache) == 1

    def test_lockfile_location_is_outside_entry_shards(self, tmp_path):
        cache = ProfileCache(tmp_path / "cache")
        lock = cache.lock_path_for("ab" * 32)
        assert lock.parent == cache.root / "locks"
        assert lock.suffix == ".lock"
