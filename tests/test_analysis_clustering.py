"""Tests for k-means, t-SNE and cross-correlation features."""

import numpy as np
import pytest

from repro.analysis.crosscorr import (
    instance_feature_vector,
    max_normalized_crosscorr,
    run_series,
)
from repro.analysis.kmeans import KMeans, cluster_purity
from repro.analysis.tsne import tsne


def _blobs(seed=0, n_per=20, separation=8.0):
    rng = np.random.default_rng(seed)
    centres = np.array([[0, 0], [separation, 0], [0, separation]])
    points = np.concatenate(
        [c + rng.normal(size=(n_per, 2)) for c in centres]
    )
    labels = np.repeat([0, 1, 2], n_per)
    return points, labels


class TestKMeans:
    def test_recovers_separated_blobs(self):
        points, truth = _blobs()
        model = KMeans(n_clusters=3, seed=1).fit(points)
        assert cluster_purity(model.labels_, truth) == 1.0

    def test_predict_assigns_nearest(self):
        points, _ = _blobs()
        model = KMeans(n_clusters=3, seed=1).fit(points)
        new_labels = model.predict(points)
        assert np.array_equal(new_labels, model.labels_)

    def test_inertia_decreases_with_more_clusters(self):
        points, _ = _blobs()
        one = KMeans(n_clusters=1, seed=0).fit(points).inertia_
        three = KMeans(n_clusters=3, seed=0).fit(points).inertia_
        assert three < one

    def test_deterministic_given_seed(self):
        points, _ = _blobs()
        a = KMeans(n_clusters=3, seed=5).fit(points)
        b = KMeans(n_clusters=3, seed=5).fit(points)
        assert np.array_equal(a.labels_, b.labels_)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)
        with pytest.raises(ValueError):
            KMeans(n_clusters=5).fit(np.zeros((3, 2)))
        with pytest.raises(RuntimeError):
            KMeans(n_clusters=2).predict(np.zeros((2, 2)))

    def test_duplicate_points_handled(self):
        points = np.zeros((10, 2))
        model = KMeans(n_clusters=2, seed=0).fit(points)
        assert len(model.labels_) == 10


class TestClusterPurity:
    def test_perfect(self):
        assert cluster_purity([0, 0, 1, 1], [5, 5, 9, 9]) == 1.0

    def test_half(self):
        assert cluster_purity([0, 0, 0, 0], [1, 1, 2, 2]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            cluster_purity([0], [0, 1])


class TestTSNE:
    def test_preserves_blob_structure(self):
        points, truth = _blobs(n_per=12)
        embedding = tsne(points, perplexity=8, n_iter=250, seed=0)
        assert embedding.shape == (36, 2)
        # Same-cluster distances smaller than cross-cluster on average.
        same, cross = [], []
        for i in range(len(points)):
            for j in range(i + 1, len(points)):
                distance = np.linalg.norm(embedding[i] - embedding[j])
                (same if truth[i] == truth[j] else cross).append(distance)
        assert np.mean(same) < np.mean(cross)

    def test_kmeans_on_embedding_recovers_clusters(self):
        points, truth = _blobs(n_per=10)
        embedding = tsne(points, perplexity=6, n_iter=250, seed=1)
        labels = KMeans(n_clusters=3, seed=0).fit(embedding).labels_
        assert cluster_purity(labels, truth) >= 0.9

    def test_input_validation(self):
        with pytest.raises(ValueError):
            tsne(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            tsne(np.zeros(5))


class TestCrossCorr:
    def test_identical_series_score_one(self):
        rng = np.random.default_rng(0)
        series = rng.normal(size=60)
        assert max_normalized_crosscorr(series, series) == pytest.approx(
            1.0, abs=1e-9
        )

    def test_lag_recovered(self):
        rng = np.random.default_rng(1)
        base = rng.normal(size=60)
        shifted = np.roll(base, 3)
        assert max_normalized_crosscorr(base, shifted, max_lag=5) > 0.9

    def test_uncorrelated_scores_low(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=200)
        b = rng.normal(size=200)
        assert max_normalized_crosscorr(a, b) < 0.4

    def test_constant_series_scores_zero(self):
        assert max_normalized_crosscorr(np.ones(30), np.ones(30)) == 0.0

    def test_short_series(self):
        assert max_normalized_crosscorr(np.ones(1), np.ones(1)) == 0.0

    def test_feature_vector_length(self, cubic_trace, vegas_run):
        references = [cubic_trace, vegas_run.trace]
        features = instance_feature_vector(cubic_trace, references)
        assert features.shape == (4,)
        # Correlation with itself dominates.
        assert features[0] > 0.95

    def test_run_series_shapes(self, cubic_trace):
        rates, delays = run_series(cubic_trace, bin_width=0.5)
        assert len(rates) == len(delays)
