"""Tests for the experiment drivers (tiny scales; the full versions run in
benchmarks/)."""

import numpy as np
import pytest

from repro.datasets.pantheon import generate_dataset
from repro.experiments import (
    fig2_ensemble,
    fig3_ablations,
    fig5_reordering,
    fig8_discovery,
    speed,
)
from repro.experiments.common import Scale

TINY = Scale(
    n_paths=4, duration=10.0, runs_per_instance=2, n_rtc_calls=6, ml_epochs=4
)


@pytest.fixture(scope="module")
def tiny_ab_dataset():
    return generate_dataset(
        n_paths=TINY.n_paths,
        protocols=("cubic", "vegas"),
        duration=TINY.duration,
        base_seed=10,
    )


@pytest.fixture(scope="module")
def tiny_vegas_dataset():
    return generate_dataset(
        n_paths=TINY.n_paths,
        protocols=("vegas",),
        duration=TINY.duration,
        base_seed=60,
    )


class TestScale:
    def test_paper_scale_larger_than_quick(self):
        quick, paper = Scale.quick(), Scale.paper()
        assert paper.n_paths > quick.n_paths
        assert paper.duration >= quick.duration


class TestFig2:
    def test_result_structure(self, tiny_ab_dataset):
        result = fig2_ensemble.run(TINY, dataset=tiny_ab_dataset)
        assert set(result.scatter) == {
            "cubic_gt", "cubic_iboxnet", "vegas_gt", "vegas_iboxnet"
        }
        for points in result.scatter.values():
            assert len(points) == TINY.n_paths
        assert "Fig. 2" in result.format_report()

    def test_ks_entries_complete(self, tiny_ab_dataset):
        result = fig2_ensemble.run(TINY, dataset=tiny_ab_dataset)
        for protocol in ("cubic", "vegas"):
            assert set(result.ks[protocol]) == {
                "p95_delay_ms", "loss_percent", "mean_rate_mbps"
            }


class TestFig3:
    def test_three_variants_evaluated(self, tiny_ab_dataset):
        result = fig3_ablations.run(TINY, dataset=tiny_ab_dataset)
        assert set(result.errors) == {
            "iBoxNet (full)", "without CT", "statistical loss"
        }
        for variant in result.errors:
            assert np.isfinite(result.aggregate_error(variant))
        assert "Fig. 3" in result.format_report()


class TestFig5:
    def test_methods_present(self, tiny_vegas_dataset):
        result = fig5_reordering.run(
            TINY, dataset=tiny_vegas_dataset, include_iboxml=False
        )
        assert {"ground_truth", "iboxnet", "iboxnet_linear",
                "iboxnet_lstm"} <= set(result.rates)
        assert result.mean_rate("iboxnet") == 0.0
        assert result.mean_rate("ground_truth") > 0.0
        assert "Fig. 5" in result.format_report()


class TestFig8:
    def test_reordering_discovered_and_restored(self, tiny_vegas_dataset):
        result = fig8_discovery.run(TINY, dataset=tiny_vegas_dataset)
        assert "a" in result.missing_in_iboxnet()
        table = result.reordering_pattern_table()
        assert table
        pattern_a = [row for row in table if row[0] == "a"]
        assert pattern_a and pattern_a[0][2] > 0  # augmentation restores it
        assert "Fig. 8" in result.format_report()


class TestSpeed:
    def test_costs_measured_and_positive(self):
        result = speed.run(TINY)
        assert result.iboxml_sec_per_packet > 0
        assert result.iboxnet_sec_per_packet > 0
        assert result.paper_size_params > 1_500_000
        assert result.paper_size_slowdown > 1.0
        assert "simulation speed" in result.format_report()
