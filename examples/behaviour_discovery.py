#!/usr/bin/env python
"""Behaviour discovery and simulator repair (the paper's §5.1 loop).

The perpetual-renewal recipe: (1) SAX-discretize real and simulated
traces, (2) diff their pattern inventories to *discover* behaviours the
simulator is missing, (3) train an ML model to predict the missing
behaviour, (4) augment the simulator with it, and (5) re-run the diff to
confirm the gap is closed.

On our cellular traces the discovered gap is packet reordering (SAX
pattern 'a' — negative inter-packet arrival deltas), exactly as in the
paper's Fig. 8.
"""

import numpy as np

from repro.core import iboxnet
from repro.core.augmentation import LSTMReorderPredictor, augment_iboxnet_trace
from repro.datasets import pantheon
from repro.discovery.motifs import aggregate_frequencies, diff_patterns
from repro.discovery.sax import positive_delta_breakpoints, sax_inter_arrival
from repro.trace.features import arrival_order_deltas


def main() -> None:
    dataset = pantheon.generate_dataset(
        n_paths=6, protocols=("vegas",), duration=20.0, base_seed=60
    )
    train_ds, test_ds = dataset.split(0.5)

    # A common SAX alphabet anchored on the training corpus.
    reference = np.concatenate(
        [arrival_order_deltas(t) for t in train_ds.traces()]
    )
    breakpoints = positive_delta_breakpoints(reference)

    # Step 1+2: discover what iBoxNet is missing.
    sims = [
        iboxnet.fit(run.trace).simulate(
            "vegas", duration=20.0, seed=run.seed + 77
        )
        for run in test_ds.runs
    ]
    gt_sax = [
        sax_inter_arrival(t, breakpoints=breakpoints)
        for t in test_ds.traces()
    ]
    sim_sax = [sax_inter_arrival(t, breakpoints=breakpoints) for t in sims]
    diff = diff_patterns(gt_sax, sim_sax, length=1)
    print("behaviours in reality but not in the simulator:")
    for pattern, freq in diff.only_ground_truth.items():
        print(f"  pattern {pattern!r}: {100 * freq:.2f}% of packets")

    # Step 3+4: learn the behaviour and augment the simulator.
    predictor = LSTMReorderPredictor(epochs=8).fit(train_ds.traces())
    augmented = [
        augment_iboxnet_trace(s, predictor, seed=i) for i, s in enumerate(sims)
    ]

    # Step 5: the gap is closed.
    aug_sax = [sax_inter_arrival(t, breakpoints=breakpoints) for t in augmented]
    for name, corpus in (("ground truth", gt_sax),
                         ("iBoxNet", sim_sax),
                         ("iBoxNet+ML", aug_sax)):
        freq = aggregate_frequencies(corpus, 1).get("a", 0.0)
        print(f"  reordering pattern 'a' in {name:>12s}: {100 * freq:.2f}%")


if __name__ == "__main__":
    main()
