#!/usr/bin/env python
"""RTC service quality prediction (the paper's §5.2 / Table 1 use case).

A conferencing service wants to predict the distribution of per-call
tail delay from call telemetry, so it can evaluate changes offline.
iBoxML learns the delay model from recorded calls; the §3 cross-traffic
estimate — pure domain knowledge, no extra instrumentation — measurably
tightens the predicted p95-delay distribution.
"""

import numpy as np

from repro.experiments import table1_rtc
from repro.experiments.common import Scale


def main() -> None:
    result = table1_rtc.run(Scale.quick())
    print(result.format_report())

    print("\nper-call p95 delay (ms), sorted:")
    print(f"  ground truth : {np.round(np.sort(result.gt_p95_ms))}")
    for label in ("No", "Yes"):
        print(
            f"  iBoxML CT={label:<3s}: "
            f"{np.round(np.sort(result.predicted_p95_ms[label]))}"
        )


if __name__ == "__main__":
    main()
