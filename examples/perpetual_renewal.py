#!/usr/bin/env python
"""One turn of the perpetual-renewal loop (§5.3).

The paper's closing argument is that simulators should not be artifacts
but *processes*: new data flows in, discovery diffs reality against the
simulator, domain experts pick the gaps that matter, ML fills them, and
the cycle repeats.  This example runs one full turn against our own
iBoxNet emulator — and, pleasingly, the loop finds not only the reordering
gap the paper found, but also a second behaviour (the emulator's overly
regular packet spacing) that it honestly reports as still unrepaired:
the starting point for the *next* turn.
"""

from repro.core import iboxnet
from repro.core.renewal import renewal_cycle
from repro.datasets import pantheon


def main() -> None:
    dataset = pantheon.generate_dataset(
        n_paths=6, protocols=("vegas",), duration=15.0, base_seed=60
    )
    train_ds, test_ds = dataset.split(0.5)

    # The simulator under renewal: plain iBoxNet emulations of test paths.
    simulated = [
        iboxnet.fit(run.trace).simulate(
            "vegas", duration=15.0, seed=run.seed + 77
        )
        for run in test_ds.runs
    ]

    report = renewal_cycle(
        ground_truth=test_ds.traces(),
        simulated=simulated,
        training_traces=train_ds.traces(),
        seed=1,
    )
    print(report.format_report())
    print()
    for behaviour in report.missing_before:
        print(
            f"  behaviour {behaviour!r}: "
            f"{report.recovery(behaviour):.0%} of missing mass recovered"
        )
    print(
        "\n=> feed the unrepaired behaviours to the next augmentation, "
        "add new data, repeat: perpetual renewal."
    )


if __name__ == "__main__":
    main()
