#!/usr/bin/env python
"""Deployment-impact analysis: does the new protocol hurt everyone else?

A/B verdicts usually report how the *treatment* fares; the question
operators actually fear is the reverse — what does deploying it do to the
traffic already on the path?  With iBox's learnt models and the
adaptive-cross-traffic extension, the answer comes from simulation:

1. learn the path (including a competing Cubic flow) from one trace;
2. re-express the cross traffic as closed-loop flows (adaptive CT);
3. pit each candidate protocol against that background and measure both
   sides: candidate goodput, background goodput, Jain fairness.
"""

from repro.analysis.fairness import run_competing_flows
from repro.simulation import units
from repro.simulation.topology import ConstantBandwidth, PathConfig


def main() -> None:
    rate = units.mbps_to_bytes_per_sec(12.0)
    delay = units.ms_to_sec(20.0)
    path = PathConfig(
        bandwidth=ConstantBandwidth(rate),
        propagation_delay=delay,
        buffer_bytes=rate * 2 * delay * 4.0,
    )

    print("candidate vs one incumbent Cubic flow on a 12 Mb/s path:\n")
    print(f"{'candidate':>10s} {'candidate Mb/s':>15s} "
          f"{'incumbent Mb/s':>15s} {'Jain':>6s}")
    for candidate in ("cubic", "vegas", "bbr", "ledbat", "rtc"):
        result = run_competing_flows(
            path, ["cubic", candidate], duration=15.0, seed=7
        )
        incumbent = result.goodputs["cubic-0"] * 8 / 1e6
        challenger = result.goodputs[f"{candidate}-1"] * 8 / 1e6
        print(f"{candidate:>10s} {challenger:>15.2f} "
              f"{incumbent:>15.2f} {result.fairness:>6.2f}")

    print(
        "\n=> loss-based candidates split the link; delay-based ones"
        "\n   (Vegas, LEDBAT, RTC) concede it — the deployment decision"
        "\n   is a fairness trade-off, quantifiable before any flighting."
    )


if __name__ == "__main__":
    main()
