#!/usr/bin/env python
"""A tour of the trace toolkit: record, persist, inspect, feature-extract.

Shows the data layer a downstream user works with: run any protocol over
any path, save the end-to-end trace to disk (JSONL for inspection, NPZ
for datasets), reload it, and compute the features the iBox estimators
and models consume.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.simulation import units
from repro.simulation.topology import (
    ConstantBandwidth,
    OnOffCT,
    PathConfig,
    run_flow,
)
from repro.trace import (
    load_trace,
    p95_delay_ms,
    reordering_rate_windows,
    save_trace,
    sending_rate_at_packets,
)


def main() -> None:
    config = PathConfig(
        bandwidth=ConstantBandwidth(units.mbps_to_bytes_per_sec(12.0)),
        propagation_delay=units.ms_to_sec(30.0),
        buffer_bytes=200_000,
        reorder_prob=0.01,
        reorder_extra_delay=units.ms_to_sec(8.0),
        cross_traffic=(
            OnOffCT(
                peak_rate_bytes_per_sec=units.mbps_to_bytes_per_sec(4.0),
                mean_on=2.0,
                mean_off=3.0,
            ),
        ),
    )
    run = run_flow(config, "bbr", duration=10.0, seed=5)
    trace = run.trace
    print(f"recorded: {trace}")
    print(f"  p95 delay: {p95_delay_ms(trace):.0f} ms")
    print(f"  queue peak: {run.queue_peak_bytes} bytes, "
          f"drops: {run.queue_drop_packets}")

    with tempfile.TemporaryDirectory() as tmp:
        for suffix in (".jsonl", ".npz"):
            path = Path(tmp) / f"trace{suffix}"
            save_trace(trace, path)
            loaded = load_trace(path)
            assert len(loaded) == len(trace)
            print(f"  round-tripped {len(loaded)} records via {suffix} "
                  f"({path.stat().st_size / 1024:.0f} kB)")

    rates = sending_rate_at_packets(trace)
    print(f"  sending rate feature: median "
          f"{units.bytes_per_sec_to_mbps(float(np.median(rates))):.2f} Mb/s")
    windows = reordering_rate_windows(trace)
    print(f"  reordering rate over 1 s windows: mean {windows.mean():.4f}")


if __name__ == "__main__":
    main()
