#!/usr/bin/env python
"""Quickstart: learn a network model from one trace, run a counterfactual.

The complete iBox loop in ~30 lines:

1. obtain an end-to-end trace of a *control* protocol (here: TCP Cubic on
   a synthetic Pantheon-like cellular path — ground truth we can check
   against, since the simulator knows the real parameters);
2. ``iboxnet.fit`` learns the path model: bottleneck bandwidth, propagation
   delay, buffer size and the competing cross-traffic time series;
3. ``model.simulate`` answers the counterfactual: *what would TCP Vegas
   have experienced on this same path at this same time?*
"""

from repro.core import iboxnet
from repro.datasets import pantheon
from repro.simulation import units

DURATION = 20.0


def main() -> None:
    # 1. A ground-truth Cubic run over a randomized cellular path.
    run = pantheon.generate_run(seed=42, protocol="cubic", duration=DURATION)
    print("ground-truth Cubic run:")
    print(f"  {run.trace.summary()}")

    # 2. Learn the path model from the trace alone.
    model = iboxnet.fit(run.trace)
    print("\nlearnt iBoxNet model (from the trace, no ground-truth access):")
    print(f"  {model}")
    true_rate = units.bytes_per_sec_to_mbps(run.config.bandwidth.nominal_rate)
    print(f"  (true mean bandwidth was {true_rate:.2f} Mb/s, "
          f"true propagation delay "
          f"{units.sec_to_ms(run.config.propagation_delay):.1f} ms)")

    # 3. Counterfactual: replace Cubic with Vegas, keep the path the same.
    predicted = model.simulate("vegas", duration=DURATION, seed=7)
    print("\npredicted Vegas behaviour on the learnt path:")
    print(f"  {predicted.summary()}")

    # Because this is a simulator, we can check the counterfactual against
    # an actual Vegas run on the true path — impossible on a real network.
    from repro.simulation.topology import run_flow

    actual = run_flow(run.config, "vegas", duration=DURATION, seed=7)
    print("\nactual Vegas behaviour on the true path (normally unknowable):")
    print(f"  {actual.trace.summary()}")


if __name__ == "__main__":
    main()
