#!/usr/bin/env python
"""The §6 open challenges, exercised: validity limits, realism, adaptive CT.

Three questions every simulator user should ask, answered with the
extension modules:

1. *Can I trust the model on this input?* — score the test stream against
   the training-support envelope (`repro.core.validity`).
2. *Is the simulator's output realistic?* — ask a discriminator to tell
   simulated windows from real ones (`repro.analysis.realism`).
3. *Does the cross traffic fight back?* — express learnt CT as closed-loop
   Cubic flows and watch it yield to a greedy sender
   (`repro.core.adaptive_ct`).
"""

from repro.analysis.realism import realism_test
from repro.core import iboxnet
from repro.core.adaptive_ct import adaptivity_demonstration, fit_adaptive_ct
from repro.core.validity import ValidityRegion
from repro.datasets import pantheon
from repro.simulation import units
from repro.simulation.topology import (
    ConstantBandwidth,
    FlowCT,
    PathConfig,
    run_flow,
)


def main() -> None:
    dataset = pantheon.generate_dataset(
        n_paths=4, protocols=("vegas",), duration=12.0, base_seed=60
    )
    traces = dataset.traces()

    # 1. Limits of model validity.
    region = ValidityRegion().fit(traces[:3])
    print("== validity ==")
    print("in-distribution test trace:")
    print(region.score(traces[3]).format_report())
    blaster_config = PathConfig(
        bandwidth=ConstantBandwidth(units.mbps_to_bytes_per_sec(40.0)),
        propagation_delay=0.02,
        buffer_bytes=1_000_000,
    )
    blaster = run_flow(
        blaster_config, "cbr", duration=6.0, seed=1,
        sender_kwargs={"rate_bytes_per_sec": units.mbps_to_bytes_per_sec(35.0)},
    ).trace
    print("35 Mb/s CBR blaster (nothing like the training data):")
    print(region.score(blaster).format_report())

    # 2. Test for realism.
    print("\n== realism ==")
    sims = [
        iboxnet.fit(t).simulate("vegas", duration=12.0, seed=7 + i)
        for i, t in enumerate(traces[:2])
    ]
    print("iBoxNet vs ground truth:",
          realism_test(traces[:2], sims, seed=2).format_report())

    # 3. Adaptive cross traffic.
    print("\n== adaptive cross traffic ==")
    shared = PathConfig(
        bandwidth=ConstantBandwidth(units.mbps_to_bytes_per_sec(10.0)),
        propagation_delay=0.025,
        buffer_bytes=250_000,
        cross_traffic=(FlowCT(protocol="cubic"),),
    )
    run = run_flow(shared, "cubic", duration=12.0, seed=3)
    model = iboxnet.fit(run.trace)
    adaptive = fit_adaptive_ct(model, run.trace, max_flows=2, seed=3)
    print(f"learnt: {adaptive}")
    shares = adaptivity_demonstration(adaptive, duration=8.0, seed=4)
    for protocol, rate in shares.items():
        print(f"  main-flow goodput vs adaptive CT, {protocol:>5s}: "
              f"{units.bytes_per_sec_to_mbps(rate):.2f} Mb/s")
    print("  (the cross traffic backs off more against the greedy sender)")


if __name__ == "__main__":
    main()
