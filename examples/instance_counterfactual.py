#!/usr/bin/env python
"""Instance-level counterfactual analysis (the paper's Fig. 4 use case).

Something happened on a path at a specific time — say, a burst of
competing traffic.  An iBoxNet model learnt from a single Cubic run in
that window captures the *instance*: not just the path's static character
but the cross-traffic pattern it experienced.  Running another protocol
over the learnt instance model answers "what would protocol B have seen
right then?" — verified here by clustering runs against ground truth.
"""

from repro.experiments import fig4_instance
from repro.experiments.common import Scale


def main() -> None:
    result = fig4_instance.run(Scale.quick(), compute_tsne=True)
    print(result.format_report())

    print("\ncluster assignment detail:")
    inst = result.instance
    for i in range(len(inst.true_pattern)):
        source = "iBoxNet" if inst.is_simulated[i] else "GT"
        print(
            f"  run {i:2d}: CT pattern {inst.patterns[inst.true_pattern[i]]}"
            f" ({source:>7s}) -> cluster {inst.cluster_labels[i]}"
        )

    if result.purity == 1.0:
        print(
            "\n=> every simulated run clustered with the ground-truth runs "
            "of its cross-traffic instance: the learnt models carry "
            "instance-specific information, enabling counterfactuals."
        )


if __name__ == "__main__":
    main()
