#!/usr/bin/env python
"""The control-loop bias, demonstrated and repaired (the paper's §4.2).

Train a pure-ML network model on traces from a delay-sensitive RTC
application and it learns a dangerous lie: *high sending rate comes with
low delay* — true in the training data only because the control loop
causes it.  Ask that model about an open-loop CBR blaster and it cheerily
predicts low delay while the real network is drowning.

Feeding the §3 cross-traffic estimate as an extra input breaks the false
correlation: now the model can attribute delay to competition instead of
to the sender's own rate.
"""

from repro.experiments import fig7_control_loop
from repro.experiments.common import Scale


def main() -> None:
    result = fig7_control_loop.run(Scale.quick())
    print(result.format_report())

    print("\ndelay histograms (frequency %, 20 ms bins):")
    for panel in ("ground_truth", "iboxml_no_ct", "iboxml_with_ct"):
        edges, freqs = result.histogram(panel, bins=15, max_delay=0.3)
        bars = "".join(
            "#" if f >= 10 else ("+" if f >= 2 else ".") for f in freqs
        )
        print(f"  {panel:>15s} |{bars}| 0..300ms")

    print(
        "\n=> the no-CT model never predicts the congestion the CBR sender"
        "\n   actually causes; the CT-augmented model recovers the"
        "\n   high-delay mode, mitigating the control-loop bias."
    )


if __name__ == "__main__":
    main()
