#!/usr/bin/env python
"""Ensemble A/B testing inside the simulator (the paper's Fig. 2 use case).

A transport team wants to know how TCP Vegas would perform for their users
before flighting it.  iBox's ensemble test answers this from existing Cubic
telemetry alone: fit one iBoxNet model per collected Cubic trace, run the
candidate protocol over every learnt model, and compare the predicted
performance distribution against reality.
"""

from repro.experiments import fig2_ensemble
from repro.experiments.common import Scale


def main() -> None:
    result = fig2_ensemble.run(Scale.quick(), base_seed=10)
    print(result.format_report())

    print("\nper-run scatter (rate Mb/s, p95 delay ms, loss %):")
    for series, points in result.scatter.items():
        print(f"  {series}:")
        for rate, p95, loss in points:
            print(f"    ({rate:5.2f}, {p95:6.0f}, {loss:5.2f})")

    for protocol in ("cubic", "vegas"):
        verdict = "matches" if result.ks_match(protocol) else "DIFFERS from"
        print(
            f"\n=> simulated {protocol} distribution {verdict} ground truth"
            f" (two-sample KS, alpha=0.05)"
        )


if __name__ == "__main__":
    main()
