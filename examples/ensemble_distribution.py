#!/usr/bin/env python
"""Sampling new networks from a learnt parameter distribution (§3.1).

The paper's ensemble test reused parameter combinations from individual
training traces, noting that *ideally* one would learn the joint
distribution over (bandwidth, delay, buffer, cross traffic) and sample
fresh combinations.  This example does exactly that: fit iBoxNet models
over a training corpus, learn the joint log-space distribution, sample
brand-new (but statistically consistent) paths, and A/B two protocols
over networks that never existed.
"""

import numpy as np

from repro.core import iboxnet
from repro.core.ensemble import fit_parameter_distribution
from repro.datasets import pantheon
from repro.simulation import units
from repro.trace.metrics import summarize


def main() -> None:
    dataset = pantheon.generate_dataset(
        n_paths=6, protocols=("cubic",), duration=15.0, base_seed=10
    )
    models = [iboxnet.fit(run.trace) for run in dataset.runs]
    distribution = fit_parameter_distribution(models)

    print("learnt joint distribution over", len(models), "fitted models")
    print(
        "  corr(log b, log B) ="
        f" {distribution.correlation('bandwidth', 'buffer'):+.2f}"
        "  (faster paths carry bigger buffers)"
    )
    print(
        "  corr(log b, log CT) ="
        f" {distribution.correlation('bandwidth', 'ct_level'):+.2f}"
    )

    sampled = distribution.sample(5, seed=99)
    print("\n5 sampled networks (never observed, statistically consistent):")
    for model in sampled:
        print(f"  {model}")

    print("\nA/B over the sampled ensemble:")
    for protocol in ("cubic", "vegas"):
        p95s, rates = [], []
        for k, model in enumerate(sampled):
            summary = summarize(
                model.simulate(protocol, duration=15.0, seed=200 + k)
            )
            p95s.append(summary.p95_delay_ms)
            rates.append(summary.mean_rate_mbps)
        print(
            f"  {protocol:>6s}: rate {np.mean(rates):5.2f} Mb/s, "
            f"p95 delay {np.nanmean(p95s):6.0f} ms"
        )
    print("\n(the Vegas-vs-Cubic delay/throughput trade-off carries over "
          "to unseen sampled networks)")


if __name__ == "__main__":
    main()
