"""Table 1 — cross-traffic input improves iBoxML on RTC data.

Paper claim reproduced: feeding the §3 cross-traffic estimate as an extra
iBoxML input reduces the deviation between the predicted and ground-truth
distributions of per-call 95th-percentile delays.
"""

import pytest

from repro.experiments import table1_rtc
from repro.experiments.common import Scale


@pytest.fixture(scope="module")
def result():
    return table1_rtc.run(Scale.quick(), base_seed=200)


def test_table1_rtc(benchmark, result, report_writer):
    benchmark.pedantic(
        table1_rtc.run,
        args=(Scale.quick(),),
        kwargs={"base_seed": 200},
        rounds=1,
        iterations=1,
    )
    report_writer("table1_rtc", result.format_report())


def test_table1_both_rows_present(result):
    assert set(result.rows) == {"No", "Yes"}
    for row in result.rows.values():
        assert row.mean_ms >= 0


def test_table1_ct_reduces_error(result):
    """The table's point: the 'Yes' row dominates on the headline
    columns.  (At quick scale we require improvement on the mean and at
    least parity on the median, rather than every single column.)"""
    assert result.rows["Yes"].mean_ms < result.rows["No"].mean_ms
    assert result.improvement() > 0.05


def test_table1_errors_in_paper_ballpark(result):
    """The paper reports errors between ~3 and ~63 ms (5-45 %); our
    synthetic substrate should land in the same order of magnitude."""
    for row in result.rows.values():
        assert row.p50_ms < 150.0
