"""Benchmark-suite plumbing.

Every benchmark runs one paper experiment end to end (via
``repro.experiments``), asserts the *shape* of the paper's result — who
wins, which ablation hurts, where the missing behaviour appears — and
writes the rendered report to ``benchmarks/reports/`` so EXPERIMENTS.md can
be cross-checked against a fresh run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_writer():
    REPORTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (REPORTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return write
