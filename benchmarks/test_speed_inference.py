"""§4.2 "Simulation Speed" — per-packet inference cost.

Paper claim reproduced structurally: a paper-sized (4-layer, ~2 M param)
LSTM costs on the order of a millisecond per packet, bounding emulation to
single-digit-to-tens of Mb/s with 1500-byte packets, while the iBoxNet
emulator is far cheaper per packet.  (The paper: 2.2 ms/packet on a V100
=> 5.5 Mb/s.)
"""

import pytest

from repro.experiments import speed
from repro.experiments.common import Scale


@pytest.fixture(scope="module")
def result():
    return speed.run(Scale.quick(), base_seed=30)


def test_speed_inference(benchmark, result, report_writer):
    benchmark.pedantic(
        speed.run,
        args=(Scale.quick(),),
        kwargs={"base_seed": 30},
        rounds=1,
        iterations=1,
    )
    report_writer("speed_inference", result.format_report())


def test_paper_size_model_has_paper_size(result):
    assert result.paper_size_params == pytest.approx(2_000_000, rel=0.15)


def test_iboxml_is_materially_slower_per_packet(result):
    assert result.paper_size_slowdown > 5.0


def test_paper_size_emulation_rate_bounded(result):
    """The structural conclusion: a ~2 M-parameter LSTM cannot emulate a
    fast link packet-by-packet."""
    assert result.paper_size_max_rate_mbps < 100.0
    assert result.paper_size_sec_per_packet > 1e-4
