"""Fig. 3 — cross-traffic ablations.

Paper claim reproduced: dropping the cross-traffic input (Fig. 3a) or
replacing it with calibrated i.i.d. loss (Fig. 3b, the [45] baseline)
yields a worse treatment-protocol match than full iBoxNet.
"""

import pytest

from repro.experiments import fig3_ablations
from repro.experiments.common import Scale


@pytest.fixture(scope="module")
def result():
    return fig3_ablations.run(Scale.quick(), base_seed=10)


def test_fig3_ablations(benchmark, result, report_writer):
    benchmark.pedantic(
        fig3_ablations.run,
        args=(Scale.quick(),),
        kwargs={"base_seed": 10},
        rounds=1,
        iterations=1,
    )
    report_writer("fig3_ablations", result.format_report())


def test_fig3_full_model_beats_no_ct(result):
    assert (
        result.aggregate_error("iBoxNet (full)")
        < result.aggregate_error("without CT")
    )


def test_fig3_full_model_beats_statistical_loss(result):
    assert (
        result.aggregate_error("iBoxNet (full)")
        < result.aggregate_error("statistical loss")
    )


def test_fig3_margins_are_material(result):
    """The ablations are not marginally worse — the paper's point is that
    careless cross-traffic handling visibly corrupts the A/B verdicts."""
    full = result.aggregate_error("iBoxNet (full)")
    assert result.aggregate_error("without CT") > 1.5 * full
    assert result.aggregate_error("statistical loss") > 1.5 * full
