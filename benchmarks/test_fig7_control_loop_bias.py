"""Fig. 7 — control-loop bias and its cross-traffic mitigation.

Paper claims reproduced: iBoxML trained on delay-sensitive RTC traces
"rarely outputs high delay" for a high-rate CBR sender even though the
ground truth "exhibits high delay frequently"; adding the §3 cross-traffic
estimate as an input recovers the high-delay mode.
"""

import numpy as np
import pytest

from repro.experiments import fig7_control_loop
from repro.experiments.common import Scale


@pytest.fixture(scope="module")
def result():
    return fig7_control_loop.run(Scale.quick(), base_seed=0)


def test_fig7_control_loop(benchmark, result, report_writer):
    benchmark.pedantic(
        fig7_control_loop.run,
        args=(Scale.quick(),),
        kwargs={"base_seed": 0},
        rounds=1,
        iterations=1,
    )
    report_writer("fig7_control_loop", result.format_report())


def test_fig7_ground_truth_exhibits_high_delay(result):
    assert result.high_delay_fraction("ground_truth") > 0.3


def test_fig7_bias_suppresses_high_delay(result):
    """The top panel: without CT, the model almost never predicts the
    congestion the open-loop sender causes."""
    gt = result.high_delay_fraction("ground_truth")
    without = result.high_delay_fraction("iboxml_no_ct")
    assert without < 0.25 * gt


def test_fig7_ct_input_mitigates_bias(result):
    """The bottom panel: the CT feature restores a substantial share of
    the high-delay mass."""
    without = result.high_delay_fraction("iboxml_no_ct")
    with_ct = result.high_delay_fraction("iboxml_with_ct")
    assert with_ct > 2 * max(without, 0.01)
    assert result.bias_demonstrated()


def test_fig7_histograms_render(result):
    edges, freqs = result.histogram("ground_truth")
    assert len(freqs) == len(edges) - 1
    assert freqs.sum() == pytest.approx(100.0, abs=1.0)
