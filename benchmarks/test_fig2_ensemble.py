"""Fig. 2 — iBoxNet ensemble test on cellular paths.

Paper claim reproduced: the iBoxNet model trained on Cubic traces matches
ground truth for both Cubic and, crucially, for Vegas (never seen in
training); verified with two-sample KS tests on the (rate, p95 delay,
loss) distributions.
"""

import numpy as np
import pytest

from repro.experiments import fig2_ensemble
from repro.experiments.common import Scale


@pytest.fixture(scope="module")
def result():
    return fig2_ensemble.run(Scale.quick(), base_seed=10)


def test_fig2_ensemble(benchmark, result, report_writer):
    benchmark.pedantic(
        fig2_ensemble.run,
        args=(Scale.quick(),),
        kwargs={"base_seed": 10},
        rounds=1,
        iterations=1,
    )
    report_writer("fig2_ensemble", result.format_report())


def test_fig2_treatment_distribution_matches(result):
    """The headline claim: Vegas, never seen in training, is predicted
    with distributions the KS test cannot distinguish from truth."""
    assert result.ks_match("vegas")


def test_fig2_control_distribution_matches(result):
    assert result.ks_match("cubic")


def test_fig2_protocol_ordering_preserved(result):
    """Vegas is the low-delay/low-loss protocol on both sides of the
    figure; Cubic pays delay and loss for throughput."""
    def median(series, index):
        return float(np.nanmedian([p[index] for p in result.scatter[series]]))

    for source in ("gt", "iboxnet"):
        assert median(f"vegas_{source}", 1) < median(f"cubic_{source}", 1)
        assert median(f"vegas_{source}", 2) <= median(f"cubic_{source}", 2)
