"""Fig. 5 — CDF of reordering rate over 1 s windows (Vegas test set).

Paper claims reproduced: plain iBoxNet produces *zero* reordering; iBoxML
(trained only on delays) produces reordering much closer to ground truth;
the iBoxNet+LSTM and iBoxNet+Linear augmented models match the ground
truth closely.
"""

import pytest

from repro.experiments import fig5_reordering
from repro.experiments.common import Scale


@pytest.fixture(scope="module")
def result():
    return fig5_reordering.run(Scale.quick(), base_seed=60)


def test_fig5_reordering(benchmark, result, report_writer):
    benchmark.pedantic(
        fig5_reordering.run,
        args=(Scale.quick(),),
        kwargs={"base_seed": 60, "include_iboxml": False},
        rounds=1,
        iterations=1,
    )
    report_writer("fig5_reordering", result.format_report())


def test_fig5_ground_truth_has_reordering(result):
    assert result.mean_rate("ground_truth") > 0.001


def test_fig5_iboxnet_produces_none(result):
    """'iBoxNet, which produces no reordering'."""
    assert result.mean_rate("iboxnet") == 0.0


def test_fig5_augmented_models_match_ground_truth(result):
    gt = result.mean_rate("ground_truth")
    for method in ("iboxnet_lstm", "iboxnet_linear"):
        assert result.mean_rate(method) == pytest.approx(gt, rel=1.0)
        assert (
            result.ks_vs_ground_truth(method)
            < result.ks_vs_ground_truth("iboxnet")
        )


def test_fig5_iboxml_beats_plain_iboxnet(result):
    """'a reasonable match with the ground truth (much better than
    iBoxNet ...)' — though trained only to match delays."""
    assert result.mean_rate("iboxml") > 0.0
    assert (
        result.ks_vs_ground_truth("iboxml")
        < result.ks_vs_ground_truth("iboxnet")
    )
