"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper figure — these quantify the knobs of our implementation:

* cross-traffic busy-threshold conservativeness (§3's "care is needed");
* CT estimation bin width (burst localisation vs noise);
* iBoxML rollout rounds (the exposure-bias correction);
* estimator costs (fit is closed-form and cheap — §3.2's efficiency
  argument).
"""

import numpy as np
import pytest

from repro.core import iboxnet
from repro.core.cross_traffic import estimate_cross_traffic
from repro.core.iboxml import IBoxMLConfig, IBoxMLModel, delay_distribution_error
from repro.core.static_params import estimate_static_params
from repro.datasets.pantheon import generate_dataset, generate_run
from repro.simulation import units
from repro.simulation.topology import (
    ConstantBandwidth,
    PathConfig,
    PoissonCT,
    run_flow,
)

RATE = units.mbps_to_bytes_per_sec(10.0)


@pytest.fixture(scope="module")
def burst_run():
    config = PathConfig(
        bandwidth=ConstantBandwidth(RATE),
        propagation_delay=0.025,
        buffer_bytes=250_000,
        cross_traffic=(
            PoissonCT(rate_bytes_per_sec=0.5 * RATE, start=5.0, stop=10.0),
        ),
    )
    return run_flow(config, "cubic", duration=15.0, seed=7)


def _burst_localisation(estimate):
    edges = np.asarray(estimate.bin_edges)
    rates = np.asarray(estimate.rates_bytes_per_sec)
    centres = (edges[:-1] + edges[1:]) / 2
    inside = rates[(centres > 5.5) & (centres < 9.5)].mean()
    outside = rates[(centres < 4.0) | (centres > 11.0)].mean()
    return inside / max(outside, 1.0)


def test_ablation_busy_threshold(burst_run, report_writer, benchmark):
    """Sweeping the surely-busy margin: stricter is more conservative
    (less volume) but stays localised."""
    params = estimate_static_params(burst_run.trace)
    benchmark.pedantic(
        estimate_cross_traffic, args=(burst_run.trace, params),
        rounds=3, iterations=1,
    )
    lines = ["busy-threshold ablation (packets, volume MB, localisation):"]
    volumes = []
    for threshold in (0.5, 1.5, 4.0, 8.0):
        estimate = estimate_cross_traffic(
            burst_run.trace, params, busy_threshold_packets=threshold
        )
        volumes.append(estimate.total_bytes())
        lines.append(
            f"  threshold={threshold:>4.1f}: "
            f"volume={estimate.total_bytes() / 1e6:6.2f} MB "
            f"busy={estimate.busy_fraction:5.0%} "
            f"localisation={_burst_localisation(estimate):6.1f}x"
        )
    report_writer("ablation_busy_threshold", "\n".join(lines))
    assert volumes == sorted(volumes, reverse=True)


def test_ablation_ct_bin_width(burst_run, report_writer, benchmark):
    """Finer bins localise the burst better; the total volume stays
    within a factor of ~2 across a 10x bin-width sweep."""
    params = estimate_static_params(burst_run.trace)
    benchmark.pedantic(
        estimate_cross_traffic, args=(burst_run.trace, params),
        kwargs={"bin_width": 0.2}, rounds=3, iterations=1,
    )
    lines = ["bin-width ablation:"]
    localisations = {}
    volumes = {}
    for width in (0.2, 0.5, 1.0, 2.0):
        estimate = estimate_cross_traffic(
            burst_run.trace, params, bin_width=width
        )
        localisations[width] = _burst_localisation(estimate)
        volumes[width] = estimate.total_bytes()
        lines.append(
            f"  bin={width:3.1f}s: volume={volumes[width] / 1e6:6.2f} MB "
            f"localisation={localisations[width]:6.1f}x"
        )
    report_writer("ablation_ct_bin_width", "\n".join(lines))
    assert localisations[0.2] > 3.0
    assert max(volumes.values()) < 2.5 * max(min(volumes.values()), 1.0)


def test_ablation_iboxml_rollout_rounds(report_writer, benchmark):
    """The DAgger-style rollout refresh is what keeps free-running
    inference anchored; without it predictions drift to an attractor."""
    # 20 s traces: long enough for free-running drift to actually bite
    # (on very short traces teacher forcing alone hangs on, and the
    # comparison is a coin flip).
    dataset = generate_dataset(
        n_paths=3, protocols=("vegas",), duration=20.0,
        base_seed=40, runs_per_protocol=2,
    )
    train = dataset.traces()[:4]
    test = dataset.traces()[4]
    lines = ["iBoxML rollout-rounds ablation (CDF error, ms):"]
    errors = {}

    def evaluate(rounds):
        config = IBoxMLConfig(
            hidden_dim=24, num_layers=2, epochs=9, train_seq_len=150,
            rollout_rounds=rounds,
        )
        model = IBoxMLModel(config)
        model.fit(train)
        predicted = model.predict_delays(test, sample=True, seed=1)
        return (
            delay_distribution_error(predicted, test.delivered_delays())
            * 1000
        )

    errors[1] = evaluate(1)
    errors[3] = benchmark.pedantic(
        evaluate, args=(3,), rounds=1, iterations=1
    )
    for rounds in (1, 3):
        lines.append(f"  rounds={rounds}: error={errors[rounds]:7.1f} ms")
    report_writer("ablation_rollout_rounds", "\n".join(lines))
    assert errors[3] < errors[1]


def test_iboxnet_fit_is_cheap(benchmark):
    """§3.2: 'makes both learning the model and running it very
    efficient' — fitting is closed-form over one trace."""
    run = generate_run(seed=31, protocol="cubic", duration=15.0)
    model = benchmark(iboxnet.fit, run.trace)
    assert model.params.bandwidth_bytes_per_sec > 0
