"""Fig. 8 — behaviour discovery via SAX + motif diffing.

Paper claims reproduced: (a) the only length-1 pattern present in ground
truth but missing from iBoxNet traces is 'a' (negative inter-arrival =
reordering), and higher-order patterns involving 'a' are missing with it
while other length-2 patterns are shared; (b) the ML-augmented iBoxNet
restores pattern 'a' near the ground-truth frequency and preserves
length-2 reordering patterns reasonably.  The naive-random ablation the
paper mentions is included: it matches the rate but not the structure.
"""

import numpy as np
import pytest

from repro.core import iboxnet
from repro.core.augmentation import naive_random_reordering, reorder_labels
from repro.datasets.pantheon import generate_dataset
from repro.discovery.motifs import aggregate_frequencies
from repro.discovery.sax import positive_delta_breakpoints, sax_inter_arrival
from repro.experiments import fig8_discovery
from repro.experiments.common import Scale
from repro.trace.features import arrival_order_deltas


@pytest.fixture(scope="module")
def result():
    return fig8_discovery.run(Scale.quick(), base_seed=60)


def test_fig8_discovery(benchmark, result, report_writer):
    benchmark.pedantic(
        fig8_discovery.run,
        args=(Scale.quick(),),
        kwargs={"base_seed": 60},
        rounds=1,
        iterations=1,
    )
    report_writer("fig8_discovery", result.format_report())


def test_fig8_only_missing_length1_pattern_is_reordering(result):
    """Fig. 8(a): 'the only length-1 pattern in the diff ... is a'."""
    assert result.missing_in_iboxnet() == ["a"]


def test_fig8_length2_patterns_with_a_missing_from_iboxnet(result):
    missing = [
        p
        for p in result.diff_gt_vs_iboxnet_len2.only_ground_truth
        if "a" in p
    ]
    assert missing
    # Patterns NOT involving 'a' are largely shared (the intersection
    # region of the paper's Venn diagram).
    shared_non_a = [
        p for p in result.diff_gt_vs_iboxnet_len2.shared if "a" not in p
    ]
    assert len(shared_non_a) >= 5


def test_fig8_augmentation_restores_pattern_a(result):
    gt = result.gt_frequencies[1].get("a", 0.0)
    augmented = result.augmented_frequencies[1].get("a", 0.0)
    assert result.iboxnet_frequencies[1].get("a", 0.0) == 0.0
    assert gt > 0
    # "nearly 2% ... 1.67%" in the paper: same order, within 2.5x.
    assert augmented == pytest.approx(gt, rel=1.5)


def test_fig8_length2_reordering_patterns_partially_preserved(result):
    gt2 = {
        p: f for p, f in result.gt_frequencies[2].items() if "a" in p
    }
    aug2 = result.augmented_frequencies[2]
    restored = [p for p in gt2 if aug2.get(p, 0.0) > 0]
    assert len(restored) >= max(1, len(gt2) // 3)


def test_fig8_naive_random_misses_structure(result):
    """§5.1: 'such a naive method cannot render realistic higher-order
    patterns' — the burst patterns 'aa'-adjacent structure differs even
    when the aggregate rate is matched."""
    scale = Scale.quick()
    dataset = generate_dataset(
        n_paths=scale.n_paths, protocols=("vegas",),
        duration=scale.duration, base_seed=60,
    )
    train_ds, test_ds = dataset.split(0.5)
    reference = np.concatenate(
        [arrival_order_deltas(t) for t in train_ds.traces()]
    )
    breakpoints = positive_delta_breakpoints(reference)
    gt_rate = float(
        np.mean([reorder_labels(t).mean() for t in test_ds.traces()])
    )
    naive = []
    for run in test_ds.runs:
        sim = iboxnet.fit(run.trace).simulate(
            "vegas", duration=scale.duration, seed=run.seed + 77
        )
        naive.append(
            naive_random_reordering(
                sim, rate=gt_rate, rng=np.random.default_rng(run.seed)
            )
        )
    naive_sax = [
        sax_inter_arrival(t, breakpoints=breakpoints) for t in naive
    ]
    naive1 = aggregate_frequencies(naive_sax, 1).get("a", 0.0)
    # Rate is matched by construction...
    assert naive1 == pytest.approx(gt_rate, rel=0.8)
    # ...but the learnt predictor's length-2 structure is closer to truth
    # than naive-random's on the patterns that follow a reordering event.
    naive2 = aggregate_frequencies(naive_sax, 2)

    def structure_error(freqs2):
        gt2 = result.gt_frequencies[2]
        patterns = [p for p in gt2 if "a" in p]
        return sum(
            abs(freqs2.get(p, 0.0) - gt2[p]) for p in patterns
        )

    assert structure_error(result.augmented_frequencies[2]) <= (
        structure_error(naive2) * 1.5
    )
