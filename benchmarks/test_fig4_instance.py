"""Fig. 4 — iBoxNet instance test.

Paper claims reproduced: (a) the rate time series of the control protocol
on the learnt per-instance model aligns with ground truth; (b) k-means
(k = 3) over cross-correlation features clusters ground-truth and
iBoxNet-simulated treatment runs perfectly by cross-traffic instance
(t-SNE used for the visual).
"""

import pytest

from repro.experiments import fig4_instance
from repro.experiments.common import Scale


@pytest.fixture(scope="module")
def result():
    return fig4_instance.run(Scale.quick(), base_seed=0)


def test_fig4_instance(benchmark, result, report_writer):
    benchmark.pedantic(
        fig4_instance.run,
        args=(Scale.quick(),),
        kwargs={"base_seed": 0, "compute_tsne": False},
        rounds=1,
        iterations=1,
    )
    report_writer("fig4_instance", result.format_report())


def test_fig4_clustering_perfect(result):
    """'k-means clustering (with k = 3) of these runs ... is perfect,
    i.e., with no mistakes.'"""
    assert result.purity == 1.0


def test_fig4_rate_series_alignment(result):
    """Fig. 4(a): the simulated control run's rate series tracks truth."""
    assert result.alignment > 0.7


def test_fig4_tsne_groups_by_instance(result):
    """t-SNE means: simulated runs sit nearer their own instance's GT
    cloud than any other instance's."""
    import numpy as np

    inst = result.instance
    embedding = result.embedding
    assert embedding is not None
    for k in sorted(set(inst.true_pattern)):
        sim_centre = embedding[
            (inst.true_pattern == k) & inst.is_simulated
        ].mean(axis=0)
        own = np.linalg.norm(
            sim_centre
            - embedding[(inst.true_pattern == k) & ~inst.is_simulated].mean(
                axis=0
            )
        )
        others = [
            np.linalg.norm(
                sim_centre
                - embedding[
                    (inst.true_pattern == j) & ~inst.is_simulated
                ].mean(axis=0)
            )
            for j in sorted(set(inst.true_pattern))
            if j != k
        ]
        assert own < min(others)
