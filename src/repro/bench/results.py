"""Versioned benchmark result files and baseline comparison.

``BENCH_<host>.json`` layout (``schema_version`` 1)::

    {
      "schema_version": 1,
      "host": "ci-runner-7",
      "platform": {"python": "3.12.1", "numpy": "1.26.4", ...},
      "created_unix": 1754000000.0,
      "quick": true,
      "cases": {
        "ml.unroll": {
          "median_sec": ..., "p90_sec": ..., "mad_sec": ...,
          "times_sec": [...], "items": 1500, "unit": "packets",
          "throughput_per_sec": ...,
          "ref_median_sec": ..., "speedup_vs_ref": ...   # micro cases
        },
        ...
      },
      "metrics": { ... repro.obs snapshot, when telemetry was on ... }
    }

``compare_reports`` diffs two of these by case *median*: a case regresses
when ``current/baseline > threshold`` and improves when the inverse ratio
clears the same bar.  Medians plus a generous default threshold make the
check robust to shared-runner noise; CI runs it warn-only (DESIGN.md §8).
"""

from __future__ import annotations

import json
import platform
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.bench.harness import CaseResult

BENCH_SCHEMA_VERSION = 1

#: Default regression threshold: a case must slow down by more than this
#: factor (on medians) to be flagged.  Deliberately loose — machine-to-
#: machine and run-to-run variance on shared hardware is easily 20-30 %.
DEFAULT_THRESHOLD = 1.5

PathLike = Union[str, Path]


def default_output_name(host: Optional[str] = None) -> str:
    """``BENCH_<host>.json`` for this (or the given) host."""
    host = host or socket.gethostname().split(".")[0] or "unknown"
    safe = "".join(c if (c.isalnum() or c in "-_") else "-" for c in host)
    return f"BENCH_{safe}.json"


@dataclass
class BenchReport:
    """One benchmark run: per-case results plus environment provenance."""

    cases: List[CaseResult]
    host: str
    platform: Dict[str, str]
    created_unix: float
    quick: bool = False
    schema_version: int = BENCH_SCHEMA_VERSION
    metrics: Optional[Dict[str, Any]] = None

    @classmethod
    def create(
        cls, cases: List[CaseResult], quick: bool = False
    ) -> "BenchReport":
        from repro import obs

        metrics = obs.metrics_snapshot() if obs.enabled() else None
        return cls(
            cases=cases,
            host=socket.gethostname().split(".")[0] or "unknown",
            platform={
                "python": platform.python_version(),
                "numpy": _numpy_version(),
                "machine": platform.machine(),
                "system": platform.system(),
            },
            created_unix=time.time(),
            quick=quick,
            metrics=metrics,
        )

    def case(self, name: str) -> Optional[CaseResult]:
        for case in self.cases:
            if case.name == name:
                return case
        return None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema_version": self.schema_version,
            "host": self.host,
            "platform": dict(self.platform),
            "created_unix": self.created_unix,
            "quick": self.quick,
            "cases": {c.name: c.to_dict() for c in self.cases},
        }
        if self.metrics is not None:
            out["metrics"] = self.metrics
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "BenchReport":
        version = d.get("schema_version")
        if version != BENCH_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported bench schema_version {version!r} "
                f"(this build reads {BENCH_SCHEMA_VERSION})"
            )
        return cls(
            cases=[CaseResult.from_dict(c) for c in d["cases"].values()],
            host=d.get("host", "unknown"),
            platform=dict(d.get("platform", {})),
            created_unix=float(d.get("created_unix", 0.0)),
            quick=bool(d.get("quick", False)),
            schema_version=version,
            metrics=d.get("metrics"),
        )

    def write(self, path: PathLike) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def format_report(self) -> str:
        lines = [
            f"benchmarks on {self.host} "
            f"(python {self.platform.get('python', '?')}, "
            f"numpy {self.platform.get('numpy', '?')}"
            f"{', quick' if self.quick else ''})",
            f"{'case':<22} {'median':>10} {'p90':>10} {'MAD':>9} "
            f"{'throughput':>16} {'vs ref':>7}",
        ]
        for case in self.cases:
            if case.error is not None:
                lines.append(f"{case.name:<22} ERROR: {case.error}")
                continue
            throughput = case.throughput_per_sec
            thr = (
                f"{throughput:,.0f} {case.unit}/s" if throughput else "-"
            )
            speedup = case.speedup_vs_ref
            ref = f"{speedup:.2f}x" if speedup is not None else "-"
            lines.append(
                f"{case.name:<22} {_fmt_sec(case.median_sec):>10} "
                f"{_fmt_sec(case.p90_sec):>10} {_fmt_sec(case.mad_sec):>9} "
                f"{thr:>16} {ref:>7}"
            )
        return "\n".join(lines)


def load_report(path: PathLike) -> BenchReport:
    """Read and validate a ``BENCH_*.json`` file."""
    return BenchReport.from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# Comparison against a baseline
# ---------------------------------------------------------------------------


@dataclass
class CaseDelta:
    name: str
    current_median_sec: float
    baseline_median_sec: float

    @property
    def ratio(self) -> float:
        """current / baseline on medians; > 1 means slower than baseline."""
        if self.baseline_median_sec <= 0:
            return float("inf") if self.current_median_sec > 0 else 1.0
        return self.current_median_sec / self.baseline_median_sec


@dataclass
class CompareResult:
    """Outcome of diffing a current report against a baseline."""

    deltas: List[CaseDelta]
    threshold: float
    only_current: List[str] = field(default_factory=list)
    only_baseline: List[str] = field(default_factory=list)
    errored: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[CaseDelta]:
        return [d for d in self.deltas if d.ratio > self.threshold]

    @property
    def improvements(self) -> List[CaseDelta]:
        return [d for d in self.deltas if d.ratio < 1.0 / self.threshold]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions) or bool(self.errored)

    def format_report(self) -> str:
        lines = [
            f"{'case':<22} {'baseline':>10} {'current':>10} "
            f"{'ratio':>7}  verdict (threshold {self.threshold:.2f}x)"
        ]
        regressions = {d.name for d in self.regressions}
        improvements = {d.name for d in self.improvements}
        for d in self.deltas:
            if d.name in regressions:
                verdict = "REGRESSION"
            elif d.name in improvements:
                verdict = "improved"
            else:
                verdict = "ok"
            lines.append(
                f"{d.name:<22} {_fmt_sec(d.baseline_median_sec):>10} "
                f"{_fmt_sec(d.current_median_sec):>10} {d.ratio:>6.2f}x"
                f"  {verdict}"
            )
        for name in self.errored:
            lines.append(f"{name:<22} {'-':>10} {'-':>10} {'-':>7}  ERROR")
        for name in self.only_current:
            lines.append(
                f"{name:<22} {'-':>10} {'-':>10} {'-':>7}  new case "
                "(no baseline)"
            )
        for name in self.only_baseline:
            lines.append(
                f"{name:<22} {'-':>10} {'-':>10} {'-':>7}  missing from "
                "current run"
            )
        n_reg = len(self.regressions) + len(self.errored)
        lines.append(
            f"{len(self.deltas)} case(s) compared, {n_reg} regression(s), "
            f"{len(self.improvements)} improvement(s)"
        )
        return "\n".join(lines)


def compare_reports(
    current: BenchReport,
    baseline: BenchReport,
    threshold: float = DEFAULT_THRESHOLD,
) -> CompareResult:
    """Diff ``current`` against ``baseline`` case by case.

    Cases present on only one side are reported but don't regress the
    comparison; a case that *errored* in the current run does (broken
    beats slow).
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1.0, got {threshold}")
    current_by_name = {c.name: c for c in current.cases}
    baseline_by_name = {c.name: c for c in baseline.cases}
    deltas = []
    errored = []
    for name, cur in current_by_name.items():
        base = baseline_by_name.get(name)
        if cur.error is not None:
            errored.append(name)
            continue
        if base is None or base.error is not None:
            continue
        deltas.append(
            CaseDelta(
                name=name,
                current_median_sec=cur.median_sec,
                baseline_median_sec=base.median_sec,
            )
        )
    compared = {d.name for d in deltas} | set(errored)
    return CompareResult(
        deltas=deltas,
        threshold=threshold,
        only_current=[n for n in current_by_name if n not in compared],
        only_baseline=[
            n for n in baseline_by_name if n not in current_by_name
        ],
        errored=errored,
    )


def _fmt_sec(sec: float) -> str:
    if sec >= 1.0:
        return f"{sec:.2f} s"
    if sec >= 1e-3:
        return f"{sec * 1e3:.1f} ms"
    return f"{sec * 1e6:.0f} us"


def _numpy_version() -> str:
    try:
        import numpy

        return numpy.__version__
    except Exception:  # pragma: no cover
        return "unavailable"
