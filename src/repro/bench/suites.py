"""The benchmark cases: one per named hot path.

Workload sizes follow the repo's quick/full convention (cf. the
``--scale`` flag of ``repro reproduce``): ``quick`` keeps the whole
suite under ~30 s for CI smoke runs; full sizes give stabler medians
for PERFORMANCE.md numbers.

Micro cases (``ml.*``, ``sim.engine``) time one function against its
preserved pre-optimization reference; macro cases (``fit.iboxnet``,
``emulate.packet_path``, ``runtime.batch_*``) time a whole production
entry point end to end and have no reference — their baseline is the
committed ``BENCH_baseline.json``.
"""

from __future__ import annotations

import itertools
import shutil
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro.bench import reference
from repro.bench.harness import BenchCase, CaseResult, PreparedCase, run_case
from repro.bench.results import BenchReport
from repro.trace.records import PacketRecord, Trace

# ---------------------------------------------------------------------------
# Shared workload builders
# ---------------------------------------------------------------------------


def _poisson_trace(n: int, seed: int = 0, mean_gap: float = 1e-3) -> Trace:
    """Synthetic Poisson-arrival trace with smooth queueing-like delays."""
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_gap, size=n)
    sent = np.cumsum(gaps)
    # AR(1) delay process: marginally plausible, temporally smooth.
    delays = np.empty(n)
    state = 0.0
    for i in range(n):
        state = 0.95 * state + 0.05 * float(rng.normal())
        delays[i] = 0.02 + 0.005 * state
    delays = np.clip(delays, 1e-3, None)
    records = [
        PacketRecord(
            uid=i,
            seq=i,
            size=int(rng.integers(200, 1500)),
            sent_at=float(sent[i]),
            delivered_at=float(sent[i] + delays[i]),
        )
        for i in range(n)
    ]
    return Trace("bench-synth", records, duration=float(sent[-1]) + 1.0)


def _unroll_model(hidden: int, layers: int, n: int, seed: int = 0):
    """An iBoxML model ready to unroll, without paying for training.

    The unroll only consumes weights and scaler statistics, so random
    (freshly initialised) weights plus scalers fitted to the feature
    matrix benchmark exactly the shipped arithmetic.
    """
    from repro.core.iboxml import IBoxMLConfig, IBoxMLModel

    trace = _poisson_trace(n, seed)
    model = IBoxMLModel(
        IBoxMLConfig(hidden_dim=hidden, num_layers=layers, seed=seed)
    )
    feats = model._trace_features(trace, None)
    model.feature_scaler.fit(feats)
    model.target_scaler.fit(trace.delays[:, None])
    model._fitted = True
    return model, feats


# ---------------------------------------------------------------------------
# Case builders
# ---------------------------------------------------------------------------


def _make_lstm_forward(quick: bool) -> PreparedCase:
    from repro.ml.lstm import LSTM

    steps = 50 if quick else 200
    batch = 8
    lstm = LSTM(4, 64, 2, np.random.default_rng(0))
    x = np.random.default_rng(1).normal(size=(batch, steps, 4))
    return PreparedCase(
        fn=lambda: lstm.forward(x),
        ref_fn=lambda: reference.reference_stack_forward(lstm, x),
        items=batch * steps,
        unit="timesteps",
    )


def _make_lstm_step(quick: bool) -> PreparedCase:
    from repro.ml.lstm import LSTM

    steps = 100 if quick else 400
    lstm = LSTM(4, 64, 2, np.random.default_rng(0))
    xs = np.random.default_rng(1).normal(size=(steps, 1, 4))

    def run_new():
        states = None
        for t in range(steps):
            _, states = lstm.step(xs[t], states)

    def run_ref():
        states = None
        for t in range(steps):
            _, states = reference.reference_stack_step(lstm, xs[t], states)

    return PreparedCase(
        fn=run_new, ref_fn=run_ref, items=steps, unit="timesteps"
    )


def _make_unroll(quick: bool) -> PreparedCase:
    n = 300 if quick else 1500
    model, feats = _unroll_model(hidden=32, layers=2, n=n)
    return PreparedCase(
        fn=lambda: model._unroll_features_inner(feats, True, 42),
        ref_fn=lambda: reference.reference_unroll(model, feats, True, 42),
        items=n,
        unit="packets",
    )


def _make_unroll_f32(quick: bool) -> PreparedCase:
    # Paper-sized stack (§4.1: 4 layers, ~2 M parameters): the float32
    # fast path pays off where GEMV memory traffic dominates, so it is
    # measured there; the reference here is the *optimized* float64
    # unroll — this case isolates the dtype, not the restructuring.
    n = 60 if quick else 250
    model, feats = _unroll_model(hidden=256, layers=4, n=n)
    return PreparedCase(
        fn=lambda: model._unroll_features_inner(
            feats, True, 42, dtype="float32"
        ),
        ref_fn=lambda: model._unroll_features_inner(feats, True, 42),
        items=n,
        unit="packets",
    )


def _make_fit_iboxnet(quick: bool) -> PreparedCase:
    from repro.core import iboxnet

    n = 500 if quick else 2000
    trace = _poisson_trace(n, seed=3)
    return PreparedCase(
        fn=lambda: iboxnet.fit(trace), items=n, unit="packets"
    )


def _engine_workload(sim_factory, n_events: int, polls: int) -> int:
    """Schedule, cancel a slice, poll ``pending_events``, drain.

    Mirrors production usage: protocols cancel timers constantly (every
    ACK cancels an RTO) and monitoring reads ``pending_events`` while
    the calendar is large — which is exactly where the O(n) scan hurt.
    """
    sim = sim_factory()

    def noop() -> None:
        pass

    events = [sim.schedule(i * 1e-6, noop) for i in range(n_events)]
    for event in events[:: 10]:
        event.cancel()
    monitored = 0

    def monitor() -> None:
        nonlocal monitored
        monitored += sim.pending_events

    horizon = n_events * 1e-6
    for j in range(polls):
        sim.schedule(j * horizon / polls, monitor)
    sim.run(until=horizon + 1.0)
    return monitored


def _make_engine(quick: bool) -> PreparedCase:
    from repro.simulation.engine import Simulator

    n_events = 10_000 if quick else 50_000
    polls = 50 if quick else 100
    return PreparedCase(
        fn=lambda: _engine_workload(Simulator, n_events, polls),
        ref_fn=lambda: _engine_workload(
            reference.ReferenceSimulator, n_events, polls
        ),
        items=n_events + polls,
        unit="events",
    )


def _make_emulate(quick: bool) -> PreparedCase:
    from repro.simulation.emulator import EmulatorConfig, NetworkEmulator

    duration = 1.5 if quick else 5.0
    emulator = NetworkEmulator(
        EmulatorConfig(
            bandwidth_bytes_per_sec=1.25e6,  # 10 Mbit/s
            propagation_delay=0.02,
            buffer_bytes=32_000.0,
            include_cross_traffic=False,
        )
    )
    return PreparedCase(
        fn=lambda: len(emulator.run("cubic", duration=duration, seed=0).trace),
        items=None,  # packet count comes back from fn
        unit="packets",
    )


def _make_batch(quick: bool, warm: bool) -> PreparedCase:
    from repro.runtime.batch import run_batch
    from repro.runtime.executor import ExecutorConfig
    from repro.trace.io import save_traces

    n_traces = 2 if quick else 3
    n_packets = 200 if quick else 400
    duration = 1.0 if quick else 2.0
    root = Path(tempfile.mkdtemp(prefix="repro-bench-batch-"))
    traces = [
        _poisson_trace(n_packets, seed=10 + k) for k in range(n_traces)
    ]
    for k, trace in enumerate(traces):
        trace.flow_id = f"bench-batch-{k}"
    trace_paths = save_traces(traces, root / "traces")
    fresh = itertools.count()

    def run(cache_dir: Path) -> int:
        results, _, _ = run_batch(
            trace_paths,
            protocols=("cubic",),
            duration=duration,
            cache_dir=cache_dir,
            config=ExecutorConfig(workers=1),
        )
        failed = [r for r in results if not r.ok]
        if failed:
            raise RuntimeError(
                f"bench batch job failed: {failed[0].error.message}"
            )
        return len(results)

    if warm:
        warm_cache = root / "cache-warm"
        run(warm_cache)  # prefill: every timed call is then a cache hit
        fn = lambda: run(warm_cache)  # noqa: E731
    else:
        fn = lambda: run(root / f"cache-cold-{next(fresh)}")  # noqa: E731

    return PreparedCase(
        fn=fn,
        items=n_traces,
        unit="jobs",
        cleanup=lambda: shutil.rmtree(root, ignore_errors=True),
    )


def _sweep_grid(n_paths: int, protocols, seeds: int, duration: float):
    from repro.sweep import ScenarioGrid, SweepPath

    rates = np.linspace(4e5, 2e6, n_paths)  # 3.2..16 Mbit/s
    delays = np.linspace(0.01, 0.06, n_paths)
    paths = tuple(
        SweepPath(
            bandwidth_bytes_per_sec=float(rate),
            propagation_delay=float(delay),
            buffer_bytes=float(2 * rate * 2 * delay),  # 2 BDP
            label=f"bench-{k}",
        )
        for k, (rate, delay) in enumerate(zip(rates, delays))
    )
    return ScenarioGrid(
        paths=paths,
        protocols=tuple(protocols),
        seeds=tuple(range(seeds)),
        duration=duration,
    )


def _make_sweep_flow(quick: bool) -> PreparedCase:
    """The lockstep fast path: pack once, time ``run_fleet`` alone."""
    from repro.sweep import pack_fleet, run_fleet

    duration = 4.0
    n_paths = 8 if quick else 16
    seeds = 8 if quick else 16
    grid = _sweep_grid(
        n_paths, ("cubic", "reno", "bbr", "rtc"), seeds, duration
    )
    fleet = pack_fleet(grid.expand())
    return PreparedCase(
        fn=lambda: run_fleet(fleet).n_scenarios,
        items=len(grid),
        unit="scenarios",
    )


def _make_sweep_packet_ref(quick: bool) -> PreparedCase:
    """The same scenario shape through the packet engine (the cost the
    flow core displaces; the ≥50× claim is this case vs sweep.flow_1k)."""
    from repro.simulation.topology import run_flow
    from repro.sweep.fidelity import path_config_for

    duration = 4.0
    grid = _sweep_grid(2, ("cubic", "reno"), 1, duration)
    specs = grid.expand()[: 2 if quick else 4]

    def run() -> int:
        for spec in specs:
            run_flow(
                path_config_for(spec.path),
                spec.protocol,
                spec.duration,
                spec.seed,
            )
        return len(specs)

    return PreparedCase(fn=run, items=len(specs), unit="scenarios")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

CASES: Dict[str, BenchCase] = {
    case.name: case
    for case in (
        BenchCase(
            name="ml.lstm_forward",
            make=_make_lstm_forward,
            description="stacked LSTM sequence forward (B=8, H=64, 2 "
            "layers) vs pre-PR per-step concat reference",
        ),
        BenchCase(
            name="ml.lstm_step",
            make=_make_lstm_step,
            description="stacked LSTM single-step inference vs pre-PR "
            "per-call concat reference",
        ),
        BenchCase(
            name="ml.unroll",
            make=_make_unroll,
            description="iBoxML free-running unroll (§4.2 bottleneck), "
            "default model size, vs pre-PR generic step loop",
            metric="ml.packets_per_sec",
        ),
        BenchCase(
            name="ml.unroll_f32",
            make=_make_unroll_f32,
            description="float32 unroll fast path at paper model size "
            "(H=256, 4 layers) vs the optimized float64 unroll",
            metric="ml.packets_per_sec",
        ),
        BenchCase(
            name="fit.iboxnet",
            make=_make_fit_iboxnet,
            description="full §3 iBoxNet fit (static params + "
            "cross-traffic reconstruction)",
        ),
        BenchCase(
            name="sim.engine",
            make=_make_engine,
            description="DES event loop with timer cancellations and "
            "pending_events monitoring vs pre-PR kernel",
        ),
        BenchCase(
            name="emulate.packet_path",
            make=_make_emulate,
            description="end-to-end emulator packet path (cubic over a "
            "10 Mbit/s learnt path)",
        ),
        BenchCase(
            name="runtime.batch_cold",
            make=lambda quick: _make_batch(quick, warm=False),
            description="repro batch pipeline, cold profile cache "
            "(every job fits from scratch)",
        ),
        BenchCase(
            name="runtime.batch_warm",
            make=lambda quick: _make_batch(quick, warm=True),
            description="repro batch pipeline, warm profile cache "
            "(every job is a content-address hit)",
        ),
        BenchCase(
            name="sweep.flow_1k",
            make=_make_sweep_flow,
            description="vectorized flow-level fleet (paths x 4 "
            "protocols x seeds, 4 s) advanced in lockstep",
            metric="sweep.scenarios_per_sec",
        ),
        BenchCase(
            name="sweep.packet_ref",
            make=_make_sweep_packet_ref,
            description="identical scenario shape through the per-packet "
            "DES engine (the cost the sweep core displaces)",
            metric="sweep.scenarios_per_sec",
        ),
    )
}


def case_names() -> List[str]:
    return list(CASES)


def run_suite(
    filters: Optional[List[str]] = None,
    quick: bool = False,
    repeats: Optional[int] = None,
    warmup: Optional[int] = None,
) -> BenchReport:
    """Run (a filtered subset of) the suite and assemble a report.

    ``filters`` is a list of substrings; a case runs if any of them
    occurs in its name (no filters = whole suite).  A case that raises
    is recorded with its error instead of aborting the suite.
    """
    selected = [
        case
        for name, case in CASES.items()
        if not filters or any(f in name for f in filters)
    ]
    if not selected:
        raise ValueError(
            f"no benchmark case matches {filters!r}; "
            f"available: {', '.join(CASES)}"
        )
    results: List[CaseResult] = []
    log = obs.get_logger("repro.bench")
    with obs.span("bench.suite", cases=len(selected), quick=quick):
        for case in selected:
            log.info("bench.case_start", case=case.name)
            try:
                results.append(
                    run_case(case, quick=quick, repeats=repeats, warmup=warmup)
                )
            except Exception as exc:  # keep the suite alive
                log.error("bench.case_failed", case=case.name, error=str(exc))
                results.append(
                    CaseResult(
                        name=case.name,
                        times_sec=[],
                        items=0,
                        unit="items",
                        repeats=0,
                        warmup=0,
                        description=case.description,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
    return BenchReport.create(results, quick=quick)
