"""Preserved pre-optimization implementations ("references").

When a hot path is optimized, the original implementation moves here
instead of being deleted.  Two consumers depend on these:

* the benchmark suites (:mod:`repro.bench.suites`) time reference and
  optimized implementations side by side, so the speedup ratios quoted
  in PERFORMANCE.md are measured on the reader's machine rather than
  asserted;
* the golden-output tests (``tests/test_ml_lstm_golden.py``) assert the
  optimized paths still compute the same function (≤1e-9 for float64 —
  the only legitimate differences are floating-point association).

These are deliberately *faithful* copies of the shipped originals — do
not "fix" or modernise them; their value is being the old code.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

import numpy as np

from repro.ml.layers import _sigmoid

# ---------------------------------------------------------------------------
# LSTM: per-step concatenation (pre split-GEMM / cached weight views)
# ---------------------------------------------------------------------------


def reference_cell_gates(cell, x_t: np.ndarray, h_prev: np.ndarray):
    """Original ``LSTMCell._gates``: one fused GEMM on ``[x, h]``."""
    z = np.concatenate([x_t, h_prev], axis=1) @ cell.W.value + cell.b.value
    H = cell.hidden_dim
    return z[:, :H], z[:, H : 2 * H], z[:, 2 * H : 3 * H], z[:, 3 * H :]


def reference_cell_step(
    cell, x_t: np.ndarray, state: Optional[Tuple[np.ndarray, np.ndarray]]
) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
    """Original ``LSTMCell.step`` (per-call concatenate)."""
    batch = x_t.shape[0]
    if state is None:
        h = np.zeros((batch, cell.hidden_dim))
        c = np.zeros((batch, cell.hidden_dim))
    else:
        h, c = state
    zi, zf, zg, zo = reference_cell_gates(cell, x_t, h)
    i, f = _sigmoid(zi), _sigmoid(zf)
    g, o = np.tanh(zg), _sigmoid(zo)
    c = f * c + i * g
    h = o * np.tanh(c)
    return h, (h, c)


def reference_cell_forward(cell, x: np.ndarray) -> np.ndarray:
    """Original ``LSTMCell.forward`` loop: per-timestep concat + GEMM.

    Caches activations exactly like the shipped original did (into a
    local dict, so the cell's own training state is left untouched).
    """
    batch, steps, _ = x.shape
    H = cell.hidden_dim
    h = np.zeros((batch, H))
    c = np.zeros((batch, H))
    hs = np.zeros((batch, steps, H))
    cache = {
        "x": x,
        "h_prev": np.zeros((batch, steps, H)),
        "c_prev": np.zeros((batch, steps, H)),
        "i": np.zeros((batch, steps, H)),
        "f": np.zeros((batch, steps, H)),
        "g": np.zeros((batch, steps, H)),
        "o": np.zeros((batch, steps, H)),
        "c": np.zeros((batch, steps, H)),
    }
    for t in range(steps):
        cache["h_prev"][:, t] = h
        cache["c_prev"][:, t] = c
        zi, zf, zg, zo = reference_cell_gates(cell, x[:, t], h)
        i, f = _sigmoid(zi), _sigmoid(zf)
        g, o = np.tanh(zg), _sigmoid(zo)
        c = f * c + i * g
        h = o * np.tanh(c)
        hs[:, t] = h
        for key, val in (("i", i), ("f", f), ("g", g), ("o", o), ("c", c)):
            cache[key][:, t] = val
    return hs


def reference_stack_forward(lstm, x: np.ndarray) -> np.ndarray:
    """Original stacked forward built on :func:`reference_cell_forward`."""
    out = x
    for cell in lstm.layers:
        out = reference_cell_forward(cell, out)
    return out


def reference_stack_step(
    lstm, x_t: np.ndarray, states: Optional[list]
) -> Tuple[np.ndarray, list]:
    """Original ``LSTM.step`` built on :func:`reference_cell_step`."""
    if states is None:
        states = [None] * lstm.num_layers
    out = x_t
    new_states = []
    for cell, state in zip(lstm.layers, states):
        out, new_state = reference_cell_step(cell, out, state)
        new_states.append(new_state)
    return out, new_states


def reference_model_step(
    model, x_t: np.ndarray, states: Optional[list]
) -> Tuple[np.ndarray, np.ndarray, list]:
    """Original ``GaussianSequenceModel.step`` (full-matrix head GEMMs)."""
    h, new_states = reference_stack_step(model.lstm, x_t, states)
    mu = (h @ model.head_mu.W.value + model.head_mu.b.value)[:, 0]
    log_sigma = (
        h @ model.head_log_sigma.W.value + model.head_log_sigma.b.value
    )[:, 0]
    return mu, np.exp(log_sigma), new_states


# ---------------------------------------------------------------------------
# iBoxML: generic free-running unroll (pre vectorized input projection)
# ---------------------------------------------------------------------------


def reference_unroll(model, feats: np.ndarray, sample: bool, seed: int = 0):
    """Original ``IBoxMLModel._unroll_features_inner``.

    Steps the full generic model per packet: per-step feature copy,
    scaler array round-trips, stacked :func:`reference_cell_step`, and
    full-matrix Gaussian heads.  RNG call order matches the optimized
    implementation exactly, so sampled outputs are comparable too.
    """
    from repro.core.iboxml import _PREV_DELAY_COL

    n = len(feats)
    scaled = model.feature_scaler.transform(feats)
    rng = np.random.default_rng(seed)
    predictions = np.zeros(n)
    states = None
    prev_delay_real = 0.0
    floor = model.config.min_delay_floor
    prev_mean = model.feature_scaler.mean_[_PREV_DELAY_COL]
    prev_std = model.feature_scaler.std_[_PREV_DELAY_COL]
    rho = (
        model.config.sample_ar_rho
        if model.config.sample_ar_rho is not None
        else model.fitted_rho_
    )
    innovation_scale = np.sqrt(max(0.0, 1.0 - rho**2))
    noise_state = float(rng.normal()) if sample else 0.0
    for t in range(n):
        x_t = scaled[t].copy()
        x_t[_PREV_DELAY_COL] = (prev_delay_real - prev_mean) / prev_std
        mu, sigma, states = reference_model_step(
            model.model, x_t[None, :], states
        )
        mean_delay = model.target_scaler.inverse_transform_column(
            np.array([float(mu[0])]), 0
        )[0]
        mean_delay = max(floor, float(mean_delay))
        if sample:
            noise_state = (
                rho * noise_state + innovation_scale * float(rng.normal())
            )
            value = float(mu[0]) + float(sigma[0]) * noise_state
            delay = model.target_scaler.inverse_transform_column(
                np.array([value]), 0
            )[0]
            delay = max(floor, float(delay))
        else:
            delay = mean_delay
        predictions[t] = delay
        prev_delay_real = mean_delay
    return predictions


# ---------------------------------------------------------------------------
# DES engine (pre fast-pop / pre O(1) pending_events)
# ---------------------------------------------------------------------------


class _ReferenceEvent:
    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time, seq, callback, args):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other) -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class ReferenceSimulator:
    """Original DES kernel: heap pops via ``self`` attribute lookups,
    per-event instance-counter updates, and an O(n) heap scan for
    :attr:`pending_events`."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[_ReferenceEvent] = []
        self._counter = itertools.count()
        self._events_processed = 0
        self._stopped = False

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> _ReferenceEvent:
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        event = _ReferenceEvent(
            self.now + delay, next(self._counter), callback, args
        )
        heapq.heappush(self._heap, event)
        return event

    def run(self, until: float) -> None:
        self._stopped = False
        while self._heap and not self._stopped:
            event = self._heap[0]
            if event.time > until:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback(*event.args)
            self._events_processed += 1
        if not self._stopped:
            self.now = max(self.now, until)

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def events_processed(self) -> int:
        return self._events_processed
