"""Benchmark harness: warmup, repetition, robust statistics.

One :class:`BenchCase` names one hot path.  ``case.make(quick)`` builds
the workload (allocating inputs, fitting models, writing temp files —
everything that must *not* be timed) and returns a :class:`PreparedCase`
whose ``fn`` is the timed unit of work.  :func:`run_case` then runs
``warmup`` untimed calls followed by ``repeats`` timed calls on
``time.perf_counter`` and summarises with median / p90 / MAD — robust
statistics, because shared machines (CI!) contaminate means with
scheduling noise (cf. experiments/speed.py, which reports the same
trio for the paper's §4.2 numbers).

If the prepared case carries a ``ref_fn`` — the preserved
pre-optimization implementation from :mod:`repro.bench.reference` — it
is timed under the identical protocol and the result records
``speedup_vs_ref = ref_median / median``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro import obs

DEFAULT_REPEATS = 5
DEFAULT_WARMUP = 2
QUICK_REPEATS = 3
QUICK_WARMUP = 1


def median(xs: List[float]) -> float:
    """Plain median (interpolated for even lengths)."""
    n = len(xs)
    if n == 0:
        raise ValueError("median of empty sequence")
    s = sorted(xs)
    mid = n // 2
    if n % 2:
        return s[mid]
    return 0.5 * (s[mid - 1] + s[mid])


def percentile(xs: List[float], q: float) -> float:
    """Nearest-rank percentile, ``q`` in [0, 100]."""
    n = len(xs)
    if n == 0:
        raise ValueError("percentile of empty sequence")
    s = sorted(xs)
    rank = max(1, int(-(-q * n // 100)))  # ceil(q*n/100), clamped to >= 1
    return s[min(rank, n) - 1]


def mad(xs: List[float]) -> float:
    """Median absolute deviation — a robust spread estimate."""
    m = median(xs)
    return median([abs(x - m) for x in xs])


@dataclass
class PreparedCase:
    """A workload ready to time (built by ``BenchCase.make``)."""

    fn: Callable[[], Any]
    #: Work items (packets, events, jobs) per ``fn()`` call; used for
    #: throughput.  ``None`` means ``fn`` returns the item count itself
    #: (for workloads whose size is only known after running).
    items: Optional[int] = 1
    unit: str = "items"
    #: Preserved pre-optimization implementation of the same workload.
    ref_fn: Optional[Callable[[], Any]] = None
    cleanup: Optional[Callable[[], None]] = None


@dataclass
class BenchCase:
    """A named hot path: how to build its workload, how to report it."""

    name: str
    make: Callable[[bool], PreparedCase]
    description: str = ""
    #: Optional repro.obs histogram fed with the measured throughput so
    #: bench runs populate the same metric namespace as production runs
    #: (only set where the timed call bypasses the production call site
    #: that would otherwise observe it).
    metric: Optional[str] = None


@dataclass
class CaseResult:
    """Timing summary for one case (one row of BENCH_<host>.json)."""

    name: str
    times_sec: List[float]
    items: int
    unit: str
    repeats: int
    warmup: int
    description: str = ""
    ref_times_sec: Optional[List[float]] = None
    error: Optional[str] = None

    @property
    def median_sec(self) -> float:
        return median(self.times_sec)

    @property
    def p90_sec(self) -> float:
        return percentile(self.times_sec, 90.0)

    @property
    def mad_sec(self) -> float:
        return mad(self.times_sec)

    @property
    def throughput_per_sec(self) -> Optional[float]:
        m = self.median_sec
        if m <= 0 or not self.items:
            return None
        return self.items / m

    @property
    def ref_median_sec(self) -> Optional[float]:
        if not self.ref_times_sec:
            return None
        return median(self.ref_times_sec)

    @property
    def speedup_vs_ref(self) -> Optional[float]:
        ref = self.ref_median_sec
        if ref is None or self.median_sec <= 0:
            return None
        return ref / self.median_sec

    def to_dict(self) -> Dict[str, Any]:
        if self.error is not None:
            return {
                "name": self.name,
                "description": self.description,
                "error": self.error,
            }
        out: Dict[str, Any] = {
            "name": self.name,
            "description": self.description,
            "median_sec": self.median_sec,
            "p90_sec": self.p90_sec,
            "mad_sec": self.mad_sec,
            "times_sec": list(self.times_sec),
            "items": self.items,
            "unit": self.unit,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "throughput_per_sec": self.throughput_per_sec,
        }
        if self.ref_times_sec is not None:
            out["ref_times_sec"] = list(self.ref_times_sec)
            out["ref_median_sec"] = self.ref_median_sec
            out["speedup_vs_ref"] = self.speedup_vs_ref
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CaseResult":
        if d.get("error"):
            return cls(
                name=d["name"],
                times_sec=[],
                items=0,
                unit="items",
                repeats=0,
                warmup=0,
                description=d.get("description", ""),
                error=d["error"],
            )
        return cls(
            name=d["name"],
            times_sec=list(d["times_sec"]),
            items=d.get("items") or 0,
            unit=d.get("unit", "items"),
            repeats=d.get("repeats", len(d["times_sec"])),
            warmup=d.get("warmup", 0),
            description=d.get("description", ""),
            ref_times_sec=(
                list(d["ref_times_sec"]) if "ref_times_sec" in d else None
            ),
        )


def _time_calls(
    fn: Callable[[], Any], repeats: int, warmup: int
) -> tuple:
    """Return (times, last_result) for ``repeats`` timed calls."""
    result = None
    for _ in range(warmup):
        result = fn()
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    return times, result


def run_case(
    case: BenchCase,
    quick: bool = False,
    repeats: Optional[int] = None,
    warmup: Optional[int] = None,
) -> CaseResult:
    """Prepare, warm up, time, and summarise one benchmark case."""
    if repeats is None:
        repeats = QUICK_REPEATS if quick else DEFAULT_REPEATS
    if warmup is None:
        warmup = QUICK_WARMUP if quick else DEFAULT_WARMUP
    with obs.span("bench.case", case=case.name, quick=quick):
        prepared = case.make(quick)
        try:
            times, last = _time_calls(prepared.fn, repeats, warmup)
            items = (
                int(last) if prepared.items is None else int(prepared.items)
            )
            ref_times = None
            if prepared.ref_fn is not None:
                ref_times, _ = _time_calls(prepared.ref_fn, repeats, warmup)
        finally:
            if prepared.cleanup is not None:
                prepared.cleanup()
    result = CaseResult(
        name=case.name,
        times_sec=times,
        items=items,
        unit=prepared.unit,
        repeats=repeats,
        warmup=warmup,
        description=case.description,
        ref_times_sec=ref_times,
    )
    throughput = result.throughput_per_sec
    if case.metric and throughput:
        obs.metrics().histogram(case.metric, obs.RATE_BUCKETS).observe(
            throughput
        )
    return result
