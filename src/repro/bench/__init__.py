"""repro.bench: micro/macro benchmark harness for the hot paths.

The paper's §4.2 makes *throughput* a first-class result (iBoxML's 2.2
ms/packet is why it "cannot be used for emulation at present"), and the
ROADMAP's north star is "as fast as the hardware allows".  This package
turns that into a machine-readable trajectory: named benchmark cases for
every hot path (iBoxML free-running unroll, LSTM forward/step, iBoxNet
fit, the DES engine event loop, the emulator packet path, and the batch
runner's cold/warm cache), timed with warmup and repetition, summarised
with robust statistics (median / p90 / MAD), and written to versioned
``BENCH_<host>.json`` files that ``compare`` diffs against a committed
baseline with a regression threshold.

Benchmark cases drive the *production* code paths, so when telemetry is
enabled the same :mod:`repro.obs` histograms that production runs fill
(``ml.packets_per_sec``, ``sim.events_per_sec``,
``emulate.packets_per_sec``) are filled by bench runs too — one metric
namespace, two sources (DESIGN.md §7/§8).

Usage — run the suite and compare against a baseline::

    from repro.bench import run_suite, compare_reports, load_report

    report = run_suite(quick=True)            # BenchReport
    print(report.format_report())
    report.write("BENCH_myhost.json")

    baseline = load_report("benchmarks/baselines/BENCH_baseline.json")
    cmp = compare_reports(report, baseline, threshold=1.5)
    print(cmp.format_report())
    if cmp.has_regressions:
        ...

or from the command line::

    repro bench run --quick --output BENCH_ci.json
    repro bench compare BENCH_ci.json --baseline benchmarks/baselines/BENCH_baseline.json

Cases that optimized a previously shipped implementation keep the
original as a *reference* in :mod:`repro.bench.reference`; the harness
times both and reports ``speedup_vs_ref`` so the claimed ratios
(PERFORMANCE.md) are reproduced, not asserted.  The same references are
the oracles for the golden-output tests in
``tests/test_ml_lstm_golden.py``.
"""

from repro.bench.harness import BenchCase, CaseResult, PreparedCase, run_case
from repro.bench.results import (
    BENCH_SCHEMA_VERSION,
    BenchReport,
    CompareResult,
    compare_reports,
    default_output_name,
    load_report,
)
from repro.bench.suites import CASES, case_names, run_suite

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchCase",
    "BenchReport",
    "CASES",
    "CaseResult",
    "CompareResult",
    "PreparedCase",
    "case_names",
    "compare_reports",
    "default_output_name",
    "load_report",
    "run_case",
    "run_suite",
]
