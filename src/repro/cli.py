"""Command-line interface: ``python -m repro <command>``.

Commands mirror the workflows a downstream user needs:

``reproduce``
    Run one (or all) of the paper's experiments and print its report;
    ``all`` can fan out across worker processes (``--workers``).
``generate``
    Generate a synthetic Pantheon-like dataset and save the traces.
``fit``
    Fit an iBoxNet model to a saved trace and print the learnt
    parameters (optionally dumping the profile as JSON — the "iBoxNet
    profiles" the paper planned to release, §3.2 fn. 2 — or skipping
    the fit entirely when a previously saved profile is supplied).
``simulate``
    Run a counterfactual: fit a trace, simulate another protocol over
    the learnt model, print its summary (optionally saving the trace).
``batch``
    Fan a directory of traces out across a worker pool: fit each trace
    through the content-addressed profile cache, run the requested
    counterfactual protocols, and write a JSON run manifest.
``chaos``
    Seeded fault-injection campaign (DESIGN.md §9): corrupt traces,
    crash/kill/hang workers, tear a cache entry — all deterministically
    from ``--seed`` — and verify every guard holds.  Exits non-zero on
    any guard violation, so CI can run it as a smoke job.
``obs``
    Observability helpers: ``obs summarize <path>`` renders a per-stage
    timing table from a JSONL event log, a metrics snapshot, or a run
    manifest.
``bench``
    Performance harness: ``bench run`` times the hot paths and writes a
    versioned ``BENCH_<host>.json``; ``bench compare`` diffs a result
    file against a committed baseline with a regression threshold
    (see PERFORMANCE.md and DESIGN.md §8).

Global flags (before the subcommand) control telemetry: ``--metrics-out``
/ ``--trace-out`` enable collection and write the artifacts on exit;
``--log-level`` / ``--log-format`` control diagnostic logging.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.experiments.common import EXPERIMENT_NAMES

EXPERIMENTS = EXPERIMENT_NAMES

_log = obs.get_logger("repro.cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="iBox: Internet in a Box (HotNets 2020) reproduction",
    )
    parser.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        default="info", help="diagnostic log threshold (default: info)",
    )
    parser.add_argument(
        "--log-format", choices=("human", "jsonl"), default="human",
        help="diagnostic log rendering on stderr (default: human)",
    )
    parser.add_argument(
        "--metrics-out", type=Path, default=None,
        help="enable telemetry and write a metrics snapshot JSON here",
    )
    parser.add_argument(
        "--trace-out", type=Path, default=None,
        help="enable telemetry and write the JSONL span/event log here",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    reproduce = sub.add_parser(
        "reproduce", help="run a paper experiment and print its report"
    )
    reproduce.add_argument(
        "experiment", choices=(*EXPERIMENTS, "all"),
        help="which table/figure to reproduce",
    )
    reproduce.add_argument(
        "--scale", choices=("quick", "paper"), default="quick",
        help="experiment sizing (default: quick)",
    )
    reproduce.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for 'all' (default: 1, serial)",
    )

    generate = sub.add_parser(
        "generate", help="generate a synthetic Pantheon-like dataset"
    )
    generate.add_argument("output_dir", type=Path)
    generate.add_argument("--paths", type=int, default=5)
    generate.add_argument("--duration", type=float, default=30.0)
    generate.add_argument(
        "--protocols", nargs="+", default=["cubic", "vegas"]
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--fmt", choices=("npz", "jsonl"), default="npz")

    fit = sub.add_parser(
        "fit", help="fit an iBoxNet model to a saved trace"
    )
    fit.add_argument("trace", type=Path)
    fit.add_argument(
        "--profile", type=Path, default=None,
        help="write the learnt profile as JSON",
    )
    fit.add_argument(
        "--from-profile", type=Path, default=None,
        help="load this profile JSON instead of re-fitting the trace",
    )

    simulate = sub.add_parser(
        "simulate", help="counterfactual: fit a trace, run protocol B on it"
    )
    simulate.add_argument("trace", type=Path)
    simulate.add_argument("protocol")
    simulate.add_argument("--duration", type=float, default=None)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--output", type=Path, default=None)

    batch = sub.add_parser(
        "batch",
        help="fit+simulate a directory of traces across a worker pool",
    )
    batch.add_argument(
        "trace_dir", type=Path, help="directory of .npz/.jsonl traces"
    )
    batch.add_argument(
        "--protocols", nargs="+", default=["cubic"],
        help="counterfactual protocols to simulate (default: cubic)",
    )
    batch.add_argument("--workers", type=int, default=1)
    batch.add_argument(
        "--duration", type=float, default=None,
        help="simulation duration (default: each trace's own duration)",
    )
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument(
        "--cache-dir", type=Path, default=None,
        help="profile cache root (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/profiles)",
    )
    batch.add_argument(
        "--manifest-dir", type=Path, default=None,
        help="write the run manifest JSON into this directory",
    )
    batch.add_argument(
        "--output-dir", type=Path, default=None,
        help="save each predicted trace here",
    )
    batch.add_argument(
        "--timeout", type=float, default=None,
        help="per-job timeout in seconds",
    )
    batch.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts per failed job (default: 1)",
    )
    batch.add_argument(
        "--budget-sec", type=float, default=None,
        help="total wall-clock budget; jobs not finished in time are "
        "recorded as failed (BudgetExhausted) and can be --resume'd",
    )
    batch.add_argument(
        "--repair-policy", choices=("strict", "repair", "skip"),
        default="strict",
        help="how to load corrupt traces: strict fails the job, repair "
        "sanitizes records, skip drops malformed lines (default: strict)",
    )
    batch.add_argument(
        "--resume", type=Path, default=None, metavar="MANIFEST",
        help="resume from a prior run's manifest: jobs recorded ok "
        "there are skipped, everything else re-runs",
    )

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign against the guards",
    )
    chaos.add_argument(
        "--seed", type=int, default=7,
        help="campaign seed; same seed, same faults (default: 7)",
    )
    chaos.add_argument(
        "--policy", choices=("strict", "repair", "skip"), default="repair",
        help="repair policy for the corrupted-trace phase (default: repair)",
    )
    chaos.add_argument("--workers", type=int, default=2)
    chaos.add_argument(
        "--duration", type=float, default=3.0,
        help="seconds of synthetic trace per fault (default: 3)",
    )
    chaos.add_argument(
        "--workdir", type=Path, default=None,
        help="campaign scratch directory (default: a fresh temp dir)",
    )

    obs_cmd = sub.add_parser(
        "obs", help="observability helpers (summarize telemetry artifacts)"
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser(
        "summarize",
        help="per-stage timing table from an event log, metrics "
        "snapshot, or run manifest",
    )
    summarize.add_argument(
        "path", type=Path,
        help="JSONL event log, metrics snapshot JSON, or run manifest JSON",
    )

    bench = sub.add_parser(
        "bench", help="benchmark the hot paths / compare against a baseline"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_run = bench_sub.add_parser(
        "run", help="time the hot paths and write BENCH_<host>.json"
    )
    bench_run.add_argument(
        "--quick", action="store_true",
        help="small workloads and fewer repetitions (CI smoke sizing)",
    )
    bench_run.add_argument(
        "--filter", nargs="+", default=None, metavar="SUBSTR",
        help="only run cases whose name contains any of these substrings",
    )
    bench_run.add_argument(
        "--repeats", type=int, default=None,
        help="timed repetitions per case (default: 5, or 3 with --quick)",
    )
    bench_run.add_argument(
        "--output", type=Path, default=None,
        help="result file path (default: ./BENCH_<host>.json)",
    )
    bench_run.add_argument(
        "--list", action="store_true", dest="list_cases",
        help="list available cases and exit",
    )
    bench_compare = bench_sub.add_parser(
        "compare", help="diff a BENCH_*.json against a baseline"
    )
    bench_compare.add_argument(
        "current", type=Path, help="the BENCH_*.json to check"
    )
    bench_compare.add_argument(
        "--baseline", type=Path,
        default=Path("benchmarks/baselines/BENCH_baseline.json"),
        help="baseline result file "
        "(default: benchmarks/baselines/BENCH_baseline.json)",
    )
    bench_compare.add_argument(
        "--threshold", type=float, default=None,
        help="flag cases slower than baseline by more than this factor "
        "(default: 1.5)",
    )
    bench_compare.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit non-zero when a regression is flagged (default: "
        "warn-only, for noisy shared runners)",
    )
    return parser


def _cmd_reproduce(args) -> int:
    from repro.experiments.common import run_experiment

    targets = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    if len(targets) > 1 and args.workers > 1:
        from repro.runtime.batch import run_experiments
        from repro.runtime.executor import ExecutorConfig

        results, manifest = run_experiments(
            targets,
            scale=args.scale,
            config=ExecutorConfig(workers=args.workers),
        )
        for result in results:
            if result.ok:
                print(result.value["report"])
            else:
                print(
                    f"EXPERIMENT FAILED {result.spec.label}: "
                    f"{result.error.error_type}: {result.error.message}"
                )
            print()
        print(manifest.format_report())
        return 0 if all(r.ok for r in results) else 1

    for name in targets:
        print(run_experiment(name, scale=args.scale))
        print()
    return 0


def _cmd_generate(args) -> int:
    from repro.datasets.pantheon import generate_dataset
    from repro.trace.io import save_traces

    dataset = generate_dataset(
        n_paths=args.paths,
        protocols=tuple(args.protocols),
        duration=args.duration,
        base_seed=args.seed,
    )
    paths = save_traces(dataset.traces(), args.output_dir, fmt=args.fmt)
    for run, path in zip(dataset.runs, paths):
        print(f"{path}  <- {run.trace.summary()}")
    return 0


def _cmd_fit(args) -> int:
    from repro.core import iboxnet
    from repro.trace.io import load_trace

    if args.from_profile is not None:
        model = iboxnet.from_profile(
            json.loads(args.from_profile.read_text())
        )
        print(f"loaded profile {args.from_profile}")
        print(f"  {model}")
    else:
        trace = load_trace(args.trace)
        model = iboxnet.fit(trace)
        print(f"fitted from {trace}")
        print(f"  {model}")
    if args.profile is not None:
        args.profile.write_text(
            json.dumps(iboxnet.to_profile(model), indent=2)
        )
        print(f"  profile written to {args.profile}")
    return 0


def _cmd_simulate(args) -> int:
    from repro.core import iboxnet
    from repro.trace.io import load_trace, save_trace

    trace = load_trace(args.trace)
    model = iboxnet.fit(trace)
    duration = args.duration if args.duration is not None else trace.duration
    predicted = model.simulate(args.protocol, duration=duration, seed=args.seed)
    print(f"learnt model: {model}")
    print(f"counterfactual {args.protocol}: {predicted.summary()}")
    if args.output is not None:
        save_trace(predicted, args.output)
        print(f"trace written to {args.output}")
    return 0


def _cmd_batch(args) -> int:
    from repro.runtime.batch import run_batch
    from repro.runtime.executor import ExecutorConfig
    from repro.trace.io import iter_trace_paths

    try:
        trace_paths = iter_trace_paths(args.trace_dir)
    except (FileNotFoundError, NotADirectoryError) as exc:
        _log.error("batch.bad_trace_dir", dir=str(args.trace_dir), error=str(exc))
        return 2
    if not trace_paths:
        _log.error("batch.no_traces", dir=str(args.trace_dir))
        return 2
    try:
        results, manifest, manifest_path = run_batch(
            trace_paths,
            protocols=args.protocols,
            duration=args.duration,
            seed=args.seed,
            cache_dir=args.cache_dir,
            output_dir=args.output_dir,
            manifest_dir=args.manifest_dir,
            repair_policy=args.repair_policy,
            resume_from=args.resume,
            config=ExecutorConfig(
                workers=args.workers,
                timeout_sec=args.timeout,
                max_attempts=args.retries + 1,
                budget_sec=args.budget_sec,
            ),
        )
    except (FileNotFoundError, ValueError) as exc:
        _log.error(
            "batch.bad_resume_manifest",
            manifest=str(args.resume),
            error=str(exc),
        )
        return 2
    for result in results:
        if result.resumed:
            print(f"ok     resumed   {result.spec.params['trace_path']}")
        elif result.ok:
            hit = "cache hit " if result.cache_hit else "fitted    "
            for protocol, s in result.value["summaries"].items():
                print(
                    f"ok     {hit}{result.value['trace_path']} "
                    f"[{protocol}] rate={s['mean_rate_mbps']:.2f} Mb/s "
                    f"p95={s['p95_delay_ms']:.0f} ms "
                    f"loss={s['loss_percent']:.2f}%"
                )
        else:
            print(
                f"FAILED {result.spec.params['trace_path']}: "
                f"{result.error.error_type}: {result.error.message}"
            )
    print()
    print(manifest.format_report())
    if manifest_path is not None:
        print(f"manifest written to {manifest_path}")
    return 0 if all(r.ok for r in results) else 1


def _cmd_chaos(args) -> int:
    import tempfile

    from repro.guard.chaos import run_campaign

    if args.workdir is not None:
        args.workdir.mkdir(parents=True, exist_ok=True)
        report = run_campaign(
            args.workdir,
            seed=args.seed,
            policy=args.policy,
            workers=args.workers,
            duration=args.duration,
        )
    else:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            report = run_campaign(
                tmp,
                seed=args.seed,
                policy=args.policy,
                workers=args.workers,
                duration=args.duration,
            )
    print(report.format_report())
    return 0 if report.ok else 1


def _cmd_obs(args) -> int:
    from repro.obs.summarize import summarize_path

    try:
        print(summarize_path(args.path))
    except FileNotFoundError:
        _log.error("obs.missing_input", path=str(args.path))
        return 2
    except ValueError as exc:
        _log.error("obs.bad_input", path=str(args.path), error=str(exc))
        return 2
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import (
        CASES,
        compare_reports,
        default_output_name,
        load_report,
        run_suite,
    )
    from repro.bench.results import DEFAULT_THRESHOLD

    if args.bench_command == "run":
        if args.list_cases:
            for name, case in CASES.items():
                print(f"{name:<22} {case.description}")
            return 0
        # Benchmarks drive the production code paths, so telemetry is
        # forced on: the production obs call sites fill the shared
        # histograms and the snapshot lands inside BENCH_<host>.json.
        if not obs.enabled():
            obs.configure(enabled=True, log_level=args.log_level,
                          log_format=args.log_format)
        try:
            report = run_suite(
                filters=args.filter, quick=args.quick, repeats=args.repeats
            )
        except ValueError as exc:
            _log.error("bench.bad_filter", error=str(exc))
            return 2
        print(report.format_report())
        output = args.output or Path(default_output_name())
        path = report.write(output)
        print(f"results written to {path}")
        return 1 if any(c.error for c in report.cases) else 0

    # bench compare
    try:
        current = load_report(args.current)
    except (FileNotFoundError, ValueError, KeyError) as exc:
        _log.error("bench.bad_current", path=str(args.current), error=str(exc))
        return 2
    try:
        baseline = load_report(args.baseline)
    except (FileNotFoundError, ValueError, KeyError) as exc:
        _log.error(
            "bench.bad_baseline", path=str(args.baseline), error=str(exc)
        )
        return 2
    if current.quick != baseline.quick:
        _log.warning(
            "bench.sizing_mismatch",
            current_quick=current.quick,
            baseline_quick=baseline.quick,
        )
    threshold = (
        args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    )
    result = compare_reports(current, baseline, threshold=threshold)
    print(result.format_report())
    if result.has_regressions:
        if args.fail_on_regression:
            return 1
        print("(warn-only: pass --fail-on-regression to make this fatal)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    obs.configure(
        enabled=bool(args.metrics_out or args.trace_out),
        log_level=args.log_level,
        log_format=args.log_format,
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
    )
    handlers = {
        "reproduce": _cmd_reproduce,
        "generate": _cmd_generate,
        "fit": _cmd_fit,
        "simulate": _cmd_simulate,
        "batch": _cmd_batch,
        "chaos": _cmd_chaos,
        "obs": _cmd_obs,
        "bench": _cmd_bench,
    }
    try:
        return handlers[args.command](args)
    finally:
        if obs.enabled():
            written = obs.flush()
            if written.get("trace"):
                print(f"event log written to {written['trace']}")
            if written.get("metrics"):
                print(f"metrics written to {written['metrics']}")


if __name__ == "__main__":
    sys.exit(main())
