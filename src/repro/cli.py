"""Command-line interface: ``python -m repro <command>``.

Commands mirror the workflows a downstream user needs:

``reproduce``
    Run one (or all) of the paper's experiments and print its report;
    ``all`` can fan out across worker processes (``--workers``).
``generate``
    Generate a synthetic Pantheon-like dataset and save the traces.
``fit``
    Fit an iBoxNet model to a saved trace and print the learnt
    parameters (optionally dumping the profile as JSON — the "iBoxNet
    profiles" the paper planned to release, §3.2 fn. 2 — or skipping
    the fit entirely when a previously saved profile is supplied).
``simulate``
    Run a counterfactual: fit a trace, simulate another protocol over
    the learnt model, print its summary (optionally saving the trace).
``batch``
    Fan a directory of traces out across a worker pool: fit each trace
    through the content-addressed profile cache, run the requested
    counterfactual protocols, and write a JSON run manifest.
``serve``
    The long-running service (DESIGN.md §10): ``serve run`` starts the
    crash-tolerant daemon (spool/unix-socket intake, durable WAL
    journal, supervised workers, graceful drain on SIGTERM);
    ``serve submit`` sends job requests; ``serve fetch`` retrieves a
    completed job's checksum-verified result by job_id; ``serve
    status`` summarises the journal of a live or dead service.
``chaos``
    Seeded fault-injection campaigns (DESIGN.md §9): ``--campaign
    guards`` (default) corrupts traces, crash/kill/hang workers, and
    tears a cache entry; ``--campaign service`` SIGKILLs the serve
    daemon mid-run and asserts exactly-once recovery plus graceful
    drain; ``--campaign storage`` (DESIGN.md §15) bit-flips the WAL
    and result files, injects ENOSPC, and kills inside the
    result-write/journal-append window.  Exits non-zero on any guard
    violation, so CI can run each as a smoke job.
``sweep``
    Vectorized flow-level scenario sweeps (DESIGN.md §11): ``sweep
    run`` advances a whole grid (paths × protocols × seeds) in lockstep
    through the fluid fast path and writes the standard run manifest;
    ``sweep validate`` runs the pinned golden scenarios through both
    the flow core and the packet engine and reports per-metric error.
``obs``
    Observability helpers: ``obs summarize <path>`` renders a per-stage
    timing table from a JSONL event log, a metrics snapshot, or a run
    manifest.
``bench``
    Performance harness: ``bench run`` times the hot paths and writes a
    versioned ``BENCH_<host>.json``; ``bench compare`` diffs a result
    file against a committed baseline with a regression threshold
    (see PERFORMANCE.md and DESIGN.md §8).

Global flags (before the subcommand) control telemetry: ``--metrics-out``
/ ``--trace-out`` enable collection and write the artifacts on exit;
``--log-level`` / ``--log-format`` control diagnostic logging.
"""

from __future__ import annotations

import argparse
import json
import signal as _signal
import sys
import threading
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.experiments.common import EXPERIMENT_NAMES

EXPERIMENTS = EXPERIMENT_NAMES

_log = obs.get_logger("repro.cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="iBox: Internet in a Box (HotNets 2020) reproduction",
    )
    parser.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        default="info", help="diagnostic log threshold (default: info)",
    )
    parser.add_argument(
        "--log-format", choices=("human", "jsonl"), default="human",
        help="diagnostic log rendering on stderr (default: human)",
    )
    parser.add_argument(
        "--metrics-out", type=Path, default=None,
        help="enable telemetry and write a metrics snapshot JSON here",
    )
    parser.add_argument(
        "--trace-out", type=Path, default=None,
        help="enable telemetry and write the JSONL span/event log here",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    reproduce = sub.add_parser(
        "reproduce", help="run a paper experiment and print its report"
    )
    reproduce.add_argument(
        "experiment", choices=(*EXPERIMENTS, "all"),
        help="which table/figure to reproduce",
    )
    reproduce.add_argument(
        "--scale", choices=("quick", "paper"), default="quick",
        help="experiment sizing (default: quick)",
    )
    reproduce.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for 'all' (default: 1, serial)",
    )

    generate = sub.add_parser(
        "generate", help="generate a synthetic Pantheon-like dataset"
    )
    generate.add_argument("output_dir", type=Path)
    generate.add_argument("--paths", type=int, default=5)
    generate.add_argument("--duration", type=float, default=30.0)
    generate.add_argument(
        "--protocols", nargs="+", default=["cubic", "vegas"]
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--fmt", choices=("npz", "jsonl"), default="npz")

    fit = sub.add_parser(
        "fit", help="fit an iBoxNet model to a saved trace"
    )
    fit.add_argument("trace", type=Path)
    fit.add_argument(
        "--profile", type=Path, default=None,
        help="write the learnt profile as JSON",
    )
    fit.add_argument(
        "--from-profile", type=Path, default=None,
        help="load this profile JSON instead of re-fitting the trace",
    )

    simulate = sub.add_parser(
        "simulate", help="counterfactual: fit a trace, run protocol B on it"
    )
    simulate.add_argument("trace", type=Path)
    simulate.add_argument("protocol")
    simulate.add_argument("--duration", type=float, default=None)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--output", type=Path, default=None)

    batch = sub.add_parser(
        "batch",
        help="fit+simulate a directory of traces across a worker pool",
    )
    batch.add_argument(
        "trace_dir", type=Path, help="directory of .npz/.jsonl traces"
    )
    batch.add_argument(
        "--protocols", nargs="+", default=["cubic"],
        help="counterfactual protocols to simulate (default: cubic)",
    )
    batch.add_argument("--workers", type=int, default=1)
    batch.add_argument(
        "--duration", type=float, default=None,
        help="simulation duration (default: each trace's own duration)",
    )
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument(
        "--cache-dir", type=Path, default=None,
        help="profile cache root (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/profiles)",
    )
    batch.add_argument(
        "--manifest-dir", type=Path, default=None,
        help="write the run manifest JSON into this directory",
    )
    batch.add_argument(
        "--output-dir", type=Path, default=None,
        help="save each predicted trace here",
    )
    batch.add_argument(
        "--timeout", type=float, default=None,
        help="per-job timeout in seconds",
    )
    batch.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts per failed job (default: 1)",
    )
    batch.add_argument(
        "--budget-sec", type=float, default=None,
        help="total wall-clock budget; jobs not finished in time are "
        "recorded as failed (BudgetExhausted) and can be --resume'd",
    )
    batch.add_argument(
        "--repair-policy", choices=("strict", "repair", "skip"),
        default="strict",
        help="how to load corrupt traces: strict fails the job, repair "
        "sanitizes records, skip drops malformed lines (default: strict)",
    )
    batch.add_argument(
        "--resume", type=Path, default=None, metavar="MANIFEST",
        help="resume from a prior run's manifest: jobs recorded ok "
        "there are skipped, everything else re-runs",
    )

    serve = sub.add_parser(
        "serve",
        help="crash-tolerant job service: run the daemon, submit, status",
    )
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)
    serve_run = serve_sub.add_parser(
        "run", help="start the supervised daemon (drains on SIGTERM/SIGINT)"
    )
    serve_run.add_argument(
        "--state", type=Path, required=True,
        help="state directory (journal, results, manifests, lock)",
    )
    serve_run.add_argument(
        "--spool", type=Path, default=None,
        help="watched spool directory for JSONL job requests",
    )
    serve_run.add_argument(
        "--socket", type=Path, default=None,
        help="unix socket path for the request/response protocol",
    )
    serve_run.add_argument(
        "--bind", default=None, metavar="ENDPOINT",
        help="intake endpoint spec: 'unix:<path>' or 'tcp:<host>:<port>' "
        "(port 0 = ephemeral, published in <state>/serve.endpoint); "
        "mutually exclusive with --socket",
    )
    serve_run.add_argument("--workers", type=int, default=2)
    serve_run.add_argument(
        "--queue-limit", type=int, default=64,
        help="admission queue bound; beyond it jobs are shed (default: 64)",
    )
    serve_run.add_argument(
        "--default-timeout", type=float, default=None,
        help="per-job deadline when the request carries none",
    )
    serve_run.add_argument(
        "--drain-timeout", type=float, default=15.0,
        help="seconds to let in-flight leases settle on drain (default: 15)",
    )
    serve_run.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive failures that open a job class's circuit "
        "breaker (default: 3)",
    )
    serve_run.add_argument(
        "--breaker-cooldown", type=float, default=30.0,
        help="seconds an open breaker waits before a half-open probe "
        "(default: 30)",
    )
    serve_run.add_argument(
        "--poll-interval", type=float, default=0.05,
        help="scheduler tick in seconds (default: 0.05)",
    )
    serve_run.add_argument(
        "--idle-exit-sec", type=float, default=None,
        help="drain and exit 0 after being idle this long (default: never)",
    )
    serve_run.add_argument(
        "--max-runtime-sec", type=float, default=None,
        help="hard lifetime cap; drain and exit when reached (CI safety)",
    )
    serve_run.add_argument(
        "--no-fsync", action="store_true",
        help="skip fsync on journal appends (tests only; weakens "
        "crash durability)",
    )
    serve_run.add_argument(
        "--snapshot-interval", type=float, default=2.0,
        help="seconds between live snapshot flushes to "
        "<state>/obs/metrics.json (default: 2)",
    )
    serve_run.add_argument(
        "--slo", action="append", default=None, metavar="CLASS=LAT[:TARGET]",
        help="declare a per-class SLO, e.g. 'drill=250ms:0.99' "
        "(latency objective + success target; repeatable)",
    )
    serve_run.add_argument(
        "--profile", action="store_true",
        help="attach the wall-clock sampling profiler; collapsed "
        "stacks land in <state>/obs/profile.collapsed on drain",
    )
    serve_fleet = serve_sub.add_parser(
        "fleet",
        help="run a routed multi-daemon fleet: N shards behind one "
        "consistent-hashing socket",
    )
    serve_fleet.add_argument(
        "--state", type=Path, required=True,
        help="fleet state directory (spawns shard-<i> subdirs inside)",
    )
    serve_fleet.add_argument(
        "--shards", type=int, default=3,
        help="number of shard daemons to run (default: 3)",
    )
    serve_fleet.add_argument(
        "--socket", type=Path, default=None,
        help="fleet intake socket (default: <state>/fleet.sock)",
    )
    serve_fleet.add_argument(
        "--bind", default=None, metavar="ENDPOINT",
        help="fleet intake endpoint spec: 'unix:<path>' or "
        "'tcp:<host>:<port>' (port 0 = ephemeral, published in "
        "<state>/fleet.endpoint; TCP fleets bind their shards on "
        "tcp:127.0.0.1:0 too); mutually exclusive with --socket",
    )
    serve_fleet.add_argument(
        "--workers-per-shard", type=int, default=2,
        help="worker slots in each shard daemon (default: 2)",
    )
    serve_fleet.add_argument(
        "--queue-limit", type=int, default=64,
        help="per-shard admission queue bound (default: 64)",
    )
    serve_fleet.add_argument(
        "--default-timeout", type=float, default=None,
        help="per-job deadline when the request carries none",
    )
    serve_fleet.add_argument(
        "--drain-timeout", type=float, default=15.0,
        help="per-shard drain budget on fleet shutdown (default: 15)",
    )
    serve_fleet.add_argument(
        "--supervise-interval", type=float, default=0.25,
        help="seconds between shard liveness sweeps (default: 0.25)",
    )
    serve_fleet.add_argument(
        "--heartbeat-timeout", type=float, default=10.0,
        help="live-snapshot age past which a wedged-but-alive shard is "
        "killed and failed over (default: 10)",
    )
    serve_fleet.add_argument(
        "--suspect-sweeps", type=int, default=4,
        help="consecutive unreachable-shard sweeps before the manager "
        "kills and fails over the shard (default: 4)",
    )
    serve_fleet.add_argument(
        "--snapshot-interval", type=float, default=1.0,
        help="per-shard live snapshot flush interval (default: 1)",
    )
    serve_fleet.add_argument(
        "--max-runtime-sec", type=float, default=None,
        help="hard fleet lifetime cap; drain and exit when reached "
        "(CI safety)",
    )
    serve_fleet.add_argument(
        "--no-fsync", action="store_true",
        help="skip fsync on shard journal appends (tests only)",
    )
    serve_submit = serve_sub.add_parser(
        "submit", help="submit JSONL job requests to a daemon"
    )
    serve_submit.add_argument(
        "requests", nargs="*",
        help="request JSON objects (default: read JSONL from stdin)",
    )
    serve_submit.add_argument(
        "--spool", type=Path, default=None,
        help="drop the requests into this spool directory",
    )
    serve_submit.add_argument(
        "--socket", default=None, metavar="ENDPOINT",
        help="send over this endpoint and print each response: a unix "
        "socket path, 'unix:<path>', or 'tcp:<host>:<port>'",
    )
    serve_submit.add_argument(
        "--deadline", type=float, default=None, metavar="SEC",
        help="submit through the resilient client with this overall "
        "deadline budget (bounded retries, backoff, reconnect); "
        "default: one shot, fail fast",
    )
    serve_fetch = serve_sub.add_parser(
        "fetch",
        help="fetch a completed job's checksum-verified result by job_id",
    )
    serve_fetch.add_argument(
        "job_id",
        help="the job_id returned by 'serve submit' (content hash)",
    )
    serve_fetch.add_argument(
        "--socket", required=True, metavar="ENDPOINT",
        help="daemon or fleet router endpoint: a unix socket path, "
        "'unix:<path>', or 'tcp:<host>:<port>'",
    )
    serve_fetch.add_argument(
        "--wait", action="store_true",
        help="poll until the job settles (honours the daemon's "
        "retry-after hints) instead of returning 'pending' immediately",
    )
    serve_fetch.add_argument(
        "--deadline", type=float, default=30.0, metavar="SEC",
        help="overall deadline budget for retries and --wait polling "
        "(default: 30)",
    )
    serve_status = serve_sub.add_parser(
        "status",
        help="summarise a service's journal (live or dead); fleet state "
        "dirs get the cross-shard roll-up",
    )
    serve_status.add_argument(
        "--state", type=Path, required=True,
        help="the daemon's (or fleet's) state dir",
    )
    serve_status.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable output",
    )

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign against the guards",
    )
    chaos.add_argument(
        "--campaign",
        choices=("guards", "service", "fleet", "transport", "storage"),
        default="guards",
        help="guards: trace/file/runtime faults through the batch "
        "pipeline; service: SIGKILL the serve daemon (then a fleet "
        "shard) and assert exactly-once recovery; fleet: just the "
        "shard-kill drill; transport: lossy-wire drill through the "
        "network-chaos proxy over unix and TCP, plus a TCP fleet "
        "kill drill; storage: disk-fault drill — journal/result "
        "bit-rot, ENOSPC shedding, a kill window between result "
        "write and journal append, and fleet-wide fetch "
        "(default: guards)",
    )
    chaos.add_argument(
        "--seed", type=int, default=7,
        help="campaign seed; same seed, same faults (default: 7)",
    )
    chaos.add_argument(
        "--policy", choices=("strict", "repair", "skip"), default="repair",
        help="repair policy for the corrupted-trace phase (default: repair)",
    )
    chaos.add_argument("--workers", type=int, default=2)
    chaos.add_argument(
        "--duration", type=float, default=3.0,
        help="seconds of synthetic trace per fault (default: 3)",
    )
    chaos.add_argument(
        "--workdir", type=Path, default=None,
        help="campaign scratch directory (default: a fresh temp dir)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="vectorized flow-level scenario sweeps (run, validate)",
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)
    sweep_run = sweep_sub.add_parser(
        "run", help="advance a scenario grid through the flow-level core"
    )
    sweep_run.add_argument(
        "--grid", type=Path, default=None,
        help="scenario grid JSON (ScenarioGrid.to_params format); "
        "overrides the inline path flags",
    )
    sweep_run.add_argument(
        "--profile", type=Path, nargs="+", default=None,
        help="iBoxNet profile JSON file(s) to sweep over",
    )
    sweep_run.add_argument(
        "--bandwidth-mbps", type=float, nargs="+", default=[10.0],
        help="constant bottleneck rates for inline paths (default: 10)",
    )
    sweep_run.add_argument(
        "--delay-ms", type=float, nargs="+", default=[25.0],
        help="one-way propagation delays for inline paths (default: 25)",
    )
    sweep_run.add_argument(
        "--buffer-kb", type=float, nargs="+", default=[125.0],
        help="bottleneck buffer sizes for inline paths (default: 125)",
    )
    sweep_run.add_argument(
        "--protocols", nargs="+", default=["cubic"],
        help="protocols to sweep (default: cubic)",
    )
    sweep_run.add_argument(
        "--seeds", type=int, default=1,
        help="number of seeds per (path, protocol) (default: 1)",
    )
    sweep_run.add_argument(
        "--seed-base", type=int, default=0,
        help="first seed value (default: 0)",
    )
    sweep_run.add_argument("--duration", type=float, default=8.0)
    sweep_run.add_argument(
        "--dt", type=float, default=None,
        help="interval length in seconds (default: 0.01)",
    )
    sweep_run.add_argument(
        "--chunk-size", type=int, default=256,
        help="target scenarios per lockstep chunk (default: 256)",
    )
    sweep_run.add_argument("--workers", type=int, default=1)
    sweep_run.add_argument(
        "--manifest-dir", type=Path, default=None,
        help="write the run manifest JSON into this directory",
    )
    sweep_run.add_argument(
        "--output", type=Path, default=None,
        help="write per-scenario results JSON here",
    )
    sweep_validate = sweep_sub.add_parser(
        "validate",
        help="fidelity check: flow core vs packet engine on the golden grid",
    )
    sweep_validate.add_argument(
        "--duration", type=float, default=8.0,
        help="seconds per golden scenario (default: 8)",
    )
    sweep_validate.add_argument(
        "--report", type=Path, default=None,
        help="write the fidelity report JSON here",
    )

    obs_cmd = sub.add_parser(
        "obs", help="observability helpers (summarize telemetry artifacts)"
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser(
        "summarize",
        help="per-stage timing table from event logs, metrics "
        "snapshots, or run manifests (multiple inputs merge)",
    )
    summarize.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="JSONL event log(s), metrics snapshot JSON(s), or run "
        "manifest JSON(s); glob patterns are expanded, multiple "
        "metrics snapshots are merged (counters/histograms sum)",
    )
    obs_top = obs_sub.add_parser(
        "top",
        help="terminal view of a live daemon: queue depth, leases, "
        "per-class latency percentiles, breakers, SLO budgets",
    )
    obs_top.add_argument(
        "--state", type=Path, default=None,
        help="daemon state dir (reads <state>/obs/metrics.json)",
    )
    obs_top.add_argument(
        "--snapshot", type=Path, default=None,
        help="read this snapshot file directly",
    )
    obs_top.add_argument(
        "--socket", type=Path, default=None,
        help="ask a live daemon over its unix socket (stats verb) "
        "instead of reading the snapshot file",
    )
    obs_top.add_argument(
        "--watch", type=float, default=None, metavar="SEC",
        help="refresh every SEC seconds until interrupted",
    )

    bench = sub.add_parser(
        "bench", help="benchmark the hot paths / compare against a baseline"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_run = bench_sub.add_parser(
        "run", help="time the hot paths and write BENCH_<host>.json"
    )
    bench_run.add_argument(
        "--quick", action="store_true",
        help="small workloads and fewer repetitions (CI smoke sizing)",
    )
    bench_run.add_argument(
        "--filter", nargs="+", default=None, metavar="SUBSTR",
        help="only run cases whose name contains any of these substrings",
    )
    bench_run.add_argument(
        "--repeats", type=int, default=None,
        help="timed repetitions per case (default: 5, or 3 with --quick)",
    )
    bench_run.add_argument(
        "--output", type=Path, default=None,
        help="result file path (default: ./BENCH_<host>.json)",
    )
    bench_run.add_argument(
        "--list", action="store_true", dest="list_cases",
        help="list available cases and exit",
    )
    bench_run.add_argument(
        "--profile", action="store_true",
        help="sample thread stacks while the suite runs and write "
        "collapsed flamegraph text next to the result file",
    )
    bench_compare = bench_sub.add_parser(
        "compare", help="diff a BENCH_*.json against a baseline"
    )
    bench_compare.add_argument(
        "current", type=Path, help="the BENCH_*.json to check"
    )
    bench_compare.add_argument(
        "--baseline", type=Path,
        default=Path("benchmarks/baselines/BENCH_baseline.json"),
        help="baseline result file "
        "(default: benchmarks/baselines/BENCH_baseline.json)",
    )
    bench_compare.add_argument(
        "--threshold", type=float, default=None,
        help="flag cases slower than baseline by more than this factor "
        "(default: 1.5)",
    )
    bench_compare.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit non-zero when a regression is flagged (default: "
        "warn-only, for noisy shared runners)",
    )
    return parser


def _cmd_reproduce(args) -> int:
    from repro.experiments.common import run_experiment

    targets = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    if len(targets) > 1 and args.workers > 1:
        from repro.runtime.batch import run_experiments
        from repro.runtime.executor import ExecutorConfig

        results, manifest = run_experiments(
            targets,
            scale=args.scale,
            config=ExecutorConfig(workers=args.workers),
        )
        for result in results:
            if result.ok:
                print(result.value["report"])
            else:
                print(
                    f"EXPERIMENT FAILED {result.spec.label}: "
                    f"{result.error.error_type}: {result.error.message}"
                )
            print()
        print(manifest.format_report())
        return 0 if all(r.ok for r in results) else 1

    for name in targets:
        print(run_experiment(name, scale=args.scale))
        print()
    return 0


def _cmd_generate(args) -> int:
    from repro.datasets.pantheon import generate_dataset
    from repro.trace.io import save_traces

    dataset = generate_dataset(
        n_paths=args.paths,
        protocols=tuple(args.protocols),
        duration=args.duration,
        base_seed=args.seed,
    )
    paths = save_traces(dataset.traces(), args.output_dir, fmt=args.fmt)
    for run, path in zip(dataset.runs, paths):
        print(f"{path}  <- {run.trace.summary()}")
    return 0


def _cmd_fit(args) -> int:
    from repro.core import iboxnet
    from repro.trace.io import load_trace

    if args.from_profile is not None:
        model = iboxnet.from_profile(
            json.loads(args.from_profile.read_text())
        )
        print(f"loaded profile {args.from_profile}")
        print(f"  {model}")
    else:
        trace = load_trace(args.trace)
        model = iboxnet.fit(trace)
        print(f"fitted from {trace}")
        print(f"  {model}")
    if args.profile is not None:
        args.profile.write_text(
            json.dumps(iboxnet.to_profile(model), indent=2)
        )
        print(f"  profile written to {args.profile}")
    return 0


def _cmd_simulate(args) -> int:
    from repro.core import iboxnet
    from repro.trace.io import load_trace, save_trace

    trace = load_trace(args.trace)
    model = iboxnet.fit(trace)
    duration = args.duration if args.duration is not None else trace.duration
    predicted = model.simulate(args.protocol, duration=duration, seed=args.seed)
    print(f"learnt model: {model}")
    print(f"counterfactual {args.protocol}: {predicted.summary()}")
    if args.output is not None:
        save_trace(predicted, args.output)
        print(f"trace written to {args.output}")
    return 0


# Which interrupt-ish signal the batch handlers caught (exit code is
# 128 + signal: 130 for SIGINT, 143 for SIGTERM).
_CAUGHT_SIGNAL = {"signum": None}


def _install_batch_signal_handlers() -> None:
    """Route SIGINT/SIGTERM into KeyboardInterrupt so the executor can
    checkpoint: finished jobs keep their results, unfinished ones are
    recorded ``Interrupted``, and the partial manifest still gets
    written for ``--resume``."""
    if threading.current_thread() is not threading.main_thread():
        return

    def _raise(signum, frame):
        _CAUGHT_SIGNAL["signum"] = signum
        raise KeyboardInterrupt

    _signal.signal(_signal.SIGINT, _raise)
    _signal.signal(_signal.SIGTERM, _raise)


def _interrupt_exit_code() -> int:
    signum = _CAUGHT_SIGNAL["signum"] or _signal.SIGINT
    return 128 + int(signum)


def _cmd_batch(args) -> int:
    from repro.runtime.batch import run_batch
    from repro.runtime.executor import ExecutorConfig
    from repro.trace.io import iter_trace_paths

    _install_batch_signal_handlers()
    try:
        trace_paths = iter_trace_paths(args.trace_dir)
    except (FileNotFoundError, NotADirectoryError) as exc:
        _log.error("batch.bad_trace_dir", dir=str(args.trace_dir), error=str(exc))
        return 2
    if not trace_paths:
        _log.error("batch.no_traces", dir=str(args.trace_dir))
        return 2
    try:
        results, manifest, manifest_path = run_batch(
            trace_paths,
            protocols=args.protocols,
            duration=args.duration,
            seed=args.seed,
            cache_dir=args.cache_dir,
            output_dir=args.output_dir,
            manifest_dir=args.manifest_dir,
            repair_policy=args.repair_policy,
            resume_from=args.resume,
            config=ExecutorConfig(
                workers=args.workers,
                timeout_sec=args.timeout,
                max_attempts=args.retries + 1,
                budget_sec=args.budget_sec,
            ),
        )
    except (FileNotFoundError, ValueError) as exc:
        _log.error(
            "batch.bad_resume_manifest",
            manifest=str(args.resume),
            error=str(exc),
        )
        return 2
    except KeyboardInterrupt:
        # The signal landed outside the executor's checkpointing window
        # (spec hashing, manifest write): nothing partial to save.
        _log.error("batch.interrupted_before_manifest")
        return _interrupt_exit_code()
    for result in results:
        if result.resumed:
            print(f"ok     resumed   {result.spec.params['trace_path']}")
        elif result.ok:
            hit = "cache hit " if result.cache_hit else "fitted    "
            for protocol, s in result.value["summaries"].items():
                print(
                    f"ok     {hit}{result.value['trace_path']} "
                    f"[{protocol}] rate={s['mean_rate_mbps']:.2f} Mb/s "
                    f"p95={s['p95_delay_ms']:.0f} ms "
                    f"loss={s['loss_percent']:.2f}%"
                )
        else:
            print(
                f"FAILED {result.spec.params['trace_path']}: "
                f"{result.error.error_type}: {result.error.message}"
            )
    print()
    print(manifest.format_report())
    if manifest_path is not None:
        print(f"manifest written to {manifest_path}")
    if _CAUGHT_SIGNAL["signum"] is not None:
        # Partial manifest written above; conventional 130/143 exit so
        # wrappers see the interruption, not a job failure.
        print("interrupted: resume with --resume "
              f"{manifest_path or '<manifest>'}")
        return _interrupt_exit_code()
    return 0 if all(r.ok for r in results) else 1


def _cmd_serve(args) -> int:
    from repro.serve import (
        FleetConfig,
        ServeConfig,
        fleet_forever,
        fleet_status,
        format_fleet_status,
        format_status,
        is_fleet_state,
        serve_forever,
        serve_status,
        submit_to_spool,
        submit_via_socket,
    )

    if args.serve_command == "fleet":
        try:
            config = FleetConfig(
                state_dir=args.state,
                shards=args.shards,
                socket_path=args.socket,
                bind=args.bind,
                workers_per_shard=args.workers_per_shard,
                queue_limit=args.queue_limit,
                default_timeout_sec=args.default_timeout,
                drain_timeout_sec=args.drain_timeout,
                supervise_interval_sec=args.supervise_interval,
                heartbeat_timeout_sec=args.heartbeat_timeout,
                suspect_sweep_limit=args.suspect_sweeps,
                snapshot_interval_sec=args.snapshot_interval,
                max_runtime_sec=args.max_runtime_sec,
                fsync=not args.no_fsync,
            )
            return fleet_forever(config)
        except (ValueError, RuntimeError) as exc:
            _log.error("serve.fleet_failed", error=str(exc))
            return 2

    if args.serve_command == "run":
        from repro.obs.live import parse_slo

        try:
            slos = tuple(parse_slo(spec) for spec in (args.slo or []))
            config = ServeConfig(
                state_dir=args.state,
                spool_dir=args.spool,
                socket_path=args.socket,
                bind=args.bind,
                workers=args.workers,
                queue_limit=args.queue_limit,
                poll_interval=args.poll_interval,
                default_timeout_sec=args.default_timeout,
                drain_timeout_sec=args.drain_timeout,
                breaker_threshold=args.breaker_threshold,
                breaker_cooldown_sec=args.breaker_cooldown,
                idle_exit_sec=args.idle_exit_sec,
                max_runtime_sec=args.max_runtime_sec,
                fsync=not args.no_fsync,
                snapshot_interval_sec=args.snapshot_interval,
                slos=slos,
                profile=args.profile,
            )
        except ValueError as exc:
            _log.error("serve.bad_config", error=str(exc))
            return 2
        return serve_forever(config)

    if args.serve_command == "fetch":
        from repro.serve import DeadlineExceeded, ResilientClient, TransportError

        client = ResilientClient(args.socket, deadline_sec=args.deadline)
        try:
            response = client.fetch(args.job_id, wait=args.wait)
        except DeadlineExceeded as exc:
            _log.error("serve.fetch_deadline", job_id=args.job_id,
                       error=str(exc))
            return 1
        except (TransportError, OSError, ConnectionError) as exc:
            _log.error("serve.fetch_unreachable", socket=str(args.socket),
                       error=str(exc))
            return 2
        print(json.dumps(response, indent=2))
        return 0 if response.get("status") == "ok" else 1

    if args.serve_command == "submit":
        if args.spool is None and args.socket is None:
            _log.error("serve.submit_needs_target")
            return 2
        raw_lines = args.requests or [
            line for line in sys.stdin.read().splitlines() if line.strip()
        ]
        try:
            requests = [json.loads(line) for line in raw_lines]
        except json.JSONDecodeError as exc:
            _log.error("serve.bad_request_json", error=str(exc))
            return 2
        if not requests:
            _log.error("serve.no_requests")
            return 2
        if args.socket is not None:
            try:
                if args.deadline is not None:
                    from repro.serve import ResilientClient

                    responses = ResilientClient(
                        args.socket, deadline_sec=args.deadline
                    ).submit(requests)
                else:
                    responses = submit_via_socket(args.socket, requests)
            except (OSError, ConnectionError) as exc:
                _log.error(
                    "serve.socket_unreachable",
                    socket=str(args.socket),
                    error=str(exc),
                )
                return 2
            for response in responses:
                print(json.dumps(response))
            return 0 if all(
                r.get("status") in ("accepted", "duplicate")
                for r in responses
            ) else 1
        path = submit_to_spool(args.spool, requests)
        print(f"spooled {len(requests)} request(s) -> {path}")
        return 0

    # serve status — fleet state dirs get the cross-shard roll-up
    if is_fleet_state(args.state):
        status = fleet_status(args.state)
        print(json.dumps(status, indent=2) if args.as_json
              else format_fleet_status(status))
        return 0
    status = serve_status(args.state)
    print(json.dumps(status, indent=2) if args.as_json
          else format_status(status))
    return 0


def _cmd_chaos(args) -> int:
    import tempfile

    from repro.guard.chaos import (
        run_campaign,
        run_fleet_campaign,
        run_service_campaign,
        run_storage_campaign,
        run_transport_campaign,
    )

    if args.campaign in ("service", "fleet", "transport", "storage"):
        if args.campaign == "service":
            def runner(workdir):
                return run_service_campaign(workdir, seed=args.seed,
                                            workers=args.workers)
        elif args.campaign == "transport":
            def runner(workdir):
                return run_transport_campaign(workdir, seed=args.seed)
        elif args.campaign == "storage":
            def runner(workdir):
                return run_storage_campaign(workdir, seed=args.seed)
        else:
            def runner(workdir):
                return run_fleet_campaign(workdir, seed=args.seed)
        if args.workdir is not None:
            args.workdir.mkdir(parents=True, exist_ok=True)
            report = runner(args.workdir)
        else:
            with tempfile.TemporaryDirectory(
                prefix=f"repro-chaos-{args.campaign}-"
            ) as tmp:
                report = runner(tmp)
        print(report.format_report())
        return 0 if report.ok else 1

    if args.workdir is not None:
        args.workdir.mkdir(parents=True, exist_ok=True)
        report = run_campaign(
            args.workdir,
            seed=args.seed,
            policy=args.policy,
            workers=args.workers,
            duration=args.duration,
        )
    else:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            report = run_campaign(
                tmp,
                seed=args.seed,
                policy=args.policy,
                workers=args.workers,
                duration=args.duration,
            )
    print(report.format_report())
    return 0 if report.ok else 1


def _cmd_sweep(args) -> int:
    from repro.sweep import ScenarioGrid, SweepPath, run_fidelity, split_grid

    if args.sweep_command == "validate":
        from repro.sweep import golden_grid

        report = run_fidelity(grid=golden_grid(duration=args.duration))
        print(report.format_report())
        if args.report is not None:
            args.report.parent.mkdir(parents=True, exist_ok=True)
            args.report.write_text(json.dumps(report.to_dict(), indent=2))
            print(f"fidelity report written to {args.report}")
        return 0 if report.passed else 1

    # sweep run
    from repro.runtime.batch import run_jobs
    from repro.runtime.executor import ExecutorConfig
    from repro.runtime.jobs import make_sweep_job

    if args.grid is not None:
        try:
            grid = ScenarioGrid.from_params(json.loads(args.grid.read_text()))
        except (OSError, ValueError, KeyError) as exc:
            _log.error("sweep.bad_grid", path=str(args.grid), error=str(exc))
            return 2
    else:
        paths = []
        if args.profile:
            for profile_path in args.profile:
                try:
                    profile = json.loads(profile_path.read_text())
                except (OSError, ValueError) as exc:
                    _log.error(
                        "sweep.bad_profile",
                        path=str(profile_path),
                        error=str(exc),
                    )
                    return 2
                paths.append(
                    SweepPath.from_profile(profile, label=profile_path.stem)
                )
        else:
            for mbps in args.bandwidth_mbps:
                for delay_ms in args.delay_ms:
                    for buffer_kb in args.buffer_kb:
                        paths.append(
                            SweepPath(
                                bandwidth_bytes_per_sec=mbps * 125_000.0,
                                propagation_delay=delay_ms / 1000.0,
                                buffer_bytes=buffer_kb * 1000.0,
                                label=f"{mbps:g}mbps-{delay_ms:g}ms"
                                f"-{buffer_kb:g}kb",
                            )
                        )
        try:
            grid = ScenarioGrid(
                paths=tuple(paths),
                protocols=tuple(args.protocols),
                seeds=tuple(
                    range(args.seed_base, args.seed_base + args.seeds)
                ),
                duration=args.duration,
                **({"dt": args.dt} if args.dt is not None else {}),
            )
        except ValueError as exc:
            _log.error("sweep.bad_grid_params", error=str(exc))
            return 2

    with obs.span("sweep.run", scenarios=len(grid)):
        chunks = split_grid(grid, args.chunk_size)
        specs = [
            make_sweep_job(chunk.to_params(), chunk=f"{i}/{len(chunks)}")
            for i, chunk in enumerate(chunks)
        ]
        results, manifest = run_jobs(
            specs,
            config=ExecutorConfig(workers=args.workers),
            command="sweep",
        )

    rows = []
    for result in results:
        if result.ok and result.value:
            rows.extend(result.value["scenarios"])
        elif not result.ok:
            print(
                f"FAILED {result.spec.label}: "
                f"{result.error.error_type}: {result.error.message}"
            )
    n_faulted = sum(1 for row in rows if row["status"] == "faulted")
    for row in rows[:20]:
        if row["status"] == "ok":
            print(
                f"ok      {row['label']} "
                f"rate={row['mean_rate_mbps']:.2f} Mb/s "
                f"p95={row['p95_delay_ms']:.0f} ms "
                f"loss={row['loss_percent']:.2f}%"
            )
        else:
            print(f"FAULTED {row['label']}: {row['fault_reason']}")
    if len(rows) > 20:
        print(f"... {len(rows) - 20} more scenario(s)")
    print()
    print(
        f"sweep: {len(rows)} scenario(s), {n_faulted} faulted, "
        f"grid {grid.grid_id[:12]}"
    )
    print(manifest.format_report())
    if args.manifest_dir is not None:
        manifest_path = manifest.write(args.manifest_dir)
        print(f"manifest written to {manifest_path}")
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(
            json.dumps(
                {"grid_id": grid.grid_id, "scenarios": rows}, indent=2
            )
        )
        print(f"results written to {args.output}")
    return 0 if all(r.ok for r in results) else 1


def _cmd_obs(args) -> int:
    if args.obs_command == "top":
        return _cmd_obs_top(args)

    import glob as globlib

    from repro.obs.summarize import summarize_paths

    paths: List[Path] = []
    for raw in args.paths:
        if any(ch in raw for ch in "*?["):
            matches = sorted(globlib.glob(raw))
            if not matches:
                _log.error("obs.glob_no_match", pattern=raw)
                return 2
            paths.extend(Path(m) for m in matches)
        else:
            paths.append(Path(raw))
    try:
        print(summarize_paths(paths))
    except FileNotFoundError as exc:
        _log.error("obs.missing_input", path=str(exc))
        return 2
    except ValueError as exc:
        _log.error("obs.bad_input", error=str(exc))
        return 2
    return 0


def _cmd_obs_top(args) -> int:
    import time as _time

    from repro.obs.live import format_top, read_snapshot

    if args.socket is None and args.state is None and args.snapshot is None:
        _log.error("obs.top_needs_source")
        print("obs top: pass --state, --snapshot, or --socket",
              file=sys.stderr)
        return 2

    def load() -> dict:
        if args.socket is not None:
            from repro.serve import query_daemon

            response = query_daemon(args.socket, "stats")
            if response.get("status") != "ok":
                raise ValueError(f"daemon said {response}")
            return response["stats"]
        path = (
            args.snapshot
            if args.snapshot is not None
            else args.state / "obs" / "metrics.json"
        )
        return read_snapshot(path)

    while True:
        try:
            snapshot = load()
        except (OSError, ValueError, ConnectionError, KeyError) as exc:
            _log.error("obs.top_unreadable", error=str(exc))
            return 2
        print(format_top(snapshot))
        if args.watch is None:
            return 0
        try:
            _time.sleep(args.watch)
        except KeyboardInterrupt:
            return 0
        print()


def _cmd_bench(args) -> int:
    from repro.bench import (
        CASES,
        compare_reports,
        default_output_name,
        load_report,
        run_suite,
    )
    from repro.bench.results import DEFAULT_THRESHOLD

    if args.bench_command == "run":
        if args.list_cases:
            for name, case in CASES.items():
                print(f"{name:<22} {case.description}")
            return 0
        # Benchmarks drive the production code paths, so telemetry is
        # forced on: the production obs call sites fill the shared
        # histograms and the snapshot lands inside BENCH_<host>.json.
        if not obs.enabled():
            obs.configure(enabled=True, log_level=args.log_level,
                          log_format=args.log_format)
        profiler = None
        if args.profile:
            from repro.obs.profile import SamplingProfiler

            profiler = SamplingProfiler().start()
        try:
            report = run_suite(
                filters=args.filter, quick=args.quick, repeats=args.repeats
            )
        except ValueError as exc:
            _log.error("bench.bad_filter", error=str(exc))
            return 2
        finally:
            if profiler is not None:
                profiler.stop()
        print(report.format_report())
        output = args.output or Path(default_output_name())
        path = report.write(output)
        print(f"results written to {path}")
        if profiler is not None:
            collapsed = output.with_suffix(".collapsed")
            profiler.write(collapsed)
            print(
                f"profile ({profiler.samples} samples) written to {collapsed}"
            )
        return 1 if any(c.error for c in report.cases) else 0

    # bench compare
    try:
        current = load_report(args.current)
    except (FileNotFoundError, ValueError, KeyError) as exc:
        _log.error("bench.bad_current", path=str(args.current), error=str(exc))
        return 2
    try:
        baseline = load_report(args.baseline)
    except (FileNotFoundError, ValueError, KeyError) as exc:
        _log.error(
            "bench.bad_baseline", path=str(args.baseline), error=str(exc)
        )
        return 2
    if current.quick != baseline.quick:
        _log.warning(
            "bench.sizing_mismatch",
            current_quick=current.quick,
            baseline_quick=baseline.quick,
        )
    threshold = (
        args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    )
    result = compare_reports(current, baseline, threshold=threshold)
    print(result.format_report())
    if result.has_regressions:
        if args.fail_on_regression:
            return 1
        print("(warn-only: pass --fail-on-regression to make this fatal)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    obs.configure(
        enabled=bool(args.metrics_out or args.trace_out),
        log_level=args.log_level,
        log_format=args.log_format,
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
    )
    handlers = {
        "reproduce": _cmd_reproduce,
        "generate": _cmd_generate,
        "fit": _cmd_fit,
        "simulate": _cmd_simulate,
        "batch": _cmd_batch,
        "serve": _cmd_serve,
        "chaos": _cmd_chaos,
        "sweep": _cmd_sweep,
        "obs": _cmd_obs,
        "bench": _cmd_bench,
    }
    try:
        return handlers[args.command](args)
    finally:
        if obs.enabled():
            written = obs.flush()
            if written.get("trace"):
                print(f"event log written to {written['trace']}")
            if written.get("metrics"):
                print(f"metrics written to {written['metrics']}")


if __name__ == "__main__":
    sys.exit(main())
