"""Command-line interface: ``python -m repro <command>``.

Commands mirror the workflows a downstream user needs:

``reproduce``
    Run one (or all) of the paper's experiments and print its report.
``generate``
    Generate a synthetic Pantheon-like dataset and save the traces.
``fit``
    Fit an iBoxNet model to a saved trace and print the learnt
    parameters (optionally dumping the profile as JSON — the "iBoxNet
    profiles" the paper planned to release, §3.2 fn. 2).
``simulate``
    Run a counterfactual: fit a trace, simulate another protocol over
    the learnt model, print its summary (optionally saving the trace).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

EXPERIMENTS = (
    "fig2", "fig3", "fig4", "fig5", "fig7", "fig8", "table1", "speed"
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="iBox: Internet in a Box (HotNets 2020) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    reproduce = sub.add_parser(
        "reproduce", help="run a paper experiment and print its report"
    )
    reproduce.add_argument(
        "experiment", choices=(*EXPERIMENTS, "all"),
        help="which table/figure to reproduce",
    )
    reproduce.add_argument(
        "--scale", choices=("quick", "paper"), default="quick",
        help="experiment sizing (default: quick)",
    )

    generate = sub.add_parser(
        "generate", help="generate a synthetic Pantheon-like dataset"
    )
    generate.add_argument("output_dir", type=Path)
    generate.add_argument("--paths", type=int, default=5)
    generate.add_argument("--duration", type=float, default=30.0)
    generate.add_argument(
        "--protocols", nargs="+", default=["cubic", "vegas"]
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--fmt", choices=("npz", "jsonl"), default="npz")

    fit = sub.add_parser(
        "fit", help="fit an iBoxNet model to a saved trace"
    )
    fit.add_argument("trace", type=Path)
    fit.add_argument(
        "--profile", type=Path, default=None,
        help="write the learnt profile as JSON",
    )

    simulate = sub.add_parser(
        "simulate", help="counterfactual: fit a trace, run protocol B on it"
    )
    simulate.add_argument("trace", type=Path)
    simulate.add_argument("protocol")
    simulate.add_argument("--duration", type=float, default=None)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--output", type=Path, default=None)
    return parser


def _cmd_reproduce(args) -> int:
    from repro import experiments
    from repro.experiments.common import Scale

    scale = Scale.quick() if args.scale == "quick" else Scale.paper()
    modules = {
        "fig2": experiments.fig2_ensemble,
        "fig3": experiments.fig3_ablations,
        "fig4": experiments.fig4_instance,
        "fig5": experiments.fig5_reordering,
        "fig7": experiments.fig7_control_loop,
        "fig8": experiments.fig8_discovery,
        "table1": experiments.table1_rtc,
        "speed": experiments.speed,
    }
    targets = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in targets:
        result = modules[name].run(scale)
        print(result.format_report())
        print()
    return 0


def _cmd_generate(args) -> int:
    from repro.datasets.pantheon import generate_dataset
    from repro.trace.io import save_traces

    dataset = generate_dataset(
        n_paths=args.paths,
        protocols=tuple(args.protocols),
        duration=args.duration,
        base_seed=args.seed,
    )
    paths = save_traces(dataset.traces(), args.output_dir, fmt=args.fmt)
    for run, path in zip(dataset.runs, paths):
        print(f"{path}  <- {run.trace.summary()}")
    return 0


def _profile_dict(model) -> dict:
    return {
        "bandwidth_bytes_per_sec": model.params.bandwidth_bytes_per_sec,
        "propagation_delay_sec": model.params.propagation_delay,
        "buffer_bytes": model.params.buffer_bytes,
        "cross_traffic": {
            "bin_edges": list(model.cross_traffic.bin_edges),
            "rates_bytes_per_sec": list(
                model.cross_traffic.rates_bytes_per_sec
            ),
        },
        "source_flow_id": model.source_flow_id,
        "source_protocol": model.source_protocol,
        "source_loss_rate": model.source_loss_rate,
    }


def _cmd_fit(args) -> int:
    from repro.core import iboxnet
    from repro.trace.io import load_trace

    trace = load_trace(args.trace)
    model = iboxnet.fit(trace)
    print(f"fitted from {trace}")
    print(f"  {model}")
    if args.profile is not None:
        args.profile.write_text(json.dumps(_profile_dict(model), indent=2))
        print(f"  profile written to {args.profile}")
    return 0


def _cmd_simulate(args) -> int:
    from repro.core import iboxnet
    from repro.trace.io import load_trace, save_trace

    trace = load_trace(args.trace)
    model = iboxnet.fit(trace)
    duration = args.duration if args.duration else trace.duration
    predicted = model.simulate(args.protocol, duration=duration, seed=args.seed)
    print(f"learnt model: {model}")
    print(f"counterfactual {args.protocol}: {predicted.summary()}")
    if args.output is not None:
        save_trace(predicted, args.output)
        print(f"trace written to {args.output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "reproduce": _cmd_reproduce,
        "generate": _cmd_generate,
        "fit": _cmd_fit,
        "simulate": _cmd_simulate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
