"""Fig. 8: behaviour discovery on Pantheon traces via SAX + motifs.

Paper (§5.1): inter-packet arrival deltas are SAX-discretized into 'a'-'f'
with 'a' = negative values (reordering).  (a) "the only length-1 pattern
in the diff between the patterns in ground truth and iBoxNet traces is
'a'"; higher-order patterns involving 'a' are also absent from iBoxNet,
while all other length-2 patterns are preserved.  (b) "ML-augmented
iBoxNet model traces have nearly 2% length-1 patterns of type 'a' ...
matching the ground truth; the augmented model also preserves the
frequency of length-2 patterns involving reordering reasonably well."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core import iboxnet
from repro.core.augmentation import LSTMReorderPredictor, augment_iboxnet_trace
from repro.datasets.pantheon import PantheonDataset, generate_dataset
from repro.discovery.motifs import PatternDiff, aggregate_frequencies, diff_patterns
from repro.discovery.sax import positive_delta_breakpoints, sax_inter_arrival
from repro.experiments.common import Scale, format_header
from repro.trace.features import arrival_order_deltas


@dataclass
class Fig8Result:
    """Pattern inventories and diffs for GT vs iBoxNet vs iBoxNet+ML."""

    diff_gt_vs_iboxnet_len1: PatternDiff
    diff_gt_vs_iboxnet_len2: PatternDiff
    gt_frequencies: Dict[int, Dict[str, float]]
    iboxnet_frequencies: Dict[int, Dict[str, float]]
    augmented_frequencies: Dict[int, Dict[str, float]]

    def reordering_pattern_table(self) -> List[tuple]:
        """Fig. 8(b): (pattern, GT freq, augmented freq) for patterns
        involving 'a', sorted by GT frequency."""
        rows = []
        for length in (1, 2):
            for pattern, f_gt in self.gt_frequencies[length].items():
                if "a" not in pattern:
                    continue
                f_aug = self.augmented_frequencies[length].get(pattern, 0.0)
                rows.append((pattern, f_gt, f_aug))
        rows.sort(key=lambda r: -r[1])
        return rows

    def missing_in_iboxnet(self) -> List[str]:
        """Length-1 patterns present in GT but absent in plain iBoxNet."""
        return self.diff_gt_vs_iboxnet_len1.missing_behaviours

    def format_report(self) -> str:
        lines = [format_header("Fig. 8 — behaviour discovery (SAX + motifs)")]
        lines.append(
            "length-1 diff (GT only): "
            + ", ".join(
                f"'{p}' ({100 * f:.2f}%)"
                for p, f in self.diff_gt_vs_iboxnet_len1.only_ground_truth.items()
            )
        )
        missing2 = [
            p
            for p in self.diff_gt_vs_iboxnet_len2.only_ground_truth
            if "a" in p
        ]
        lines.append(
            f"length-2 patterns involving 'a' missing from iBoxNet: "
            f"{len(missing2)} "
            f"({', '.join(sorted(missing2)[:8])}{'...' if len(missing2) > 8 else ''})"
        )
        lines.append(f"{'pattern':>8s} {'ground truth':>13s} {'iBoxNet+ML':>11s}")
        for pattern, f_gt, f_aug in self.reordering_pattern_table()[:8]:
            lines.append(
                f"{pattern:>8s} {100 * f_gt:>12.2f}% {100 * f_aug:>10.2f}%"
            )
        return "\n".join(lines)


def run(
    scale: Scale = Scale.quick(),
    base_seed: int = 60,
    dataset: PantheonDataset = None,
) -> Fig8Result:
    """Run the discovery + augmentation comparison."""
    if dataset is None:
        dataset = generate_dataset(
            n_paths=scale.n_paths,
            protocols=("vegas",),
            duration=scale.duration,
            base_seed=base_seed,
        )
    train_ds, test_ds = dataset.split(0.5)
    train = train_ds.traces()
    test = test_ds.traces()

    # A common discretization (breakpoints from the training corpus) so GT
    # and simulated traces share one alphabet.
    reference = np.concatenate([arrival_order_deltas(t) for t in train])
    breakpoints = positive_delta_breakpoints(reference)

    sims = []
    for run_obj in test_ds.runs:
        model = iboxnet.fit(run_obj.trace)
        sims.append(
            model.simulate(
                "vegas", duration=scale.duration, seed=run_obj.seed + 77
            )
        )
    predictor = LSTMReorderPredictor(
        epochs=max(6, scale.ml_epochs // 2)
    ).fit(train)
    augmented = [
        augment_iboxnet_trace(s, predictor, seed=base_seed + i)
        for i, s in enumerate(sims)
    ]

    gt_sax = [sax_inter_arrival(t, breakpoints=breakpoints) for t in test]
    sim_sax = [sax_inter_arrival(t, breakpoints=breakpoints) for t in sims]
    aug_sax = [sax_inter_arrival(t, breakpoints=breakpoints) for t in augmented]

    return Fig8Result(
        diff_gt_vs_iboxnet_len1=diff_patterns(gt_sax, sim_sax, length=1),
        diff_gt_vs_iboxnet_len2=diff_patterns(gt_sax, sim_sax, length=2),
        gt_frequencies={
            1: aggregate_frequencies(gt_sax, 1),
            2: aggregate_frequencies(gt_sax, 2),
        },
        iboxnet_frequencies={
            1: aggregate_frequencies(sim_sax, 1),
            2: aggregate_frequencies(sim_sax, 2),
        },
        augmented_frequencies={
            1: aggregate_frequencies(aug_sax, 1),
            2: aggregate_frequencies(aug_sax, 2),
        },
    )
