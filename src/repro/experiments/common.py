"""Shared experiment scaffolding."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Scale:
    """Experiment sizing.

    ``quick()`` keeps every experiment under roughly a minute for CI and
    the pytest-benchmark suite; ``paper()`` approaches the paper's sample
    sizes (minutes to tens of minutes on a laptop).
    """

    n_paths: int
    duration: float
    runs_per_instance: int
    n_rtc_calls: int
    ml_epochs: int

    @classmethod
    def quick(cls) -> "Scale":
        return cls(
            n_paths=6,
            duration=20.0,
            runs_per_instance=4,
            n_rtc_calls=24,
            ml_epochs=9,
        )

    @classmethod
    def paper(cls) -> "Scale":
        return cls(
            n_paths=20,
            duration=30.0,
            runs_per_instance=10,
            n_rtc_calls=60,
            ml_epochs=18,
        )


def format_header(title: str) -> str:
    """A boxed section header for experiment reports."""
    bar = "=" * max(len(title), 8)
    return f"{bar}\n{title}\n{bar}"
