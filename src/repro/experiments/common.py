"""Shared experiment scaffolding."""

from __future__ import annotations

import importlib
from dataclasses import dataclass

#: Every paper experiment, in presentation order; the values are the
#: module names under :mod:`repro.experiments`.  This registry is the
#: single source of truth for the CLI and for the runtime's experiment
#: jobs (which need a picklable, name-addressed entry point).
EXPERIMENT_MODULES = {
    "fig2": "fig2_ensemble",
    "fig3": "fig3_ablations",
    "fig4": "fig4_instance",
    "fig5": "fig5_reordering",
    "fig7": "fig7_control_loop",
    "fig8": "fig8_discovery",
    "table1": "table1_rtc",
    "speed": "speed",
}

EXPERIMENT_NAMES = tuple(EXPERIMENT_MODULES)


@dataclass(frozen=True)
class Scale:
    """Experiment sizing.

    ``quick()`` keeps every experiment under roughly a minute for CI and
    the pytest-benchmark suite; ``paper()`` approaches the paper's sample
    sizes (minutes to tens of minutes on a laptop).
    """

    n_paths: int
    duration: float
    runs_per_instance: int
    n_rtc_calls: int
    ml_epochs: int

    @classmethod
    def quick(cls) -> "Scale":
        return cls(
            n_paths=6,
            duration=20.0,
            runs_per_instance=4,
            n_rtc_calls=24,
            ml_epochs=9,
        )

    @classmethod
    def paper(cls) -> "Scale":
        return cls(
            n_paths=20,
            duration=30.0,
            runs_per_instance=10,
            n_rtc_calls=60,
            ml_epochs=18,
        )


def experiment_module(name: str):
    """Import the experiment module registered under ``name``."""
    try:
        modname = EXPERIMENT_MODULES[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; "
            f"choose from {', '.join(EXPERIMENT_NAMES)}"
        ) from None
    return importlib.import_module(f"repro.experiments.{modname}")


def run_experiment(name: str, scale: str = "quick") -> str:
    """Run one experiment by name and return its formatted report.

    This is the process-pool entry point for ``reproduce all``: both
    arguments and the return value are plain strings, so the call
    pickles across workers regardless of what the experiment's result
    object contains.
    """
    sizing = Scale.quick() if scale == "quick" else Scale.paper()
    return experiment_module(name).run(sizing).format_report()


def format_header(title: str) -> str:
    """A boxed section header for experiment reports."""
    bar = "=" * max(len(title), 8)
    return f"{bar}\n{title}\n{bar}"
