"""Fig. 2: the iBoxNet ensemble test on cellular paths.

Paper: "Fig. 2 shows the distribution of the (a) 95th percentile delay and
(b) packet loss rate, both versus rate ... the simple iBoxNet model trained
using Cubic data is quite accurate.  It yields a good match with the ground
truth (GT), not only for Cubic but also for Vegas, which was never seen
during model training (match verified through a two-sample KS test)."

Output: per-run scatter points (rate, p95 delay, loss) for the four series
{Cubic, Vegas} x {GT, iBoxNet} and the KS test per axis per protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.abtest import EnsembleResult, ensemble_test
from repro.datasets.pantheon import PantheonDataset, generate_dataset
from repro.experiments.common import Scale, format_header


@dataclass
class Fig2Result:
    """The four scatter series plus KS verdicts."""

    ensemble: EnsembleResult
    scatter: Dict[str, List[Tuple[float, float, float]]]
    ks: Dict[str, Dict[str, Tuple[float, float]]]

    def ks_match(self, protocol: str, alpha: float = 0.05) -> bool:
        """True when every Fig. 2 axis passes the KS test for ``protocol``."""
        return all(p >= alpha for _, p in self.ks[protocol].values())

    def format_report(self) -> str:
        lines = [format_header("Fig. 2 — iBoxNet ensemble test")]
        lines.append(self.ensemble.format_table())
        for protocol, axes in self.ks.items():
            verdict = "MATCH" if self.ks_match(protocol) else "MISMATCH"
            details = ", ".join(
                f"{axis}: D={stat:.2f} p={p:.3f}"
                for axis, (stat, p) in axes.items()
            )
            lines.append(f"KS {protocol}: {verdict} ({details})")
        return "\n".join(lines)


def run(
    scale: Scale = Scale.quick(),
    control: str = "cubic",
    treatment: str = "vegas",
    base_seed: int = 10,
    dataset: PantheonDataset = None,
) -> Fig2Result:
    """Run the ensemble test; pass ``dataset`` to reuse generated data."""
    if dataset is None:
        dataset = generate_dataset(
            n_paths=scale.n_paths,
            protocols=(control, treatment),
            duration=scale.duration,
            base_seed=base_seed,
        )
    ensemble = ensemble_test(
        dataset, control=control, treatment=treatment, duration=scale.duration
    )
    scatter: Dict[str, List[Tuple[float, float, float]]] = {}
    for protocol in (control, treatment):
        for source, table in (
            ("gt", ensemble.gt_summaries),
            ("iboxnet", ensemble.sim_summaries),
        ):
            scatter[f"{protocol}_{source}"] = [
                (s.mean_rate_mbps, s.p95_delay_ms, s.loss_percent)
                for s in table[protocol]
            ]
    ks = {
        protocol: ensemble.ks_tests(protocol)
        for protocol in (control, treatment)
    }
    return Fig2Result(ensemble=ensemble, scatter=scatter, ks=ks)
