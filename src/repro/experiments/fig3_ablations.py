"""Fig. 3: cross-traffic ablations of iBoxNet.

Paper: "either excluding cross-traffic as a parameter (Fig. 3(a)) or using
a simple statistical packet loss model, as in [45], to recreate the effect
of cross-traffic (Fig. 3(b)), yields a worse match with the ground truth
than iBoxNet ... These results underscore the importance of incorporating
cross-traffic in the model and doing so with care."

Output: for the treatment protocol, the distribution-fit error of three
models — full iBoxNet, iBoxNet-without-CT, and the statistical-loss
baseline — on each Fig. 2 axis.  The expected ordering is
``full <= ablations`` on the aggregate error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.abtest import EnsembleResult, ensemble_test
from repro.datasets.pantheon import PantheonDataset, generate_dataset
from repro.experiments.common import Scale, format_header


@dataclass
class Fig3Result:
    """Fit errors of the full model and both ablations."""

    ensembles: Dict[str, EnsembleResult]
    # variant -> axis -> |median(sim) - median(gt)|
    errors: Dict[str, Dict[str, float]]
    treatment: str

    def aggregate_error(self, variant: str) -> float:
        """Scale-free aggregate: mean of per-axis relative errors."""
        gt = self.ensembles[variant].gt_summaries[self.treatment]
        scales = {
            "p95_delay_ms": max(
                1e-9, float(np.median([s.p95_delay_ms for s in gt]))
            ),
            "loss_percent": max(
                1.0, float(np.median([s.loss_percent for s in gt]))
            ),
            "mean_rate_mbps": max(
                1e-9, float(np.median([s.mean_rate_mbps for s in gt]))
            ),
        }
        return float(
            np.mean(
                [
                    self.errors[variant][axis] / scales[axis]
                    for axis in scales
                ]
            )
        )

    def format_report(self) -> str:
        lines = [format_header("Fig. 3 — cross-traffic ablations")]
        lines.append(
            f"{'variant':>18s} {'p95 err ms':>11s} {'loss err %':>11s} "
            f"{'rate err Mb/s':>14s} {'aggregate':>10s}"
        )
        for variant in self.errors:
            e = self.errors[variant]
            lines.append(
                f"{variant:>18s} {e['p95_delay_ms']:>11.1f} "
                f"{e['loss_percent']:>11.2f} {e['mean_rate_mbps']:>14.2f} "
                f"{self.aggregate_error(variant):>10.3f}"
            )
        return "\n".join(lines)


def _median_errors(result: EnsembleResult, protocol: str) -> Dict[str, float]:
    gt = result.gt_summaries[protocol]
    sim = result.sim_summaries[protocol]
    out = {}
    for axis, getter in (
        ("p95_delay_ms", lambda s: s.p95_delay_ms),
        ("loss_percent", lambda s: s.loss_percent),
        ("mean_rate_mbps", lambda s: s.mean_rate_mbps),
    ):
        gt_vals = np.array([getter(s) for s in gt], dtype=float)
        sim_vals = np.array([getter(s) for s in sim], dtype=float)
        out[axis] = float(
            abs(np.nanmedian(sim_vals) - np.nanmedian(gt_vals))
        )
    return out


def run(
    scale: Scale = Scale.quick(),
    control: str = "cubic",
    treatment: str = "vegas",
    base_seed: int = 10,
    dataset: PantheonDataset = None,
) -> Fig3Result:
    """Run all three variants over the same dataset."""
    if dataset is None:
        dataset = generate_dataset(
            n_paths=scale.n_paths,
            protocols=(control, treatment),
            duration=scale.duration,
            base_seed=base_seed,
        )
    variants = {
        "iBoxNet (full)": None,
        "without CT": lambda m: m.without_cross_traffic(),
        # Calibrated i.i.d. loss at the training trace's empirical loss
        # rate, exactly like the [45] baseline.
        "statistical loss": lambda m: m.with_statistical_loss(
            m.source_loss_rate
        ),
    }
    ensembles = {}
    errors = {}
    for name, transform in variants.items():
        result = ensemble_test(
            dataset,
            control=control,
            treatment=treatment,
            duration=scale.duration,
            model_transform=transform,
        )
        ensembles[name] = result
        errors[name] = _median_errors(result, treatment)
    return Fig3Result(ensembles=ensembles, errors=errors, treatment=treatment)
