"""§4.2 "Simulation Speed": per-packet inference cost.

Paper: "A 4-layer LSTM in iBoxML, with nearly 2M parameters, requires
2.2 ms per packet inference on a V100 GPU, implying an average data rate
of just 5.5 Mbps, with 1500-byte packets ... So, we are unable to use
iBoxML for emulation at present."

We measure the same quantity for our (smaller, CPU) iBoxML and compare
with iBoxNet's per-packet emulation cost.  The absolute numbers differ
from a V100, but the structural conclusion — ML inference is orders of
magnitude more expensive per packet than the network-model emulator, and
it bounds the emulatable data rate — is reproduced, including the implied
maximum emulation rate in Mb/s.

Each cost is timed over several repetitions on ``time.perf_counter`` and
reported as the *median* with the MAD alongside (the same robust trio as
``repro bench``; a mean alone hides scheduler noise on shared machines).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Tuple

from repro.bench.harness import mad, median
from repro.core import iboxnet
from repro.core.iboxml import IBoxMLConfig, IBoxMLModel
from repro.datasets.pantheon import generate_run
from repro.experiments.common import Scale, format_header
from repro.simulation.packet import DEFAULT_MTU_BYTES


@dataclass
class SpeedResult:
    """Per-packet costs and implied max emulation rates."""

    iboxml_sec_per_packet: float
    iboxnet_sec_per_packet: float
    iboxml_params: int
    # Inference cost of an architecture at the paper's size (4-layer LSTM,
    # ~2 M parameters) — cost depends only on the architecture, so an
    # untrained model measures it faithfully.
    paper_size_sec_per_packet: float = 0.0
    paper_size_params: int = 0
    # Median absolute deviation of the per-packet cost across repetitions.
    iboxml_mad_sec: float = 0.0
    iboxnet_mad_sec: float = 0.0
    paper_size_mad_sec: float = 0.0

    @property
    def iboxml_max_rate_mbps(self) -> float:
        """Max data rate iBoxML could emulate at this per-packet cost."""
        return DEFAULT_MTU_BYTES * 8 / self.iboxml_sec_per_packet / 1e6

    @property
    def iboxnet_max_rate_mbps(self) -> float:
        return DEFAULT_MTU_BYTES * 8 / self.iboxnet_sec_per_packet / 1e6

    @property
    def slowdown(self) -> float:
        """How many times more expensive a packet is under iBoxML."""
        return self.iboxml_sec_per_packet / self.iboxnet_sec_per_packet

    @property
    def paper_size_max_rate_mbps(self) -> float:
        if self.paper_size_sec_per_packet <= 0:
            return float("nan")
        return DEFAULT_MTU_BYTES * 8 / self.paper_size_sec_per_packet / 1e6

    @property
    def paper_size_slowdown(self) -> float:
        if self.paper_size_sec_per_packet <= 0:
            return float("nan")
        return self.paper_size_sec_per_packet / self.iboxnet_sec_per_packet

    def format_report(self) -> str:
        lines = [format_header("§4.2 — simulation speed")]
        lines.append(
            f"iBoxML  ({self.iboxml_params} params): "
            f"{self.iboxml_sec_per_packet * 1000:.3f} ms/packet "
            f"(MAD {self.iboxml_mad_sec * 1000:.3f} ms) "
            f"=> max {self.iboxml_max_rate_mbps:.1f} Mb/s emulation"
        )
        if self.paper_size_params:
            lines.append(
                f"iBoxML  ({self.paper_size_params} params, paper size): "
                f"{self.paper_size_sec_per_packet * 1000:.3f} ms/packet "
                f"(MAD {self.paper_size_mad_sec * 1000:.3f} ms) "
                f"=> max {self.paper_size_max_rate_mbps:.1f} Mb/s emulation"
            )
        lines.append(
            f"iBoxNet (emulation):  "
            f"{self.iboxnet_sec_per_packet * 1000:.3f} ms/packet "
            f"(MAD {self.iboxnet_mad_sec * 1000:.3f} ms) "
            f"=> max {self.iboxnet_max_rate_mbps:.1f} Mb/s emulation"
        )
        lines.append(
            f"iBoxML is {self.slowdown:.1f}x "
            f"(paper-size: {self.paper_size_slowdown:.0f}x) more expensive "
            f"per packet (paper: 2.2 ms/packet on a V100 => 5.5 Mb/s)"
        )
        return "\n".join(lines)


def _timed_per_item(
    fn: Callable[[], int], repeats: int
) -> Tuple[float, float]:
    """Median and MAD of the per-item cost of ``fn`` over ``repeats`` runs.

    ``fn`` returns the number of items (packets, steps) it processed.
    """
    costs = []
    for _ in range(repeats):
        start = time.perf_counter()
        items = fn()
        costs.append((time.perf_counter() - start) / max(items, 1))
    return median(costs), mad(costs)


def run(
    scale: Scale = Scale.quick(), base_seed: int = 30, repeats: int = 3
) -> SpeedResult:
    """Measure per-packet inference/emulation cost for both approaches."""
    train_run = generate_run(base_seed, "cubic", duration=scale.duration)
    test_run = generate_run(base_seed + 1, "cubic", duration=scale.duration)

    config = IBoxMLConfig(
        hidden_dim=32, num_layers=2, epochs=3, train_seq_len=150
    )
    model = IBoxMLModel(config)
    model.fit([train_run.trace])

    iboxml_cost, iboxml_mad = _timed_per_item(
        lambda: len(model.predict_delays(test_run.trace, sample=False)),
        repeats,
    )

    net_model = iboxnet.fit(train_run.trace)
    iboxnet_cost, iboxnet_mad = _timed_per_item(
        lambda: len(
            net_model.simulate(
                "cubic", duration=scale.duration, seed=base_seed + 2
            )
        ),
        repeats,
    )

    # Paper-size architecture: 4 layers, hidden width chosen so the stack
    # lands near the quoted ~2 M parameters.
    paper_model = IBoxMLModel(
        IBoxMLConfig(hidden_dim=256, num_layers=4, epochs=1)
    )
    import numpy as np

    x = np.zeros((1, paper_model.config.input_dim))
    n_steps = 300
    paper_model.model.step(x, None)  # warm-up

    def paper_steps() -> int:
        states = None
        for _ in range(n_steps):
            _, _, states = paper_model.model.step(x, states)
        return n_steps

    paper_cost, paper_mad = _timed_per_item(paper_steps, repeats)

    return SpeedResult(
        iboxml_sec_per_packet=iboxml_cost,
        iboxnet_sec_per_packet=iboxnet_cost,
        iboxml_params=model.num_parameters(),
        paper_size_sec_per_packet=paper_cost,
        paper_size_params=paper_model.num_parameters(),
        iboxml_mad_sec=iboxml_mad,
        iboxnet_mad_sec=iboxnet_mad,
        paper_size_mad_sec=paper_mad,
    )
