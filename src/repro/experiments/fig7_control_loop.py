"""Fig. 7: control-loop bias and its cross-traffic mitigation.

Paper (§4.2): "we train iBoxML with traces of the delay-sensitive control
loop of an RTC application on a simple ns-like topology.  We then use this
iBoxML model to predict delays for a high-rate CBR sender, in the presence
of varying amounts of cross-traffic.  The ground truth, as expected,
exhibits high delay frequently, but iBoxML rarely outputs high delay (Fig.
7, top) due to the control loop bias.  Augmenting iBoxML with cross-traffic
estimates (from §3) as additional input, helps mitigate the bias (bottom)."

Output: the three delay histograms of Fig. 7 — ground truth, iBoxML
without CT, iBoxML with CT — and the headline statistic: the fraction of
delays above a "high delay" threshold, which should be large for GT, near
zero without CT, and substantially recovered with CT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.cross_traffic import estimate_cross_traffic, per_packet_cross_traffic
from repro.core.iboxml import IBoxMLConfig, IBoxMLModel
from repro.core.static_params import estimate_from_flows
from repro.datasets.rtc import control_loop_bias_setup
from repro.experiments.common import Scale, format_header


@dataclass
class Fig7Result:
    """Delay samples (seconds) for the three Fig. 7 panels."""

    delays: Dict[str, np.ndarray]
    high_delay_threshold: float

    def high_delay_fraction(self, panel: str) -> float:
        values = self.delays[panel]
        if len(values) == 0:
            return float("nan")
        return float(np.mean(values > self.high_delay_threshold))

    def histogram(
        self, panel: str, bins: int = 20, max_delay: float = 0.4
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Frequency-percent histogram like the paper's y-axis."""
        counts, edges = np.histogram(
            self.delays[panel], bins=bins, range=(0.0, max_delay)
        )
        total = max(counts.sum(), 1)
        return edges, 100.0 * counts / total

    def bias_demonstrated(self) -> bool:
        """The paper's qualitative claim, as a predicate."""
        gt = self.high_delay_fraction("ground_truth")
        without = self.high_delay_fraction("iboxml_no_ct")
        with_ct = self.high_delay_fraction("iboxml_with_ct")
        return without < 0.5 * gt and with_ct > 2.0 * max(without, 0.01)

    def format_report(self) -> str:
        threshold_ms = self.high_delay_threshold * 1000
        lines = [format_header("Fig. 7 — control-loop bias")]
        lines.append(
            f"{'panel':>16s} {'mean ms':>8s} {'p95 ms':>7s} "
            f"{'frac > ' + format(threshold_ms, '.0f') + ' ms':>14s}"
        )
        for panel, values in self.delays.items():
            lines.append(
                f"{panel:>16s} {values.mean() * 1000:>8.0f} "
                f"{np.percentile(values, 95) * 1000:>7.0f} "
                f"{self.high_delay_fraction(panel):>14.2f}"
            )
        verdict = (
            "bias reproduced and mitigated by CT input"
            if self.bias_demonstrated()
            else "NOTE: expected ordering not met at this scale"
        )
        lines.append(verdict)
        return "\n".join(lines)


def run(
    scale: Scale = Scale.quick(),
    base_seed: int = 0,
    high_delay_threshold: float = 0.1,
) -> Fig7Result:
    """Train both model variants on RTC traces, predict on CBR tests."""
    n_train = max(8, scale.n_paths)
    n_test = max(4, scale.n_paths // 2)
    train, test, calibration = control_loop_bias_setup(
        n_train=n_train,
        n_test=n_test,
        duration=scale.duration,
        base_seed=base_seed,
    )
    # §6 aggregation: the experiment's topology is fixed, so the static
    # parameters are estimated once over all flows that share the path,
    # including the saturating calibration flow — an RTC control loop
    # never fills the link, and a biased-low bandwidth would blind the
    # cross-traffic estimator on the congested test traces.
    shared_params = estimate_from_flows(train + [calibration])

    def ct_utilization(trace) -> np.ndarray:
        estimate = estimate_cross_traffic(trace, shared_params)
        rates = per_packet_cross_traffic(trace, estimate)
        return rates / max(shared_params.bandwidth_bytes_per_sec, 1.0)

    train_ct = [ct_utilization(t) for t in train]
    test_ct = [ct_utilization(t) for t in test]

    delays: Dict[str, np.ndarray] = {
        "ground_truth": np.concatenate(
            [t.delivered_delays() for t in test]
        )
    }
    for label, include_ct in (
        ("iboxml_no_ct", False),
        ("iboxml_with_ct", True),
    ):
        config = IBoxMLConfig(
            hidden_dim=24,
            num_layers=2,
            epochs=scale.ml_epochs,
            train_seq_len=150,
            include_cross_traffic=include_ct,
        )
        model = IBoxMLModel(config)
        model.fit(train, ct_features=train_ct if include_ct else None)
        delays[label] = np.concatenate(
            [
                model.predict_delays(
                    t,
                    ct=test_ct[i] if include_ct else None,
                    sample=True,
                    seed=base_seed + 3 + i,
                )
                for i, t in enumerate(test)
            ]
        )
    return Fig7Result(delays=delays, high_delay_threshold=high_delay_threshold)
