"""Table 1: cross-traffic input improves iBoxML on RTC data.

Paper (§5.2): "Using about 540 traces from a real-time conferencing
service, we evaluate iBoxML with and without cross-traffic estimates
(obtained using domain knowledge, as in §3) as additional input.  From
Table 1, we note that providing cross-traffic as input reduces the
deviation between the distribution of 95th percentile per-call delay
values in the ground-truth and in the iBoxML predictions."

The metric (Table 1's caption): the difference between percentiles —
P25/P50/P75 and the mean — of the two distributions of per-call p95
delays, in ms (and %).  Expected: the "Yes" (with CT) row dominates the
"No" row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.stats import PercentileErrorRow, percentile_error_table
from repro.core.iboxml import IBoxMLConfig, IBoxMLModel
from repro.datasets.rtc import RTCDataset, generate_rtc_dataset
from repro.experiments.common import Scale, format_header
from repro.simulation import units


@dataclass
class Table1Result:
    """The two Table 1 rows plus the underlying distributions."""

    rows: Dict[str, PercentileErrorRow]
    gt_p95_ms: List[float]
    predicted_p95_ms: Dict[str, List[float]]

    def improvement(self) -> float:
        """Relative reduction of the mean-column error from adding CT."""
        without = self.rows["No"].mean_ms
        with_ct = self.rows["Yes"].mean_ms
        if without <= 0:
            return 0.0
        return (without - with_ct) / without

    def format_report(self) -> str:
        lines = [format_header("Table 1 — iBoxML on RTC data")]
        lines.append("Error in distribution of 95th percentile delay")
        lines.append(
            f"{'CT':>4s} {'P25':>12s} {'P50':>12s} {'P75':>12s} {'mean':>12s}"
        )
        for label in ("No", "Yes"):
            lines.append(str(self.rows[label]))
        lines.append(
            f"CT input reduces mean error by {100 * self.improvement():.0f}%"
        )
        return "\n".join(lines)


def run(
    scale: Scale = Scale.quick(),
    base_seed: int = 200,
    dataset: RTCDataset = None,
) -> Table1Result:
    """Train both iBoxML variants on RTC calls; compare per-call p95
    delay distributions on held-out calls."""
    if dataset is None:
        dataset = generate_rtc_dataset(
            n_calls=scale.n_rtc_calls,
            duration=scale.duration,
            base_seed=base_seed,
        )
    train, test = dataset.split(0.6)

    gt_p95 = [
        units.sec_to_ms(float(np.percentile(t.delivered_delays(), 95)))
        for t in test.traces
        if t.packets_delivered > 0
    ]
    rows: Dict[str, PercentileErrorRow] = {}
    predicted: Dict[str, List[float]] = {}
    for label, include_ct in (("No", False), ("Yes", True)):
        config = IBoxMLConfig(
            hidden_dim=24,
            num_layers=2,
            epochs=scale.ml_epochs,
            train_seq_len=150,
            include_cross_traffic=include_ct,
        )
        model = IBoxMLModel(config)
        model.fit(train.traces)
        p95_values = []
        for i, trace in enumerate(test.traces):
            delays = model.predict_delays(
                trace, sample=True, seed=base_seed + 11 + i
            )
            if len(delays) == 0:
                continue
            p95_values.append(
                units.sec_to_ms(float(np.percentile(delays, 95)))
            )
        predicted[label] = p95_values
        rows[label] = percentile_error_table(p95_values, gt_p95, label=label)
    return Table1Result(
        rows=rows, gt_p95_ms=gt_p95, predicted_p95_ms=predicted
    )
