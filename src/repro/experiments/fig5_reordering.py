"""Fig. 5: CDF of reordering rate over 1 s windows (Pantheon Vegas test).

Paper: the ground-truth curve is matched by iBoxML (which was never told
about reordering), by iBoxNet+LSTM and by iBoxNet+Linear — while plain
iBoxNet "produces no reordering".

Output: one reordering-rate sample list per method, plus KS distances to
ground truth, with the expected ordering: every augmented/ML model beats
plain iBoxNet by a wide margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.analysis.stats import ks_statistic
from repro.core import iboxnet
from repro.core.augmentation import (
    LinearReorderPredictor,
    LSTMReorderPredictor,
    augment_iboxnet_trace,
)
from repro.core.iboxml import IBoxMLConfig, IBoxMLModel
from repro.datasets.pantheon import PantheonDataset, generate_dataset
from repro.experiments.common import Scale, format_header
from repro.trace.features import reordering_rate_windows


@dataclass
class Fig5Result:
    """Per-method 1 s-window reordering-rate samples."""

    rates: Dict[str, List[float]] = field(default_factory=dict)

    def mean_rate(self, method: str) -> float:
        values = self.rates.get(method, [])
        return float(np.mean(values)) if values else float("nan")

    def ks_vs_ground_truth(self, method: str) -> float:
        """KS distance of a method's reordering-rate CDF to the GT CDF."""
        stat, _ = ks_statistic(self.rates["ground_truth"], self.rates[method])
        return stat

    def format_report(self) -> str:
        lines = [format_header("Fig. 5 — reordering-rate CDFs (1 s windows)")]
        lines.append(
            f"{'method':>18s} {'mean rate':>10s} {'KS vs GT':>9s}"
        )
        for method in self.rates:
            ks = (
                "-"
                if method == "ground_truth"
                else f"{self.ks_vs_ground_truth(method):.3f}"
            )
            lines.append(
                f"{method:>18s} {self.mean_rate(method):>10.4f} {ks:>9s}"
            )
        return "\n".join(lines)


def run(
    scale: Scale = Scale.quick(),
    base_seed: int = 60,
    dataset: PantheonDataset = None,
    include_iboxml: bool = True,
) -> Fig5Result:
    """Fig. 5 pipeline: train predictors/iBoxML on train paths; compare
    reordering-rate distributions on the test paths."""
    if dataset is None:
        dataset = generate_dataset(
            n_paths=scale.n_paths,
            protocols=("vegas",),
            duration=scale.duration,
            base_seed=base_seed,
        )
    train_ds, test_ds = dataset.split(0.5)
    train = train_ds.traces()
    test = test_ds.traces()
    result = Fig5Result()

    result.rates["ground_truth"] = _window_rates(test)

    # Plain iBoxNet simulations of the test paths (trained per test trace,
    # then simulating the same protocol — the Fig. 5 evaluation replays the
    # test set through each model).
    sims = []
    for run_obj in test_ds.runs:
        model = iboxnet.fit(run_obj.trace)
        sims.append(
            model.simulate(
                "vegas", duration=scale.duration, seed=run_obj.seed + 77
            )
        )
    result.rates["iboxnet"] = _window_rates(sims)

    linear = LinearReorderPredictor().fit(train)
    result.rates["iboxnet_linear"] = _window_rates(
        [augment_iboxnet_trace(s, linear, seed=base_seed + i)
         for i, s in enumerate(sims)]
    )

    lstm = LSTMReorderPredictor(epochs=max(6, scale.ml_epochs // 2)).fit(train)
    result.rates["iboxnet_lstm"] = _window_rates(
        [augment_iboxnet_trace(s, lstm, seed=base_seed + i)
         for i, s in enumerate(sims)]
    )

    if include_iboxml:
        config = IBoxMLConfig(
            hidden_dim=24,
            num_layers=2,
            epochs=scale.ml_epochs,
            train_seq_len=150,
        )
        iboxml = IBoxMLModel(config)
        iboxml.fit(train)
        predicted = [
            iboxml.predict_trace(t, sample=True, seed=base_seed + 5 + i)
            for i, t in enumerate(test)
        ]
        result.rates["iboxml"] = _window_rates(predicted)
    return result


def _window_rates(traces) -> List[float]:
    rates: List[float] = []
    for trace in traces:
        rates.extend(float(r) for r in reordering_rate_windows(trace))
    return rates
