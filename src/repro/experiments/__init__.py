"""Reproductions of every table and figure in the paper's evaluation.

Each module reproduces one result end to end — workload generation, model
fitting, simulation and metric computation — and returns a typed result
object with a ``format_report()`` method rendering the same rows/series the
paper reports.  The benchmark suite and EXPERIMENTS.md are generated from
these entry points; the ``scale`` knob trades runtime for statistical
resolution without changing the experimental design.

| Module              | Paper result | What it shows |
|---------------------|--------------|---------------|
| ``fig2_ensemble``   | Fig. 2       | iBoxNet ensemble A/B test matches GT |
| ``fig3_ablations``  | Fig. 3       | no-CT and statistical-loss fit worse |
| ``fig4_instance``   | Fig. 4       | per-instance models cluster perfectly |
| ``fig5_reordering`` | Fig. 5       | reordering-rate CDFs of all models |
| ``fig7_control_loop`` | Fig. 7     | control-loop bias and the CT fix |
| ``fig8_discovery``  | Fig. 8       | SAX pattern diff and augmentation |
| ``table1_rtc``      | Table 1      | CT input improves iBoxML on RTC |
| ``speed``           | §4.2         | per-packet inference cost comparison |
"""

from repro.experiments import (
    fig2_ensemble,
    fig3_ablations,
    fig4_instance,
    fig5_reordering,
    fig7_control_loop,
    fig8_discovery,
    speed,
    table1_rtc,
)
from repro.experiments.common import Scale

__all__ = [
    "Scale",
    "fig2_ensemble",
    "fig3_ablations",
    "fig4_instance",
    "fig5_reordering",
    "fig7_control_loop",
    "fig8_discovery",
    "speed",
    "table1_rtc",
]
