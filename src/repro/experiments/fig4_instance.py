"""Fig. 4: the iBoxNet instance test.

Paper (§3.1.2): a fixed emulated configuration, one main Cubic flow and
three cross-traffic patterns differing only in timing (0-10 s / 20-30 s /
40-50 s of a 60 s flow).  One iBoxNet model is learnt per instance from a
single Cubic run; Vegas then runs 10x on the true emulator and 10x on each
learnt model.  k-means (k=3) over cross-correlation features clusters all
runs "perfectly, i.e., with no mistakes" (visualised with t-SNE), and the
Cubic rate time series from the learnt model "matches the real-world
ground truth well" (Fig. 4a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.tsne import tsne
from repro.core.abtest import InstanceTestResult, instance_test
from repro.experiments.common import Scale, format_header


@dataclass
class Fig4Result:
    """Clustering quality, the Fig. 4(a) alignment and t-SNE embedding."""

    instance: InstanceTestResult
    purity: float
    alignment: float  # Fig. 4(a) rate-series cross-correlation
    embedding: Optional[np.ndarray]  # (n_runs, 2) t-SNE coordinates

    def format_report(self) -> str:
        lines = [format_header("Fig. 4 — iBoxNet instance test")]
        lines.append(
            f"cross-traffic patterns: {', '.join(self.instance.patterns)}"
        )
        n_runs = len(self.instance.true_pattern)
        lines.append(
            f"k-means purity over {n_runs} runs "
            f"(GT + iBoxNet): {self.purity:.2f}"
            + ("  (perfect, as in the paper)" if self.purity == 1.0 else "")
        )
        lines.append(
            f"Fig. 4(a) rate-series alignment (max normalized "
            f"cross-correlation): {self.alignment:.2f}"
        )
        if self.embedding is not None:
            lines.append("t-SNE embedding (pattern/sim -> mean position):")
            for k in sorted(set(self.instance.true_pattern)):
                for simulated in (False, True):
                    mask = (self.instance.true_pattern == k) & (
                        self.instance.is_simulated == simulated
                    )
                    centre = self.embedding[mask].mean(axis=0)
                    tag = "iBoxNet" if simulated else "GT"
                    lines.append(
                        f"  pattern {k} {tag:>7s}: "
                        f"({centre[0]:7.2f}, {centre[1]:7.2f})"
                    )
        return "\n".join(lines)


def run(
    scale: Scale = Scale.quick(),
    base_seed: int = 0,
    compute_tsne: bool = True,
) -> Fig4Result:
    """Run the instance test at the paper's geometry (3 CT timings)."""
    duration = max(60.0, scale.duration)
    instance = instance_test(
        runs_per_instance=scale.runs_per_instance,
        duration=duration,
        base_seed=base_seed,
    )
    embedding = None
    if compute_tsne and len(instance.features) >= 6:
        embedding = tsne(
            instance.features,
            perplexity=min(10.0, len(instance.features) / 4),
            n_iter=300,
            seed=base_seed,
        )
    return Fig4Result(
        instance=instance,
        purity=instance.purity,
        alignment=instance.reference_alignment(0),
        embedding=embedding,
    )
