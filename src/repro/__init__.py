"""iBox: Internet in a Box — a data-informed network simulator.

Reproduction of Ashok et al., "iBox: Internet in a Box", HotNets 2020.

iBox turns end-to-end input/output packet traces into simulation models
that recreate network behaviour, enabling counterfactual analysis: learn a
model from traces of sender type A, then predict how sender type B would
have fared on the same path.

The package is organised as:

``repro.simulation``
    An ns-like packet-level discrete-event simulator (links, byte-based
    droptail queues, variable-bandwidth cellular links, reordering boxes)
    plus a NetEm-like emulator driven by learnt parameters.
``repro.protocols``
    Congestion-control senders: TCP Cubic, Vegas, Reno, a BBR-flavoured
    sender, a CBR sender, and a delay-sensitive RTC control loop.
``repro.trace``
    The trace data model (input/output packet records), feature extraction
    and the end-to-end metrics the paper reports.
``repro.core``
    The paper's contribution: static parameter estimation, cross-traffic
    estimation, iBoxNet, iBoxML, reordering augmentation, and the
    instance/ensemble A/B-test drivers.
``repro.ml``
    A from-scratch numpy neural-network substrate (stacked LSTM with BPTT,
    Adam, Gaussian-NLL head, logistic regression).
``repro.discovery``
    SAX discretization and motif mining for behaviour discovery.
``repro.analysis``
    Two-sample KS helpers, percentile-error tables, k-means++ and t-SNE.
``repro.datasets``
    Synthetic Pantheon-like and RTC-like trace generation.
``repro.baselines``
    The calibrated-emulator-with-statistical-loss baseline and raw replay.
``repro.runtime``
    The batch execution subsystem: declarative jobs, a content-addressed
    profile cache, a process-pool executor, and per-run JSON manifests.

Quickstart::

    from repro.datasets import pantheon
    from repro.core import iboxnet

    run = pantheon.generate_run(seed=1, protocol="cubic")
    model = iboxnet.fit(run.trace)
    predicted = model.simulate("vegas", duration=30.0, seed=2)
    print(predicted.summary())
"""

from repro import (
    analysis,
    baselines,
    core,
    datasets,
    discovery,
    experiments,
    ml,
    protocols,
    runtime,
    simulation,
    trace,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "analysis",
    "baselines",
    "core",
    "datasets",
    "discovery",
    "experiments",
    "ml",
    "protocols",
    "runtime",
    "simulation",
    "trace",
]
