"""End-to-end metrics: the axes of the paper's Fig. 2.

Fig. 2 plots each run as (95th-percentile delay in ms, packet loss %,
average rate in Mb/s) — the same summary triple Pantheon reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation import units
from repro.trace.records import Trace


def p95_delay_ms(trace: Trace) -> float:
    """95th-percentile one-way delay of delivered packets, in ms."""
    delays = trace.delivered_delays()
    if len(delays) == 0:
        return float("nan")
    return units.sec_to_ms(float(np.percentile(delays, 95)))


def loss_percent(trace: Trace) -> float:
    """Percentage of transmissions never delivered."""
    return 100.0 * trace.loss_rate


def mean_rate_mbps(trace: Trace) -> float:
    """Average goodput (delivered bytes / duration) in Mb/s."""
    delivered_bytes = float(trace.sizes[trace.delivered_mask].sum())
    return units.bytes_per_sec_to_mbps(delivered_bytes / trace.duration)


@dataclass
class TraceSummary:
    """The (rate, p95 delay, loss) summary triple of one run."""

    flow_id: str
    protocol: str
    packets_sent: int
    packets_delivered: int
    mean_rate_mbps: float
    p95_delay_ms: float
    loss_percent: float
    mean_delay_ms: float

    def __str__(self) -> str:
        return (
            f"{self.protocol:>6s} {self.flow_id}: "
            f"rate={self.mean_rate_mbps:.2f} Mb/s, "
            f"p95 delay={self.p95_delay_ms:.0f} ms, "
            f"loss={self.loss_percent:.2f}% "
            f"({self.packets_delivered}/{self.packets_sent} pkts)"
        )


def summarize(trace: Trace) -> TraceSummary:
    """Compute the Fig. 2 summary triple (plus counts) for a trace."""
    delays = trace.delivered_delays()
    mean_delay = (
        units.sec_to_ms(float(delays.mean())) if len(delays) else float("nan")
    )
    return TraceSummary(
        flow_id=trace.flow_id,
        protocol=trace.protocol,
        packets_sent=trace.packets_sent,
        packets_delivered=trace.packets_delivered,
        mean_rate_mbps=mean_rate_mbps(trace),
        p95_delay_ms=p95_delay_ms(trace),
        loss_percent=loss_percent(trace),
        mean_delay_ms=mean_delay,
    )
