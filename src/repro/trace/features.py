"""Feature extraction from traces.

These are the paper's feature definitions, used both by the estimators
(§3) and as iBoxML model inputs (§4.1):

* **instantaneous sending rate** — "the number of packet bytes sent during
  the second preceding the current packet timestamp";
* **inter-packet spacing** at the sender;
* **inter-packet arrival times** at the receiver (whose negative values are
  reordering events, SAX symbol 'a' in Fig. 8);
* **reordering rate over 1 s windows** (Fig. 5's metric);
* binned rate/delay time series (Fig. 4's instance-test series).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.trace.records import Trace


def sliding_window_rate(
    times: np.ndarray,
    sizes: np.ndarray,
    at: np.ndarray,
    window: float = 1.0,
) -> np.ndarray:
    """Bytes per second observed in ``[t - window, t)`` for each ``t`` in
    ``at``; ``times`` must be sorted ascending."""
    times = np.asarray(times, dtype=float)
    sizes = np.asarray(sizes, dtype=float)
    at = np.asarray(at, dtype=float)
    if window <= 0:
        raise ValueError("window must be positive")
    cumulative = np.concatenate(([0.0], np.cumsum(sizes)))
    hi = np.searchsorted(times, at, side="left")
    lo = np.searchsorted(times, at - window, side="left")
    return (cumulative[hi] - cumulative[lo]) / window


def sending_rate_at_packets(trace: Trace, window: float = 1.0) -> np.ndarray:
    """The paper's "instantaneous sending rate" feature, per packet."""
    return sliding_window_rate(
        trace.sent_at, trace.sizes, trace.sent_at, window
    )


def inter_send_times(trace: Trace) -> np.ndarray:
    """Sender-side inter-packet spacing; first entry is 0."""
    sent = trace.sent_at
    if len(sent) == 0:
        return np.array([])
    return np.concatenate(([0.0], np.diff(sent)))


def arrival_order_deltas(trace: Trace) -> np.ndarray:
    """Inter-packet *arrival* deltas in **send order** (delivered packets).

    Negative values mean a packet arrived before its predecessor-in-send-
    order — i.e. a reordering event.  This is the series SAX discretizes in
    §5.1 (symbol 'a' = negative values).
    """
    arrivals = trace.delivered_at[trace.delivered_mask]
    if len(arrivals) < 2:
        return np.array([])
    return np.diff(arrivals)


def inter_arrival_times(trace: Trace) -> np.ndarray:
    """Alias for :func:`arrival_order_deltas` (the paper's Delta_i)."""
    return arrival_order_deltas(trace)


def reordering_events(trace: Trace) -> np.ndarray:
    """Boolean array over delivered packets (send order, from the 2nd):
    ``True`` where the packet arrived earlier than its predecessor."""
    deltas = arrival_order_deltas(trace)
    return deltas < 0


def reordering_rate_windows(
    trace: Trace, window: float = 1.0
) -> np.ndarray:
    """Reordering rate per ``window``-second window (Fig. 5's metric).

    For each window of *send* time, the fraction of delivered packets in it
    that constitute reordering events.
    Windows with no delivered packets are omitted.
    """
    mask = trace.delivered_mask
    sent = trace.sent_at[mask]
    if len(sent) < 2:
        return np.array([])
    events = np.concatenate(([False], reordering_events(trace)))
    edges = np.arange(0.0, trace.duration + window, window)
    rates = []
    idx = np.searchsorted(sent, edges)
    for k in range(len(edges) - 1):
        lo, hi = idx[k], idx[k + 1]
        if hi - lo == 0:
            continue
        rates.append(float(events[lo:hi].mean()))
    return np.array(rates)


def binned_rate_series(
    trace: Trace,
    bin_width: float = 0.5,
    use_arrivals: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """(bin_centres, bytes/s) time series of the flow's rate.

    ``use_arrivals=True`` (default) gives the receiving-rate series the
    paper plots in Fig. 4(a); ``False`` gives the sending rate.
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    if use_arrivals:
        mask = trace.delivered_mask
        times = trace.delivered_at[mask]
        sizes = trace.sizes[mask]
    else:
        times = trace.sent_at
        sizes = trace.sizes
    edges = np.arange(0.0, trace.duration + bin_width, bin_width)
    totals, _ = np.histogram(times, bins=edges, weights=sizes)
    centres = (edges[:-1] + edges[1:]) / 2
    return centres, totals / bin_width


def binned_delay_series(
    trace: Trace, bin_width: float = 0.5
) -> Tuple[np.ndarray, np.ndarray]:
    """(bin_centres, mean delay seconds) series; ``nan`` in empty bins."""
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    mask = trace.delivered_mask
    times = trace.sent_at[mask]
    delays = trace.delays[mask]
    edges = np.arange(0.0, trace.duration + bin_width, bin_width)
    sums, _ = np.histogram(times, bins=edges, weights=delays)
    counts, _ = np.histogram(times, bins=edges)
    centres = (edges[:-1] + edges[1:]) / 2
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    return centres, means


def packet_features(
    trace: Trace,
    cross_traffic: Optional[np.ndarray] = None,
    window: float = 1.0,
) -> np.ndarray:
    """Per-packet feature matrix for iBoxML (§4.1).

    Columns: [instantaneous sending rate, inter-send spacing, packet size,
    previous delay] plus, when ``cross_traffic`` is given (per-packet CT
    rate estimates aligned with send times), a fifth CT column — the §5.2
    augmentation.

    The "previous delay" column uses the delay of the previous *delivered*
    packet (losses carry the last known delay forward), since a real sender
    never observes the delay of a lost packet.
    """
    n = len(trace)
    if n == 0:
        return np.zeros((0, 5 if cross_traffic is not None else 4))
    rate = sending_rate_at_packets(trace, window)
    spacing = inter_send_times(trace)
    sizes = trace.sizes
    delays = trace.delays
    prev_delay = np.zeros(n)
    last = 0.0
    for i in range(n):
        prev_delay[i] = last
        if not np.isnan(delays[i]):
            last = delays[i]
    columns = [rate, spacing, sizes, prev_delay]
    if cross_traffic is not None:
        ct = np.asarray(cross_traffic, dtype=float)
        if ct.shape != (n,):
            raise ValueError(
                f"cross_traffic must have shape ({n},), got {ct.shape}"
            )
        columns.append(ct)
    return np.column_stack(columns)
