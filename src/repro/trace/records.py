"""Packet records and the Trace container."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.simulation.packet import Packet


@dataclass
class PacketRecord:
    """One transmission of one packet, as seen end-to-end.

    ``delivered_at`` is ``nan`` for packets that never arrived — the paper's
    "infinite delay" encoding of loss (§2).
    """

    uid: int
    seq: int
    size: int
    sent_at: float
    delivered_at: float = math.nan
    is_retransmit: bool = False

    @property
    def lost(self) -> bool:
        return math.isnan(self.delivered_at)

    @property
    def delay(self) -> float:
        """One-way delay in seconds (``nan`` if lost)."""
        return self.delivered_at - self.sent_at


class Trace:
    """The end-to-end input/output record of one flow.

    Records are kept sorted by send time.  Numpy views of the columns are
    computed lazily and cached; mutating ``records`` after reading a view
    is a programming error (build traces through :class:`TraceRecorder` or
    construct them once).
    """

    def __init__(
        self,
        flow_id: str,
        records: Iterable[PacketRecord],
        duration: float,
        protocol: str = "unknown",
        metadata: Optional[dict] = None,
    ):
        self.flow_id = flow_id
        self.records: List[PacketRecord] = sorted(
            records, key=lambda r: (r.sent_at, r.uid)
        )
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        self.duration = float(duration)
        self.protocol = protocol
        self.metadata = dict(metadata or {})
        self._cache: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Column views
    # ------------------------------------------------------------------
    def _column(self, name: str, getter) -> np.ndarray:
        if name not in self._cache:
            self._cache[name] = np.array(
                [getter(r) for r in self.records], dtype=float
            )
        return self._cache[name]

    @property
    def sent_at(self) -> np.ndarray:
        return self._column("sent_at", lambda r: r.sent_at)

    @property
    def delivered_at(self) -> np.ndarray:
        return self._column("delivered_at", lambda r: r.delivered_at)

    @property
    def sizes(self) -> np.ndarray:
        return self._column("sizes", lambda r: r.size)

    @property
    def seqs(self) -> np.ndarray:
        return self._column("seqs", lambda r: r.seq)

    @property
    def delays(self) -> np.ndarray:
        """One-way delays in seconds; ``nan`` where lost."""
        return self.delivered_at - self.sent_at

    @property
    def delivered_mask(self) -> np.ndarray:
        return ~np.isnan(self.delivered_at)

    # ------------------------------------------------------------------
    # Basic statistics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    @property
    def packets_sent(self) -> int:
        return len(self.records)

    @property
    def packets_delivered(self) -> int:
        return int(self.delivered_mask.sum())

    @property
    def loss_rate(self) -> float:
        """Fraction of transmissions never delivered."""
        if not self.records:
            return 0.0
        return 1.0 - self.packets_delivered / self.packets_sent

    def delivered_delays(self) -> np.ndarray:
        """Delays of delivered packets only, in seconds."""
        return self.delays[self.delivered_mask]

    def subtrace(self, t0: float, t1: float) -> "Trace":
        """Records sent in ``[t0, t1)``, re-based so ``t0`` maps to 0."""
        if t1 <= t0:
            raise ValueError("need t1 > t0")
        records = [
            PacketRecord(
                uid=r.uid,
                seq=r.seq,
                size=r.size,
                sent_at=r.sent_at - t0,
                delivered_at=r.delivered_at - t0,
                is_retransmit=r.is_retransmit,
            )
            for r in self.records
            if t0 <= r.sent_at < t1
        ]
        return Trace(
            self.flow_id,
            records,
            duration=t1 - t0,
            protocol=self.protocol,
            metadata=self.metadata,
        )

    def summary(self):
        """End-to-end summary metrics (import-cycle-free convenience)."""
        from repro.trace.metrics import summarize

        return summarize(self)

    def __repr__(self) -> str:
        return (
            f"Trace(flow={self.flow_id!r}, protocol={self.protocol!r}, "
            f"packets={len(self)}, duration={self.duration:.1f}s, "
            f"loss={self.loss_rate:.2%})"
        )


class TraceRecorder:
    """Observer that assembles a :class:`Trace` from simulator callbacks.

    Senders call :meth:`record_send` for every transmission; receivers call
    :meth:`record_delivery` when a packet arrives.  Matching is by packet
    ``uid`` so retransmissions are tracked individually.
    """

    def __init__(self, flow_id: str, protocol: str = "unknown"):
        self.flow_id = flow_id
        self.protocol = protocol
        self._records: Dict[int, PacketRecord] = {}

    def record_send(self, packet: Packet) -> None:
        if packet.uid in self._records:
            raise ValueError(f"duplicate send for uid {packet.uid}")
        self._records[packet.uid] = PacketRecord(
            uid=packet.uid,
            seq=packet.seq,
            size=packet.size,
            sent_at=packet.sent_at,
            is_retransmit=packet.is_retransmit,
        )

    def record_delivery(self, packet: Packet) -> None:
        record = self._records.get(packet.uid)
        if record is None:
            # Delivery of a packet we never saw sent (e.g. recorder attached
            # late); ignore rather than corrupt the trace.
            return
        record.delivered_at = packet.delivered_at

    def finish(self, duration: float, metadata: Optional[dict] = None) -> Trace:
        """Freeze into an immutable-by-convention :class:`Trace`."""
        return Trace(
            self.flow_id,
            self._records.values(),
            duration=duration,
            protocol=self.protocol,
            metadata=metadata,
        )
