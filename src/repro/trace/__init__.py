"""Trace data model, feature extraction, metrics and I/O.

An iBox *trace* is the end-to-end input/output record of one flow: for
every transmission, when it entered the network at the sender and when (if
ever) it emerged at the receiver.  That is the only artefact the paper's
learning pipeline consumes (§2): delay, loss, reordering, queue buildup and
rates are all derivable from it.
"""

from repro.trace.records import PacketRecord, Trace, TraceRecorder
from repro.trace.features import (
    binned_delay_series,
    binned_rate_series,
    inter_arrival_times,
    inter_send_times,
    packet_features,
    reordering_events,
    reordering_rate_windows,
    sending_rate_at_packets,
    sliding_window_rate,
)
from repro.trace.metrics import TraceSummary, loss_percent, mean_rate_mbps, p95_delay_ms, summarize
from repro.trace.io import load_trace, load_traces, save_trace, save_traces
from repro.trace.validate import assert_valid, validate_trace

__all__ = [
    "PacketRecord",
    "Trace",
    "TraceRecorder",
    "TraceSummary",
    "assert_valid",
    "binned_delay_series",
    "binned_rate_series",
    "inter_arrival_times",
    "inter_send_times",
    "load_trace",
    "load_traces",
    "loss_percent",
    "mean_rate_mbps",
    "p95_delay_ms",
    "packet_features",
    "reordering_events",
    "reordering_rate_windows",
    "save_trace",
    "save_traces",
    "sending_rate_at_packets",
    "sliding_window_rate",
    "summarize",
    "validate_trace",
]
