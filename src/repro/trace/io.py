"""Trace persistence.

Two formats:

* **JSONL** — one JSON object per packet record plus a header line; human
  inspectable, diff-friendly, the "release format" for iBoxNet profiles the
  paper mentions in §3.2 footnote 2.
* **NPZ** — columnar numpy arrays; compact and fast for datasets.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.trace.records import PacketRecord, Trace

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: PathLike) -> None:
    """Write a trace; format chosen by suffix (``.jsonl`` or ``.npz``)."""
    path = Path(path)
    if path.suffix == ".jsonl":
        _save_jsonl(trace, path)
    elif path.suffix == ".npz":
        _save_npz(trace, path)
    else:
        raise ValueError(f"unsupported trace format: {path.suffix!r}")


def load_trace(path: PathLike) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    if path.suffix == ".jsonl":
        return _load_jsonl(path)
    if path.suffix == ".npz":
        return _load_npz(path)
    raise ValueError(f"unsupported trace format: {path.suffix!r}")


def save_traces(traces: List[Trace], directory: PathLike, fmt: str = "npz") -> List[Path]:
    """Write each trace to ``directory/<index>_<flow_id>.<fmt>``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for i, trace in enumerate(traces):
        safe_id = trace.flow_id.replace("/", "_")
        path = directory / f"{i:04d}_{safe_id}.{fmt}"
        save_trace(trace, path)
        paths.append(path)
    return paths


def iter_trace_paths(directory: PathLike) -> List[Path]:
    """Every ``.jsonl``/``.npz`` file in a directory, sorted by name."""
    directory = Path(directory)
    return sorted(
        p
        for p in directory.iterdir()
        if p.suffix in (".jsonl", ".npz") and p.is_file()
    )


def load_traces(directory: PathLike) -> List[Trace]:
    """Read every ``.jsonl``/``.npz`` trace in a directory, sorted by name."""
    return [load_trace(p) for p in iter_trace_paths(directory)]


def trace_file_digest(path: PathLike, chunk_size: int = 1 << 20) -> str:
    """SHA-256 of a trace file's raw bytes (hex).

    This is the identity the runtime's content-addressed profile cache
    keys on: any byte-level change to the trace — different packets,
    different format, even re-serialisation — yields a different digest,
    so a cached profile can never be served for data it was not fitted
    on.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as f:
        while True:
            chunk = f.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def _save_jsonl(trace: Trace, path: Path) -> None:
    header = {
        "format_version": _FORMAT_VERSION,
        "flow_id": trace.flow_id,
        "protocol": trace.protocol,
        "duration": trace.duration,
        "metadata": trace.metadata,
    }
    with open(path, "w") as f:
        f.write(json.dumps(header) + "\n")
        for r in trace.records:
            row = {
                "uid": r.uid,
                "seq": r.seq,
                "size": r.size,
                "sent_at": r.sent_at,
                "delivered_at": None if r.lost else r.delivered_at,
                "is_retransmit": r.is_retransmit,
            }
            f.write(json.dumps(row) + "\n")


def _load_jsonl(path: Path) -> Trace:
    with open(path) as f:
        header = json.loads(f.readline())
        if header.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version in {path}: "
                f"{header.get('format_version')}"
            )
        records = []
        for line in f:
            row = json.loads(line)
            delivered = row["delivered_at"]
            records.append(
                PacketRecord(
                    uid=row["uid"],
                    seq=row["seq"],
                    size=row["size"],
                    sent_at=row["sent_at"],
                    delivered_at=math.nan if delivered is None else delivered,
                    is_retransmit=row["is_retransmit"],
                )
            )
    return Trace(
        header["flow_id"],
        records,
        duration=header["duration"],
        protocol=header["protocol"],
        metadata=header["metadata"],
    )


# ----------------------------------------------------------------------
# NPZ
# ----------------------------------------------------------------------
def _save_npz(trace: Trace, path: Path) -> None:
    np.savez_compressed(
        path,
        uid=np.array([r.uid for r in trace.records], dtype=np.int64),
        seq=np.array([r.seq for r in trace.records], dtype=np.int64),
        size=np.array([r.size for r in trace.records], dtype=np.int64),
        sent_at=trace.sent_at,
        delivered_at=trace.delivered_at,
        is_retransmit=np.array(
            [r.is_retransmit for r in trace.records], dtype=bool
        ),
        header=np.array(
            json.dumps(
                {
                    "format_version": _FORMAT_VERSION,
                    "flow_id": trace.flow_id,
                    "protocol": trace.protocol,
                    "duration": trace.duration,
                    "metadata": trace.metadata,
                }
            )
        ),
    )


def _load_npz(path: Path) -> Trace:
    with np.load(path, allow_pickle=False) as data:
        header = json.loads(str(data["header"]))
        if header.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version in {path}: "
                f"{header.get('format_version')}"
            )
        records = [
            PacketRecord(
                uid=int(u),
                seq=int(s),
                size=int(sz),
                sent_at=float(sa),
                delivered_at=float(da),
                is_retransmit=bool(rt),
            )
            for u, s, sz, sa, da, rt in zip(
                data["uid"],
                data["seq"],
                data["size"],
                data["sent_at"],
                data["delivered_at"],
                data["is_retransmit"],
            )
        ]
    return Trace(
        header["flow_id"],
        records,
        duration=header["duration"],
        protocol=header["protocol"],
        metadata=header["metadata"],
    )
