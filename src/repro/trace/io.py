"""Trace persistence.

Two formats:

* **JSONL** — one JSON object per packet record plus a header line; human
  inspectable, diff-friendly, the "release format" for iBoxNet profiles the
  paper mentions in §3.2 footnote 2.
* **NPZ** — columnar numpy arrays; compact and fast for datasets.

Loading takes a repair policy (DESIGN.md §9).  Under ``strict`` (the
default) a malformed file raises :class:`TraceLoadError` carrying the
file path, 1-based line numbers, and the offending records — up to
``max_errors`` of them, so a million-line trace reports a *summary* of
what is wrong rather than dying at line 3 with no context.  Under
``repair``/``skip`` malformed lines are skipped (and counted in the
``guard.malformed_lines`` metric and the trace's metadata); ``repair``
additionally runs the loaded records through
:func:`repro.guard.repair.repair_trace`.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro import obs
from repro.trace.records import PacketRecord, Trace

PathLike = Union[str, Path]

_FORMAT_VERSION = 1

_log = obs.get_logger("repro.trace")


class TraceLoadError(ValueError):
    """A trace file could not be parsed.

    Carries the path, a bounded list of per-line errors (each with its
    1-based line number and the offending text), and the total count —
    context a bare ``ValueError: 'uid'`` at some unknown depth never
    gave anyone.
    """

    def __init__(self, path: PathLike, errors: List[str], total: int):
        self.path = Path(path)
        self.errors = list(errors)
        self.total = total
        shown = "\n  ".join(self.errors)
        suffix = (
            "" if total <= len(self.errors)
            else f"\n  ... and {total - len(self.errors)} more error(s)"
        )
        super().__init__(
            f"cannot load trace {self.path}: {total} error(s)\n  {shown}{suffix}"
        )


def save_trace(trace: Trace, path: PathLike) -> None:
    """Write a trace; format chosen by suffix (``.jsonl`` or ``.npz``)."""
    path = Path(path)
    if path.suffix == ".jsonl":
        _save_jsonl(trace, path)
    elif path.suffix == ".npz":
        _save_npz(trace, path)
    else:
        raise ValueError(f"unsupported trace format: {path.suffix!r}")


def load_trace(
    path: PathLike, policy: str = "strict", max_errors: int = 20
) -> Trace:
    """Read a trace written by :func:`save_trace`.

    ``policy`` is one of ``strict|repair|skip`` (see module docstring);
    ``max_errors`` bounds how many per-line errors are *detailed* in a
    strict-mode :class:`TraceLoadError` (all are counted).
    """
    from repro.guard.repair import check_policy, repair_trace

    check_policy(policy)
    path = Path(path)
    if path.suffix == ".jsonl":
        trace = _load_jsonl(path, policy=policy, max_errors=max_errors)
    elif path.suffix == ".npz":
        trace = _load_npz(path)
    else:
        raise ValueError(f"unsupported trace format: {path.suffix!r}")
    if policy == "repair":
        trace = repair_trace(trace).trace
    elif policy == "strict":
        from repro.trace.validate import assert_valid

        assert_valid(trace)
    return trace


def save_traces(traces: List[Trace], directory: PathLike, fmt: str = "npz") -> List[Path]:
    """Write each trace to ``directory/<index>_<flow_id>.<fmt>``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for i, trace in enumerate(traces):
        safe_id = trace.flow_id.replace("/", "_")
        path = directory / f"{i:04d}_{safe_id}.{fmt}"
        save_trace(trace, path)
        paths.append(path)
    return paths


def iter_trace_paths(directory: PathLike) -> List[Path]:
    """Every ``.jsonl``/``.npz`` file in a directory, sorted by name."""
    directory = Path(directory)
    return sorted(
        p
        for p in directory.iterdir()
        if p.suffix in (".jsonl", ".npz") and p.is_file()
    )


def load_traces(directory: PathLike) -> List[Trace]:
    """Read every ``.jsonl``/``.npz`` trace in a directory, sorted by name."""
    return [load_trace(p) for p in iter_trace_paths(directory)]


def trace_file_digest(path: PathLike, chunk_size: int = 1 << 20) -> str:
    """SHA-256 of a trace file's raw bytes (hex).

    This is the identity the runtime's content-addressed profile cache
    keys on: any byte-level change to the trace — different packets,
    different format, even re-serialisation — yields a different digest,
    so a cached profile can never be served for data it was not fitted
    on.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as f:
        while True:
            chunk = f.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def _save_jsonl(trace: Trace, path: Path) -> None:
    header = {
        "format_version": _FORMAT_VERSION,
        "flow_id": trace.flow_id,
        "protocol": trace.protocol,
        "duration": trace.duration,
        "metadata": trace.metadata,
    }
    with open(path, "w") as f:
        f.write(json.dumps(header) + "\n")
        for r in trace.records:
            row = {
                "uid": r.uid,
                "seq": r.seq,
                "size": r.size,
                "sent_at": r.sent_at,
                "delivered_at": None if r.lost else r.delivered_at,
                "is_retransmit": r.is_retransmit,
            }
            f.write(json.dumps(row) + "\n")


def _parse_jsonl_record(line: str) -> PacketRecord:
    row = json.loads(line)
    delivered = row["delivered_at"]
    record = PacketRecord(
        uid=row["uid"],
        seq=row["seq"],
        size=row["size"],
        sent_at=row["sent_at"],
        delivered_at=math.nan if delivered is None else delivered,
        is_retransmit=row["is_retransmit"],
    )
    # Fail here, with line context, not deep inside an estimator: the
    # sort key and every numpy column need real numbers (NaN is the one
    # sanctioned non-number — the loss encoding).
    for name in ("uid", "seq", "size", "sent_at", "delivered_at"):
        if not isinstance(getattr(record, name), (int, float)):
            raise TypeError(f"field {name!r} is not numeric")
    return record


def _load_jsonl(
    path: Path, policy: str = "strict", max_errors: int = 20
) -> Trace:
    errors: List[str] = []
    total_errors = 0
    with open(path) as f:
        header_line = f.readline()
        try:
            header = json.loads(header_line)
            if not isinstance(header, dict):
                raise TypeError("header is not a JSON object")
        except (json.JSONDecodeError, TypeError) as exc:
            raise TraceLoadError(
                path, [f"{path}:1: bad header: {exc}: {header_line[:120]!r}"], 1
            ) from exc
        if header.get("format_version") != _FORMAT_VERSION:
            raise TraceLoadError(
                path,
                [
                    f"{path}:1: unsupported trace format version "
                    f"{header.get('format_version')!r}"
                ],
                1,
            )
        records = []
        for line_no, line in enumerate(f, start=2):
            if not line.strip():
                continue
            try:
                records.append(_parse_jsonl_record(line))
            except (
                json.JSONDecodeError, KeyError, TypeError, ValueError,
            ) as exc:
                total_errors += 1
                if len(errors) < max_errors:
                    errors.append(
                        f"{path}:{line_no}: {type(exc).__name__}: {exc}: "
                        f"{line.strip()[:120]!r}"
                    )
    if total_errors and policy == "strict":
        raise TraceLoadError(path, errors, total_errors)
    if total_errors:
        obs.metrics().counter("guard.malformed_lines").inc(total_errors)
        _log.warning(
            "guard.malformed_lines",
            path=str(path),
            skipped=total_errors,
            first=errors[0] if errors else "",
        )
    metadata = header.get("metadata") or {}
    if total_errors:
        metadata = {**metadata, "malformed_lines": total_errors}
    duration = header.get("duration")
    if not isinstance(duration, (int, float)) or not math.isfinite(duration) \
            or duration <= 0:
        if policy == "strict":
            raise TraceLoadError(
                path, [f"{path}:1: bad duration in header: {duration!r}"], 1
            )
        # A repairable header: infer the duration from the data.
        finite_sends = [
            r.sent_at for r in records if math.isfinite(r.sent_at)
        ]
        duration = max(finite_sends, default=0.0) + 1e-3
        metadata = {**metadata, "repaired_duration": duration}
    try:
        return Trace(
            header["flow_id"],
            records,
            duration=duration,
            protocol=header.get("protocol", "unknown"),
            metadata=metadata,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceLoadError(
            path, [f"{path}:1: bad header: {type(exc).__name__}: {exc}"], 1
        ) from exc


# ----------------------------------------------------------------------
# NPZ
# ----------------------------------------------------------------------
def _save_npz(trace: Trace, path: Path) -> None:
    np.savez_compressed(
        path,
        uid=np.array([r.uid for r in trace.records], dtype=np.int64),
        seq=np.array([r.seq for r in trace.records], dtype=np.int64),
        size=np.array([r.size for r in trace.records], dtype=np.int64),
        sent_at=trace.sent_at,
        delivered_at=trace.delivered_at,
        is_retransmit=np.array(
            [r.is_retransmit for r in trace.records], dtype=bool
        ),
        header=np.array(
            json.dumps(
                {
                    "format_version": _FORMAT_VERSION,
                    "flow_id": trace.flow_id,
                    "protocol": trace.protocol,
                    "duration": trace.duration,
                    "metadata": trace.metadata,
                }
            )
        ),
    )


def _load_npz(path: Path) -> Trace:
    try:
        data = np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except Exception as exc:  # zipfile/np format damage has many spellings
        raise TraceLoadError(
            path, [f"{path}: unreadable npz: {type(exc).__name__}: {exc}"], 1
        ) from exc
    with data:
        try:
            header = json.loads(str(data["header"]))
        except (KeyError, json.JSONDecodeError, ValueError) as exc:
            raise TraceLoadError(
                path, [f"{path}: bad npz header: {exc}"], 1
            ) from exc
        if header.get("format_version") != _FORMAT_VERSION:
            raise TraceLoadError(
                path,
                [
                    f"{path}: unsupported trace format version "
                    f"{header.get('format_version')!r}"
                ],
                1,
            )
        try:
            records = [
                PacketRecord(
                    uid=int(u),
                    seq=int(s),
                    size=int(sz),
                    sent_at=float(sa),
                    delivered_at=float(da),
                    is_retransmit=bool(rt),
                )
                for u, s, sz, sa, da, rt in zip(
                    data["uid"],
                    data["seq"],
                    data["size"],
                    data["sent_at"],
                    data["delivered_at"],
                    data["is_retransmit"],
                )
            ]
        except Exception as exc:  # damaged zip member / dtype corruption
            raise TraceLoadError(
                path,
                [f"{path}: unreadable npz columns: "
                 f"{type(exc).__name__}: {exc}"],
                1,
            ) from exc
    try:
        return Trace(
            header["flow_id"],
            records,
            duration=header["duration"],
            protocol=header["protocol"],
            metadata=header["metadata"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceLoadError(
            path, [f"{path}: bad npz header: {type(exc).__name__}: {exc}"], 1
        ) from exc
