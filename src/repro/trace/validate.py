"""Trace invariant validation.

A trace that violates physics — deliveries before sends, negative sizes,
duplicate transmission ids — silently corrupts every estimator downstream.
:func:`validate_trace` checks the invariants and returns a list of
human-readable violations (empty = sound); :func:`assert_valid` raises.

Used by tests and available to users ingesting external trace files.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.trace.records import Trace


def validate_trace(
    trace: Trace,
    min_plausible_delay: float = 1e-6,
    max_plausible_delay: float = 60.0,
) -> List[str]:
    """Check structural and physical invariants; returns violations."""
    problems: List[str] = []
    n = len(trace)
    if n == 0:
        return problems

    uids = [r.uid for r in trace.records]
    if len(set(uids)) != n:
        problems.append("duplicate transmission uids")

    sent = trace.sent_at
    if not np.all(np.isfinite(sent)):
        problems.append("non-finite send timestamps")
    finite_sent = sent[np.isfinite(sent)]
    if np.any(np.diff(finite_sent) < 0):
        problems.append("records not sorted by send time")
    if np.any(finite_sent < 0):
        problems.append("negative send timestamps")
    if len(finite_sent) and np.any(finite_sent > trace.duration + 1e-9):
        problems.append(
            f"send timestamps beyond the declared duration "
            f"({finite_sent.max():.3f} > {trace.duration:.3f})"
        )
    if not np.isfinite(trace.duration):
        problems.append("non-finite declared duration")

    sizes = trace.sizes
    if not np.all(np.isfinite(sizes)):
        problems.append("non-finite packet sizes")
    if np.any(sizes[np.isfinite(sizes)] <= 0):
        problems.append("non-positive packet sizes")

    delivered = trace.delivered_at
    # nan encodes loss and is legitimate; +/-inf is corruption.
    if np.any(np.isinf(delivered)):
        problems.append("non-finite (infinite) delivery timestamps")

    mask = trace.delivered_mask & np.isfinite(delivered) & np.isfinite(sent)
    delays = (delivered - sent)[mask]
    if len(delays):
        if np.any(delays < 0):
            problems.append(
                f"negative delays: deliveries before their sends "
                f"(min delay {delays.min():.6f} s)"
            )
        elif np.any(delays < min_plausible_delay):
            problems.append(
                "deliveries at or before their sends "
                f"(min delay {delays.min():.6f} s)"
            )
        if np.any(delays > max_plausible_delay):
            problems.append(
                f"implausibly large delays (max {delays.max():.1f} s)"
            )

    seqs = trace.seqs
    retransmits = np.array([r.is_retransmit for r in trace.records])
    first_transmissions = seqs[~retransmits]
    if len(first_transmissions) != len(set(first_transmissions.tolist())):
        problems.append(
            "duplicate sequence numbers among first transmissions"
        )
    return problems


def assert_valid(trace: Trace, **kwargs) -> None:
    """Raise ``ValueError`` listing every violated invariant."""
    problems = validate_trace(trace, **kwargs)
    if problems:
        raise ValueError(
            f"trace {trace.flow_id!r} is invalid: " + "; ".join(problems)
        )
