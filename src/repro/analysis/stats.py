"""Distribution comparison statistics.

Two uses in the paper:

* Fig. 2: the iBoxNet-vs-ground-truth match of p95-delay / loss / rate
  distributions is "verified through a two-sample KS test";
* Table 1: "the difference (in ms) between median of 95th percentiles of
  inferences and GT delays" — i.e. percentile-point deltas between the two
  distributions of per-call p95 delays, reported at P25/P50/P75 and the
  mean, in absolute ms and percent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats


def ks_statistic(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Two-sample Kolmogorov–Smirnov test; returns (statistic, p-value)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    a = a[~np.isnan(a)]
    b = b[~np.isnan(b)]
    if len(a) == 0 or len(b) == 0:
        raise ValueError("both samples must be non-empty")
    result = scipy_stats.ks_2samp(a, b)
    return float(result.statistic), float(result.pvalue)


def distributions_match(
    a: Sequence[float], b: Sequence[float], alpha: float = 0.05
) -> bool:
    """True when the KS test fails to reject equality at level ``alpha``."""
    _, pvalue = ks_statistic(a, b)
    return pvalue >= alpha


def cdf_points(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as (sorted values, cumulative probabilities)."""
    values = np.sort(np.asarray(values, dtype=float))
    if len(values) == 0:
        return values, values
    probs = np.arange(1, len(values) + 1) / len(values)
    return values, probs


@dataclass(frozen=True)
class PercentileErrorRow:
    """One row of the Table 1 error metric."""

    label: str
    p25_ms: float
    p50_ms: float
    p75_ms: float
    mean_ms: float
    p25_pct: float
    p50_pct: float
    p75_pct: float
    mean_pct: float

    def __str__(self) -> str:
        return (
            f"{self.label:>4s}  "
            f"{self.p25_ms:.0f} ({self.p25_pct:.0f}%)  "
            f"{self.p50_ms:.0f} ({self.p50_pct:.0f}%)  "
            f"{self.p75_ms:.0f} ({self.p75_pct:.0f}%)  "
            f"{self.mean_ms:.0f} ({self.mean_pct:.0f}%)"
        )


def percentile_error_table(
    predicted_ms: Sequence[float],
    ground_truth_ms: Sequence[float],
    label: str = "",
) -> PercentileErrorRow:
    """The Table 1 metric.

    Both inputs are distributions of per-call 95th-percentile delays (ms).
    The error at percentile P is ``|percentile(pred, P) - percentile(gt, P)|``
    in ms and as a percentage of the GT percentile; "mean" compares the
    distribution means.
    """
    pred = np.asarray(predicted_ms, dtype=float)
    gt = np.asarray(ground_truth_ms, dtype=float)
    pred = pred[~np.isnan(pred)]
    gt = gt[~np.isnan(gt)]
    if len(pred) == 0 or len(gt) == 0:
        raise ValueError("both distributions must be non-empty")

    def delta(p: float) -> Tuple[float, float]:
        gt_val = float(np.percentile(gt, p))
        pred_val = float(np.percentile(pred, p))
        err = abs(pred_val - gt_val)
        return err, 100.0 * err / max(gt_val, 1e-9)

    p25_ms, p25_pct = delta(25)
    p50_ms, p50_pct = delta(50)
    p75_ms, p75_pct = delta(75)
    mean_err = abs(float(pred.mean()) - float(gt.mean()))
    mean_pct = 100.0 * mean_err / max(float(gt.mean()), 1e-9)
    return PercentileErrorRow(
        label=label,
        p25_ms=p25_ms,
        p50_ms=p50_ms,
        p75_ms=p75_ms,
        mean_ms=mean_err,
        p25_pct=p25_pct,
        p50_pct=p50_pct,
        p75_pct=p75_pct,
        mean_pct=mean_pct,
    )


def summary_distribution_ks(
    gt_summaries: Sequence,
    sim_summaries: Sequence,
) -> Dict[str, Tuple[float, float]]:
    """KS statistics for each Fig. 2 axis between GT and simulated runs.

    Inputs are sequences of :class:`repro.trace.metrics.TraceSummary`.
    """
    metrics = {
        "p95_delay_ms": lambda s: s.p95_delay_ms,
        "loss_percent": lambda s: s.loss_percent,
        "mean_rate_mbps": lambda s: s.mean_rate_mbps,
    }
    out = {}
    for name, getter in metrics.items():
        gt_vals = [getter(s) for s in gt_summaries]
        sim_vals = [getter(s) for s in sim_summaries]
        out[name] = ks_statistic(gt_vals, sim_vals)
    return out
