"""Multi-flow fairness analysis.

An A/B verdict is incomplete without the *other* side of the bottleneck:
a treatment protocol that wins throughput by starving competing traffic
may be unshippable.  With the adaptive-cross-traffic extension
(`repro.core.adaptive_ct`) iBox can pose exactly this question offline;
this module provides the measurement side:

* :func:`run_competing_flows` — N senders (possibly different protocols)
  sharing one bottleneck, each fully traced;
* :func:`jains_index` — Jain's fairness index over their goodputs
  (1 = perfectly fair, 1/N = one flow hogs everything);
* :func:`throughput_shares` — per-flow goodput fractions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.simulation.engine import Simulator
from repro.simulation.topology import PathConfig, SingleBottleneckPath
from repro.trace.records import Trace, TraceRecorder


def jains_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), in [1/n, 1]."""
    x = np.asarray(list(allocations), dtype=float)
    if len(x) == 0:
        raise ValueError("need at least one allocation")
    if np.any(x < 0):
        raise ValueError("allocations must be non-negative")
    denom = len(x) * float((x**2).sum())
    if denom == 0:
        return 1.0  # all-zero: degenerate but conventionally fair
    return float(x.sum()) ** 2 / denom


@dataclass
class CompetitionResult:
    """Outcome of N flows sharing one bottleneck."""

    traces: Dict[str, Trace]
    goodputs: Dict[str, float]  # bytes/s per flow

    @property
    def fairness(self) -> float:
        return jains_index(list(self.goodputs.values()))

    def shares(self) -> Dict[str, float]:
        total = sum(self.goodputs.values())
        if total <= 0:
            return {k: 0.0 for k in self.goodputs}
        return {k: v / total for k, v in self.goodputs.items()}

    def format_report(self) -> str:
        lines = [f"competition over one bottleneck (Jain {self.fairness:.3f})"]
        for flow_id, share in sorted(
            self.shares().items(), key=lambda kv: -kv[1]
        ):
            lines.append(
                f"  {flow_id:>16s}: {share:6.1%} "
                f"({self.goodputs[flow_id] * 8 / 1e6:5.2f} Mb/s)"
            )
        return "\n".join(lines)


def run_competing_flows(
    config: PathConfig,
    protocols: Sequence[str],
    duration: float,
    seed: int = 0,
    stagger: float = 0.0,
) -> CompetitionResult:
    """Run several senders over one shared bottleneck, all traced.

    ``stagger`` starts flow k at ``k * stagger`` seconds (late-comer
    fairness experiments).  Any cross-traffic specs in ``config`` are
    instantiated as well.
    """
    if not protocols:
        raise ValueError("need at least one protocol")
    sim = Simulator()
    path = SingleBottleneckPath(sim, config, duration, seed)
    recorders: Dict[str, TraceRecorder] = {}
    for k, protocol in enumerate(protocols):
        flow_id = f"{protocol}-{k}"
        recorder = TraceRecorder(flow_id, protocol=protocol)
        recorders[flow_id] = recorder
        sender = path.attach_flow(protocol, flow_id, recorder=recorder)
        sim.schedule_at(k * stagger, sender.start)
    for i, spec in enumerate(config.cross_traffic):
        path.add_cross_traffic(spec, seed=seed + 1000 + i)
    sim.run(until=duration)
    sim.run(until=duration + 2.0)

    traces: Dict[str, Trace] = {}
    goodputs: Dict[str, float] = {}
    for flow_id, recorder in recorders.items():
        trace = recorder.finish(duration=duration)
        traces[flow_id] = trace
        # Count only deliveries inside the measurement window; the drain
        # period exists to complete the traces, not to pad goodput.
        in_window = trace.delivered_mask & (trace.delivered_at <= duration)
        delivered = float(trace.sizes[in_window].sum())
        goodputs[flow_id] = delivered / duration
    return CompetitionResult(traces=traces, goodputs=goodputs)
