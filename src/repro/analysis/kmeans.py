"""k-means clustering (numpy), with k-means++ seeding.

Used for the Fig. 4(b) instance test: "k-means clustering (with k = 3) of
these runs ... is perfect, i.e., with no mistakes."
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class KMeans:
    """Lloyd's algorithm with k-means++ initialisation and restarts."""

    def __init__(
        self,
        n_clusters: int,
        n_init: int = 10,
        max_iter: int = 300,
        tol: float = 1e-7,
        seed: int = 0,
    ):
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: float = float("inf")

    def fit(self, x: np.ndarray) -> "KMeans":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError("x must be 2-D (n_samples, n_features)")
        if len(x) < self.n_clusters:
            raise ValueError("fewer samples than clusters")
        rng = np.random.default_rng(self.seed)
        best_inertia = float("inf")
        for _ in range(self.n_init):
            centers, labels, inertia = self._run_once(x, rng)
            if inertia < best_inertia:
                best_inertia = inertia
                self.centers_ = centers
                self.labels_ = labels
                self.inertia_ = inertia
        return self

    def _run_once(self, x: np.ndarray, rng: np.random.Generator):
        centers = self._kmeanspp_init(x, rng)
        labels = np.zeros(len(x), dtype=int)
        for _ in range(self.max_iter):
            distances = _sq_distances(x, centers)
            labels = distances.argmin(axis=1)
            new_centers = centers.copy()
            for k in range(self.n_clusters):
                members = x[labels == k]
                if len(members) > 0:
                    new_centers[k] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the farthest point.
                    far = distances.min(axis=1).argmax()
                    new_centers[k] = x[far]
            shift = float(((new_centers - centers) ** 2).sum())
            centers = new_centers
            if shift < self.tol:
                break
        inertia = float(_sq_distances(x, centers).min(axis=1).sum())
        return centers, labels, inertia

    def _kmeanspp_init(
        self, x: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n = len(x)
        centers = [x[rng.integers(n)]]
        for _ in range(1, self.n_clusters):
            d2 = _sq_distances(x, np.array(centers)).min(axis=1)
            total = d2.sum()
            if total <= 0:
                centers.append(x[rng.integers(n)])
                continue
            probs = d2 / total
            centers.append(x[rng.choice(n, p=probs)])
        return np.array(centers)

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.centers_ is None:
            raise RuntimeError("predict called before fit()")
        return _sq_distances(np.asarray(x, dtype=float), self.centers_).argmin(
            axis=1
        )


def _sq_distances(x: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """(n, k) squared Euclidean distances."""
    diff = x[:, None, :] - centers[None, :, :]
    return (diff**2).sum(axis=2)


def cluster_purity(labels: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of points whose cluster's majority true class matches their
    own — 1.0 corresponds to the paper's "perfect ... no mistakes"."""
    labels = np.asarray(labels)
    truth = np.asarray(truth)
    if labels.shape != truth.shape:
        raise ValueError("labels and truth must have the same shape")
    if len(labels) == 0:
        return float("nan")
    correct = 0
    for cluster in np.unique(labels):
        members = truth[labels == cluster]
        values, counts = np.unique(members, return_counts=True)
        correct += counts.max()
    return correct / len(labels)
