"""t-SNE (van der Maaten & Hinton, 2008) in numpy.

Used for the Fig. 4(b) visualisation of instance-test runs.  This is the
classic exact algorithm: per-point perplexity calibration via binary
search on the Gaussian bandwidth, then gradient descent with momentum and
early exaggeration on the KL divergence between the high-dimensional
Gaussian affinities and the low-dimensional Student-t affinities.
"""

from __future__ import annotations

import numpy as np


def _pairwise_sq_distances(x: np.ndarray) -> np.ndarray:
    sums = (x**2).sum(axis=1)
    d2 = sums[:, None] + sums[None, :] - 2.0 * x @ x.T
    np.fill_diagonal(d2, 0.0)
    return np.maximum(d2, 0.0)


def _conditional_probs(
    d2_row: np.ndarray, beta: float
) -> tuple:
    """p_{j|i} for one row at precision ``beta``; returns (probs, entropy)."""
    p = np.exp(-d2_row * beta)
    total = p.sum()
    if total <= 0:
        p = np.ones_like(p) / max(len(p), 1)
        return p, 0.0
    p = p / total
    # Shannon entropy in nats.
    nonzero = p > 1e-12
    entropy = float(-(p[nonzero] * np.log(p[nonzero])).sum())
    return p, entropy


def _calibrate_affinities(
    d2: np.ndarray, perplexity: float, tol: float = 1e-4, max_iter: int = 50
) -> np.ndarray:
    """Binary-search per-point bandwidths to hit the target perplexity."""
    n = len(d2)
    target_entropy = np.log(perplexity)
    p = np.zeros((n, n))
    for i in range(n):
        idx = np.arange(n) != i
        row = d2[i, idx]
        beta, beta_min, beta_max = 1.0, 0.0, np.inf
        probs, entropy = _conditional_probs(row, beta)
        for _ in range(max_iter):
            if abs(entropy - target_entropy) < tol:
                break
            if entropy > target_entropy:
                beta_min = beta
                beta = beta * 2 if beta_max == np.inf else (beta + beta_max) / 2
            else:
                beta_max = beta
                beta = (beta + beta_min) / 2
            probs, entropy = _conditional_probs(row, beta)
        p[i, idx] = probs
    return p


def tsne(
    x: np.ndarray,
    n_components: int = 2,
    perplexity: float = 10.0,
    n_iter: int = 500,
    learning_rate: float = 100.0,
    early_exaggeration: float = 4.0,
    exaggeration_iters: int = 100,
    seed: int = 0,
) -> np.ndarray:
    """Embed ``x`` (n_samples, n_features) into ``n_components`` dims.

    Perplexity is automatically reduced when the sample count is small
    (it must be < n_samples).
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise ValueError("x must be 2-D")
    n = len(x)
    if n < 3:
        raise ValueError("need at least 3 samples")
    perplexity = min(perplexity, (n - 1) / 3.0)

    d2 = _pairwise_sq_distances(x)
    p_cond = _calibrate_affinities(d2, perplexity)
    p = (p_cond + p_cond.T) / (2.0 * n)
    p = np.maximum(p, 1e-12)

    rng = np.random.default_rng(seed)
    y = rng.normal(0.0, 1e-4, size=(n, n_components))
    velocity = np.zeros_like(y)
    gains = np.ones_like(y)

    for iteration in range(n_iter):
        exaggeration = (
            early_exaggeration if iteration < exaggeration_iters else 1.0
        )
        yd2 = _pairwise_sq_distances(y)
        numerator = 1.0 / (1.0 + yd2)
        np.fill_diagonal(numerator, 0.0)
        q = numerator / max(numerator.sum(), 1e-12)
        q = np.maximum(q, 1e-12)

        pq = (exaggeration * p - q) * numerator
        grad = np.zeros_like(y)
        for i in range(n):
            grad[i] = 4.0 * (pq[i][:, None] * (y[i] - y)).sum(axis=0)

        momentum = 0.5 if iteration < 250 else 0.8
        same_sign = np.sign(grad) == np.sign(velocity)
        gains = np.where(same_sign, gains * 0.8, gains + 0.2)
        gains = np.maximum(gains, 0.01)
        velocity = momentum * velocity - learning_rate * gains * grad
        y = y + velocity
        y = y - y.mean(axis=0)
    return y
