"""A test for realism (§6, "Test for Realism").

"We could define it in terms of the inability of a powerful discriminator
(e.g., of the kind used to train Generative Adversarial Networks (GANs))
to tell between the input-output behaviour of the simulator and that of
the real network."

This module implements that definition at laptop scale: traces are cut
into fixed-length windows, each window is summarised by a feature vector
(delay statistics, rate, reordering, burstiness), and a logistic
discriminator is trained to separate real from simulated windows with a
train/held-out split.  The **realism score** maps held-out discriminator
accuracy to [0, 1]: accuracy 0.5 (indistinguishable) scores 1.0; accuracy
1.0 (trivially separable) scores 0.0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.ml.logistic import LogisticRegression
from repro.trace.records import Trace

WINDOW_FEATURE_NAMES = (
    "mean_delay",
    "p95_delay",
    "delay_std",
    "mean_rate",
    "loss_rate",
    "reorder_rate",
    "delay_gradient",
    "inter_send_cv",
)


def window_features(trace: Trace, window: float = 2.0) -> np.ndarray:
    """Per-window summary features of a trace: (n_windows, 8)."""
    if window <= 0:
        raise ValueError("window must be positive")
    rows: List[List[float]] = []
    edges = np.arange(0.0, trace.duration + window, window)
    sent = trace.sent_at
    delivered_at = trace.delivered_at
    delays = trace.delays
    sizes = trace.sizes
    mask = trace.delivered_mask
    for k in range(len(edges) - 1):
        lo, hi = edges[k], edges[k + 1]
        in_window = (sent >= lo) & (sent < hi)
        if in_window.sum() < 5:
            continue
        window_delays = delays[in_window & mask]
        if len(window_delays) < 3:
            continue
        window_sent = sent[in_window]
        arrivals = delivered_at[in_window & mask]
        gaps = np.diff(window_sent)
        deltas = np.diff(arrivals)
        slope = np.polyfit(
            np.arange(len(window_delays)), window_delays, 1
        )[0]
        gap_mean = gaps.mean() if len(gaps) else 0.0
        rows.append(
            [
                float(window_delays.mean()),
                float(np.percentile(window_delays, 95)),
                float(window_delays.std()),
                float(sizes[in_window].sum() / window),
                float(1.0 - mask[in_window].mean()),
                float((deltas < 0).mean()) if len(deltas) else 0.0,
                float(slope),
                float(gaps.std() / gap_mean) if gap_mean > 0 else 0.0,
            ]
        )
    return np.array(rows) if rows else np.zeros((0, 8))


@dataclass
class RealismResult:
    """Discriminator verdict on simulator output."""

    held_out_accuracy: float
    realism_score: float  # 1 = indistinguishable, 0 = trivially separable
    n_real_windows: int
    n_sim_windows: int

    def format_report(self) -> str:
        return (
            f"realism discriminator: held-out accuracy "
            f"{self.held_out_accuracy:.2f} over "
            f"{self.n_real_windows}+{self.n_sim_windows} windows "
            f"=> realism score {self.realism_score:.2f}"
        )


def realism_test(
    real_traces: Sequence[Trace],
    simulated_traces: Sequence[Trace],
    window: float = 2.0,
    train_fraction: float = 0.6,
    seed: int = 0,
) -> RealismResult:
    """Train a discriminator on real-vs-simulated windows; report realism.

    Windows from both corpora are pooled, shuffled and split; the
    discriminator is the lightweight logistic model (a stronger
    discriminator only lowers the realism score, so this is a lenient but
    consistent yardstick — the §6 challenge of a *powerful* time-series
    discriminator remains open, as the paper says).
    """
    real = [window_features(t, window) for t in real_traces]
    sim = [window_features(t, window) for t in simulated_traces]
    real_matrix = (
        np.concatenate([r for r in real if len(r)], axis=0)
        if any(len(r) for r in real)
        else np.zeros((0, 8))
    )
    sim_matrix = (
        np.concatenate([s for s in sim if len(s)], axis=0)
        if any(len(s) for s in sim)
        else np.zeros((0, 8))
    )
    if len(real_matrix) < 4 or len(sim_matrix) < 4:
        raise ValueError("need at least 4 windows per side")

    x = np.concatenate([real_matrix, sim_matrix], axis=0)
    y = np.concatenate(
        [np.ones(len(real_matrix)), np.zeros(len(sim_matrix))]
    )
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(x))
    x, y = x[order], y[order]
    cut = max(2, int(train_fraction * len(x)))
    model = LogisticRegression(epochs=400, lr=0.3, seed=seed)
    model.fit(x[:cut], y[:cut])
    accuracy = model.score(x[cut:], y[cut:])
    # Fold accuracy about 0.5 (a discriminator below chance is as
    # informative as one above it) and map to [0, 1].
    folded = max(accuracy, 1.0 - accuracy)
    score = 2.0 * (1.0 - folded)
    return RealismResult(
        held_out_accuracy=float(accuracy),
        realism_score=float(score),
        n_real_windows=len(real_matrix),
        n_sim_windows=len(sim_matrix),
    )
