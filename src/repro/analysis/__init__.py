"""Evaluation utilities: distribution tests, clustering, embedding.

* :mod:`repro.analysis.stats` — two-sample KS tests (Fig. 2's "match
  verified through a two-sample KS test"), CDF helpers and the Table 1
  percentile-error metric.
* :mod:`repro.analysis.kmeans` — k-means++ and cluster-purity scoring for
  the Fig. 4(b) instance-test clustering.
* :mod:`repro.analysis.tsne` — t-SNE (van der Maaten & Hinton 2008) for
  the Fig. 4(b) visualisation.
* :mod:`repro.analysis.crosscorr` — the Fig. 4(b) features: normalized
  cross-correlation between a run's rate/delay series and reference
  ground-truth series.
"""

from repro.analysis.stats import (
    cdf_points,
    distributions_match,
    ks_statistic,
    percentile_error_table,
    PercentileErrorRow,
)
from repro.analysis.kmeans import KMeans, cluster_purity
from repro.analysis.tsne import tsne
from repro.analysis.crosscorr import (
    instance_feature_vector,
    max_normalized_crosscorr,
)
from repro.analysis.realism import RealismResult, realism_test, window_features
from repro.analysis.fairness import (
    CompetitionResult,
    jains_index,
    run_competing_flows,
)

__all__ = [
    "CompetitionResult",
    "KMeans",
    "RealismResult",
    "jains_index",
    "realism_test",
    "run_competing_flows",
    "window_features",
    "PercentileErrorRow",
    "cdf_points",
    "cluster_purity",
    "distributions_match",
    "instance_feature_vector",
    "ks_statistic",
    "max_normalized_crosscorr",
    "percentile_error_table",
    "tsne",
]
