"""Cross-correlation features for the instance test (Fig. 4b).

The paper clusters runs "using, as features, the cross-correlation between
the iBox rate and delay time series and their respective ground truth time
series".  Concretely: each run is reduced to a feature vector of maximum
normalized cross-correlations between its binned rate/delay series and a
set of reference (ground-truth) series — one pair of features per
reference run.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.trace.features import binned_delay_series, binned_rate_series
from repro.trace.records import Trace


def max_normalized_crosscorr(
    a: np.ndarray, b: np.ndarray, max_lag: int = 5
) -> float:
    """Maximum Pearson-style cross-correlation over lags in [-max_lag, max_lag].

    Series are z-normalised first; ``nan`` entries are replaced by the
    series mean (zero after normalisation).  Returns a value in [-1, 1].
    """
    a = _znorm(np.asarray(a, dtype=float))
    b = _znorm(np.asarray(b, dtype=float))
    n = min(len(a), len(b))
    if n < 2:
        return 0.0
    a, b = a[:n], b[:n]
    best = -1.0
    for lag in range(-max_lag, max_lag + 1):
        if lag >= 0:
            x, y = a[lag:], b[: n - lag]
        else:
            x, y = a[: n + lag], b[-lag:]
        if len(x) < 2:
            continue
        value = float(np.dot(x, y) / len(x))
        best = max(best, value)
    return best


def _znorm(x: np.ndarray) -> np.ndarray:
    x = np.where(np.isnan(x), np.nanmean(x) if np.any(~np.isnan(x)) else 0.0, x)
    std = x.std()
    if std < 1e-12:
        return np.zeros_like(x)
    return (x - x.mean()) / std


def run_series(
    trace: Trace, bin_width: float = 0.5
) -> Tuple[np.ndarray, np.ndarray]:
    """(rate series, delay series) of a run, binned for correlation."""
    _, rates = binned_rate_series(trace, bin_width=bin_width)
    _, delays = binned_delay_series(trace, bin_width=bin_width)
    return rates, delays


def instance_feature_vector(
    trace: Trace,
    reference_traces: Sequence[Trace],
    bin_width: float = 0.5,
    max_lag: int = 4,
) -> np.ndarray:
    """The Fig. 4(b) feature vector of one run.

    For every reference ground-truth run, two entries: the max normalized
    cross-correlation of the rate series and of the delay series.
    """
    rates, delays = run_series(trace, bin_width)
    features = []
    for reference in reference_traces:
        ref_rates, ref_delays = run_series(reference, bin_width)
        features.append(max_normalized_crosscorr(rates, ref_rates, max_lag))
        features.append(max_normalized_crosscorr(delays, ref_delays, max_lag))
    return np.array(features)
