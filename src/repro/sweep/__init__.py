"""repro.sweep — vectorized flow-level scenario sweeps.

The fast path next to the packet engine: declare a
:class:`~repro.sweep.scenario.ScenarioGrid` (paths × protocols × seeds),
pack it into lockstep arrays, and advance the whole fleet one interval
at a time with :func:`~repro.sweep.flowsim.run_fleet`.  The
:mod:`~repro.sweep.fidelity` harness keeps the approximation honest by
diffing the flow core against the packet engine on pinned scenarios.

A 2 paths x 2 protocols x 2 seeds sweep, end to end::

    from repro.sweep import ScenarioGrid, SweepPath, run_scenarios

    grid = ScenarioGrid(
        paths=(
            SweepPath(
                bandwidth_bytes_per_sec=1.5e6,
                propagation_delay=0.03,
                buffer_bytes=64_000,
                label="dsl",
            ),
            SweepPath(
                bandwidth_bytes_per_sec=12e6,
                propagation_delay=0.01,
                buffer_bytes=256_000,
                bandwidth_kind="cellular",
                label="lte",
            ),
        ),
        protocols=("cubic", "bbr"),
        seeds=(1, 2),
        duration=10.0,
    )
    result = run_scenarios(grid.expand())    # 8 scenarios, lockstep
    assert result.n_scenarios == 8 and result.n_faulted == 0
    best = max(result.scenarios, key=lambda s: s.mean_rate_mbps)
    print(best.label, best.protocol, round(best.mean_rate_mbps, 2))

``repro sweep run`` is the CLI over the same path (grids from JSON,
shards via ``split_grid``, manifests, telemetry), and ``repro sweep
validate`` runs the fidelity harness.
"""

from repro.sweep.flowsim import (
    FleetResult,
    ScenarioResult,
    run_fleet,
    run_scenarios,
)
from repro.sweep.scenario import (
    FleetParams,
    ScenarioGrid,
    ScenarioSpec,
    SweepPath,
    pack_fleet,
    split_grid,
)
from repro.sweep.fidelity import (
    DEFAULT_TOLERANCES,
    FidelityReport,
    compare_engines,
    golden_grid,
    run_fidelity,
)

__all__ = [
    "DEFAULT_TOLERANCES",
    "FidelityReport",
    "FleetParams",
    "FleetResult",
    "ScenarioGrid",
    "ScenarioResult",
    "ScenarioSpec",
    "SweepPath",
    "compare_engines",
    "golden_grid",
    "pack_fleet",
    "run_fidelity",
    "run_fleet",
    "run_scenarios",
    "split_grid",
]
