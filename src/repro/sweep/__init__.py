"""repro.sweep — vectorized flow-level scenario sweeps.

The fast path next to the packet engine: declare a
:class:`~repro.sweep.scenario.ScenarioGrid` (paths × protocols × seeds),
pack it into lockstep arrays, and advance the whole fleet one interval
at a time with :func:`~repro.sweep.flowsim.run_fleet`.  The
:mod:`~repro.sweep.fidelity` harness keeps the approximation honest by
diffing the flow core against the packet engine on pinned scenarios.
"""

from repro.sweep.flowsim import (
    FleetResult,
    ScenarioResult,
    run_fleet,
    run_scenarios,
)
from repro.sweep.scenario import (
    FleetParams,
    ScenarioGrid,
    ScenarioSpec,
    SweepPath,
    pack_fleet,
    split_grid,
)
from repro.sweep.fidelity import (
    DEFAULT_TOLERANCES,
    FidelityReport,
    compare_engines,
    golden_grid,
    run_fidelity,
)

__all__ = [
    "DEFAULT_TOLERANCES",
    "FidelityReport",
    "FleetParams",
    "FleetResult",
    "ScenarioGrid",
    "ScenarioResult",
    "ScenarioSpec",
    "SweepPath",
    "compare_engines",
    "golden_grid",
    "pack_fleet",
    "run_fidelity",
    "run_fleet",
    "run_scenarios",
    "split_grid",
]
