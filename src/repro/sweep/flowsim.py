"""The vectorized flow-level core: advance a fleet of scenarios in lockstep.

Where the packet engine (``repro.simulation``) schedules one event per
packet, this core advances *all* scenarios one interval at a time over
``(n_scenarios,)`` arrays.  Per interval of length ``dt``:

1. gather the interval's service rate ``srv`` and cross-traffic rate;
2. compute each flow's RTT from the current queue:
   ``rtt = prop + ack + queue/srv + mss/srv``;
3. ask each protocol group's fluid model for an offered rate ``x``
   (window models send ``cwnd * mss / rtt``);
4. drop-tail byte accounting::

       inflow    = (x + cross) * dt
       raw       = queue + inflow - srv * dt
       overflow  = min(max(raw - buffer, 0), inflow)
       queue'    = clip(raw, 0, buffer)
       loss_frac = overflow / inflow

5. credit delivery by *accepted arrivals* ``x * (1 - loss_frac)`` —
   accepted bytes eventually drain, matching the packet engine's
   post-duration drain — and record a byte-weighted one-way delay
   sample ``prop + q_mid/srv + mss/srv``;
6. edge-trigger loss events at most once per RTT and hand the interval's
   feedback to each fluid model's ``on_interval``.

Scenario isolation: every recursion above is elementwise, so a
non-finite parameter row corrupts only its own scenario.  ``run_fleet``
flags such rows (pre-loop parameter check plus post-loop summary check)
as status ``"faulted"`` and reports them alongside the healthy rows —
the batch never fails wholesale.  ``repro.guard``'s chaos campaign
injects exactly this fault to keep the property honest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

import numpy as np

from repro import obs
from repro.protocols.fluid import FluidEnv, fluid_model_for
from repro.simulation.packet import DEFAULT_MTU_BYTES
from repro.simulation.units import bytes_per_sec_to_mbps, sec_to_ms
from repro.sweep.scenario import FleetParams

_LOG = obs.get_logger("sweep.flowsim")

#: Fraction of an interval's arrivals that must drop to count as a
#: congestion signal (filters float dust from the overflow subtraction).
LOSS_EVENT_THRESHOLD = 1e-6

#: Detection latency for a loss signal, as a fraction of the current
#: RTT.  A drop at the bottleneck reaches the sender via queue drain +
#: dupacks (~1 RTT), but a real sender is ack-clocked meanwhile and
#: cannot sustain its pre-drop rate, so the *effective* window during
#: which fluid overflow keeps accumulating is a fraction of the RTT.
#: Calibrated against the packet engine on the golden grid.
LOSS_SIGNAL_DELAY_FRACTION = 0.5


@dataclass
class ScenarioResult:
    """One scenario's summary, shaped like a packet ``TraceSummary``."""

    scenario_id: str
    label: str
    protocol: str
    seed: int
    status: str  # "ok" | "faulted"
    mean_rate_mbps: float
    mean_delay_ms: float
    p95_delay_ms: float
    loss_percent: float
    sent_bytes: float
    delivered_bytes: float
    fault_reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario_id": self.scenario_id,
            "label": self.label,
            "protocol": self.protocol,
            "seed": self.seed,
            "status": self.status,
            "mean_rate_mbps": self.mean_rate_mbps,
            "mean_delay_ms": self.mean_delay_ms,
            "p95_delay_ms": self.p95_delay_ms,
            "loss_percent": self.loss_percent,
            "sent_bytes": self.sent_bytes,
            "delivered_bytes": self.delivered_bytes,
            "fault_reason": self.fault_reason,
        }


@dataclass
class FleetResult:
    """Results for one lockstep batch."""

    scenarios: List[ScenarioResult]
    n_intervals: int
    duration: float
    elapsed_sec: float

    @property
    def n_scenarios(self) -> int:
        return len(self.scenarios)

    @property
    def n_faulted(self) -> int:
        return sum(1 for s in self.scenarios if s.status == "faulted")

    @property
    def scenarios_per_sec(self) -> float:
        if self.elapsed_sec <= 0:
            return float("inf")
        return self.n_scenarios / self.elapsed_sec

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_scenarios": self.n_scenarios,
            "n_faulted": self.n_faulted,
            "n_intervals": self.n_intervals,
            "duration": self.duration,
            "elapsed_sec": self.elapsed_sec,
            "scenarios_per_sec": self.scenarios_per_sec,
            "scenarios": [s.to_dict() for s in self.scenarios],
        }


def _finite_rows(params: FleetParams) -> np.ndarray:
    """Boolean mask of rows whose parameters are all finite and sane."""
    ok = (
        np.isfinite(params.service_rate).all(axis=1)
        & np.isfinite(params.cross_rate).all(axis=1)
        & np.isfinite(params.prop_delay)
        & np.isfinite(params.ack_delay)
        & np.isfinite(params.buffer_bytes)
        & (params.service_rate > 0).all(axis=1)
        & (params.cross_rate >= 0).all(axis=1)
        & (params.prop_delay >= 0)
        & (params.ack_delay >= 0)
        & (params.buffer_bytes > 0)
    )
    return ok


def weighted_p95(samples: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Row-wise weighted 95th percentile.

    ``samples``/``weights`` are ``(n, T)``; rows with zero total weight
    yield NaN.  Matches ``np.percentile`` semantics in the limit of many
    equal weights (nearest-rank on the weighted CDF).
    """
    n = samples.shape[0]
    out = np.full(n, np.nan)
    order = np.argsort(samples, axis=1)
    sorted_samples = np.take_along_axis(samples, order, axis=1)
    sorted_weights = np.take_along_axis(weights, order, axis=1)
    cum = np.cumsum(sorted_weights, axis=1)
    total = cum[:, -1]
    live = total > 0
    if not np.any(live):
        return out
    targets = 0.95 * total[live]
    idx = np.empty(int(live.sum()), dtype=np.int64)
    live_rows = np.nonzero(live)[0]
    for j, row in enumerate(live_rows):
        idx[j] = int(np.searchsorted(cum[row], targets[j], side="left"))
    idx = np.minimum(idx, samples.shape[1] - 1)
    out[live_rows] = sorted_samples[live_rows, idx]
    return out


def run_fleet(params: FleetParams, mss: float = float(DEFAULT_MTU_BYTES)) -> FleetResult:
    """Advance every scenario in ``params`` through the full sweep window.

    Pure and deterministic: all randomness (cellular realisations) was
    consumed when the fleet was packed.  Emits the ``sweep.chunk`` span,
    the ``sweep.scenarios`` counter and the ``sweep.scenarios_per_sec``
    histogram.
    """
    n = params.n_scenarios
    big_t = params.n_intervals
    dt = params.dt
    if params.cross_rate.shape != (n, big_t):
        raise ValueError("cross_rate shape mismatch")
    for name in ("prop_delay", "ack_delay", "buffer_bytes"):
        if getattr(params, name).shape != (n,):
            raise ValueError(f"{name} must have shape (n_scenarios,)")
    if len(params.protocols) != n:
        raise ValueError("need one protocol per scenario")

    started = time.perf_counter()
    with obs.span("sweep.chunk", scenarios=n, intervals=big_t) as chunk:
        healthy = _finite_rows(params)
        fault_reason = [
            "" if ok else "non-finite or out-of-range parameters"
            for ok in healthy
        ]
        if not np.all(healthy):
            _LOG.warning(
                "sweep.faulted_params",
                count=int((~healthy).sum()),
                scenario_ids=[
                    params.scenario_ids[i]
                    for i in np.nonzero(~healthy)[0][:8]
                ],
            )

        # Group scenarios by protocol; each group owns a state dict of
        # arrays and an index vector into the fleet axis.
        groups = []
        for proto in sorted(set(params.protocols)):
            idx = np.array(
                [i for i, p in enumerate(params.protocols) if p == proto],
                dtype=np.int64,
            )
            model = fluid_model_for(proto)
            groups.append((proto, idx, model, model.init_state(len(idx))))

        queue = np.zeros(n)
        sent_bytes = np.zeros(n)
        delivered_bytes = np.zeros(n)
        lost_bytes = np.zeros(n)
        last_backoff = np.full(n, -np.inf)
        pending_due = np.full(n, np.inf)
        delay_samples = np.zeros((n, big_t))
        delay_weights = np.zeros((n, big_t))
        rate = np.zeros(n)
        prop = params.prop_delay
        ack = params.ack_delay
        buffer_bytes = params.buffer_bytes

        with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
            for k in range(big_t):
                t = k * dt
                srv = params.service_rate[:, k]
                cross = params.cross_rate[:, k]
                serialization = mss / srv
                rtt = prop + ack + queue / srv + serialization

                envs = []
                for proto, idx, model, state in groups:
                    env = FluidEnv(
                        t=t,
                        dt=dt,
                        mss=mss,
                        rtt=rtt[idx],
                        base_rtt=prop[idx] + ack[idx] + serialization[idx],
                        srv=srv[idx],
                    )
                    rate[idx] = model.send_rate(state, env)
                    envs.append(env)

                inflow = (rate + cross) * dt
                raw = queue + inflow - srv * dt
                overflow = np.minimum(
                    np.maximum(raw - buffer_bytes, 0.0), inflow
                )
                queue_next = np.clip(raw, 0.0, buffer_bytes)
                loss_frac = np.where(
                    inflow > 0, overflow / np.maximum(inflow, 1e-12), 0.0
                )

                accepted = rate * (1.0 - loss_frac)
                sent_bytes += rate * dt
                delivered_bytes += accepted * dt
                lost_bytes += rate * loss_frac * dt
                q_mid = 0.5 * (queue + queue_next)
                delay_samples[:, k] = prop + q_mid / srv + serialization
                delay_weights[:, k] = accepted * dt

                # Loss signal with detection latency: a drop at the
                # bottleneck reaches the sender one RTT later (queue
                # drain + dupacks), during which the window keeps
                # growing and overflow keeps accumulating — this is
                # what reproduces the packet engine's overshoot bursts.
                lossy = loss_frac > LOSS_EVENT_THRESHOLD
                arm = (
                    lossy
                    & ~np.isfinite(pending_due)
                    & (t - last_backoff >= rtt)
                )
                pending_due[arm] = t + LOSS_SIGNAL_DELAY_FRACTION * rtt[arm]
                loss_event = t >= pending_due
                last_backoff[loss_event] = t
                pending_due[loss_event] = np.inf

                for (proto, idx, model, state), env in zip(groups, envs):
                    env.sent = rate[idx]
                    env.delivered = accepted[idx]
                    env.loss_frac = loss_frac[idx]
                    env.loss_event = loss_event[idx]
                    model.on_interval(state, env)

                queue = queue_next

            mean_rate = bytes_per_sec_to_mbps(
                delivered_bytes / params.duration
            )
            total_weight = delay_weights.sum(axis=1)
            mean_delay = np.where(
                total_weight > 0,
                (delay_samples * delay_weights).sum(axis=1)
                / np.maximum(total_weight, 1e-12),
                np.nan,
            )
            p95_delay = weighted_p95(delay_samples, delay_weights)
            loss_pct = np.where(
                sent_bytes > 0,
                100.0 * lost_bytes / np.maximum(sent_bytes, 1e-12),
                0.0,
            )

        # Post-loop check: a row whose summary went non-finite despite
        # finite inputs is faulted too (delay NaN from zero delivery is
        # legitimate, so only rate/loss are load-bearing here).
        summary_ok = np.isfinite(mean_rate) & np.isfinite(loss_pct)
        for i in np.nonzero(healthy & ~summary_ok)[0]:
            fault_reason[i] = "non-finite summary"
        healthy = healthy & summary_ok

        elapsed = time.perf_counter() - started
        results = []
        for i in range(n):
            ok = bool(healthy[i])
            results.append(
                ScenarioResult(
                    scenario_id=(
                        params.scenario_ids[i]
                        if params.scenario_ids
                        else f"row-{i}"
                    ),
                    label=params.labels[i] if params.labels else f"row-{i}",
                    protocol=params.protocols[i],
                    seed=int(params.seeds[i]),
                    status="ok" if ok else "faulted",
                    mean_rate_mbps=float(mean_rate[i]) if ok else float("nan"),
                    mean_delay_ms=(
                        float(sec_to_ms(mean_delay[i])) if ok else float("nan")
                    ),
                    p95_delay_ms=(
                        float(sec_to_ms(p95_delay[i])) if ok else float("nan")
                    ),
                    loss_percent=float(loss_pct[i]) if ok else float("nan"),
                    sent_bytes=float(sent_bytes[i]) if ok else float("nan"),
                    delivered_bytes=(
                        float(delivered_bytes[i]) if ok else float("nan")
                    ),
                    fault_reason=fault_reason[i],
                )
            )

        chunk.set("faulted", int((~healthy).sum()))
        chunk.set("elapsed_sec", round(elapsed, 6))
        registry = obs.metrics()
        registry.counter("sweep.scenarios").inc(n)
        if elapsed > 0:
            registry.histogram(
                "sweep.scenarios_per_sec", obs.RATE_BUCKETS
            ).observe(n / elapsed)

    return FleetResult(
        scenarios=results,
        n_intervals=big_t,
        duration=params.duration,
        elapsed_sec=elapsed,
    )


def run_scenarios(scenarios: Sequence[Any]) -> FleetResult:
    """Convenience: pack a ``ScenarioSpec`` list and run it."""
    from repro.sweep.scenario import pack_fleet

    return run_fleet(pack_fleet(scenarios))
