"""Declarative scenario grids for the flow-level sweep engine.

A :class:`ScenarioGrid` is the sweep analogue of a batch of ``simulate``
jobs: a cross product of paths × protocols × seeds, plus the shared
sweep resolution (duration, interval).  Everything is JSON-able and
content-hashed with the same :func:`~repro.runtime.jobs.content_hash`
scheme the rest of the runtime uses, so sweep jobs are idempotent under
resubmission and scenario results are cacheable/joinable by id.

Paths come either from ground-truth parameters (:class:`SweepPath`) or
from a learnt iBoxNet profile via :meth:`SweepPath.from_profile` — the
flow core consumes the same (b, d, B, C) quadruple the emulator sets on
a packet path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.jobs import content_hash

#: Bandwidth kinds the flow core can realise on the interval grid.
BANDWIDTH_KINDS = ("constant", "cellular", "scheduled")

#: Default sweep resolution: 10 ms intervals resolve queue dynamics well
#: below any RTT in the datasets while keeping T small.
DEFAULT_DT = 0.01


@dataclass(frozen=True)
class SweepPath:
    """One path's parameters, as the flow core consumes them.

    ``ct_bin_edges``/``ct_rates_bytes_per_sec`` replay an estimated
    cross-traffic series (the iBoxNet C); ``ct_rate_bytes_per_sec`` is a
    constant open-loop rate (the ground-truth Poisson mean).  Closed-loop
    cross traffic (FlowCT) has no fluid analogue and is not expressible
    here — use the packet engine for those paths.
    """

    bandwidth_bytes_per_sec: float
    propagation_delay: float
    buffer_bytes: float
    bandwidth_kind: str = "constant"
    ct_rate_bytes_per_sec: float = 0.0
    ct_bin_edges: Tuple[float, ...] = ()
    ct_rates_bytes_per_sec: Tuple[float, ...] = ()
    bandwidth_schedule: Optional[Tuple[Tuple[float, ...], Tuple[float, ...]]] = None
    label: str = ""

    def __post_init__(self):
        if self.bandwidth_kind not in BANDWIDTH_KINDS:
            raise ValueError(
                f"bandwidth_kind must be one of {BANDWIDTH_KINDS}, "
                f"got {self.bandwidth_kind!r}"
            )
        if self.bandwidth_kind == "scheduled" and not self.bandwidth_schedule:
            raise ValueError("scheduled bandwidth needs a bandwidth_schedule")
        if len(self.ct_bin_edges) not in (0, len(self.ct_rates_bytes_per_sec) + 1):
            raise ValueError("ct_bin_edges must be one longer than ct rates")

    @classmethod
    def from_profile(cls, profile: Dict[str, Any], label: str = "") -> "SweepPath":
        """Build a sweep path from an iBoxNet profile dict (to_profile)."""
        ct = profile.get("cross_traffic") or {}
        schedule = profile.get("bandwidth_schedule")
        kind = "constant"
        sched_tuple = None
        if schedule:
            kind = "scheduled"
            sched_tuple = (
                tuple(float(t) for t in schedule["times"]),
                tuple(float(r) for r in schedule["rates_bytes_per_sec"]),
            )
        include_ct = bool(profile.get("include_cross_traffic", True))
        return cls(
            bandwidth_bytes_per_sec=float(profile["bandwidth_bytes_per_sec"]),
            propagation_delay=float(profile["propagation_delay_sec"]),
            buffer_bytes=float(profile["buffer_bytes"]),
            bandwidth_kind=kind,
            ct_bin_edges=(
                tuple(float(e) for e in ct.get("bin_edges", ()))
                if include_ct
                else ()
            ),
            ct_rates_bytes_per_sec=(
                tuple(float(r) for r in ct.get("rates_bytes_per_sec", ()))
                if include_ct
                else ()
            ),
            bandwidth_schedule=sched_tuple,
            label=label,
        )

    def to_params(self) -> Dict[str, Any]:
        """JSON-able parameter dict (also the hashed identity)."""
        params: Dict[str, Any] = {
            "bandwidth_bytes_per_sec": self.bandwidth_bytes_per_sec,
            "propagation_delay": self.propagation_delay,
            "buffer_bytes": self.buffer_bytes,
            "bandwidth_kind": self.bandwidth_kind,
            "ct_rate_bytes_per_sec": self.ct_rate_bytes_per_sec,
            "ct_bin_edges": list(self.ct_bin_edges),
            "ct_rates_bytes_per_sec": list(self.ct_rates_bytes_per_sec),
            "label": self.label,
        }
        if self.bandwidth_schedule is not None:
            params["bandwidth_schedule"] = [
                list(self.bandwidth_schedule[0]),
                list(self.bandwidth_schedule[1]),
            ]
        return params

    @classmethod
    def from_params(cls, params: Dict[str, Any]) -> "SweepPath":
        schedule = params.get("bandwidth_schedule")
        return cls(
            bandwidth_bytes_per_sec=float(params["bandwidth_bytes_per_sec"]),
            propagation_delay=float(params["propagation_delay"]),
            buffer_bytes=float(params["buffer_bytes"]),
            bandwidth_kind=params.get("bandwidth_kind", "constant"),
            ct_rate_bytes_per_sec=float(
                params.get("ct_rate_bytes_per_sec", 0.0)
            ),
            ct_bin_edges=tuple(
                float(e) for e in params.get("ct_bin_edges", ())
            ),
            ct_rates_bytes_per_sec=tuple(
                float(r) for r in params.get("ct_rates_bytes_per_sec", ())
            ),
            bandwidth_schedule=(
                (tuple(schedule[0]), tuple(schedule[1]))
                if schedule
                else None
            ),
            label=params.get("label", ""),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One (path, protocol, seed) point of a grid."""

    path: SweepPath
    protocol: str
    seed: int
    duration: float
    dt: float = DEFAULT_DT

    @property
    def scenario_id(self) -> str:
        """Content hash identifying this scenario's exact inputs."""
        return content_hash(
            "sweep.scenario",
            {
                "path": self.path.to_params(),
                "protocol": self.protocol,
                "seed": self.seed,
                "duration": self.duration,
                "dt": self.dt,
            },
        )

    @property
    def label(self) -> str:
        path_label = self.path.label or (
            f"{self.path.bandwidth_bytes_per_sec / 125_000:.0f}mbps"
        )
        return f"{path_label}/{self.protocol}/s{self.seed}"


@dataclass(frozen=True)
class ScenarioGrid:
    """The declarative cross product: paths × protocols × seeds."""

    paths: Tuple[SweepPath, ...]
    protocols: Tuple[str, ...]
    seeds: Tuple[int, ...]
    duration: float
    dt: float = DEFAULT_DT

    def __post_init__(self):
        if not self.paths or not self.protocols or not self.seeds:
            raise ValueError("grid needs at least one path/protocol/seed")
        if self.duration <= 0 or self.dt <= 0:
            raise ValueError("duration and dt must be positive")
        from repro.protocols.fluid import FLUID_MODELS

        unknown = [p for p in self.protocols if p.lower() not in FLUID_MODELS]
        if unknown:
            raise ValueError(
                f"no fluid model for protocol(s) {unknown}; "
                f"available: {', '.join(FLUID_MODELS)}"
            )

    def __len__(self) -> int:
        return len(self.paths) * len(self.protocols) * len(self.seeds)

    def expand(self) -> List[ScenarioSpec]:
        """Materialise the cross product, path-major (cache-friendly)."""
        return [
            ScenarioSpec(
                path=path,
                protocol=protocol.lower(),
                seed=seed,
                duration=self.duration,
                dt=self.dt,
            )
            for path in self.paths
            for protocol in self.protocols
            for seed in self.seeds
        ]

    @property
    def grid_id(self) -> str:
        return content_hash("sweep.grid", self.to_params())

    def to_params(self) -> Dict[str, Any]:
        return {
            "paths": [p.to_params() for p in self.paths],
            "protocols": [p.lower() for p in self.protocols],
            "seeds": [int(s) for s in self.seeds],
            "duration": self.duration,
            "dt": self.dt,
        }

    @classmethod
    def from_params(cls, params: Dict[str, Any]) -> "ScenarioGrid":
        return cls(
            paths=tuple(
                SweepPath.from_params(p) for p in params["paths"]
            ),
            protocols=tuple(params["protocols"]),
            seeds=tuple(int(s) for s in params["seeds"]),
            duration=float(params["duration"]),
            dt=float(params.get("dt", DEFAULT_DT)),
        )


def split_grid(grid: ScenarioGrid, chunk_size: int) -> List[ScenarioGrid]:
    """Split a grid into sub-grids of at most ``chunk_size`` scenarios.

    Splits the protocol axis first (one fluid model per group keeps the
    lockstep dispatch simple), then the seed axis.  Each chunk is itself
    a valid :class:`ScenarioGrid` and therefore a content-hashed,
    resubmittable unit of work.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    chunks: List[ScenarioGrid] = []
    per_proto = len(grid.paths) * len(grid.seeds)
    for protocol in grid.protocols:
        seeds_per_chunk = max(1, chunk_size // max(1, len(grid.paths)))
        if per_proto <= chunk_size:
            seeds_per_chunk = len(grid.seeds)
        for start in range(0, len(grid.seeds), seeds_per_chunk):
            chunks.append(
                ScenarioGrid(
                    paths=grid.paths,
                    protocols=(protocol,),
                    seeds=grid.seeds[start:start + seeds_per_chunk],
                    duration=grid.duration,
                    dt=grid.dt,
                )
            )
    return chunks


# ----------------------------------------------------------------------
# Fleet packing: scenarios -> lockstep arrays
# ----------------------------------------------------------------------
@dataclass
class FleetParams:
    """Scenario parameters packed as ``(n_scenarios, ...)`` arrays.

    This is the flow core's input contract: ``service_rate`` and
    ``cross_rate`` are already realised on the interval grid (cellular
    randomness included), so :func:`repro.sweep.flowsim.run_fleet` is a
    pure deterministic recursion over these arrays.
    """

    dt: float
    duration: float
    service_rate: np.ndarray  # (n, T) bytes/s
    cross_rate: np.ndarray  # (n, T) bytes/s
    prop_delay: np.ndarray  # (n,) forward one-way sec
    ack_delay: np.ndarray  # (n,) reverse one-way sec
    buffer_bytes: np.ndarray  # (n,)
    protocols: List[str]  # per-scenario protocol name
    seeds: np.ndarray  # (n,)
    scenario_ids: List[str] = field(default_factory=list)
    labels: List[str] = field(default_factory=list)

    @property
    def n_scenarios(self) -> int:
        return self.service_rate.shape[0]

    @property
    def n_intervals(self) -> int:
        return self.service_rate.shape[1]


def _step_series_on_grid(
    times: Sequence[float],
    values: Sequence[float],
    grid: np.ndarray,
) -> np.ndarray:
    """Sample a step function (breakpoints, values) on the sweep grid."""
    times_arr = np.asarray(times, dtype=float)
    values_arr = np.asarray(values, dtype=float)
    idx = np.searchsorted(times_arr, grid, side="right") - 1
    idx = np.clip(idx, 0, len(values_arr) - 1)
    return values_arr[idx]


def pack_fleet(scenarios: Sequence[ScenarioSpec]) -> FleetParams:
    """Realise a scenario list into lockstep arrays.

    All scenarios must share (duration, dt) — they advance on one clock.
    Cellular bandwidth is realised through
    :func:`repro.simulation.links.cellular_rate_matrix` with each
    scenario's own seed, so a sweep scenario sees byte-identical
    bandwidth to a packet run over the same (path, seed).
    """
    from repro.simulation.links import cellular_rate_matrix

    if not scenarios:
        raise ValueError("cannot pack an empty scenario list")
    duration = scenarios[0].duration
    dt = scenarios[0].dt
    for spec in scenarios:
        if spec.duration != duration or spec.dt != dt:
            raise ValueError("all scenarios in a fleet share duration and dt")
    n = len(scenarios)
    t_grid = np.arange(int(np.ceil(duration / dt))) * dt
    big_t = len(t_grid)

    service = np.empty((n, big_t))
    cross = np.zeros((n, big_t))
    prop = np.empty(n)
    buffer_bytes = np.empty(n)
    seeds = np.empty(n, dtype=np.int64)

    cellular_rows = [
        i for i, s in enumerate(scenarios)
        if s.path.bandwidth_kind == "cellular"
    ]
    if cellular_rows:
        cell_times, cell_rates = cellular_rate_matrix(
            [scenarios[i].path.bandwidth_bytes_per_sec for i in cellular_rows],
            duration=duration,
            seeds=[scenarios[i].seed for i in cellular_rows],
        )
        # 100 ms realisation grid -> sweep grid (step-function lookup).
        idx = np.clip(
            np.searchsorted(cell_times, t_grid, side="right") - 1,
            0,
            cell_rates.shape[1] - 1,
        )
        service[cellular_rows, :] = cell_rates[:, idx]

    for i, spec in enumerate(scenarios):
        path = spec.path
        prop[i] = path.propagation_delay
        buffer_bytes[i] = path.buffer_bytes
        seeds[i] = spec.seed
        if path.bandwidth_kind == "constant":
            service[i, :] = path.bandwidth_bytes_per_sec
        elif path.bandwidth_kind == "scheduled":
            times, rates = path.bandwidth_schedule
            service[i, :] = _step_series_on_grid(times, rates, t_grid)
        if path.ct_rates_bytes_per_sec:
            cross[i, :] = _step_series_on_grid(
                path.ct_bin_edges[:-1],
                path.ct_rates_bytes_per_sec,
                t_grid,
            )
        elif path.ct_rate_bytes_per_sec:
            cross[i, :] = path.ct_rate_bytes_per_sec

    return FleetParams(
        dt=dt,
        duration=duration,
        service_rate=service,
        cross_rate=cross,
        prop_delay=prop,
        ack_delay=prop.copy(),  # PathConfig defaults reverse = forward
        buffer_bytes=buffer_bytes,
        protocols=[s.protocol for s in scenarios],
        seeds=seeds,
        scenario_ids=[s.scenario_id for s in scenarios],
        labels=[s.label for s in scenarios],
    )
