"""Fidelity harness: measure the flow core against the packet engine.

The sweep engine buys its throughput by approximating; this module makes
the cost of that approximation a *measured* quantity.  It runs the same
(path, protocol, seed) scenarios through both engines and reports
per-metric error:

* ``throughput_rel`` — relative error of mean delivered rate;
* ``mean_delay_rel`` / ``p95_delay_rel`` — relative error of one-way
  delay statistics;
* ``loss_abs`` — absolute error of the loss *fraction* (0..1), because
  relative error explodes when the packet engine sees a handful of
  drops.

``repro sweep validate`` and the tier-1 golden test both go through
:func:`run_fidelity`; the golden grid pins scenarios where the fluid
approximation is expected to hold (constant bandwidth, buffer around
1–2 BDP, multi-second runs) so drift means a real regression, not noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.simulation.topology import (
    CellularBandwidth,
    ConstantBandwidth,
    PathConfig,
    PoissonCT,
    ReplayCT,
    ScheduledBandwidth,
    run_flow,
)
from repro.sweep.flowsim import run_scenarios
from repro.sweep.scenario import ScenarioGrid, ScenarioSpec, SweepPath

_LOG = obs.get_logger("sweep.fidelity")

#: Pinned tolerances for the golden fidelity gate (see ISSUE 6 / tests).
DEFAULT_TOLERANCES: Dict[str, float] = {
    "throughput_rel": 0.15,
    "mean_delay_rel": 0.15,
    "p95_delay_rel": 0.25,
    "loss_abs": 0.02,
}


def path_config_for(path: SweepPath) -> PathConfig:
    """The packet-engine twin of a sweep path."""
    if path.bandwidth_kind == "constant":
        bandwidth = ConstantBandwidth(path.bandwidth_bytes_per_sec)
    elif path.bandwidth_kind == "cellular":
        bandwidth = CellularBandwidth(path.bandwidth_bytes_per_sec)
    else:
        times, rates = path.bandwidth_schedule
        bandwidth = ScheduledBandwidth(tuple(times), tuple(rates))
    cross = []
    if path.ct_rates_bytes_per_sec:
        cross.append(
            ReplayCT(
                bin_edges=tuple(path.ct_bin_edges),
                rates_bytes_per_sec=tuple(path.ct_rates_bytes_per_sec),
            )
        )
    elif path.ct_rate_bytes_per_sec:
        cross.append(PoissonCT(path.ct_rate_bytes_per_sec))
    return PathConfig(
        bandwidth=bandwidth,
        propagation_delay=path.propagation_delay,
        buffer_bytes=path.buffer_bytes,
        cross_traffic=tuple(cross),
    )


def _rel(est: float, ref: float) -> float:
    if not np.isfinite(est) or not np.isfinite(ref):
        return float("inf")
    return abs(est - ref) / max(abs(ref), 1e-9)


@dataclass
class ScenarioComparison:
    """Flow vs packet metrics for one scenario."""

    scenario_id: str
    label: str
    protocol: str
    seed: int
    flow: Dict[str, float]
    packet: Dict[str, float]
    errors: Dict[str, float]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario_id": self.scenario_id,
            "label": self.label,
            "protocol": self.protocol,
            "seed": self.seed,
            "flow": self.flow,
            "packet": self.packet,
            "errors": self.errors,
        }


@dataclass
class FidelityReport:
    """Aggregate fidelity verdict over a scenario set."""

    comparisons: List[ScenarioComparison]
    tolerances: Dict[str, float]
    worst: Dict[str, float] = field(default_factory=dict)
    mean: Dict[str, float] = field(default_factory=dict)
    failures: List[Dict[str, Any]] = field(default_factory=list)

    def __post_init__(self):
        metrics = list(DEFAULT_TOLERANCES)
        for metric in metrics:
            values = [c.errors[metric] for c in self.comparisons]
            self.worst[metric] = max(values) if values else 0.0
            self.mean[metric] = float(np.mean(values)) if values else 0.0
        for comp in self.comparisons:
            for metric, tol in self.tolerances.items():
                if comp.errors.get(metric, 0.0) > tol:
                    self.failures.append(
                        {
                            "scenario_id": comp.scenario_id,
                            "label": comp.label,
                            "metric": metric,
                            "error": comp.errors[metric],
                            "tolerance": tol,
                        }
                    )

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, Any]:
        return {
            "passed": self.passed,
            "tolerances": self.tolerances,
            "worst": self.worst,
            "mean": self.mean,
            "failures": self.failures,
            "n_scenarios": len(self.comparisons),
            "comparisons": [c.to_dict() for c in self.comparisons],
        }

    def format_report(self) -> str:
        lines = [
            f"fidelity: {len(self.comparisons)} scenarios, "
            f"{'PASS' if self.passed else 'FAIL'}",
        ]
        for metric, tol in self.tolerances.items():
            lines.append(
                f"  {metric:<16} worst {self.worst[metric]:.4f} "
                f"mean {self.mean[metric]:.4f} (tol {tol})"
            )
        for failure in self.failures[:10]:
            lines.append(
                f"  FAIL {failure['label']}: {failure['metric']} "
                f"{failure['error']:.4f} > {failure['tolerance']}"
            )
        return "\n".join(lines)


def compare_engines(
    scenarios: Sequence[ScenarioSpec],
    tolerances: Optional[Dict[str, float]] = None,
) -> FidelityReport:
    """Run ``scenarios`` through both engines and diff the summaries."""
    from repro.trace.metrics import summarize

    tolerances = dict(tolerances or DEFAULT_TOLERANCES)
    with obs.span("sweep.fidelity", scenarios=len(scenarios)):
        fleet = run_scenarios(list(scenarios))
        comparisons = []
        for spec, flow_result in zip(scenarios, fleet.scenarios):
            config = path_config_for(spec.path)
            packet_run = run_flow(
                config, spec.protocol, spec.duration, spec.seed
            )
            ref = summarize(packet_run.trace)
            flow = {
                "mean_rate_mbps": flow_result.mean_rate_mbps,
                "mean_delay_ms": flow_result.mean_delay_ms,
                "p95_delay_ms": flow_result.p95_delay_ms,
                "loss_percent": flow_result.loss_percent,
            }
            packet = {
                "mean_rate_mbps": ref.mean_rate_mbps,
                "mean_delay_ms": ref.mean_delay_ms,
                "p95_delay_ms": ref.p95_delay_ms,
                "loss_percent": ref.loss_percent,
            }
            errors = {
                "throughput_rel": _rel(
                    flow["mean_rate_mbps"], packet["mean_rate_mbps"]
                ),
                "mean_delay_rel": _rel(
                    flow["mean_delay_ms"], packet["mean_delay_ms"]
                ),
                "p95_delay_rel": _rel(
                    flow["p95_delay_ms"], packet["p95_delay_ms"]
                ),
                "loss_abs": (
                    abs(flow["loss_percent"] - packet["loss_percent"]) / 100.0
                    if np.isfinite(flow["loss_percent"])
                    and np.isfinite(packet["loss_percent"])
                    else float("inf")
                ),
            }
            comparisons.append(
                ScenarioComparison(
                    scenario_id=spec.scenario_id,
                    label=spec.label,
                    protocol=spec.protocol,
                    seed=spec.seed,
                    flow=flow,
                    packet=packet,
                    errors=errors,
                )
            )
    report = FidelityReport(comparisons=comparisons, tolerances=tolerances)
    _LOG.info(
        "sweep.fidelity_done",
        scenarios=len(comparisons),
        passed=report.passed,
        worst=report.worst,
    )
    return report


def golden_grid(duration: float = 8.0) -> ScenarioGrid:
    """The pinned scenario set for the tier-1 fidelity gate.

    Chosen where the fluid approximation is *expected* to be good:
    constant bandwidth, buffers near 1–2 BDP, window protocols that
    reach steady state within the window.  Regressions here mean the
    recursion changed, not that the approximation got unlucky.
    """
    mbps = 125_000.0  # bytes/s per Mb/s
    paths = (
        SweepPath(
            bandwidth_bytes_per_sec=10 * mbps,
            propagation_delay=0.025,
            buffer_bytes=2 * 10 * mbps * 0.05,  # 2 BDP at 50 ms RTT
            label="10mbps-50ms-2bdp",
        ),
        SweepPath(
            bandwidth_bytes_per_sec=4 * mbps,
            propagation_delay=0.04,
            buffer_bytes=1 * 4 * mbps * 0.08,  # 1 BDP at 80 ms RTT
            label="4mbps-80ms-1bdp",
        ),
    )
    return ScenarioGrid(
        paths=paths,
        protocols=("cubic", "reno"),
        seeds=(1, 2),
        duration=duration,
    )


def run_fidelity(
    grid: Optional[ScenarioGrid] = None,
    tolerances: Optional[Dict[str, float]] = None,
) -> FidelityReport:
    """Validate the flow core against the packet engine on ``grid``
    (default: the golden grid)."""
    grid = grid or golden_grid()
    return compare_engines(grid.expand(), tolerances=tolerances)
