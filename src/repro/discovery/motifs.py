"""Motif mining over SAX symbol strings (Lin et al. 2002 flavour).

Fig. 8's analysis needs three operations:

* **pattern frequencies** — how often each length-n subsequence occurs
  (as a fraction of all positions);
* **top motifs** — the most frequent patterns at a given length;
* **pattern diff** — the set comparison between ground-truth and simulator
  pattern inventories: patterns unique to the ground truth are the
  behaviours the simulator is missing (pattern 'a' — reordering — in the
  paper), patterns unique to the simulator are artefacts, and the
  intersection should preserve frequencies.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple


def pattern_frequencies(
    symbols: str, length: int = 1
) -> Dict[str, float]:
    """Relative frequency of each length-``length`` substring."""
    if length < 1:
        raise ValueError("length must be >= 1")
    n = len(symbols) - length + 1
    if n <= 0:
        return {}
    counts = Counter(symbols[i : i + length] for i in range(n))
    return {pattern: count / n for pattern, count in counts.items()}


def aggregate_frequencies(
    symbol_strings: Iterable[str], length: int = 1
) -> Dict[str, float]:
    """Position-weighted pattern frequencies over several strings."""
    counts: Counter = Counter()
    total = 0
    for symbols in symbol_strings:
        n = len(symbols) - length + 1
        if n <= 0:
            continue
        counts.update(symbols[i : i + length] for i in range(n))
        total += n
    if total == 0:
        return {}
    return {pattern: count / total for pattern, count in counts.items()}


def top_motifs(
    symbols: str, length: int, k: int = 10
) -> List[Tuple[str, float]]:
    """The ``k`` most frequent length-``length`` patterns."""
    freqs = pattern_frequencies(symbols, length)
    return sorted(freqs.items(), key=lambda kv: -kv[1])[:k]


@dataclass
class PatternDiff:
    """The Fig. 8(a) Venn decomposition of two pattern inventories."""

    only_ground_truth: Dict[str, float] = field(default_factory=dict)
    only_simulated: Dict[str, float] = field(default_factory=dict)
    shared: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    @property
    def missing_behaviours(self) -> List[str]:
        """Patterns the simulator fails to produce, most frequent first."""
        return sorted(
            self.only_ground_truth, key=lambda p: -self.only_ground_truth[p]
        )

    def format_table(self) -> str:
        """Fig. 8(b)-style table: pattern, GT freq, simulated freq."""
        lines = [f"{'pattern':>8s} {'ground truth':>13s} {'simulated':>10s}"]
        rows = []
        for p, f in self.only_ground_truth.items():
            rows.append((p, f, 0.0))
        for p, (fg, fs) in self.shared.items():
            rows.append((p, fg, fs))
        for p, f in self.only_simulated.items():
            rows.append((p, 0.0, f))
        rows.sort(key=lambda r: -max(r[1], r[2]))
        for pattern, f_gt, f_sim in rows:
            lines.append(
                f"{pattern:>8s} {100 * f_gt:>12.2f}% {100 * f_sim:>9.2f}%"
            )
        return "\n".join(lines)


def diff_patterns(
    ground_truth: Sequence[str],
    simulated: Sequence[str],
    length: int = 1,
    min_frequency: float = 1e-4,
) -> PatternDiff:
    """Diff pattern inventories of GT vs simulated symbol strings.

    Patterns below ``min_frequency`` on both sides are ignored (noise
    floor); a pattern counts as "present" on a side when it clears the
    floor there.
    """
    gt_freqs = aggregate_frequencies(ground_truth, length)
    sim_freqs = aggregate_frequencies(simulated, length)
    diff = PatternDiff()
    all_patterns = set(gt_freqs) | set(sim_freqs)
    for pattern in sorted(all_patterns):
        f_gt = gt_freqs.get(pattern, 0.0)
        f_sim = sim_freqs.get(pattern, 0.0)
        in_gt = f_gt >= min_frequency
        in_sim = f_sim >= min_frequency
        if in_gt and in_sim:
            diff.shared[pattern] = (f_gt, f_sim)
        elif in_gt:
            diff.only_ground_truth[pattern] = f_gt
        elif in_sim:
            diff.only_simulated[pattern] = f_sim
    return diff
