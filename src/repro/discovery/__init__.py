"""Behaviour discovery: SAX discretization + motif mining (§5.1).

The discovery loop: transform traces (e.g. inter-packet arrival deltas),
discretize with SAX into symbol strings, mine frequent patterns (motifs),
and *diff* the pattern sets of real vs simulated traces.  Behaviours
present in reality but absent in the simulator — packet reordering, in the
paper's Fig. 8 — surface as patterns unique to the ground-truth side.
"""

from repro.discovery.sax import (
    SAXConfig,
    gaussian_breakpoints,
    paa,
    sax_symbols,
    sax_inter_arrival,
)
from repro.discovery.motifs import (
    PatternDiff,
    diff_patterns,
    pattern_frequencies,
    top_motifs,
)

__all__ = [
    "PatternDiff",
    "SAXConfig",
    "diff_patterns",
    "gaussian_breakpoints",
    "paa",
    "pattern_frequencies",
    "sax_inter_arrival",
    "sax_symbols",
    "top_motifs",
]
