"""SAX: Symbolic Aggregate approXimation (Lin et al. 2003).

Classic SAX z-normalises a series, optionally reduces it with Piecewise
Aggregate Approximation (PAA), and discretizes into an alphabet using
equiprobable Gaussian breakpoints.

The paper's Fig. 8 uses a networking-specific variant on inter-packet
arrival deltas: symbol **'a' is reserved for negative values** (reordering
events) and the remaining symbols 'b'..'f' split the positive mass into
equiprobable bins — :func:`sax_inter_arrival` implements exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.trace.features import arrival_order_deltas
from repro.trace.records import Trace

ALPHABET = "abcdefghijklmnopqrstuvwxyz"


@dataclass(frozen=True)
class SAXConfig:
    """Knobs for classic SAX."""

    alphabet_size: int = 6
    paa_segments: int = 0  # 0 disables PAA (per-sample symbols)

    def __post_init__(self):
        if not 2 <= self.alphabet_size <= len(ALPHABET):
            raise ValueError(
                f"alphabet_size must be in [2, {len(ALPHABET)}]"
            )


def gaussian_breakpoints(alphabet_size: int) -> np.ndarray:
    """The ``alphabet_size - 1`` breakpoints that split N(0,1) into
    equiprobable regions."""
    if alphabet_size < 2:
        raise ValueError("alphabet_size must be >= 2")
    quantiles = np.arange(1, alphabet_size) / alphabet_size
    return scipy_stats.norm.ppf(quantiles)


def paa(series: np.ndarray, segments: int) -> np.ndarray:
    """Piecewise Aggregate Approximation: mean of each of ``segments``
    equal-width chunks (handles non-divisible lengths by fractional
    weighting)."""
    series = np.asarray(series, dtype=float)
    n = len(series)
    if segments <= 0:
        raise ValueError("segments must be positive")
    if n == 0:
        return np.zeros(0)
    if segments >= n:
        return series.copy()
    if n % segments == 0:
        return series.reshape(segments, n // segments).mean(axis=1)
    # Fractional PAA: distribute each sample across overlapping segments.
    out = np.zeros(segments)
    weights = np.zeros(segments)
    positions = np.arange(n) * segments / n
    for i, pos in enumerate(positions):
        lo = int(pos)
        hi = min(int(pos + segments / n), segments - 1)
        for seg in range(lo, hi + 1):
            out[seg] += series[i]
            weights[seg] += 1.0
    weights = np.maximum(weights, 1.0)
    return out / weights


def sax_symbols(series: np.ndarray, config: SAXConfig = SAXConfig()) -> str:
    """Classic SAX: z-norm -> (PAA) -> Gaussian-breakpoint symbols."""
    series = np.asarray(series, dtype=float)
    series = series[~np.isnan(series)]
    if len(series) == 0:
        return ""
    std = series.std()
    normed = (series - series.mean()) / std if std > 1e-12 else np.zeros_like(series)
    if config.paa_segments > 0:
        normed = paa(normed, config.paa_segments)
    breakpoints = gaussian_breakpoints(config.alphabet_size)
    indices = np.searchsorted(breakpoints, normed)
    return "".join(ALPHABET[i] for i in indices)


def sax_inter_arrival(
    trace_or_deltas,
    alphabet_size: int = 6,
    breakpoints: np.ndarray = None,
) -> str:
    """The paper's Fig. 8 discretization of inter-packet arrival deltas.

    Symbol 'a' denotes **negative** deltas (reordering events); 'b'..'f'
    (for the default size-6 alphabet) split the positive deltas into
    equiprobable quantile bins computed from the data itself (pass
    ``breakpoints`` — positive-value bin edges — to reuse a reference
    discretization across traces, which Fig. 8 needs when comparing GT and
    simulated traces on a common alphabet).
    """
    if isinstance(trace_or_deltas, Trace):
        deltas = arrival_order_deltas(trace_or_deltas)
    else:
        deltas = np.asarray(trace_or_deltas, dtype=float)
    deltas = deltas[~np.isnan(deltas)]
    if len(deltas) == 0:
        return ""
    if breakpoints is None:
        breakpoints = positive_delta_breakpoints(deltas, alphabet_size)
    indices = np.searchsorted(breakpoints, deltas, side="right")
    symbols = np.where(deltas < 0, 0, indices + 1)
    symbols = np.minimum(symbols, alphabet_size - 1)
    return "".join(ALPHABET[int(i)] for i in symbols)


def positive_delta_breakpoints(
    deltas: np.ndarray, alphabet_size: int = 6
) -> np.ndarray:
    """Quantile breakpoints over the positive deltas for symbols 'b'..'f'.

    Returns ``alphabet_size - 2`` increasing edges; values below the first
    edge map to 'b', above the last to the final symbol.
    """
    deltas = np.asarray(deltas, dtype=float)
    positive = deltas[deltas >= 0]
    n_bins = alphabet_size - 1  # symbols b..f
    if len(positive) == 0:
        return np.zeros(n_bins - 1)
    quantiles = np.arange(1, n_bins) / n_bins
    return np.quantile(positive, quantiles)
