"""Numerical training guards: NaN/Inf detection and best-so-far rollback.

Training an LSTM on raw path traces is exactly where RBU
(arXiv:2202.13870) reports instability: one NaN burst in the features,
one exploding batch, and every parameter is garbage from that step on —
but the fit still "succeeds" and returns a diverged model.

:class:`DivergenceGuard` wraps a training loop with three defenses:

* **step veto** — an update whose loss is non-finite or whose (pre-clip)
  gradient norm exceeds ``max_grad_norm`` is skipped entirely
  (``guard.skipped_updates``), so poisoned gradients never reach the
  optimizer;
* **best-so-far snapshots** — parameters are checkpointed (in memory)
  whenever an epoch improves on the best finite loss seen;
* **final rollback** — if training ends diverged (non-finite final loss,
  or worse than ``rollback_tolerance ×`` the best epoch), the best
  snapshot is restored (``guard.divergence_rollbacks``) so callers get
  the best finite model instead of the last one.

The guard is deliberately loop-shaped rather than model-shaped: anything
exposing ``state_dict()`` / ``load_state_dict()`` can be guarded.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro import obs

_log = obs.get_logger("repro.guard")


class DivergenceGuard:
    """Watchdog for one training run of a ``Module``-like model."""

    def __init__(
        self,
        model,
        max_grad_norm: float = 1e4,
        rollback_tolerance: float = 2.0,
        label: str = "train",
    ):
        self.model = model
        self.max_grad_norm = max_grad_norm
        self.rollback_tolerance = rollback_tolerance
        self.label = label
        self.skipped_updates = 0
        self.rolled_back = False
        self.best_loss = math.inf
        # The pre-training state is the floor: a run that never produces
        # a finite epoch still rolls back to sane initial parameters.
        self._best_state = self._snapshot()

    # ------------------------------------------------------------------
    # Per-batch: veto poisoned updates
    # ------------------------------------------------------------------
    def allow_update(self, loss: float, grad_norm: float) -> bool:
        """True if this batch's optimizer step may proceed."""
        healthy = (
            math.isfinite(loss)
            and math.isfinite(grad_norm)
            and grad_norm <= self.max_grad_norm
        )
        if not healthy:
            self.skipped_updates += 1
            obs.metrics().counter("guard.skipped_updates").inc()
            _log.warning(
                "guard.update_skipped",
                label=self.label,
                loss=float(loss) if math.isfinite(loss) else str(loss),
                grad_norm=(
                    float(grad_norm)
                    if math.isfinite(grad_norm)
                    else str(grad_norm)
                ),
            )
        return healthy

    # ------------------------------------------------------------------
    # Per-epoch: track the best finite parameters
    # ------------------------------------------------------------------
    def note_epoch(self, mean_loss: float) -> None:
        if math.isfinite(mean_loss) and mean_loss < self.best_loss:
            self.best_loss = mean_loss
            self._best_state = self._snapshot()

    # ------------------------------------------------------------------
    # End of training: roll back if the run diverged
    # ------------------------------------------------------------------
    def finalize(self, final_loss: float) -> bool:
        """Restore the best snapshot if the run ended diverged.

        Returns True when a rollback happened.  "Diverged" means the
        final epoch loss is non-finite, the parameters contain
        non-finite values, or the loss regressed past
        ``rollback_tolerance ×`` the best epoch (sign-aware: NLL losses
        are frequently negative).
        """
        diverged = not math.isfinite(final_loss) or not self._params_finite()
        if not diverged and math.isfinite(self.best_loss):
            # Tolerance band above the best loss, scaled by its
            # magnitude so negative NLLs are handled symmetrically.
            span = (self.rollback_tolerance - 1.0) * max(
                abs(self.best_loss), 1.0
            )
            diverged = final_loss > self.best_loss + span
        if not diverged:
            return False
        self.model.load_state_dict(self._best_state)
        self.rolled_back = True
        obs.metrics().counter("guard.divergence_rollbacks").inc()
        _log.warning(
            "guard.divergence_rollback",
            label=self.label,
            final_loss=(
                float(final_loss)
                if math.isfinite(final_loss)
                else str(final_loss)
            ),
            best_loss=(
                float(self.best_loss)
                if math.isfinite(self.best_loss)
                else str(self.best_loss)
            ),
            skipped_updates=self.skipped_updates,
        )
        return True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _snapshot(self) -> Dict[str, np.ndarray]:
        return {
            name: value.copy()
            for name, value in self.model.state_dict().items()
        }

    def _params_finite(self) -> bool:
        return all(
            np.all(np.isfinite(p.value)) for p in self.model.parameters()
        )


def sanitize_training_arrays(
    features: np.ndarray,
    targets: np.ndarray,
    mask: Optional[np.ndarray] = None,
):
    """Mask out rows with non-finite features or targets.

    Returns ``(features, targets, mask, n_bad)``: bad rows are excluded
    from the mask and their values zeroed so scaler statistics and
    padded batches stay finite.  Counts ``guard.nonfinite_inputs``.
    """
    finite_rows = np.isfinite(features).all(axis=1) & np.isfinite(targets)
    if mask is None:
        mask = np.ones(len(targets), dtype=bool)
    n_bad = int((~finite_rows & mask).sum())
    if n_bad == 0 and bool(finite_rows.all()):
        return features, targets, mask, 0
    features = np.where(finite_rows[:, None], features, 0.0)
    targets = np.where(finite_rows, targets, 0.0)
    mask = mask & finite_rows
    if n_bad:
        obs.metrics().counter("guard.nonfinite_inputs").inc(n_bad)
        _log.warning("guard.nonfinite_inputs", rows=n_bad)
    return features, targets, mask, n_bad
