"""Seeded network-chaos proxy: a lossy wire between client and daemon.

:class:`NetChaosProxy` sits between a transport client and a serve
daemon (or fleet router) and injects faults *at frame granularity* —
the same framed-JSONL units the real protocol speaks (DESIGN.md §14).
Per forwarded frame it may, with seeded probabilities:

* **drop** the frame (peer never sees it; the sender's read times out);
* **duplicate** it (the daemon must answer ``duplicate``, not re-run);
* **delay** it (and everything behind it on that direction);
* **truncate** it — forward a torn prefix, then sever the connection
  (the receiver sees a partial frame followed by EOF);
* **sever** the connection outright, mid-protocol.

Faults are deterministic per ``(seed, connection index, direction)``,
so a chaos campaign that fails replays byte-identically from its seed.
The proxy relays between any two endpoints (``unix:`` / ``tcp:``), so
the same campaign proves both transports.

Usage::

    from repro.guard.netchaos import NetChaosConfig, NetChaosProxy

    proxy = NetChaosProxy(
        "tcp:127.0.0.1:0",              # listen (0 = ephemeral)
        "unix:/tmp/state/serve.sock",   # upstream daemon
        NetChaosConfig(seed=7, drop_prob=0.1, sever_prob=0.05),
    )
    front = proxy.start()               # the bound Endpoint clients dial
    try:
        ...  # point a ResilientClient at front
    finally:
        proxy.stop()
    print(proxy.stats())                # injected-fault accounting
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.obs import get_logger, metrics
from repro.serve.transport import Endpoint, EndpointLike, FrameAssembler, parse_endpoint

log = get_logger("repro.guard.netchaos")

#: The proxy never rejects frames itself — it forwards anything the
#: endpoints would accept, so its reassembly cap just needs headroom.
_PROXY_MAX_FRAME = 8 * 1024 * 1024
_CHUNK = 65536


@dataclass
class NetChaosConfig:
    """Fault mix for one proxy.  All probabilities are per frame."""

    seed: int = 0
    drop_prob: float = 0.0
    dup_prob: float = 0.0
    delay_prob: float = 0.0
    delay_sec: float = 0.05
    truncate_prob: float = 0.0
    sever_prob: float = 0.0
    #: Which direction(s) suffer faults: ``request`` (client→upstream),
    #: ``response`` (upstream→client), or ``both``.
    direction: str = "both"

    def __post_init__(self) -> None:
        if self.direction not in ("request", "response", "both"):
            raise ValueError(f"bad direction: {self.direction!r}")


class NetChaosProxy:
    """Threaded frame-level fault injector between two endpoints."""

    def __init__(
        self,
        listen: EndpointLike,
        upstream: EndpointLike,
        config: Optional[NetChaosConfig] = None,
    ):
        self.listen_endpoint = parse_endpoint(listen)
        self.upstream = parse_endpoint(upstream)
        self.config = config or NetChaosConfig()
        self.bound: Optional[Endpoint] = None
        self._server: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._conn_counter = 0
        self._lock = threading.Lock()
        self._stats: Dict[str, int] = {
            "connections": 0,
            "frames": 0,
            "dropped": 0,
            "duplicated": 0,
            "delayed": 0,
            "truncated": 0,
            "severed": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Endpoint:
        """Bind the listen endpoint; returns the endpoint clients dial."""
        from repro.serve.transport import bound_endpoint

        self._server = self.listen_endpoint.listen(backlog=16)
        self._server.settimeout(0.2)
        self.bound = bound_endpoint(self._server, self.listen_endpoint)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="netchaos-accept", daemon=True
        )
        self._accept_thread.start()
        log.info(
            "netchaos.started",
            listen=self.bound.describe(),
            upstream=self.upstream.describe(),
            seed=self.config.seed,
        )
        return self.bound

    def stop(self) -> None:
        self._stop.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:  # pragma: no cover
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        self.listen_endpoint.cleanup()
        log.info("netchaos.stopped", **self.stats())

    def __enter__(self) -> "NetChaosProxy":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._stats)

    def _count(self, key: str, n: int = 1) -> None:
        with self._lock:
            self._stats[key] += n
        metrics().counter(f"chaos.net.{key}").inc(n)

    # ------------------------------------------------------------------
    # Relay
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                self._conn_counter += 1
                index = self._conn_counter
                self._stats["connections"] += 1
            metrics().counter("chaos.net.connections").inc()
            threading.Thread(
                target=self._handle,
                args=(conn, index),
                name=f"netchaos-conn-{index}",
                daemon=True,
            ).start()

    def _handle(self, client: socket.socket, index: int) -> None:
        try:
            server = self.upstream.connect(timeout=5.0)
        except OSError:
            _close(client)
            return
        severed = threading.Event()
        faulty = self.config.direction
        pumps = [
            threading.Thread(
                target=self._pump,
                args=(client, server, index, "request", severed,
                      faulty in ("request", "both")),
                daemon=True,
            ),
            threading.Thread(
                target=self._pump,
                args=(server, client, index, "response", severed,
                      faulty in ("response", "both")),
                daemon=True,
            ),
        ]
        for pump in pumps:
            pump.start()
        for pump in pumps:
            pump.join()
        _close(client)
        _close(server)

    def _pump(
        self,
        src: socket.socket,
        dst: socket.socket,
        index: int,
        direction: str,
        severed: threading.Event,
        inject: bool,
    ) -> None:
        """Relay one direction frame-by-frame, injecting faults."""
        rng = random.Random(f"{self.config.seed}:{index}:{direction}")
        assembler = FrameAssembler(max_bytes=_PROXY_MAX_FRAME)
        try:
            src.settimeout(0.2)
        except OSError:  # the other pump already severed this connection
            return
        while not (self._stop.is_set() or severed.is_set()):
            try:
                data = src.recv(_CHUNK)
            except socket.timeout:
                continue
            except OSError:
                break
            if not data:
                break
            for kind, payload in assembler.feed(data):
                if kind != "frame":  # pragma: no cover - headroom cap
                    continue
                if not self._forward(dst, payload, rng, severed, inject):
                    return
        # EOF (or sever): propagate the close downstream so the peer
        # sees it instead of hanging on a half-open connection.
        _shutdown(dst)

    def _forward(
        self,
        dst: socket.socket,
        frame: bytes,
        rng: random.Random,
        severed: threading.Event,
        inject: bool = True,
    ) -> bool:
        """Apply at most one fault, then forward.  False = stop pumping."""
        self._count("frames")
        config = self.config
        if not inject:  # this direction is configured fault-free
            try:
                dst.sendall(frame + b"\n")
            except OSError:
                return False
            return True
        roll = rng.random()
        if roll < config.sever_prob:
            self._count("severed")
            severed.set()
            _shutdown(dst)
            return False
        roll -= config.sever_prob
        if roll < config.truncate_prob:
            # A torn prefix with no newline delimiter, then a hard close:
            # the receiver sees a partial frame followed by EOF.
            self._count("truncated")
            severed.set()
            try:
                dst.sendall(frame[: max(1, len(frame) // 2)])
            except OSError:
                pass
            _shutdown(dst)
            return False
        roll -= config.truncate_prob
        if roll < config.drop_prob:
            self._count("dropped")
            return True
        roll -= config.drop_prob
        if roll < config.delay_prob:
            self._count("delayed")
            time.sleep(config.delay_sec)
        roll -= config.delay_prob
        copies = 1
        if roll < config.dup_prob:
            self._count("duplicated")
            copies = 2
        try:
            for _ in range(copies):
                # The assembler strips the delimiter; restore it on the
                # wire or the peer waits forever for an unfinished frame.
                dst.sendall(frame + b"\n")
        except OSError:
            return False
        return True


def _close(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:  # pragma: no cover
        pass


def _shutdown(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    _close(sock)
