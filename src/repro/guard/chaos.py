"""Deterministic, seeded fault injection (the chaos half of repro.guard).

Every injector is a pure function of its inputs and a seed, so a fault
campaign is *replayable*: ``repro chaos --seed 7`` corrupts the same
bytes of the same traces every time, which is what lets CI assert that
the guards recover rather than merely hoping they do.

Three fault surfaces, mirroring where production runs actually break:

* **record faults** (:data:`TRACE_FAULTS`) — semantic corruption of an
  in-memory trace: duplicate transmission uids, clock skew (deliveries
  before sends), timestamp reordering, NaN bursts, size corruption;
* **file faults** (:data:`FILE_FAULTS`) — byte-level damage to a saved
  trace: truncation mid-line, garbage lines, type-corrupted fields;
* **runtime faults** (:func:`chaos_worker`, :func:`tear_cache_entry`) —
  executor-level injected worker crashes, process kills, hangs that
  trip the timeout, and torn cache writes.

:func:`run_campaign` wires all three through the real batch pipeline
and checks the guard invariants; the ``repro chaos`` CLI is a thin
wrapper around it.
"""

from __future__ import annotations

import json
import math
import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro import obs
from repro.runtime.jobs import JobSpec
from repro.trace.records import PacketRecord, Trace

_log = obs.get_logger("repro.guard")


def _note_injection(surface: str, fault: str, target: str) -> None:
    obs.metrics().counter("chaos.injected").inc()
    _log.info("chaos.injected", surface=surface, fault=fault, target=target)


def _clone(trace: Trace, records: List[PacketRecord]) -> Trace:
    return Trace(
        trace.flow_id,
        records,
        duration=trace.duration,
        protocol=trace.protocol,
        metadata=dict(trace.metadata),
    )


def _copy_record(r: PacketRecord, **overrides) -> PacketRecord:
    fields = {
        "uid": r.uid,
        "seq": r.seq,
        "size": r.size,
        "sent_at": r.sent_at,
        "delivered_at": r.delivered_at,
        "is_retransmit": r.is_retransmit,
    }
    fields.update(overrides)
    return PacketRecord(**fields)


# ----------------------------------------------------------------------
# Record-level faults: Trace -> corrupted Trace
# ----------------------------------------------------------------------
def fault_duplicate_uids(trace: Trace, rng: random.Random) -> Trace:
    """Give ~2% of records (at least 2) another record's uid."""
    records = [_copy_record(r) for r in trace.records]
    n = len(records)
    if n < 2:
        return _clone(trace, records)
    k = max(2, n // 50)
    for idx in rng.sample(range(1, n), min(k, n - 1)):
        donor = rng.randrange(0, idx)
        records[idx] = _copy_record(records[idx], uid=records[donor].uid)
    return _clone(trace, records)


def fault_clock_skew(trace: Trace, rng: random.Random) -> Trace:
    """A receiver-clock step: one window's deliveries precede their sends."""
    records = [_copy_record(r) for r in trace.records]
    n = len(records)
    if n == 0:
        return _clone(trace, records)
    start = rng.randrange(0, max(1, n - n // 10))
    skew = 0.005 + rng.random() * 0.05
    for idx in range(start, min(n, start + max(1, n // 10))):
        r = records[idx]
        if not math.isnan(r.delivered_at):
            records[idx] = _copy_record(r, delivered_at=r.sent_at - skew)
    return _clone(trace, records)


def fault_reorder_timestamps(trace: Trace, rng: random.Random) -> Trace:
    """Swap send timestamps between random pairs (logger race condition)."""
    records = [_copy_record(r) for r in trace.records]
    n = len(records)
    for _ in range(max(1, n // 40)):
        if n < 2:
            break
        i, j = rng.sample(range(n), 2)
        records[i], records[j] = (
            _copy_record(records[i], sent_at=records[j].sent_at),
            _copy_record(records[j], sent_at=records[i].sent_at),
        )
    return _clone(trace, records)


def fault_nan_burst(trace: Trace, rng: random.Random) -> Trace:
    """A capture hiccup: a contiguous burst of NaN send timestamps."""
    records = [_copy_record(r) for r in trace.records]
    n = len(records)
    if n == 0:
        return _clone(trace, records)
    start = rng.randrange(0, n)
    for idx in range(start, min(n, start + max(1, n // 20))):
        records[idx] = _copy_record(records[idx], sent_at=math.nan)
    return _clone(trace, records)


def fault_bad_sizes(trace: Trace, rng: random.Random) -> Trace:
    """Corrupt ~2% of packet sizes to zero or negative values."""
    records = [_copy_record(r) for r in trace.records]
    n = len(records)
    for idx in rng.sample(range(n), min(max(1, n // 50), n)):
        records[idx] = _copy_record(
            records[idx], size=rng.choice([0, -records[idx].size or -1])
        )
    return _clone(trace, records)


TRACE_FAULTS: Dict[str, Callable[[Trace, random.Random], Trace]] = {
    "duplicate_uids": fault_duplicate_uids,
    "clock_skew": fault_clock_skew,
    "reorder": fault_reorder_timestamps,
    "nan_burst": fault_nan_burst,
    "bad_sizes": fault_bad_sizes,
}


def inject_trace_fault(name: str, trace: Trace, seed: int) -> Trace:
    """Apply one named record fault deterministically under ``seed``."""
    corrupted = TRACE_FAULTS[name](trace, random.Random(seed))
    _note_injection("trace", name, trace.flow_id)
    return corrupted


# ----------------------------------------------------------------------
# File-level faults: path -> damaged bytes on disk
# ----------------------------------------------------------------------
def fault_truncate_file(path: Path, rng: random.Random) -> None:
    """Cut the file at ~60% — mid-record for JSONL, fatal for NPZ."""
    data = path.read_bytes()
    cut = max(1, int(len(data) * 0.6))
    path.write_bytes(data[:cut])


def fault_garbage_line(path: Path, rng: random.Random) -> None:
    """Replace one record line with non-JSON garbage (JSONL only)."""
    lines = path.read_text().splitlines()
    if len(lines) > 1:
        idx = rng.randrange(1, len(lines))  # never the header
        lines[idx] = '{"uid": 3, "seq": '  # torn write
    path.write_text("\n".join(lines) + "\n")


def fault_corrupt_field(path: Path, rng: random.Random) -> None:
    """Type-corrupt one record's fields (valid JSON, wrong schema)."""
    lines = path.read_text().splitlines()
    if len(lines) > 1:
        idx = rng.randrange(1, len(lines))
        lines[idx] = '{"uid": "??", "seq": null}'  # missing keys too
    path.write_text("\n".join(lines) + "\n")


FILE_FAULTS: Dict[str, Callable[[Path, random.Random], None]] = {
    "truncate": fault_truncate_file,
    "garbage_line": fault_garbage_line,
    "corrupt_field": fault_corrupt_field,
}


def inject_file_fault(name: str, path, seed: int) -> None:
    """Apply one named byte-level fault deterministically under ``seed``."""
    path = Path(path)
    FILE_FAULTS[name](path, random.Random(seed))
    _note_injection("file", name, str(path))


# ----------------------------------------------------------------------
# Runtime faults
# ----------------------------------------------------------------------
def chaos_worker(spec: JobSpec):
    """Executor drill worker: misbehaves per ``spec.params['fault']``.

    Module-level so it pickles into pool workers.  ``kill`` refuses to
    run outside a child process — killing the orchestrating process is
    the one fault nothing could recover from.
    """
    fault = spec.params.get("fault")
    if fault == "crash":
        raise RuntimeError("chaos: injected worker crash")
    if fault == "kill":
        import multiprocessing

        if multiprocessing.parent_process() is not None:
            os._exit(13)  # simulates OOM-kill / segfault
        raise RuntimeError("chaos: refusing os._exit outside a pool worker")
    if fault == "hang":
        time.sleep(float(spec.params.get("hang_sec", 30.0)))
        return {"fault": "hang", "survived": True}
    if fault == "sleep":
        # A well-behaved slow job: the service campaign uses these so a
        # SIGKILL reliably lands while leases are in flight.
        time.sleep(float(spec.params.get("sleep_sec", 0.5)))
        return {"fault": "sleep", "ok": True}
    return {"fault": None, "ok": True}


def make_chaos_job(
    fault: Optional[str],
    timeout_sec: Optional[float] = None,
    **params,
) -> JobSpec:
    """A drill spec for :func:`chaos_worker` (content-hashed like any job)."""
    from repro.runtime.jobs import content_hash

    all_params = {"fault": fault, **params}
    return JobSpec(
        kind="chaos",
        job_id=content_hash("chaos", all_params),
        label=f"chaos:{fault or 'normal'}",
        params=all_params,
        timeout_sec=timeout_sec,
    )


def tear_cache_entry(cache, key: str, keep_fraction: float = 0.5) -> Path:
    """Simulate a torn write: truncate a cache entry's JSON mid-file."""
    path = cache.path_for(key)
    data = path.read_text()
    path.write_text(data[: max(1, int(len(data) * keep_fraction))])
    _note_injection("cache", "torn_write", str(path))
    return path


# ----------------------------------------------------------------------
# The campaign: every surface through the real pipeline
# ----------------------------------------------------------------------
@dataclass
class ChaosReport:
    """Outcome of one seeded campaign; ``ok`` iff every guard held."""

    seed: int
    policy: str
    injected: List[dict] = field(default_factory=list)
    batch_statuses: Dict[str, str] = field(default_factory=dict)
    drill_statuses: Dict[str, str] = field(default_factory=dict)
    manifest_path: Optional[Path] = None
    quarantined: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def format_report(self) -> str:
        lines = [
            f"chaos campaign: seed={self.seed} policy={self.policy} "
            f"faults={len(self.injected)}"
        ]
        for inj in self.injected:
            lines.append(
                f"  injected {inj['surface']:<6} {inj['fault']:<14} "
                f"-> {inj['target']}"
            )
        for label, status in sorted(self.batch_statuses.items()):
            lines.append(f"  batch  {status:<6} {label}")
        for label, status in sorted(self.drill_statuses.items()):
            lines.append(f"  drill  {status:<6} {label}")
        lines.append(f"  cache quarantined entries: {self.quarantined}")
        if self.manifest_path:
            lines.append(f"  manifest: {self.manifest_path}")
        if self.violations:
            lines.append("GUARD VIOLATIONS:")
            lines.extend(f"  !! {v}" for v in self.violations)
        else:
            lines.append("all guards held: every fault isolated or repaired")
        return "\n".join(lines)


def run_campaign(
    workdir,
    seed: int = 7,
    policy: str = "repair",
    workers: int = 2,
    duration: float = 3.0,
    trace_faults: Optional[List[str]] = None,
    file_faults: Optional[List[str]] = None,
    runtime_faults: Optional[List[str]] = None,
) -> ChaosReport:
    """Run the full seeded fault campaign through the real pipeline.

    1. Generate a small clean dataset; corrupt one trace per fault.
    2. ``run_batch`` over the directory under ``policy`` — asserts one
       bad trace fails (or repairs) one job, never the batch.
    3. Executor drills: crash / kill / hang workers, one per drill.
    4. Torn cache write: corrupt a profile entry, assert quarantine +
       transparent re-fit.

    Never raises for a guard violation — violations are listed in the
    returned report (the CLI turns them into a non-zero exit).
    """
    from repro.datasets.pantheon import generate_run
    from repro.guard.repair import check_policy
    from repro.runtime.batch import run_batch
    from repro.runtime.cache import ProfileCache
    from repro.runtime.executor import BatchExecutor, ExecutorConfig
    from repro.trace.io import save_trace

    check_policy(policy)
    workdir = Path(workdir)
    data_dir = workdir / "data"
    data_dir.mkdir(parents=True, exist_ok=True)
    report = ChaosReport(seed=seed, policy=policy)

    trace_faults = (
        list(TRACE_FAULTS) if trace_faults is None else list(trace_faults)
    )
    file_faults = (
        list(FILE_FAULTS) if file_faults is None else list(file_faults)
    )
    runtime_faults = (
        ["crash", "kill", "hang"]
        if runtime_faults is None
        else list(runtime_faults)
    )

    # ------------------------------------------------------------------
    # Phase 1: corrupted traces through the batch pipeline
    # ------------------------------------------------------------------
    plan: List[tuple] = [("clean", None)]
    plan += [("trace", name) for name in trace_faults]
    plan += [("file", name) for name in file_faults]
    for i, (surface, name) in enumerate(plan):
        run = generate_run(
            seed=seed + i, protocol="cubic", duration=duration
        )
        trace = run.trace
        fmt = "npz" if (surface, name) == ("file", "truncate") else "jsonl"
        path = data_dir / f"{i:02d}_{name or 'clean'}.{fmt}"
        if surface == "trace":
            trace = inject_trace_fault(name, trace, seed=seed + 100 + i)
        save_trace(trace, path)
        if surface == "file":
            inject_file_fault(name, path, seed=seed + 100 + i)
        if surface != "clean":
            report.injected.append(
                {"surface": surface, "fault": name, "target": path.name}
            )

    cache_dir = workdir / "cache"
    try:
        results, manifest, manifest_path = run_batch(
            sorted(data_dir.iterdir()),
            protocols=["cubic"],
            duration=duration,
            seed=seed,
            cache_dir=cache_dir,
            manifest_dir=workdir / "manifests",
            repair_policy=policy,
            config=ExecutorConfig(workers=workers, timeout_sec=120.0),
        )
    except Exception as exc:  # noqa: BLE001 — escaping IS the violation
        report.violations.append(
            f"run_batch raised instead of isolating the fault: {exc!r}"
        )
        return report
    report.manifest_path = manifest_path
    for result in results:
        report.batch_statuses[result.spec.label] = result.status

    jobs = manifest.to_dict()["jobs"]
    if len(jobs) != len(plan):
        report.violations.append(
            f"manifest has {len(jobs)} jobs for {len(plan)} traces "
            "(jobs went missing)"
        )
    for job in jobs:
        if job["status"] not in ("ok", "failed"):
            report.violations.append(
                f"job {job['label']} has status {job['status']!r} "
                "(must be ok|failed)"
            )
    clean_label = f"simulate:{data_dir / '00_clean.jsonl'}"
    if report.batch_statuses.get(clean_label) != "ok":
        report.violations.append("the clean trace's job did not succeed")
    if policy == "repair":
        # Every record-fault trace must have been repaired into a
        # successful job; only byte-destroyed files may fail.
        for result in results:
            name = Path(result.spec.params["trace_path"]).stem.split("_", 1)[1]
            if name in TRACE_FAULTS and result.status != "ok":
                report.violations.append(
                    f"repair policy did not recover trace fault {name!r}: "
                    f"{result.error.message if result.error else ''}"
                )

    # ------------------------------------------------------------------
    # Phase 2: executor drills, one fault per drill
    # ------------------------------------------------------------------
    expected = {"crash": "failed", "kill": "failed", "hang": "failed"}
    for fault in runtime_faults:
        spec = make_chaos_job(
            fault,
            timeout_sec=1.0 if fault == "hang" else None,
            hang_sec=30.0,
            seed=seed,
        )
        executor = BatchExecutor(
            ExecutorConfig(workers=max(2, workers), timeout_sec=60.0,
                           max_attempts=2)
        )
        try:
            drill = executor.run([spec], chaos_worker)
        except Exception as exc:  # noqa: BLE001
            report.violations.append(
                f"executor raised for fault {fault!r}: {exc!r}"
            )
            continue
        if len(drill) != 1:
            report.violations.append(
                f"executor drill {fault!r} lost its job result"
            )
            continue
        result = drill[0]
        report.drill_statuses[spec.label] = result.status
        if result.status != expected.get(fault, "ok"):
            report.violations.append(
                f"fault {fault!r} resolved to {result.status!r}, "
                f"expected {expected.get(fault, 'ok')!r}"
            )

    # ------------------------------------------------------------------
    # Phase 3: torn cache write -> quarantine + transparent re-fit
    # ------------------------------------------------------------------
    cache = ProfileCache(cache_dir)
    key = cache.key_for(
        data_dir / "00_clean.jsonl", fit_kwargs=None, repair_policy=policy
    )
    if cache.path_for(key).exists():
        tear_cache_entry(cache, key)
        report.injected.append(
            {"surface": "cache", "fault": "torn_write", "target": key[:12]}
        )
        if cache.get_profile(key) is not None:
            report.violations.append(
                "torn cache entry was served instead of quarantined"
            )
        refit, hit = cache.fit_cached(
            data_dir / "00_clean.jsonl", repair_policy=policy
        )
        if hit or refit is None:
            report.violations.append(
                "cache did not transparently re-fit after quarantine"
            )
    else:
        report.violations.append(
            "expected a cache entry for the clean trace to tear"
        )
    quarantine = cache.root / "quarantine"
    report.quarantined = (
        len(list(quarantine.glob("*.json"))) if quarantine.exists() else 0
    )
    if report.quarantined < 1:
        report.violations.append("quarantine directory is empty after tear")

    # ------------------------------------------------------------------
    # Phase 4: NaN row in a sweep fleet -> isolated, not batch poison
    # ------------------------------------------------------------------
    _sweep_nan_drill(report, seed=seed)
    return report


def _sweep_nan_drill(report: ChaosReport, seed: int) -> None:
    """Poison one scenario's parameter row in a packed sweep fleet and
    assert the vectorized core isolates it: the poisoned scenario comes
    back ``faulted`` with a reason, and every other scenario's summary
    is *bit-identical* to a clean run of the same fleet."""
    import numpy as np

    from repro.sweep import ScenarioGrid, SweepPath, pack_fleet, run_fleet

    grid = ScenarioGrid(
        paths=(
            SweepPath(
                bandwidth_bytes_per_sec=1.25e6,
                propagation_delay=0.02,
                buffer_bytes=50_000.0,
                label="chaos-sweep",
            ),
        ),
        protocols=("cubic", "reno", "bbr"),
        seeds=(seed, seed + 1),
        duration=2.0,
    )
    scenarios = grid.expand()
    clean = run_fleet(pack_fleet(scenarios))

    poisoned_fleet = pack_fleet(scenarios)
    rng = np.random.default_rng(seed)
    victim = int(rng.integers(poisoned_fleet.n_scenarios))
    poisoned_fleet.service_rate[victim, :] = np.nan
    report.injected.append(
        {
            "surface": "sweep",
            "fault": "nan_row",
            "target": poisoned_fleet.scenario_ids[victim][:12],
        }
    )
    try:
        poisoned = run_fleet(poisoned_fleet)
    except Exception as exc:  # noqa: BLE001 — escaping IS the violation
        report.violations.append(
            f"sweep core raised on a NaN parameter row: {exc!r}"
        )
        return

    bad = poisoned.scenarios[victim]
    if bad.status != "faulted" or not bad.fault_reason:
        report.violations.append(
            "poisoned sweep scenario was not reported as faulted "
            f"(status={bad.status!r}, reason={bad.fault_reason!r})"
        )
    for i, (before, after) in enumerate(
        zip(clean.scenarios, poisoned.scenarios)
    ):
        if i == victim:
            continue
        if after.status != "ok":
            report.violations.append(
                f"NaN row poisoned neighbour scenario {after.label!r} "
                f"(status={after.status!r})"
            )
        elif (
            after.mean_rate_mbps != before.mean_rate_mbps
            or after.mean_delay_ms != before.mean_delay_ms
            or after.p95_delay_ms != before.p95_delay_ms
            or after.loss_percent != before.loss_percent
        ):
            report.violations.append(
                f"NaN row changed neighbour scenario {after.label!r} "
                "summaries (lockstep isolation broken)"
            )


# ----------------------------------------------------------------------
# The service campaign: SIGKILL the daemon, demand exactly-once
# ----------------------------------------------------------------------
@dataclass
class ServiceChaosReport:
    """Outcome of one serve-daemon kill/recover campaign."""

    seed: int
    jobs: int
    kill_signal: str = "SIGKILL"
    completed_before_kill: int = 0
    recovered: int = 0
    drain_exit_code: Optional[int] = None
    manifest_path: Optional[Path] = None
    flight_dump: Optional[Path] = None
    fleet: Optional["FleetChaosReport"] = None
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and (self.fleet is None or self.fleet.ok)

    def format_report(self) -> str:
        lines = [
            f"service chaos campaign: seed={self.seed} jobs={self.jobs}",
            f"  completed before {self.kill_signal}: "
            f"{self.completed_before_kill}",
            f"  jobs recovered after restart: {self.recovered}",
            f"  drain (SIGTERM) exit code: {self.drain_exit_code}",
        ]
        if self.manifest_path:
            lines.append(f"  manifest: {self.manifest_path}")
        if self.flight_dump:
            lines.append(f"  flight recorder dump: {self.flight_dump}")
        if self.violations:
            lines.append("GUARD VIOLATIONS:")
            lines.extend(f"  !! {v}" for v in self.violations)
        else:
            lines.append(
                "all guards held: zero lost jobs, zero duplicate "
                "completions, flight dump on lease kill, graceful drain"
            )
        if self.fleet is not None:
            lines.append(self.fleet.format_report())
        return "\n".join(lines)


def _spawn_daemon(workdir: Path, workers: int, log_name: str):
    """Start ``repro serve run`` as a real child process."""
    import subprocess
    import sys

    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    log = open(workdir / log_name, "w")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "run",
            "--state",
            str(workdir / "state"),
            "--spool",
            str(workdir / "spool"),
            "--workers",
            str(workers),
            "--poll-interval",
            "0.05",
            "--max-runtime-sec",
            "120",
        ],
        stdout=log,
        stderr=subprocess.STDOUT,
        env=env,
    )


def _wait_for(predicate, timeout_sec: float, poll: float = 0.1) -> bool:
    deadline = time.monotonic() + timeout_sec
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return False


def _find_flight_dump(state: Path) -> Optional[Path]:
    """Newest *valid* ``lease_killed`` flight dump under <state>/obs."""
    candidates = sorted((state / "obs").glob("flight-*.json"), reverse=True)
    for path in candidates:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue  # possibly mid-write; a later poll retries
        if (
            isinstance(payload, dict)
            and payload.get("reason") == "lease_killed"
            and isinstance(payload.get("events"), list)
            and isinstance(payload.get("context"), dict)
        ):
            return path
    return None


def _daemon_ready(state: Path, pid: int) -> bool:
    """True once the daemon wrote its pid file — which it does only
    after its signal handlers are installed, so SIGTERM is safe."""
    try:
        return int((state / "serve.pid").read_text().strip()) == pid
    except (OSError, ValueError):
        return False


def run_service_campaign(
    workdir,
    seed: int = 7,
    jobs: int = 8,
    workers: int = 2,
    kill_after_completions: int = 2,
    sleep_sec: float = 0.4,
    timeout_sec: float = 60.0,
) -> ServiceChaosReport:
    """SIGKILL the serve daemon mid-run and assert full recovery.

    1. Start the daemon over an empty state dir; submit ``jobs`` slow
       (but well-behaved) drill jobs through the spool.
    2. Once ``kill_after_completions`` jobs have completed, SIGKILL the
       daemon — leases are orphaned mid-flight by construction.
    3. Restart the daemon over the same state dir: the journal replay
       must requeue every non-terminal job and run them to completion.
    4. SIGTERM for a graceful drain: exit code 0, a complete manifest.

    Guard invariants checked: **no lost jobs** (every submitted job_id
    ends ``completed``), **no duplicate completions** (each job_id has
    exactly one ``completed`` record across the whole journal), and a
    clean drain.
    """
    import signal as _signal

    from repro.serve.client import serve_status, submit_to_spool
    from repro.serve.journal import JobJournal
    from repro.serve.requests import normalize_request

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    spool = workdir / "spool"
    state = workdir / "state"
    report = ServiceChaosReport(seed=seed, jobs=jobs)

    requests = [
        {
            "kind": "chaos",
            "params": {"fault": "sleep", "sleep_sec": sleep_sec, "idx": i,
                       "seed": seed},
            "label": f"drill:sleep:{i}",
            "class": "drill",
            "timeout_sec": 30.0,
        }
        for i in range(jobs)
    ]

    def completed_count() -> int:
        state_now = JobJournal.read_state(state / "journal")
        return sum(
            1 for j in state_now.jobs.values() if j.status == "completed"
        )

    daemon = _spawn_daemon(workdir, workers, "daemon-1.log")
    try:
        if not _wait_for(
            lambda: _daemon_ready(state, daemon.pid), timeout_sec
        ):
            report.violations.append(
                f"daemon never became ready within {timeout_sec}s"
            )
            return report
        submit_to_spool(spool, requests)
        if not _wait_for(
            lambda: completed_count() >= kill_after_completions, timeout_sec
        ):
            report.violations.append(
                f"daemon completed {completed_count()}/{jobs} jobs but never "
                f"reached {kill_after_completions} within {timeout_sec}s"
            )
            return report
        report.completed_before_kill = completed_count()
        daemon.send_signal(_signal.SIGKILL)
        daemon.wait(timeout=10)
        _note_injection("service", "sigkill", f"pid {daemon.pid}")
    finally:
        if daemon.poll() is None:  # never leak a live daemon
            daemon.kill()
            daemon.wait(timeout=10)

    # ------------------------------------------------------------------
    # Restart: replay must requeue the orphans and finish everything.
    # ------------------------------------------------------------------
    daemon = _spawn_daemon(workdir, workers, "daemon-2.log")
    try:
        # SIGTERM before the restarted daemon installs its handlers
        # would kill it with the default disposition (exit -15) — wait
        # for readiness before asking anything of it.
        if not _wait_for(
            lambda: _daemon_ready(state, daemon.pid), timeout_sec
        ):
            report.violations.append(
                f"restarted daemon never became ready within {timeout_sec}s"
            )
            return report
        if not _wait_for(lambda: completed_count() >= jobs, timeout_sec):
            status = serve_status(state)
            report.violations.append(
                f"after restart only {completed_count()}/{jobs} jobs "
                f"completed within {timeout_sec}s: {status['counts']}"
            )
            return report
        report.recovered = jobs - report.completed_before_kill
        # --------------------------------------------------------------
        # Flight-recorder phase: a hung lease is SIGKILLed by its
        # deadline, which must leave a parseable flight dump behind.
        # --------------------------------------------------------------
        hang_request = {
            "kind": "chaos",
            "params": {"fault": "hang", "hang_sec": 30.0, "seed": seed},
            "label": "hangdrill:flight",
            "class": "hangdrill",
            "timeout_sec": 1.5,
        }
        hang_id = normalize_request(hang_request)["job_id"]
        submit_to_spool(spool, [hang_request])

        def hang_failed() -> bool:
            state_now = JobJournal.read_state(state / "journal")
            job = state_now.jobs.get(hang_id)
            return job is not None and job.status == "failed"

        if not _wait_for(hang_failed, timeout_sec):
            report.violations.append(
                "hung lease was not deadline-killed (journal never "
                "recorded it failed)"
            )
        else:
            _note_injection("service", "hang", f"job {hang_id[:12]}")
            flight_ok = _wait_for(
                lambda: _find_flight_dump(state) is not None, 15.0
            )
            dump = _find_flight_dump(state)
            if not flight_ok or dump is None:
                report.violations.append(
                    "no valid flight-recorder dump appeared in "
                    f"{state / 'obs'} after the lease SIGKILL"
                )
            else:
                report.flight_dump = dump
        daemon.send_signal(_signal.SIGTERM)
        try:
            report.drain_exit_code = daemon.wait(timeout=30)
        except Exception:  # noqa: BLE001
            report.violations.append("daemon did not exit after SIGTERM")
            return report
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10)

    if report.drain_exit_code != 0:
        report.violations.append(
            f"graceful drain exited {report.drain_exit_code}, expected 0"
        )

    # ------------------------------------------------------------------
    # The exactly-once ledger check.
    # ------------------------------------------------------------------
    final = JobJournal.read_state(state / "journal")
    submitted_ids = {normalize_request(r)["job_id"] for r in requests}
    journal_ids = set(final.jobs)
    lost = submitted_ids - journal_ids
    if lost:
        report.violations.append(f"{len(lost)} submitted job(s) left no journal trace")
    for job_id in submitted_ids & journal_ids:
        job = final.jobs[job_id]
        if job.status != "completed":
            report.violations.append(
                f"job {job.request.get('label')} ended {job.status!r}, "
                "expected completed"
            )
        if job.completions != 1:
            report.violations.append(
                f"job {job.request.get('label')} has {job.completions} "
                "completed records (exactly-once violated)"
            )
        result_file = state / "results" / f"{job_id}.json"
        if not result_file.exists():
            report.violations.append(
                f"job {job.request.get('label')} has no result artifact"
            )

    manifests = sorted((state / "manifests").glob("manifest-*.json"))
    if not manifests:
        report.violations.append("drain did not write a run manifest")
    else:
        report.manifest_path = manifests[-1]
        manifest = json.loads(report.manifest_path.read_text())
        row_ids = {j["job_id"] for j in manifest["jobs"]}
        if not submitted_ids <= row_ids:
            report.violations.append("manifest is missing submitted jobs")
        not_ok = [
            j["label"]
            for j in manifest["jobs"]
            if j["job_id"] in submitted_ids and j["status"] != "ok"
        ]
        if not_ok:
            report.violations.append(
                f"manifest rows not ok after drain: {not_ok}"
            )

    # ------------------------------------------------------------------
    # Fleet phase: the same kill drill against a routed 3-shard fleet.
    # ------------------------------------------------------------------
    report.fleet = run_fleet_campaign(
        workdir / "fleet", seed=seed, timeout_sec=timeout_sec + 30
    )
    return report


# ----------------------------------------------------------------------
# The fleet campaign: SIGKILL one shard, demand exactly-once fleet-wide
# ----------------------------------------------------------------------
@dataclass
class FleetChaosReport:
    """Outcome of one shard-kill/handoff campaign against a fleet."""

    seed: int
    shards: int
    jobs: int
    bind: Optional[str] = None
    victim: Optional[str] = None
    completed_before_kill: int = 0
    moved: int = 0
    readmitted: bool = False
    drain_exit_code: Optional[int] = None
    rollup_counters_checked: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def format_report(self) -> str:
        lines = [
            f"fleet chaos campaign: seed={self.seed} "
            f"shards={self.shards} jobs={self.jobs}"
            + (f" bind={self.bind}" if self.bind else ""),
            f"  victim shard: {self.victim} "
            f"(killed after {self.completed_before_kill} completions)",
            f"  jobs handed off to survivors: {self.moved}",
            f"  victim re-admitted to the ring: {self.readmitted}",
            f"  drain (SIGTERM) exit code: {self.drain_exit_code}",
            f"  roll-up counters verified against per-shard sums: "
            f"{self.rollup_counters_checked}",
        ]
        if self.violations:
            lines.append("GUARD VIOLATIONS:")
            lines.extend(f"  !! {v}" for v in self.violations)
        else:
            lines.append(
                "all guards held: zero lost jobs fleet-wide, zero "
                "double completions, roll-up equals per-shard sums"
            )
        return "\n".join(lines)


def _spawn_fleet(
    workdir: Path,
    state: Path,
    shards: int,
    log_name: str,
    bind: Optional[str] = None,
):
    """Start ``repro serve fleet`` as a real child process."""
    import subprocess
    import sys

    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    log = open(workdir / log_name, "w")
    argv = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "fleet",
        "--state",
        str(state),
        "--shards",
        str(shards),
        "--workers-per-shard",
        "1",
        "--snapshot-interval",
        "0.5",
        "--supervise-interval",
        "0.1",
        "--max-runtime-sec",
        "150",
    ]
    if bind is not None:
        argv += ["--bind", bind]
    return subprocess.Popen(
        argv,
        stdout=log,
        stderr=subprocess.STDOUT,
        env=env,
    )


def run_fleet_campaign(
    workdir,
    seed: int = 7,
    shards: int = 3,
    jobs: int = 9,
    kill_after_completions: int = 2,
    sleep_sec: float = 0.5,
    timeout_sec: float = 90.0,
    bind: Optional[str] = None,
) -> FleetChaosReport:
    """SIGKILL one shard of a routed fleet mid-run; assert exactly-once.

    1. Start ``repro serve fleet --shards N`` over an empty state dir
       and submit ``jobs`` slow drill jobs through the fleet endpoint
       (recording which shard accepted each).  ``bind`` (e.g.
       ``tcp:127.0.0.1:0``) runs the whole fleet — router *and* shard
       forwarding — over TCP; the drill reads the actually-bound
       endpoint from ``<state>/fleet.endpoint``.
    2. Once ``kill_after_completions`` jobs completed fleet-wide,
       SIGKILL the shard that owns the most jobs.  The fleet must mark
       it dead, hand its unfinished jobs to the survivors
       (journal-first ``moved`` tombstones), and respawn it.
    3. Wait for every submitted job to complete *somewhere*, and for the
       victim to be re-admitted to the ring.
    4. SIGTERM the fleet for a graceful drain (exit 0).

    Guard invariants: **zero lost jobs fleet-wide** (every job_id
    completed on some shard), **zero double completions** (the sum of
    ``completed`` records across every shard journal is one per job),
    and the `serve status` roll-up counters equal the sums of the
    per-shard snapshots.
    """
    import signal as _signal

    from repro.obs.summarize import merge_metrics_files
    from repro.serve.client import query_daemon, submit_via_socket
    from repro.serve.journal import JobJournal
    from repro.serve.requests import normalize_request

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    state = workdir / "state"
    report = FleetChaosReport(seed=seed, shards=shards, jobs=jobs, bind=bind)

    requests = [
        {
            "kind": "chaos",
            "params": {"fault": "sleep", "sleep_sec": sleep_sec, "idx": i,
                       "seed": seed},
            "label": f"fleetdrill:sleep:{i}",
            "class": "drill",
            "timeout_sec": 30.0,
        }
        for i in range(jobs)
    ]
    submitted_ids = {normalize_request(r)["job_id"] for r in requests}

    def shard_dirs() -> List[Path]:
        return sorted(state.glob("shard-*"))

    def fleet_completions() -> Dict[str, int]:
        done: Dict[str, int] = {}
        for shard_dir in shard_dirs():
            journal_state = JobJournal.read_state(shard_dir / "journal")
            for job_id, job in journal_state.jobs.items():
                if job_id in submitted_ids:
                    done[job_id] = done.get(job_id, 0) + job.completions
        return done

    def completed_count() -> int:
        return sum(1 for n in fleet_completions().values() if n >= 1)

    def fleet_ready() -> bool:
        # The manager publishes fleet.endpoint (the actually-bound
        # router endpoint, needed for tcp:...:0) before fleet.pid.
        if not (state / "fleet.pid").exists():
            return False
        if not (state / "fleet.endpoint").exists():
            return False
        return all(
            (state / f"shard-{i}" / "serve.pid").exists()
            for i in range(shards)
        )

    def fleet_endpoint() -> str:
        return (state / "fleet.endpoint").read_text().strip()

    fleet = _spawn_fleet(workdir, state, shards, "fleet.log", bind=bind)
    try:
        if not _wait_for(fleet_ready, timeout_sec):
            report.violations.append(
                f"fleet never became ready within {timeout_sec}s"
            )
            return report
        responses = submit_via_socket(fleet_endpoint(), requests)
        not_accepted = [
            r for r in responses if r.get("status") != "accepted"
        ]
        if not_accepted:
            report.violations.append(
                f"fleet rejected {len(not_accepted)} submissions: "
                f"{not_accepted[:3]}"
            )
            return report
        owned: Dict[str, int] = {}
        for response in responses:
            owned[response["shard"]] = owned.get(response["shard"], 0) + 1
        victim = max(owned, key=lambda name: owned[name])
        report.victim = victim
        victim_pid = int((state / victim / "serve.pid").read_text())

        if not _wait_for(
            lambda: completed_count() >= kill_after_completions, timeout_sec
        ):
            report.violations.append(
                f"fleet completed {completed_count()}/{jobs} jobs but "
                f"never reached {kill_after_completions} within "
                f"{timeout_sec}s"
            )
            return report
        report.completed_before_kill = completed_count()
        os.kill(victim_pid, _signal.SIGKILL)
        _note_injection("fleet", "sigkill", f"shard {victim}")

        if not _wait_for(lambda: completed_count() >= jobs, timeout_sec):
            done = fleet_completions()
            report.violations.append(
                f"after shard kill only {completed_count()}/{jobs} jobs "
                f"completed within {timeout_sec}s "
                f"(missing: {sorted(submitted_ids - set(done))[:3]})"
            )
            return report

        def victim_live() -> bool:
            try:
                health = query_daemon(fleet_endpoint(), "health")
            except (OSError, ConnectionError):
                return False
            status = health.get("health", {}).get("shard_status", {})
            return status.get(victim, {}).get("status") == "live"

        report.readmitted = _wait_for(victim_live, timeout_sec)
        if not report.readmitted:
            report.violations.append(
                f"victim shard {victim} was never re-admitted to the ring"
            )

        fleet.send_signal(_signal.SIGTERM)
        try:
            report.drain_exit_code = fleet.wait(timeout=60)
        except Exception:  # noqa: BLE001
            report.violations.append("fleet did not exit after SIGTERM")
            return report
    finally:
        if fleet.poll() is None:  # never leak a live fleet
            fleet.kill()
            fleet.wait(timeout=10)

    if report.drain_exit_code != 0:
        report.violations.append(
            f"fleet drain exited {report.drain_exit_code}, expected 0"
        )

    # ------------------------------------------------------------------
    # The exactly-once ledger check, fleet-wide across every journal.
    # ------------------------------------------------------------------
    completions = fleet_completions()
    lost = submitted_ids - set(completions)
    if lost:
        report.violations.append(
            f"{len(lost)} submitted job(s) left no journal trace anywhere"
        )
    for job_id, count in completions.items():
        if count == 0:
            report.violations.append(
                f"job {job_id[:12]} never completed on any shard (lost)"
            )
        elif count > 1:
            report.violations.append(
                f"job {job_id[:12]} has {count} completed records across "
                "the fleet (double completion)"
            )
    report.moved = sum(
        1
        for shard_dir in shard_dirs()
        for job in JobJournal.read_state(shard_dir / "journal")
        .moved_out()
        .values()
        if job.request.get("job_id") in submitted_ids
    )
    if report.victim is not None and report.moved == 0:
        report.violations.append(
            "victim shard was killed but no jobs were handed off "
            "(kill landed too late to exercise the drill)"
        )

    # ------------------------------------------------------------------
    # Roll-up equality: merged counters == sum of per-shard snapshots.
    # ------------------------------------------------------------------
    snapshot_paths = [
        d / "obs" / "metrics.json"
        for d in shard_dirs()
        if (d / "obs" / "metrics.json").exists()
    ]
    if len(snapshot_paths) != shards:
        report.violations.append(
            f"only {len(snapshot_paths)}/{shards} shards published a "
            "live snapshot"
        )
    if snapshot_paths:
        merged = merge_metrics_files(snapshot_paths)
        sums: Dict[str, float] = {}
        for path in snapshot_paths:
            document = json.loads(path.read_text())
            payload = document.get("metrics", document)
            for name, value in (payload.get("counters") or {}).items():
                sums[name] = sums.get(name, 0) + value
        for name, value in merged.get("counters", {}).items():
            if abs(value - sums.get(name, 0)) > 1e-9:
                report.violations.append(
                    f"roll-up counter {name} is {value}, per-shard sum "
                    f"is {sums.get(name, 0)}"
                )
        report.rollup_counters_checked = len(merged.get("counters", {}))
    return report


# ----------------------------------------------------------------------
# The transport campaign: a lossy wire between client and daemon
# ----------------------------------------------------------------------
@dataclass
class TransportChaosReport:
    """Outcome of one network-chaos campaign against the transport."""

    seed: int
    jobs: int
    phases: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    fleet: Optional[FleetChaosReport] = None
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and (self.fleet is None or self.fleet.ok)

    def format_report(self) -> str:
        lines = [
            f"transport chaos campaign: seed={self.seed} jobs={self.jobs}"
        ]
        for scheme, phase in sorted(self.phases.items()):
            proxy = phase.get("proxy") or {}
            faults = " ".join(
                f"{k}={proxy[k]}"
                for k in ("dropped", "duplicated", "delayed", "truncated",
                          "severed")
                if k in proxy
            )
            lines.append(
                f"  [{scheme}] upstream={phase.get('upstream')} "
                f"acked={phase.get('acked')} "
                f"classified_failures={phase.get('classified_failures')} "
                f"drain_exit={phase.get('drain_exit_code')}"
            )
            if faults:
                lines.append(
                    f"  [{scheme}] injected: {faults} "
                    f"(frames={proxy.get('frames')})"
                )
        if self.violations:
            lines.append("GUARD VIOLATIONS:")
            lines.extend(f"  !! {v}" for v in self.violations)
        else:
            lines.append(
                "all guards held: every client call succeeded or failed "
                "classified, every job completed exactly once, both "
                "transports survived oversize/garbage/torn frames"
            )
        if self.fleet is not None:
            lines.append(self.fleet.format_report())
        return "\n".join(lines)


def _spawn_bound_daemon(workdir: Path, state: Path, bind: str, log_name: str):
    """Start ``repro serve run --bind <spec>`` as a real child process."""
    import subprocess
    import sys

    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    log = open(workdir / log_name, "w")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "run",
            "--state",
            str(state),
            "--bind",
            bind,
            "--workers",
            "2",
            "--poll-interval",
            "0.05",
            "--snapshot-interval",
            "0.5",
            "--max-runtime-sec",
            "150",
        ],
        stdout=log,
        stderr=subprocess.STDOUT,
        env=env,
    )


def _recv_frame(conn, timeout: float = 5.0) -> Optional[Dict[str, Any]]:
    """Read one framed-JSONL response off a raw socket; None on EOF."""
    from repro.serve.transport import FrameAssembler

    assembler = FrameAssembler(max_bytes=8 * 1024 * 1024)
    conn.settimeout(timeout)
    while True:
        data = conn.recv(65536)
        if not data:
            return None
        for kind, payload in assembler.feed(data):
            if kind == "frame":
                return json.loads(payload.decode("utf-8"))


def _transport_drill(
    report: TransportChaosReport,
    workdir: Path,
    seed: int,
    jobs: int,
    scheme: str,
    timeout_sec: float,
) -> None:
    """One daemon (unix or tcp) behind the chaos proxy, end to end."""
    import signal as _signal

    from repro.guard.netchaos import NetChaosConfig, NetChaosProxy
    from repro.serve.journal import JobJournal
    from repro.serve.requests import normalize_request
    from repro.serve.transport import (
        MAX_FRAME_BYTES,
        ResilientClient,
        TransportError,
        exchange,
        parse_endpoint,
    )

    phase: Dict[str, Any] = {"scheme": scheme}
    report.phases[scheme] = phase
    workdir.mkdir(parents=True, exist_ok=True)
    state = workdir / "state"
    bind = (
        f"unix:{state / 'serve.sock'}"
        if scheme == "unix"
        else "tcp:127.0.0.1:0"
    )
    daemon = _spawn_bound_daemon(workdir, state, bind, f"daemon-{scheme}.log")
    try:
        if not _wait_for(
            lambda: _daemon_ready(state, daemon.pid), timeout_sec
        ):
            report.violations.append(
                f"[{scheme}] daemon never became ready within {timeout_sec}s"
            )
            return
        upstream = (state / "serve.endpoint").read_text().strip()
        phase["upstream"] = upstream

        # --------------------------------------------------------------
        # Deterministic hardening probes, straight at the daemon: an
        # oversized frame and a garbage frame must each be *answered*
        # (frame_too_large / invalid), and the connection must survive
        # both — resync at the next newline, not a killed socket.
        # --------------------------------------------------------------
        conn = parse_endpoint(upstream).connect(timeout=5.0)
        try:
            conn.sendall(b'{"pad": "' + b"x" * MAX_FRAME_BYTES + b'"}\n')
            response = _recv_frame(conn)
            if not response or response.get("reason") != "frame_too_large":
                report.violations.append(
                    f"[{scheme}] oversized frame was not rejected as "
                    f"frame_too_large: {response}"
                )
            conn.sendall(b"this is not json\n")
            response = _recv_frame(conn)
            if not response or response.get("reason") != "invalid":
                report.violations.append(
                    f"[{scheme}] garbage frame was not rejected as "
                    f"invalid: {response}"
                )
            conn.sendall(b'{"verb": "health"}\n')
            response = _recv_frame(conn)
            if not isinstance(response, dict) or "status" not in response:
                report.violations.append(
                    f"[{scheme}] connection unusable after rejected "
                    f"frames: {response}"
                )
        finally:
            conn.close()
        _note_injection("transport", "oversize+garbage", upstream)

        # --------------------------------------------------------------
        # The lossy-wire drill: every submission goes through the chaos
        # proxy via the resilient client; every call must come back as
        # an ack or a classified, retryable transport error — never a
        # raw traceback, never a hang past the deadline budget.
        # --------------------------------------------------------------
        requests = [
            {
                "kind": "chaos",
                "params": {"fault": "sleep", "sleep_sec": 0.05, "idx": i,
                           "seed": seed, "scheme": scheme},
                "label": f"transport:{scheme}:{i}",
                "class": "drill",
                "timeout_sec": 30.0,
            }
            for i in range(jobs)
        ]
        ids = [normalize_request(dict(r))["job_id"] for r in requests]
        proxy = NetChaosProxy(
            "tcp:127.0.0.1:0",
            upstream,
            NetChaosConfig(
                seed=seed,
                drop_prob=0.08,
                dup_prob=0.08,
                delay_prob=0.10,
                delay_sec=0.02,
                truncate_prob=0.04,
                sever_prob=0.04,
            ),
        )
        front = proxy.start()
        _note_injection("transport", "netchaos", front.describe())
        deadline_sec = 25.0
        acked: Dict[str, str] = {}
        failures = 0
        try:
            client = ResilientClient(
                front,
                deadline_sec=deadline_sec,
                max_attempts=12,
                connect_timeout_sec=2.0,
                io_timeout_sec=1.5,
                backoff_base_sec=0.05,
                backoff_max_sec=0.5,
            )
            for request, job_id in zip(requests, ids):
                began = time.monotonic()
                try:
                    response = client.call(dict(request))
                except TransportError as exc:
                    failures += 1
                    if not isinstance(exc.retryable, bool):
                        report.violations.append(
                            f"[{scheme}] transport error lacks a "
                            f"retryable classification: {exc!r}"
                        )
                except Exception as exc:  # noqa: BLE001 — escaping IS the bug
                    report.violations.append(
                        f"[{scheme}] unclassified client error (raw "
                        f"traceback escape): {exc!r}"
                    )
                else:
                    if response.get("status") in ("accepted", "duplicate"):
                        acked[job_id] = response["status"]
                    else:
                        report.violations.append(
                            f"[{scheme}] submission answered {response}"
                        )
                elapsed = time.monotonic() - began
                if elapsed > deadline_sec + 10.0:
                    report.violations.append(
                        f"[{scheme}] client call ran {elapsed:.1f}s, past "
                        f"its {deadline_sec}s deadline budget"
                    )
        finally:
            proxy.stop()
        phase["acked"] = len(acked)
        phase["classified_failures"] = failures
        phase["proxy"] = proxy.stats()
        injected = sum(
            phase["proxy"][k]
            for k in ("dropped", "duplicated", "delayed", "truncated",
                      "severed")
        )
        if injected == 0:
            report.violations.append(
                f"[{scheme}] proxy injected no faults — the drill "
                "proved nothing (adjust probabilities or seed)"
            )

        # Un-acked jobs are redelivered off-proxy: content-hashed ids
        # make resubmission idempotent even if the lossy copy landed.
        missing = [
            dict(r) for r, job_id in zip(requests, ids) if job_id not in acked
        ]
        if missing:
            for response in exchange(upstream, missing, timeout=10.0):
                if response.get("status") not in ("accepted", "duplicate"):
                    report.violations.append(
                        f"[{scheme}] off-proxy redelivery answered "
                        f"{response}"
                    )

        def all_completed() -> bool:
            journal_state = JobJournal.read_state(state / "journal")
            return all(
                job_id in journal_state.jobs
                and journal_state.jobs[job_id].status == "completed"
                for job_id in ids
            )

        if not _wait_for(all_completed, timeout_sec):
            journal_state = JobJournal.read_state(state / "journal")
            done = sum(
                1
                for job_id in ids
                if job_id in journal_state.jobs
                and journal_state.jobs[job_id].status == "completed"
            )
            report.violations.append(
                f"[{scheme}] only {done}/{jobs} jobs completed within "
                f"{timeout_sec}s"
            )
            return
        daemon.send_signal(_signal.SIGTERM)
        try:
            phase["drain_exit_code"] = daemon.wait(timeout=30)
        except Exception:  # noqa: BLE001
            report.violations.append(
                f"[{scheme}] daemon did not exit after SIGTERM"
            )
            return
        if phase["drain_exit_code"] != 0:
            report.violations.append(
                f"[{scheme}] drain exited {phase['drain_exit_code']}, "
                "expected 0"
            )
    finally:
        if daemon.poll() is None:  # never leak a live daemon
            daemon.kill()
            daemon.wait(timeout=10)

    # ------------------------------------------------------------------
    # The exactly-once ledger check: dup'd frames, torn responses, and
    # idempotent resubmission must all collapse to one completion each.
    # ------------------------------------------------------------------
    final = JobJournal.read_state(state / "journal")
    for job_id in ids:
        job = final.jobs.get(job_id)
        if job is None:
            report.violations.append(
                f"[{scheme}] job {job_id[:12]} left no journal trace (lost)"
            )
        elif job.completions != 1:
            report.violations.append(
                f"[{scheme}] job {job_id[:12]} has {job.completions} "
                "completed records (exactly-once violated)"
            )


def run_transport_campaign(
    workdir,
    seed: int = 7,
    jobs: int = 10,
    timeout_sec: float = 90.0,
    fleet_drill: bool = True,
) -> TransportChaosReport:
    """Prove the transport layer under a seeded lossy wire (DESIGN.md §14).

    1. **Hardening probes** — a real daemon must answer an oversized
       frame with ``frame_too_large`` and a garbage frame with
       ``invalid``, and keep the connection usable after both.
    2. **Lossy-wire drill** — submissions go through a seeded
       :class:`repro.guard.netchaos.NetChaosProxy` (drop / duplicate /
       delay / truncate / sever) via :class:`ResilientClient`; every
       call must return an ack or a classified retryable error within
       its deadline budget, and every job must complete **exactly once**
       daemon-side regardless of duplicated or torn frames.
    3. Steps 1–2 run twice — daemon on a unix socket, then on
       ``tcp:127.0.0.1:0`` — the unix/TCP parity half of the tentpole.
    4. **TCP fleet drill** — the full shard-kill campaign of
       :func:`run_fleet_campaign`, but with router and shards bound on
       TCP (``fleet_drill=False`` skips it for quick local runs).
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    report = TransportChaosReport(seed=seed, jobs=jobs)
    _transport_drill(
        report, workdir / "unix", seed, jobs, "unix", timeout_sec
    )
    _transport_drill(
        report, workdir / "tcp", seed + 1, jobs, "tcp", timeout_sec
    )
    if fleet_drill:
        report.fleet = run_fleet_campaign(
            workdir / "fleet-tcp",
            seed=seed,
            shards=2,
            bind="tcp:127.0.0.1:0",
            timeout_sec=timeout_sec + 30,
        )
    return report


# ----------------------------------------------------------------------
# The storage campaign: disk faults against the durable result plane
# ----------------------------------------------------------------------
@dataclass
class StorageChaosReport:
    """Outcome of one disk-fault campaign (DESIGN.md §15)."""

    seed: int
    phases: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def format_report(self) -> str:
        lines = [f"storage chaos campaign: seed={self.seed}"]
        for name in ("bitrot", "enospc", "killwindow", "fleet-fetch"):
            phase = self.phases.get(name)
            if not phase:
                continue
            detail = " ".join(
                f"{k}={v}" for k, v in sorted(phase.items())
                if k not in ("name",) and not isinstance(v, (list, dict))
            )
            lines.append(f"  [{name}] {detail}")
        if self.violations:
            lines.append("GUARD VIOLATIONS:")
            lines.extend(f"  !! {v}" for v in self.violations)
        else:
            lines.append(
                "all guards held: zero lost jobs, zero double completions, "
                "zero corrupt results served; corruption quarantined and "
                "read-repaired, ENOSPC shed and self-cleared, the "
                "result-write/journal-append kill window repaired from "
                "the artifact, and every result fetched through the router"
            )
        return "\n".join(lines)


def _find_dump(state: Path, reason: str) -> Optional[Path]:
    """Newest valid flight dump with the given reason under <state>/obs."""
    candidates = sorted((state / "obs").glob("flight-*.json"), reverse=True)
    for path in candidates:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(payload, dict) and payload.get("reason") == reason:
            return path
    return None


def _storage_requests(seed: int, jobs: int, tag: str,
                      sleep_sec: float = 0.05) -> List[Dict[str, Any]]:
    return [
        {
            "kind": "chaos",
            "params": {"fault": "sleep", "sleep_sec": sleep_sec, "idx": i,
                       "seed": seed},
            "label": f"storagedrill:{tag}:{i}",
            "class": "drill",
            "timeout_sec": 30.0,
        }
        for i in range(jobs)
    ]


class _ENOSPCFile:
    """A file-object proxy whose writes fail with ENOSPC.

    Wrapped around the journal's open segment handle it simulates a
    full disk at exactly the WAL-append syscall boundary; everything
    else (tell/close/fileno) passes through, so the daemon's shedding
    and probe/reopen machinery runs against an otherwise-real file.
    """

    def __init__(self, fh):
        self._fh = fh

    def write(self, data):
        import errno

        raise OSError(errno.ENOSPC, "no space left on device (injected)")

    def flush(self):
        import errno

        raise OSError(errno.ENOSPC, "no space left on device (injected)")

    def __getattr__(self, name):
        return getattr(self._fh, name)


def _storage_bitrot_phase(
    report: StorageChaosReport,
    workdir: Path,
    seed: int,
    jobs: int,
    timeout_sec: float,
) -> None:
    """Bit-flip a journal record and a result file; demand quarantine,
    read-repair, and a clean fetch of every job after restart."""
    import signal as _signal

    from repro.serve.journal import JobJournal
    from repro.serve.requests import normalize_request
    from repro.serve.transport import ResilientClient
    from repro.serve.client import submit_via_socket

    phase: Dict[str, Any] = {}
    report.phases["bitrot"] = phase
    workdir.mkdir(parents=True, exist_ok=True)
    state = workdir / "state"
    requests = _storage_requests(seed, jobs, "bitrot")
    ids = [normalize_request(r)["job_id"] for r in requests]

    def completed_count() -> int:
        now = JobJournal.read_state(state / "journal")
        return sum(1 for j in now.jobs.values() if j.status == "completed")

    daemon = _spawn_bound_daemon(
        workdir, state, f"unix:{state / 'serve.sock'}", "daemon-1.log"
    )
    try:
        if not _wait_for(lambda: _daemon_ready(state, daemon.pid),
                         timeout_sec):
            report.violations.append(
                f"[bitrot] daemon never became ready within {timeout_sec}s"
            )
            return
        endpoint = (state / "serve.endpoint").read_text().strip()
        responses = submit_via_socket(endpoint, requests)
        if any(r.get("status") != "accepted" for r in responses):
            report.violations.append(
                f"[bitrot] not every submission was accepted: {responses[:3]}"
            )
            return
        if not _wait_for(lambda: completed_count() >= jobs, timeout_sec):
            report.violations.append(
                f"[bitrot] only {completed_count()}/{jobs} jobs completed "
                f"within {timeout_sec}s"
            )
            return
        # SIGKILL — no drain, no compaction: the journal keeps its raw
        # submitted/leased/completed records for us to damage.
        daemon.send_signal(_signal.SIGKILL)
        daemon.wait(timeout=10)
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10)

    # ------------------------------------------------------------------
    # Fault 1 — mid-file WAL bit-rot: damage the `completed` record of
    # ids[0] (payload changed, CRC left stale -> checksum mismatch).
    # ------------------------------------------------------------------
    rng = random.Random(seed)
    wal_victim, result_victim = ids[0], ids[1]
    flipped = False
    for segment in sorted((state / "journal").glob("wal*.jsonl")):
        lines = segment.read_text(encoding="utf-8").splitlines()
        for i, line in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if (record.get("type") == "completed"
                    and record.get("job_id") == wal_victim):
                record["duration_sec"] = (
                    float(record.get("duration_sec") or 0.0)
                    + 1.0 + rng.random()
                )
                lines[i] = json.dumps(record, separators=(",", ":"))
                segment.write_text(
                    "\n".join(lines) + "\n", encoding="utf-8"
                )
                _note_injection("storage", "wal_bitrot",
                                f"{segment.name}:{i}")
                flipped = True
                break
        if flipped:
            break
    if not flipped:
        report.violations.append(
            f"[bitrot] found no completed WAL record for {wal_victim[:12]}"
        )
        return

    # ------------------------------------------------------------------
    # Fault 2 — result-file bit-rot on a different job: flip one byte
    # in the middle of its checksummed envelope.
    # ------------------------------------------------------------------
    result_file = state / "results" / f"{result_victim}.json"
    blob = bytearray(result_file.read_bytes())
    pos = len(blob) // 2
    blob[pos] ^= 0xFF
    result_file.write_bytes(bytes(blob))
    _note_injection("storage", "result_bitrot", result_file.name)

    # ------------------------------------------------------------------
    # Restart over the damaged state dir.
    # ------------------------------------------------------------------
    daemon = _spawn_bound_daemon(
        workdir, state, f"unix:{state / 'serve.sock'}", "daemon-2.log"
    )
    try:
        if not _wait_for(lambda: _daemon_ready(state, daemon.pid),
                         timeout_sec):
            report.violations.append(
                "[bitrot] restarted daemon never became ready within "
                f"{timeout_sec}s"
            )
            return
        endpoint = (state / "serve.endpoint").read_text().strip()

        # Replay must have counted + quarantined the corruption ...
        replayed = JobJournal.read_state(state / "journal")
        phase["corrupt_records"] = replayed.corrupt_records
        if replayed.corrupt_records < 1:
            report.violations.append(
                "[bitrot] replay counted no corrupt journal records after "
                "the WAL bit-flip"
            )
        if wal_victim not in replayed.suspect_jobs:
            report.violations.append(
                "[bitrot] the damaged job was not flagged suspect"
            )
        quarantined = list((state / "journal" / "quarantine").glob("*"))
        phase["quarantined_segments"] = len(quarantined)
        if not quarantined:
            report.violations.append(
                "[bitrot] no quarantined copy of the corrupt WAL segment"
            )
        if not _wait_for(
            lambda: _find_dump(state, "journal_corruption") is not None, 15.0
        ):
            report.violations.append(
                "[bitrot] no journal_corruption flight dump after replay"
            )

        # ... and every job must fetch clean: the WAL victim via
        # artifact repair (its result file is intact), the result
        # victim via read-repair re-execution, the rest straight off
        # disk with their checksums verified.
        client = ResilientClient(endpoint, deadline_sec=timeout_sec)
        served_corrupt = 0
        fetched_ok = 0
        for job_id in ids:
            response = client.fetch(job_id, wait=True)
            if response.get("status") != "ok":
                report.violations.append(
                    f"[bitrot] fetch({job_id[:12]}) ended "
                    f"{response.get('status')!r}: {response}"
                )
                continue
            result = response.get("result") or {}
            if result.get("status") != "ok":
                served_corrupt += 1
            else:
                fetched_ok += 1
        phase["fetched_ok"] = fetched_ok
        if served_corrupt:
            report.violations.append(
                f"[bitrot] {served_corrupt} fetches served a non-ok payload"
            )
        quarantined_results = list(
            (state / "results" / "quarantine").glob("*")
        )
        phase["quarantined_results"] = len(quarantined_results)
        if not quarantined_results:
            report.violations.append(
                "[bitrot] the corrupt result file was never quarantined"
            )
        daemon.send_signal(_signal.SIGTERM)
        try:
            phase["drain_exit_code"] = daemon.wait(timeout=30)
        except Exception:  # noqa: BLE001
            report.violations.append("[bitrot] daemon did not drain")
            return
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10)
    if phase.get("drain_exit_code") != 0:
        report.violations.append(
            f"[bitrot] drain exited {phase.get('drain_exit_code')}, "
            "expected 0"
        )

    # The exactly-once ledger: the voided completion (read-repair) and
    # the artifact repair must both net out to exactly one completion.
    final = JobJournal.read_state(state / "journal")
    for job_id in ids:
        job = final.jobs.get(job_id)
        if job is None:
            report.violations.append(
                f"[bitrot] job {job_id[:12]} lost from the journal"
            )
            continue
        if job.status != "completed" or job.completions != 1:
            report.violations.append(
                f"[bitrot] job {job_id[:12]} ended {job.status!r} with "
                f"{job.completions} completions (want completed/1)"
            )


def _storage_enospc_phase(
    report: StorageChaosReport,
    workdir: Path,
    seed: int,
    timeout_sec: float,
) -> None:
    """Inject ENOSPC at the WAL append; demand disk_full shedding with
    retry-after, then self-clearing once writes succeed again."""
    from repro.serve.daemon import ServeConfig, ServeDaemon
    from repro.serve.journal import JobJournal

    phase: Dict[str, Any] = {}
    report.phases["enospc"] = phase
    workdir.mkdir(parents=True, exist_ok=True)
    request = _storage_requests(seed, 1, "enospc")[0]
    daemon = ServeDaemon(ServeConfig(
        state_dir=workdir / "state",
        spool_dir=workdir / "spool",
        workers=1,
        queue_limit=8,
        poll_interval=0.01,
        drain_timeout_sec=15.0,
        disk_probe_interval_sec=0.05,
        fsync=True,
    ))
    try:
        daemon.journal._fh = _ENOSPCFile(daemon.journal._fh)
        _note_injection("storage", "enospc", "journal append")
        response = daemon.admit(dict(request))
        phase["shed_response"] = response.get("reason")
        if (response.get("status") != "rejected"
                or response.get("reason") != "disk_full"
                or not response.get("retry_after_sec")):
            report.violations.append(
                "[enospc] WAL ENOSPC was not shed as rejected/disk_full "
                f"with retry_after_sec: {response}"
            )
        if daemon._shedding != "disk_full":
            report.violations.append(
                f"[enospc] daemon shedding state is {daemon._shedding!r}, "
                "expected 'disk_full'"
            )
        # Still full: re-admission inside the probe interval sheds too.
        daemon._disk_probe_at = time.monotonic() + 30.0
        response = daemon.admit(dict(request))
        if response.get("reason") != "disk_full":
            report.violations.append(
                "[enospc] second admit during shedding was not shed: "
                f"{response}"
            )
        # The disk "heals" (the probe's reopen() swaps the poisoned
        # handle for a real one); the next admit must probe, clear the
        # state, and accept.
        daemon._disk_probe_at = 0.0
        response = daemon.admit(dict(request))
        phase["recovered_response"] = response.get("status")
        if response.get("status") != "accepted":
            report.violations.append(
                f"[enospc] admit after the disk healed was not accepted: "
                f"{response}"
            )
            return
        if daemon._shedding is not None:
            report.violations.append(
                "[enospc] shedding state did not self-clear after a "
                "successful probe"
            )
        deadline = time.monotonic() + timeout_sec
        while time.monotonic() < deadline:
            daemon.tick()
            if daemon.journal.state.counts().get("completed") == 1:
                break
            time.sleep(0.02)
        fetched = daemon._handle_verb(
            {"verb": "fetch", "job_id": response["job_id"]}
        )
        phase["fetch_status"] = fetched.get("status")
        if fetched.get("status") != "ok":
            report.violations.append(
                f"[enospc] fetch after recovery ended {fetched}"
            )
        daemon.drain()
    finally:
        daemon.supervisor.kill_all()
        daemon._stop_socket()
        try:
            daemon.journal.close()
        except Exception:  # noqa: BLE001
            pass
        daemon._lock_file.release()
    final = JobJournal.read_state(workdir / "state" / "journal")
    completions = [j.completions for j in final.jobs.values()]
    if completions != [1]:
        report.violations.append(
            f"[enospc] journal completions after recovery are "
            f"{completions}, want [1]"
        )


def _storage_killwindow_phase(
    report: StorageChaosReport,
    workdir: Path,
    seed: int,
    timeout_sec: float,
) -> None:
    """Fabricate the state a SIGKILL leaves when it lands *between*
    result-write and journal-append; recovery must repair the
    completion from the checksummed artifact instead of re-running."""
    import signal as _signal

    from repro.serve.journal import JobJournal
    from repro.serve.requests import normalize_request
    from repro.serve.supervisor import _write_result

    phase: Dict[str, Any] = {}
    report.phases["killwindow"] = phase
    workdir.mkdir(parents=True, exist_ok=True)
    state = workdir / "state"
    request = normalize_request(_storage_requests(seed, 1, "killwindow")[0])
    job_id = request["job_id"]

    # The exact on-disk state of the kill window, deterministically:
    # the WAL says leased, the checksummed result says done, and no
    # `completed` record ever made it to the journal.
    journal = JobJournal(state / "journal", fsync=True)
    journal.submitted(request)
    journal.leased(job_id, lease=1, pid=999999)
    journal.close()
    _write_result(
        state / "results" / f"{job_id}.json",
        {
            "status": "ok",
            "job_id": job_id,
            "value": {"fault": "sleep", "ok": True},
            "cache_hit": False,
            "duration_sec": 0.01,
        },
    )
    _note_injection("storage", "killwindow", f"job {job_id[:12]}")

    daemon = _spawn_bound_daemon(
        workdir, state, f"unix:{state / 'serve.sock'}", "daemon.log"
    )
    try:
        if not _wait_for(lambda: _daemon_ready(state, daemon.pid),
                         timeout_sec):
            report.violations.append(
                f"[killwindow] daemon never became ready within "
                f"{timeout_sec}s"
            )
            return
        endpoint = (state / "serve.endpoint").read_text().strip()

        def repaired() -> bool:
            now = JobJournal.read_state(state / "journal")
            job = now.jobs.get(job_id)
            return job is not None and job.status == "completed"

        if not _wait_for(repaired, timeout_sec):
            report.violations.append(
                "[killwindow] the orphaned lease with a valid result "
                "artifact was never journaled completed"
            )
            return
        from repro.serve.client import fetch_result

        response = fetch_result(endpoint, job_id)
        phase["fetch_status"] = response.get("status")
        if response.get("status") != "ok":
            report.violations.append(
                f"[killwindow] fetch after repair ended {response}"
            )
        daemon.send_signal(_signal.SIGTERM)
        try:
            phase["drain_exit_code"] = daemon.wait(timeout=30)
        except Exception:  # noqa: BLE001
            report.violations.append("[killwindow] daemon did not drain")
            return
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10)
    final = JobJournal.read_state(state / "journal")
    job = final.jobs.get(job_id)
    if job is None or job.status != "completed" or job.completions != 1:
        report.violations.append(
            "[killwindow] repaired job is not completed exactly once: "
            + (f"{job.status}/{job.completions}" if job else "lost")
        )
    else:
        phase["completions"] = job.completions


def _storage_fleet_phase(
    report: StorageChaosReport,
    workdir: Path,
    seed: int,
    jobs: int,
    timeout_sec: float,
) -> None:
    """Fetch every completed job's result *through the router* of a
    2-shard TCP fleet (owner-shard hashing plus fan-out)."""
    import signal as _signal

    from repro.serve.client import fetch_result, submit_via_socket
    from repro.serve.journal import JobJournal
    from repro.serve.requests import normalize_request
    from repro.serve.transport import ResilientClient

    phase: Dict[str, Any] = {}
    report.phases["fleet-fetch"] = phase
    workdir.mkdir(parents=True, exist_ok=True)
    state = workdir / "state"
    shards = 2
    requests = _storage_requests(seed, jobs, "fleet", sleep_sec=0.1)
    ids = [normalize_request(r)["job_id"] for r in requests]

    def fleet_ready() -> bool:
        if not (state / "fleet.pid").exists():
            return False
        if not (state / "fleet.endpoint").exists():
            return False
        return all(
            (state / f"shard-{i}" / "serve.pid").exists()
            for i in range(shards)
        )

    def fleet_completions() -> Dict[str, int]:
        done: Dict[str, int] = {}
        for shard_dir in sorted(state.glob("shard-*")):
            journal_state = JobJournal.read_state(shard_dir / "journal")
            for job_id, job in journal_state.jobs.items():
                if job_id in ids:
                    done[job_id] = done.get(job_id, 0) + job.completions
        return done

    fleet = _spawn_fleet(
        workdir, state, shards, "fleet.log", bind="tcp:127.0.0.1:0"
    )
    try:
        if not _wait_for(fleet_ready, timeout_sec):
            report.violations.append(
                f"[fleet-fetch] fleet never became ready within "
                f"{timeout_sec}s"
            )
            return
        endpoint = (state / "fleet.endpoint").read_text().strip()
        phase["endpoint"] = endpoint
        responses = submit_via_socket(endpoint, requests)
        if any(r.get("status") != "accepted" for r in responses):
            report.violations.append(
                "[fleet-fetch] not every submission was accepted: "
                f"{responses[:3]}"
            )
            return
        if not _wait_for(
            lambda: sum(
                1 for n in fleet_completions().values() if n >= 1
            ) >= jobs,
            timeout_sec,
        ):
            report.violations.append(
                f"[fleet-fetch] only "
                f"{sum(1 for n in fleet_completions().values() if n >= 1)}"
                f"/{jobs} jobs completed within {timeout_sec}s"
            )
            return
        client = ResilientClient(endpoint, deadline_sec=timeout_sec)
        fetched_ok = 0
        for job_id in ids:
            response = client.fetch(job_id, wait=True)
            if response.get("status") != "ok":
                report.violations.append(
                    f"[fleet-fetch] fetch({job_id[:12]}) through the "
                    f"router ended {response.get('status')!r}: {response}"
                )
                continue
            if not response.get("shard"):
                report.violations.append(
                    f"[fleet-fetch] fetch({job_id[:12]}) response is "
                    "missing its shard annotation"
                )
            if (response.get("result") or {}).get("status") != "ok":
                report.violations.append(
                    f"[fleet-fetch] fetch({job_id[:12]}) served a "
                    "non-ok payload"
                )
                continue
            fetched_ok += 1
        phase["fetched_ok"] = fetched_ok
        unknown = fetch_result(endpoint, "f" * 64)
        phase["unknown_status"] = unknown.get("status")
        if unknown.get("status") != "not_found":
            report.violations.append(
                "[fleet-fetch] fetch of an unknown job_id was "
                f"{unknown.get('status')!r}, expected not_found"
            )
        fleet.send_signal(_signal.SIGTERM)
        try:
            phase["drain_exit_code"] = fleet.wait(timeout=60)
        except Exception:  # noqa: BLE001
            report.violations.append("[fleet-fetch] fleet did not drain")
            return
    finally:
        if fleet.poll() is None:
            fleet.kill()
            fleet.wait(timeout=10)
    if phase.get("drain_exit_code") != 0:
        report.violations.append(
            f"[fleet-fetch] drain exited {phase.get('drain_exit_code')}, "
            "expected 0"
        )
    done = fleet_completions()
    for job_id in ids:
        if done.get(job_id, 0) != 1:
            report.violations.append(
                f"[fleet-fetch] job {job_id[:12]} completed "
                f"{done.get(job_id, 0)} times fleet-wide (exactly-once "
                "violated)"
            )


def run_storage_campaign(
    workdir,
    seed: int = 7,
    jobs: int = 6,
    timeout_sec: float = 90.0,
) -> StorageChaosReport:
    """Prove the durable result plane under disk faults (DESIGN.md §15).

    1. **bitrot** — a daemon completes ``jobs`` drill jobs and is
       SIGKILLed; one WAL ``completed`` record and one result file are
       then bit-flipped.  The restarted daemon must quarantine a copy
       of the damaged segment, surface ``serve.journal.corrupt_records``
       plus a ``journal_corruption`` flight dump, repair the WAL victim
       from its intact checksummed artifact, read-repair (quarantine +
       re-execute) the corrupt result on fetch, and serve every job's
       result clean — with exactly one completion per job at the end.
    2. **enospc** — an in-process daemon's WAL handle is wrapped so
       writes fail with ``ENOSPC``: admission must degrade to
       ``rejected: disk_full`` with a retry-after hint (never crash),
       and the state must self-clear via the disk probe once writes
       succeed again.
    3. **killwindow** — the exact on-disk state of a SIGKILL landing
       between result-write and journal-append is fabricated; recovery
       must journal the completion from the verified artifact instead
       of re-running the job (zero lost, zero double-completed).
    4. **fleet-fetch** — a 2-shard TCP fleet completes ``jobs`` more
       jobs; every result must come back ``ok`` *through the router*
       (job-id hashing + fan-out), an unknown id must be ``not_found``,
       and the fleet-wide ledger must stay exactly-once.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    report = StorageChaosReport(seed=seed)
    _storage_bitrot_phase(report, workdir / "bitrot", seed, jobs, timeout_sec)
    _storage_enospc_phase(report, workdir / "enospc", seed + 1, timeout_sec)
    _storage_killwindow_phase(
        report, workdir / "killwindow", seed + 2, timeout_sec
    )
    _storage_fleet_phase(
        report, workdir / "fleet", seed + 3, jobs, timeout_sec
    )
    return report
