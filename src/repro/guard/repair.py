"""Trace sanitize/repair pipeline (the hardening half of repro.guard).

Real packet traces are messy: capture glitches duplicate transmission
ids, clock skew makes deliveries precede sends, a logger hiccup writes
NaN timestamps.  The paper's whole pipeline (§2–§4) sits downstream of
these files, so every loader accepts a *repair policy*:

``strict``
    Invariant violations raise (today's behaviour, the default).
``repair``
    Violations are fixed record-by-record — duplicates dropped, negative
    delays voided to loss, non-finite fields removed — and the actions
    are counted in :class:`RepairReport` and the ``guard.repairs``
    metric.
``skip``
    Violations are tolerated: the trace loads as-is (malformed *lines*
    are still skipped by the I/O layer) and the caller deals with it.

The contract: :func:`repair_trace` output always passes
:func:`repro.trace.validate.validate_trace` for the structural
invariants it knows how to fix, and every mutation is counted so a
"repaired" fit is never silently indistinguishable from a clean one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.trace.records import PacketRecord, Trace

_log = obs.get_logger("repro.guard")

#: The three load-time policies understood across the stack.
REPAIR_POLICIES = ("strict", "repair", "skip")

#: Delays beyond this are voided to loss under ``repair`` (mirrors the
#: validator's default plausibility ceiling).
MAX_PLAUSIBLE_DELAY = 60.0


def check_policy(policy: str) -> str:
    if policy not in REPAIR_POLICIES:
        raise ValueError(
            f"unknown repair policy {policy!r}; use one of {REPAIR_POLICIES}"
        )
    return policy


@dataclass
class RepairReport:
    """What :func:`repair_trace` did to one trace."""

    trace: Trace
    #: Action name -> how many records it touched.
    actions: Dict[str, int] = field(default_factory=dict)
    #: Records removed outright (subset of the actions above).
    dropped: int = 0

    @property
    def repaired(self) -> bool:
        return bool(self.actions)

    @property
    def total_repairs(self) -> int:
        return sum(self.actions.values())

    def describe(self) -> Dict[str, object]:
        return {
            "flow_id": self.trace.flow_id,
            "actions": dict(self.actions),
            "dropped": self.dropped,
        }


def _finite(x: float) -> bool:
    return isinstance(x, (int, float)) and math.isfinite(x)


def repair_trace(
    trace: Trace,
    min_plausible_delay: float = 1e-6,
    max_plausible_delay: float = MAX_PLAUSIBLE_DELAY,
) -> RepairReport:
    """Fix every structural invariant violation the validator can flag.

    Record-level repairs, in order:

    * drop records whose ``sent_at`` is non-finite or negative, or whose
      ``size`` is non-finite or non-positive (nothing downstream can use
      them);
    * drop all but the first record sharing a transmission ``uid``;
    * void deliveries that precede their send (clock skew) or exceed the
      plausibility ceiling to loss (``delivered_at = nan`` — the paper's
      "infinite delay" encoding), likewise ``±inf`` deliveries;
    * re-flag duplicate first-transmission sequence numbers as
      retransmits (keeping the earliest as the original);
    * extend a declared duration that the send timestamps overrun.

    The input trace is never mutated; the report's ``trace`` is a new
    object (or the input itself when nothing needed fixing).
    """
    actions: Dict[str, int] = {}

    def note(action: str, count: int = 1) -> None:
        if count:
            actions[action] = actions.get(action, 0) + count

    kept: List[PacketRecord] = []
    seen_uids = set()
    dropped = 0
    changed = False
    for r in trace.records:  # already sorted by (sent_at, uid)
        if not _finite(r.sent_at) or r.sent_at < 0:
            note("drop_bad_sent_at")
            dropped += 1
            changed = True
            continue
        if not _finite(r.size) or r.size <= 0:
            note("drop_bad_size")
            dropped += 1
            changed = True
            continue
        if r.uid in seen_uids:
            note("drop_duplicate_uid")
            dropped += 1
            changed = True
            continue
        seen_uids.add(r.uid)

        delivered = r.delivered_at
        if not math.isnan(delivered) and not math.isfinite(delivered):
            note("void_nonfinite_delivery")
            delivered = math.nan
        elif not math.isnan(delivered):
            delay = delivered - r.sent_at
            if delay < min_plausible_delay:
                note("void_negative_delay")
                delivered = math.nan
            elif delay > max_plausible_delay:
                note("void_implausible_delay")
                delivered = math.nan
        if delivered is not r.delivered_at and not (
            math.isnan(delivered) and math.isnan(r.delivered_at)
        ):
            r = PacketRecord(
                uid=r.uid,
                seq=r.seq,
                size=r.size,
                sent_at=r.sent_at,
                delivered_at=delivered,
                is_retransmit=r.is_retransmit,
            )
            changed = True
        kept.append(r)

    # Duplicate first-transmission seqs: the earliest stays the
    # original, later copies become retransmits.
    seen_seqs = set()
    for k, r in enumerate(kept):
        if r.is_retransmit:
            continue
        if r.seq in seen_seqs:
            note("mark_retransmit")
            kept[k] = PacketRecord(
                uid=r.uid,
                seq=r.seq,
                size=r.size,
                sent_at=r.sent_at,
                delivered_at=r.delivered_at,
                is_retransmit=True,
            )
            changed = True
        else:
            seen_seqs.add(r.seq)

    duration = trace.duration
    if not _finite(duration) or duration <= 0:
        note("fix_duration")
        duration = max((r.sent_at for r in kept), default=0.0) + 1e-3
        changed = True
    max_sent = max((r.sent_at for r in kept), default=0.0)
    if max_sent > duration + 1e-9:
        note("extend_duration")
        duration = max_sent + 1e-9
        changed = True

    if not changed:
        return RepairReport(trace=trace)

    repaired = Trace(
        trace.flow_id,
        kept,
        duration=duration,
        protocol=trace.protocol,
        metadata={**trace.metadata, "repaired": dict(actions)},
    )
    report = RepairReport(trace=repaired, actions=actions, dropped=dropped)
    obs.metrics().counter("guard.repairs").inc(report.total_repairs)
    _log.warning(
        "guard.trace_repaired",
        flow_id=trace.flow_id,
        dropped=dropped,
        **actions,
    )
    return report


def sanitize_trace(trace: Trace, policy: str = "strict") -> Trace:
    """Apply a repair policy to an already-loaded trace.

    ``strict`` raises on any invariant violation (via
    :func:`repro.trace.validate.assert_valid`); ``repair`` returns the
    repaired trace; ``skip`` returns the input untouched.
    """
    from repro.trace.validate import assert_valid

    check_policy(policy)
    if policy == "skip":
        return trace
    if policy == "strict":
        assert_valid(trace)
        return trace
    return repair_trace(trace).trace
