"""repro.guard — fault injection and the hardening that answers it.

Two halves that prove each other (DESIGN.md §9):

* :mod:`repro.guard.chaos` — deterministic, seeded fault injectors for
  traces (duplicate uids, clock skew, NaN bursts, truncation, field
  corruption), the runtime (worker crashes / kills / hangs, torn cache
  writes), and a replayable campaign (``repro chaos --seed 7``);
* :mod:`repro.guard.repair` — the trace sanitize/repair pipeline behind
  the ``strict|repair|skip`` load policies;
* :mod:`repro.guard.numeric` — training watchdogs: NaN/Inf update
  vetoes, gradient-explosion detection, best-so-far rollback.

Every guard emits ``repro.obs`` signals (``guard.repairs``,
``guard.skipped_updates``, ``guard.divergence_rollbacks``,
``cache.quarantined``, ``chaos.injected``) so a run that survived a
fault is never silently indistinguishable from a clean one.

Typical use::

    from repro.guard import repair_trace, run_campaign

    report = repair_trace(messy_trace)
    print(report.actions)          # {"drop_duplicate_uid": 3, ...}

    campaign = run_campaign("/tmp/chaos", seed=7, policy="repair")
    assert campaign.ok, campaign.format_report()
"""

from repro.guard.chaos import (
    FILE_FAULTS,
    TRACE_FAULTS,
    ChaosReport,
    FleetChaosReport,
    ServiceChaosReport,
    TransportChaosReport,
    chaos_worker,
    inject_file_fault,
    inject_trace_fault,
    make_chaos_job,
    run_campaign,
    run_fleet_campaign,
    run_service_campaign,
    run_transport_campaign,
    tear_cache_entry,
)
from repro.guard.netchaos import NetChaosConfig, NetChaosProxy
from repro.guard.numeric import DivergenceGuard, sanitize_training_arrays
from repro.guard.repair import (
    MAX_PLAUSIBLE_DELAY,
    REPAIR_POLICIES,
    RepairReport,
    check_policy,
    repair_trace,
    sanitize_trace,
)

__all__ = [
    "FILE_FAULTS",
    "TRACE_FAULTS",
    "ChaosReport",
    "FleetChaosReport",
    "NetChaosConfig",
    "NetChaosProxy",
    "ServiceChaosReport",
    "TransportChaosReport",
    "chaos_worker",
    "inject_file_fault",
    "inject_trace_fault",
    "make_chaos_job",
    "run_campaign",
    "run_fleet_campaign",
    "run_service_campaign",
    "run_transport_campaign",
    "tear_cache_entry",
    "DivergenceGuard",
    "sanitize_training_arrays",
    "MAX_PLAUSIBLE_DELAY",
    "REPAIR_POLICIES",
    "RepairReport",
    "check_policy",
    "repair_trace",
    "sanitize_trace",
]
