"""Loss functions (value + gradient in one call).

Each loss returns ``(scalar_mean_loss, gradient_wrt_inputs)`` so callers
can feed the gradient straight into ``backward`` chains.  All losses accept
an optional boolean ``mask`` (True = contribute) so padded or lost-packet
positions can be excluded; means are over unmasked elements.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

LOG_2PI = float(np.log(2.0 * np.pi))
_MIN_SIGMA = 1e-4


def _apply_mask(mask: Optional[np.ndarray], shape) -> Tuple[np.ndarray, float]:
    if mask is None:
        m = np.ones(shape, dtype=float)
    else:
        m = mask.astype(float)
        if m.shape != shape:
            raise ValueError(f"mask shape {m.shape} != data shape {shape}")
    count = float(m.sum())
    return m, max(count, 1.0)


def mse(
    pred: np.ndarray, target: np.ndarray, mask: Optional[np.ndarray] = None
) -> Tuple[float, np.ndarray]:
    """Mean squared error; gradient w.r.t. ``pred``."""
    m, count = _apply_mask(mask, pred.shape)
    diff = (pred - target) * m
    loss = float((diff**2).sum() / count)
    grad = 2.0 * diff / count
    return loss, grad


def gaussian_nll(
    mu: np.ndarray,
    log_sigma: np.ndarray,
    target: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray, np.ndarray]:
    """Negative log-likelihood of ``target`` under N(mu, sigma^2).

    This is the loss that trains the paper's Gaussian output head
    ("We model P as a Gaussian N(w1^T h_t, w2^T h_t)", §4.1).  Returns
    (loss, dL/dmu, dL/dlog_sigma).  ``log_sigma`` is clamped from below so
    the variance cannot collapse.
    """
    m, count = _apply_mask(mask, mu.shape)
    log_sigma_clamped = np.maximum(log_sigma, np.log(_MIN_SIGMA))
    sigma = np.exp(log_sigma_clamped)
    z = (target - mu) / sigma
    nll = 0.5 * LOG_2PI + log_sigma_clamped + 0.5 * z**2
    loss = float((nll * m).sum() / count)
    grad_mu = (-z / sigma) * m / count
    grad_log_sigma = (1.0 - z**2) * m / count
    # No gradient through the clamp.
    grad_log_sigma = np.where(
        log_sigma > np.log(_MIN_SIGMA), grad_log_sigma, 0.0
    )
    return loss, grad_mu, grad_log_sigma


def binary_cross_entropy_with_logits(
    logits: np.ndarray,
    target: np.ndarray,
    mask: Optional[np.ndarray] = None,
    pos_weight: float = 1.0,
) -> Tuple[float, np.ndarray]:
    """Numerically stable BCE on logits; gradient w.r.t. logits.

    ``pos_weight`` scales the positive-class term — reordering events are
    rare (~2 % of packets in Fig. 8), so the reorder classifiers train with
    ``pos_weight > 1``.
    """
    m, count = _apply_mask(mask, logits.shape)
    # log(1 + exp(-|x|)) formulation.
    abs_logits = np.abs(logits)
    log1pexp = np.log1p(np.exp(-abs_logits)) + np.maximum(logits, 0.0) - logits * target
    weights = np.where(target > 0.5, pos_weight, 1.0)
    loss = float((weights * log1pexp * m).sum() / count)
    probs = 1.0 / (1.0 + np.exp(-logits))
    grad = weights * (probs - target) * m / count
    return loss, grad
