"""A from-scratch numpy neural-network substrate.

The paper trains a multi-layer LSTM state-space model (Fig. 6) in PyTorch
on a V100.  Offline we have only numpy/scipy, so this subpackage provides
everything iBoxML needs, implemented from first principles:

* parameter containers and initializers;
* a dense layer and a stacked LSTM with full backpropagation through time;
* Gaussian negative-log-likelihood, Bernoulli cross-entropy and MSE losses;
* SGD and Adam with global-norm gradient clipping;
* feature standardisation;
* a sequence-model trainer (teacher forcing) and free-running unroller;
* a standalone logistic-regression classifier (the "lightweight and much
  faster linear model" of §5.1).

Gradients are verified against finite differences in the test suite.
"""

from repro.ml import initializers, losses
from repro.ml.layers import Dense, Parameter
from repro.ml.lstm import LSTM, LSTMCell
from repro.ml.optim import SGD, Adam, clip_gradients_by_global_norm
from repro.ml.scalers import StandardScaler
from repro.ml.model import (
    BernoulliSequenceModel,
    GaussianSequenceModel,
    TrainingLog,
)
from repro.ml.logistic import LogisticRegression

__all__ = [
    "Adam",
    "BernoulliSequenceModel",
    "Dense",
    "GaussianSequenceModel",
    "LSTM",
    "LSTMCell",
    "LogisticRegression",
    "Parameter",
    "SGD",
    "StandardScaler",
    "TrainingLog",
    "clip_gradients_by_global_norm",
    "initializers",
    "losses",
]
