"""Optimizers and gradient clipping."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.ml.layers import Parameter


def clip_gradients_by_global_norm(
    params: List[Parameter], max_norm: float
) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for training diagnostics); essential
    for stable LSTM training.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for p in params:
        total += float((p.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            p.grad *= scale
    return norm


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        params: List[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0 <= momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        self.params = params
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if self.momentum > 0:
                v *= self.momentum
                v += p.grad
                p.value -= self.lr * v
            else:
                p.value -= self.lr * p.grad


class Adam:
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        params: List[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.params = params
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.value) for p in params]
        self._v = [np.zeros_like(p.value) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            m *= self.beta1
            m += (1 - self.beta1) * p.grad
            v *= self.beta2
            v += (1 - self.beta2) * p.grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
