"""The Gaussian state-space sequence model (the paper's Fig. 6 skeleton).

A stacked LSTM encodes the input features (and previous delay) into an
embedding ``h_t`` — the latent "network state" — and two affine heads map
``h_t`` to the mean and log-standard-deviation of a Gaussian over the next
delay.  Training is teacher-forced maximum likelihood; inference unrolls
the LSTM step by step with predicted delays fed back (the blue dashed lines
in Fig. 6), which the owning :class:`repro.core.iboxml.IBoxMLModel`
orchestrates because the feedback loop is domain logic.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.ml.layers import Dense, Module
from repro.ml.losses import binary_cross_entropy_with_logits, gaussian_nll
from repro.ml.lstm import LSTM
from repro.ml.optim import Adam, clip_gradients_by_global_norm

_log = obs.get_logger("repro.ml")


@dataclass
class TrainingLog:
    """Per-epoch mean training loss (and gradient-norm) history."""

    losses: List[float] = field(default_factory=list)
    grad_norms: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    def improved(self) -> bool:
        """True if training loss decreased from first to last epoch."""
        return len(self.losses) >= 2 and self.losses[-1] < self.losses[0]


class GaussianSequenceModel(Module):
    """Stacked LSTM + Gaussian (mu, log_sigma) output heads."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int = 32,
        num_layers: int = 2,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        self.lstm = LSTM(input_dim, hidden_dim, num_layers, rng)
        self.head_mu = Dense(hidden_dim, 1, rng, name="head_mu")
        self.head_log_sigma = Dense(hidden_dim, 1, rng, name="head_log_sigma")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers

    # ------------------------------------------------------------------
    # Batched training forward/backward
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``x``: (B, T, D) -> (mu, log_sigma), each (B, T)."""
        hs = self.lstm.forward(x)
        mu = self.head_mu.forward(hs)[..., 0]
        log_sigma = self.head_log_sigma.forward(hs)[..., 0]
        return mu, log_sigma

    def backward(self, grad_mu: np.ndarray, grad_log_sigma: np.ndarray) -> None:
        grad_h = self.head_mu.backward(grad_mu[..., None])
        grad_h = grad_h + self.head_log_sigma.backward(
            grad_log_sigma[..., None]
        )
        self.lstm.backward(grad_h)

    # ------------------------------------------------------------------
    # Training loop (teacher forcing)
    # ------------------------------------------------------------------
    def fit(
        self,
        sequences: Sequence[np.ndarray],
        targets: Sequence[np.ndarray],
        masks: Optional[Sequence[np.ndarray]] = None,
        epochs: int = 20,
        batch_size: int = 8,
        lr: float = 3e-3,
        clip_norm: float = 5.0,
        seed: int = 0,
        verbose: bool = False,
        max_grad_norm: float = 1e4,
    ) -> TrainingLog:
        """Teacher-forced maximum-likelihood training.

        ``sequences[i]`` has shape (T_i, D); ``targets[i]`` shape (T_i,).
        ``masks[i]`` (optional, boolean) excludes positions (lost packets)
        from the loss.  Variable lengths are padded per batch; padding is
        always masked out.

        Training is watched by a :class:`repro.guard.DivergenceGuard`:
        updates with non-finite loss or pre-clip gradient norm beyond
        ``max_grad_norm`` are skipped, and a run that ends diverged
        rolls the parameters back to the best finite epoch instead of
        returning garbage.
        """
        from repro.guard.numeric import DivergenceGuard

        if len(sequences) != len(targets):
            raise ValueError("sequences and targets must align")
        if masks is not None and len(masks) != len(sequences):
            raise ValueError("masks must align with sequences")
        rng = np.random.default_rng(seed)
        optimizer = Adam(self.parameters(), lr=lr)
        guard = DivergenceGuard(
            self, max_grad_norm=max_grad_norm, label="gaussian"
        )
        log = TrainingLog()
        indices = np.arange(len(sequences))
        with obs.span(
            "ml.train", model="gaussian", epochs=epochs,
            sequences=len(sequences),
        ):
            for epoch in range(epochs):
                epoch_start = time.perf_counter()
                rng.shuffle(indices)
                epoch_loss = 0.0
                epoch_norm = 0.0
                batches = 0
                for start in range(0, len(indices), batch_size):
                    batch_idx = indices[start : start + batch_size]
                    x, y, mask = _pad_batch(
                        [sequences[i] for i in batch_idx],
                        [targets[i] for i in batch_idx],
                        [masks[i] for i in batch_idx] if masks is not None else None,
                    )
                    self.zero_grad()
                    mu, log_sigma = self.forward(x)
                    loss, grad_mu, grad_log_sigma = gaussian_nll(
                        mu, log_sigma, y, mask
                    )
                    norm = float("nan")
                    if guard.allow_update(loss, 0.0):
                        self.backward(grad_mu, grad_log_sigma)
                        norm = clip_gradients_by_global_norm(
                            self.parameters(), clip_norm
                        )
                        if guard.allow_update(loss, norm):
                            optimizer.step()
                    epoch_loss += loss
                    if math.isfinite(norm):
                        epoch_norm += norm
                    batches += 1
                log.losses.append(epoch_loss / max(batches, 1))
                log.grad_norms.append(epoch_norm / max(batches, 1))
                guard.note_epoch(log.losses[-1])
                obs.metrics().histogram("ml.sec_per_epoch").observe(
                    time.perf_counter() - epoch_start
                )
                _log.log(
                    "info" if verbose else "debug",
                    "train.epoch",
                    model="gaussian",
                    epoch=epoch + 1,
                    epochs=epochs,
                    nll=round(log.losses[-1], 6),
                    grad_norm=round(log.grad_norms[-1], 4),
                )
        guard.finalize(log.final_loss)
        return log

    # ------------------------------------------------------------------
    # Step inference (free-running unroll)
    # ------------------------------------------------------------------
    def step(
        self, x_t: np.ndarray, states: Optional[list]
    ) -> Tuple[np.ndarray, np.ndarray, list]:
        """One inference step.

        ``x_t``: (B, D).  Returns (mu, sigma, new_states), each (B,).
        """
        h, new_states = self.lstm.step(x_t, states)
        mu = (h @ self.head_mu.W.value + self.head_mu.b.value)[:, 0]
        log_sigma = (
            h @ self.head_log_sigma.W.value + self.head_log_sigma.b.value
        )[:, 0]
        return mu, np.exp(log_sigma), new_states


class BernoulliSequenceModel(Module):
    """Stacked LSTM + logit head: per-timestep binary event probability.

    Used by the §5.1 LSTM reorder predictor ("we train an LSTM model
    (similar to that in Fig. 6) to predict whether a packet should be
    reordered").  Rare events are handled with a positive-class weight.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int = 16,
        num_layers: int = 1,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        self.lstm = LSTM(input_dim, hidden_dim, num_layers, rng)
        self.head = Dense(hidden_dim, 1, rng, name="head_logit")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers

    def forward(self, x: np.ndarray) -> np.ndarray:
        """``x``: (B, T, D) -> logits (B, T)."""
        hs = self.lstm.forward(x)
        return self.head.forward(hs)[..., 0]

    def backward(self, grad_logits: np.ndarray) -> None:
        grad_h = self.head.backward(grad_logits[..., None])
        self.lstm.backward(grad_h)

    def fit(
        self,
        sequences: Sequence[np.ndarray],
        labels: Sequence[np.ndarray],
        masks: Optional[Sequence[np.ndarray]] = None,
        epochs: int = 20,
        batch_size: int = 8,
        lr: float = 3e-3,
        clip_norm: float = 5.0,
        pos_weight: float = 1.0,
        seed: int = 0,
        verbose: bool = False,
        max_grad_norm: float = 1e4,
    ) -> TrainingLog:
        """Teacher-free BCE training on (T_i, D) sequences of binary labels."""
        from repro.guard.numeric import DivergenceGuard

        if len(sequences) != len(labels):
            raise ValueError("sequences and labels must align")
        rng = np.random.default_rng(seed)
        optimizer = Adam(self.parameters(), lr=lr)
        guard = DivergenceGuard(
            self, max_grad_norm=max_grad_norm, label="bernoulli"
        )
        log = TrainingLog()
        indices = np.arange(len(sequences))
        with obs.span(
            "ml.train", model="bernoulli", epochs=epochs,
            sequences=len(sequences),
        ):
            for epoch in range(epochs):
                epoch_start = time.perf_counter()
                rng.shuffle(indices)
                epoch_loss, batches = 0.0, 0
                for start in range(0, len(indices), batch_size):
                    batch_idx = indices[start : start + batch_size]
                    x, y, mask = _pad_batch(
                        [sequences[i] for i in batch_idx],
                        [labels[i].astype(float) for i in batch_idx],
                        [masks[i] for i in batch_idx] if masks is not None else None,
                    )
                    self.zero_grad()
                    logits = self.forward(x)
                    loss, grad = binary_cross_entropy_with_logits(
                        logits, y, mask, pos_weight=pos_weight
                    )
                    if guard.allow_update(loss, 0.0):
                        self.backward(grad)
                        norm = clip_gradients_by_global_norm(
                            self.parameters(), clip_norm
                        )
                        if guard.allow_update(loss, norm):
                            optimizer.step()
                        log.grad_norms.append(norm)
                    epoch_loss += loss
                    batches += 1
                log.losses.append(epoch_loss / max(batches, 1))
                guard.note_epoch(log.losses[-1])
                obs.metrics().histogram("ml.sec_per_epoch").observe(
                    time.perf_counter() - epoch_start
                )
                _log.log(
                    "info" if verbose else "debug",
                    "train.epoch",
                    model="bernoulli",
                    epoch=epoch + 1,
                    epochs=epochs,
                    bce=round(log.losses[-1], 6),
                )
        guard.finalize(log.final_loss)
        return log

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Event probabilities for one (T, D) sequence."""
        logits = self.forward(x[None, :, :])[0]
        return 1.0 / (1.0 + np.exp(-logits))


def _pad_batch(
    xs: List[np.ndarray],
    ys: List[np.ndarray],
    ms: Optional[List[np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pad variable-length sequences into (B, T, D)/(B, T) plus mask."""
    batch = len(xs)
    max_t = max(x.shape[0] for x in xs)
    dim = xs[0].shape[1]
    x_out = np.zeros((batch, max_t, dim))
    y_out = np.zeros((batch, max_t))
    m_out = np.zeros((batch, max_t), dtype=bool)
    for k, (x, y) in enumerate(zip(xs, ys)):
        t = x.shape[0]
        if y.shape[0] != t:
            raise ValueError("sequence/target length mismatch")
        x_out[k, :t] = x
        y_out[k, :t] = y
        if ms is not None:
            m_out[k, :t] = ms[k]
        else:
            m_out[k, :t] = True
    return x_out, y_out, m_out
