"""Weight initializers."""

from __future__ import annotations

import numpy as np


def zeros(shape, rng: np.random.Generator) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape)


def glorot_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a), a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialization (recommended for recurrent kernels)."""
    if len(shape) != 2:
        raise ValueError("orthogonal init requires a 2-D shape")
    rows, cols = shape
    size = max(rows, cols)
    a = rng.normal(0.0, 1.0, size=(size, size))
    q, r = np.linalg.qr(a)
    # Sign correction so the distribution is uniform over orthogonal mats.
    q = q * np.sign(np.diag(r))
    return gain * q[:rows, :cols]


def _fans(shape) -> tuple:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[0] * receptive, shape[1] * receptive
