"""Parameter container and the dense layer."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.ml import initializers


class Parameter:
    """A trainable tensor with its gradient accumulator."""

    __slots__ = ("name", "value", "grad")

    def __init__(self, name: str, value: np.ndarray):
        self.name = name
        self.value = np.asarray(value, dtype=float)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    @property
    def shape(self):
        return self.value.shape

    def __repr__(self) -> str:
        return f"Parameter({self.name}, shape={self.value.shape})"


class Module:
    """Minimal base: parameter registry + (de)serialisation."""

    def parameters(self) -> List[Parameter]:
        """All trainable parameters, depth-first."""
        params: List[Parameter] = []
        for value in vars(self).values():
            if isinstance(value, Parameter):
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Parameter):
                        params.append(item)
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.value.size for p in self.parameters())

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Parameter name -> value copy (names must be unique)."""
        state = {}
        for p in self.parameters():
            if p.name in state:
                raise ValueError(f"duplicate parameter name: {p.name}")
            state[p.name] = p.value.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for p in self.parameters():
            if p.name not in state:
                raise KeyError(f"missing parameter in state dict: {p.name}")
            if state[p.name].shape != p.value.shape:
                raise ValueError(
                    f"shape mismatch for {p.name}: "
                    f"{state[p.name].shape} vs {p.value.shape}"
                )
            p.value[...] = state[p.name]


class Dense(Module):
    """Affine layer ``y = x @ W + b`` with optional activation.

    Supported activations: ``None`` (linear), ``"tanh"``, ``"relu"``,
    ``"sigmoid"``.  ``backward`` consumes the upstream gradient dL/dy and
    returns dL/dx while accumulating parameter gradients.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        activation: Optional[str] = None,
        name: str = "dense",
    ):
        if activation not in (None, "tanh", "relu", "sigmoid"):
            raise ValueError(f"unknown activation: {activation!r}")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.W = Parameter(
            f"{name}.W", initializers.glorot_uniform((in_dim, out_dim), rng)
        )
        self.b = Parameter(f"{name}.b", np.zeros(out_dim))
        self._x: Optional[np.ndarray] = None
        self._pre: Optional[np.ndarray] = None
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """``x`` has shape (..., in_dim); output (..., out_dim)."""
        self._x = x
        pre = x @ self.W.value + self.b.value
        self._pre = pre
        if self.activation is None:
            out = pre
        elif self.activation == "tanh":
            out = np.tanh(pre)
        elif self.activation == "relu":
            out = np.maximum(pre, 0.0)
        else:  # sigmoid
            out = _sigmoid(pre)
        self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return gradient w.r.t. the input."""
        if self._x is None:
            raise RuntimeError("backward called before forward")
        if self.activation is None:
            grad_pre = grad_out
        elif self.activation == "tanh":
            grad_pre = grad_out * (1.0 - self._out**2)
        elif self.activation == "relu":
            grad_pre = grad_out * (self._pre > 0)
        else:  # sigmoid
            grad_pre = grad_out * self._out * (1.0 - self._out)
        flat_x = self._x.reshape(-1, self.in_dim)
        flat_g = grad_pre.reshape(-1, self.out_dim)
        self.W.grad += flat_x.T @ flat_g
        self.b.grad += flat_g.sum(axis=0)
        return grad_pre @ self.W.value.T

    __call__ = forward


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    ex = np.exp(x[~positive])
    out[~positive] = ex / (1.0 + ex)
    return out
