"""Linear logistic regression.

§5.1: "we train a lightweight and much faster linear logistic regression
model that also achieves a good match" for predicting per-packet
reordering.  Trained by full-batch gradient descent with L2 regularisation
on standardised features.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.scalers import StandardScaler


class LogisticRegression:
    """Binary logistic regression with internal feature scaling."""

    def __init__(
        self,
        lr: float = 0.5,
        epochs: int = 300,
        l2: float = 1e-4,
        pos_weight: float = 1.0,
        seed: int = 0,
    ):
        self.lr = lr
        self.epochs = epochs
        self.l2 = l2
        self.pos_weight = pos_weight
        self.seed = seed
        self.weights_: Optional[np.ndarray] = None
        self.bias_: float = 0.0
        self.scaler_ = StandardScaler()

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """``x``: (N, D) features; ``y``: (N,) binary labels."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or y.shape != (x.shape[0],):
            raise ValueError("x must be (N, D) and y (N,)")
        xs = self.scaler_.fit_transform(x)
        n, d = xs.shape
        rng = np.random.default_rng(self.seed)
        w = rng.normal(0.0, 0.01, size=d)
        b = 0.0
        sample_weights = np.where(y > 0.5, self.pos_weight, 1.0)
        weight_total = sample_weights.sum()
        for _ in range(self.epochs):
            logits = xs @ w + b
            probs = _sigmoid(logits)
            err = sample_weights * (probs - y)
            grad_w = xs.T @ err / weight_total + self.l2 * w
            grad_b = err.sum() / weight_total
            w -= self.lr * grad_w
            b -= self.lr * grad_b
        self.weights_ = w
        self.bias_ = b
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """P(y=1 | x) for each row."""
        if self.weights_ is None:
            raise RuntimeError("model used before fit()")
        xs = self.scaler_.transform(np.asarray(x, dtype=float))
        return _sigmoid(xs @ self.weights_ + self.bias_)

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(x) >= threshold).astype(int)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Accuracy."""
        return float((self.predict(x) == np.asarray(y)).mean())


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=float)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    ex = np.exp(x[~positive])
    out[~positive] = ex / (1.0 + ex)
    return out
