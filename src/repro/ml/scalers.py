"""Feature standardisation."""

from __future__ import annotations

from typing import Optional

import numpy as np


class StandardScaler:
    """Per-column z-normalisation, tolerant of constant columns.

    ``fit`` accepts (N, D) or (B, T, D) arrays; statistics are computed
    over all leading axes.
    """

    def __init__(self):
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        flat = np.asarray(x, dtype=float).reshape(-1, x.shape[-1])
        self.mean_ = flat.mean(axis=0)
        std = flat.std(axis=0)
        self.std_ = np.where(std < 1e-12, 1.0, std)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return (np.asarray(x, dtype=float) - self.mean_) / self.std_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return np.asarray(x, dtype=float) * self.std_ + self.mean_

    def transform_column(self, x: np.ndarray, column: int) -> np.ndarray:
        """Scale a single column's values (e.g. the target delay)."""
        self._check_fitted()
        return (np.asarray(x, dtype=float) - self.mean_[column]) / self.std_[column]

    def inverse_transform_column(self, x: np.ndarray, column: int) -> np.ndarray:
        self._check_fitted()
        return np.asarray(x, dtype=float) * self.std_[column] + self.mean_[column]

    def _check_fitted(self) -> None:
        if self.mean_ is None:
            raise RuntimeError("scaler used before fit()")
