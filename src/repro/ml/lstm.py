"""Stacked LSTM with full backpropagation through time.

Gate layout follows the usual convention: for input ``x_t`` and previous
hidden state ``h_{t-1}``,

    z = [x_t, h_{t-1}] @ W + b          (z split into i, f, g, o)
    i = sigmoid(z_i)   f = sigmoid(z_f)
    g = tanh(z_g)      o = sigmoid(z_o)
    c_t = f * c_{t-1} + i * g
    h_t = o * tanh(c_t)

The forget-gate bias is initialised to 1 (standard practice; helps gradient
flow early in training).  ``forward`` runs a whole (B, T, D) batch and
caches activations; ``backward`` consumes dL/dh of shape (B, T, H) and
returns dL/dx, accumulating parameter gradients.  Stateful single-step
``step``/``step_grad``-free inference is used by the free-running unroll.

Hot-path layout (see PERFORMANCE.md): the fused weight ``W`` stacks the
input block ``W_x`` (input_dim rows) on top of the recurrent block ``W_h``
(hidden_dim rows), so ``[x, h] @ W == x @ W_x + h @ W_h``.  Splitting lets
``forward`` compute the input projection for *every* timestep in one GEMM
up front — only the recurrent term ``h @ W_h`` is inherently sequential —
and lets ``step`` skip the per-call ``np.concatenate``.  The split views
are cached per layer and rebuilt automatically if the parameter buffer is
ever replaced (in-place optimizer updates keep them valid for free).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.ml import initializers
from repro.ml.layers import Module, Parameter


class LSTMCell(Module):
    """One LSTM layer processing full sequences."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
        name: str = "lstm",
    ):
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        w_x = initializers.glorot_uniform((input_dim, 4 * hidden_dim), rng)
        w_h = np.concatenate(
            [
                initializers.orthogonal((hidden_dim, hidden_dim), rng)
                for _ in range(4)
            ],
            axis=1,
        )
        self.W = Parameter(f"{name}.W", np.concatenate([w_x, w_h], axis=0))
        bias = np.zeros(4 * hidden_dim)
        bias[hidden_dim : 2 * hidden_dim] = 1.0  # forget-gate bias
        self.b = Parameter(f"{name}.b", bias)
        self._cache: Optional[dict] = None
        self._w_x: Optional[np.ndarray] = None
        self._w_h: Optional[np.ndarray] = None

    def weight_views(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached ``(W_x, W_h)`` views into the fused weight matrix.

        Views are invalidated by identity: optimizers update ``W.value``
        in place (views stay live); anything that rebinds the buffer
        (e.g. a hand-rolled ``p.value = ...``) makes ``base`` differ and
        triggers a rebuild.
        """
        w = self.W.value
        w_x = self._w_x
        if w_x is None or w_x.base is not w:
            self._w_x = w_x = w[: self.input_dim]
            self._w_h = w[self.input_dim :]
        return w_x, self._w_h

    # ------------------------------------------------------------------
    # Sequence forward/backward (training)
    # ------------------------------------------------------------------
    def forward(
        self,
        x: np.ndarray,
        h0: Optional[np.ndarray] = None,
        c0: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``x``: (B, T, input_dim) -> hidden states (B, T, hidden_dim)."""
        batch, steps, _ = x.shape
        H = self.hidden_dim
        h = np.zeros((batch, H)) if h0 is None else h0.copy()
        c = np.zeros((batch, H)) if c0 is None else c0.copy()
        hs = np.zeros((batch, steps, H))
        cache = {
            "x": x,
            "h_prev": np.zeros((batch, steps, H)),
            "c_prev": np.zeros((batch, steps, H)),
            "i": np.zeros((batch, steps, H)),
            "f": np.zeros((batch, steps, H)),
            "g": np.zeros((batch, steps, H)),
            "o": np.zeros((batch, steps, H)),
            "c": np.zeros((batch, steps, H)),
        }
        w_x, w_h = self.weight_views()
        # Input projection for the whole sequence in one GEMM; only the
        # recurrent term h @ W_h must stay inside the timestep loop.
        x_proj = x @ w_x + self.b.value
        for t in range(steps):
            cache["h_prev"][:, t] = h
            cache["c_prev"][:, t] = c
            z = x_proj[:, t] + h @ w_h
            # sigmoid(x) = (1 + tanh(x/2)) / 2 — one vectorized tanh for
            # the three sigmoid gates beats per-gate masked-exp sigmoid.
            s = np.tanh(0.5 * z)
            i = 0.5 * (1 + s[:, :H])
            f = 0.5 * (1 + s[:, H : 2 * H])
            o = 0.5 * (1 + s[:, 3 * H :])
            g = np.tanh(z[:, 2 * H : 3 * H])
            c = f * c + i * g
            h = o * np.tanh(c)
            hs[:, t] = h
            for key, val in (("i", i), ("f", f), ("g", g), ("o", o), ("c", c)):
                cache[key][:, t] = val
        self._cache = cache
        return hs

    def backward(self, grad_h: np.ndarray) -> np.ndarray:
        """``grad_h``: (B, T, H) upstream dL/dh_t; returns dL/dx."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        x = cache["x"]
        batch, steps, _ = x.shape
        H = self.hidden_dim
        dh_next = np.zeros((batch, H))
        dc_next = np.zeros((batch, H))
        w_x, w_h = self.weight_views()
        # Per-step work is only what the recurrence forces (dz and its
        # backflow through W_h); parameter and input gradients batch into
        # single GEMMs over the whole sequence afterwards.
        dz_all = np.zeros((batch, steps, 4 * H))
        for t in range(steps - 1, -1, -1):
            i = cache["i"][:, t]
            f = cache["f"][:, t]
            g = cache["g"][:, t]
            o = cache["o"][:, t]
            c = cache["c"][:, t]
            c_prev = cache["c_prev"][:, t]
            tanh_c = np.tanh(c)

            dh = grad_h[:, t] + dh_next
            do = dh * tanh_c
            dc = dh * o * (1.0 - tanh_c**2) + dc_next
            di = dc * g
            dg = dc * i
            df = dc * c_prev
            dc_next = dc * f

            dz = dz_all[:, t]
            dz[:, :H] = di * i * (1 - i)
            dz[:, H : 2 * H] = df * f * (1 - f)
            dz[:, 2 * H : 3 * H] = dg * (1 - g**2)
            dz[:, 3 * H :] = do * o * (1 - o)
            dh_next = dz @ w_h.T
        flat_dz = dz_all.reshape(-1, 4 * H)
        self.W.grad[: self.input_dim] += (
            x.reshape(-1, self.input_dim).T @ flat_dz
        )
        self.W.grad[self.input_dim :] += (
            cache["h_prev"].reshape(-1, H).T @ flat_dz
        )
        self.b.grad += flat_dz.sum(axis=0)
        return dz_all @ w_x.T

    # ------------------------------------------------------------------
    # Single-step inference (free-running unroll)
    # ------------------------------------------------------------------
    def step(
        self, x_t: np.ndarray, state: Optional[Tuple[np.ndarray, np.ndarray]]
    ) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
        """One inference step; ``x_t``: (B, input_dim).  No caching."""
        batch = x_t.shape[0]
        H = self.hidden_dim
        if state is None:
            h = np.zeros((batch, H))
            c = np.zeros((batch, H))
        else:
            h, c = state
        w_x, w_h = self.weight_views()
        z = x_t @ w_x + h @ w_h + self.b.value
        s = np.tanh(0.5 * z)  # same gate identity as forward()
        i = 0.5 * (1 + s[:, :H])
        f = 0.5 * (1 + s[:, H : 2 * H])
        o = 0.5 * (1 + s[:, 3 * H :])
        g = np.tanh(z[:, 2 * H : 3 * H])
        c = f * c + i * g
        h = o * np.tanh(c)
        return h, (h, c)


class LSTM(Module):
    """A stack of LSTM layers (the "multi-layer LSTM network" of Fig. 6)."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        num_layers: int,
        rng: np.random.Generator,
        name: str = "stack",
    ):
        if num_layers < 1:
            raise ValueError("need at least one layer")
        self.layers: List[LSTMCell] = []
        dim = input_dim
        for k in range(num_layers):
            self.layers.append(
                LSTMCell(dim, hidden_dim, rng, name=f"{name}.layer{k}")
            )
            dim = hidden_dim
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_h: np.ndarray) -> np.ndarray:
        grad = grad_h
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def step(self, x_t: np.ndarray, states: Optional[list]) -> Tuple[np.ndarray, list]:
        """One inference step through the stack; ``states`` is a list of
        per-layer (h, c) tuples (or ``None`` to start cold)."""
        if states is None:
            states = [None] * self.num_layers
        out = x_t
        new_states = []
        for layer, state in zip(self.layers, states):
            out, new_state = layer.step(out, state)
            new_states.append(new_state)
        return out, new_states

    __call__ = forward
