"""Stacked LSTM with full backpropagation through time.

Gate layout follows the usual convention: for input ``x_t`` and previous
hidden state ``h_{t-1}``,

    z = [x_t, h_{t-1}] @ W + b          (z split into i, f, g, o)
    i = sigmoid(z_i)   f = sigmoid(z_f)
    g = tanh(z_g)      o = sigmoid(z_o)
    c_t = f * c_{t-1} + i * g
    h_t = o * tanh(c_t)

The forget-gate bias is initialised to 1 (standard practice; helps gradient
flow early in training).  ``forward`` runs a whole (B, T, D) batch and
caches activations; ``backward`` consumes dL/dh of shape (B, T, H) and
returns dL/dx, accumulating parameter gradients.  Stateful single-step
``step``/``step_grad``-free inference is used by the free-running unroll.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.ml import initializers
from repro.ml.layers import Module, Parameter, _sigmoid


class LSTMCell(Module):
    """One LSTM layer processing full sequences."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
        name: str = "lstm",
    ):
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        w_x = initializers.glorot_uniform((input_dim, 4 * hidden_dim), rng)
        w_h = np.concatenate(
            [
                initializers.orthogonal((hidden_dim, hidden_dim), rng)
                for _ in range(4)
            ],
            axis=1,
        )
        self.W = Parameter(f"{name}.W", np.concatenate([w_x, w_h], axis=0))
        bias = np.zeros(4 * hidden_dim)
        bias[hidden_dim : 2 * hidden_dim] = 1.0  # forget-gate bias
        self.b = Parameter(f"{name}.b", bias)
        self._cache: Optional[dict] = None

    # ------------------------------------------------------------------
    # Sequence forward/backward (training)
    # ------------------------------------------------------------------
    def forward(
        self,
        x: np.ndarray,
        h0: Optional[np.ndarray] = None,
        c0: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``x``: (B, T, input_dim) -> hidden states (B, T, hidden_dim)."""
        batch, steps, _ = x.shape
        H = self.hidden_dim
        h = np.zeros((batch, H)) if h0 is None else h0.copy()
        c = np.zeros((batch, H)) if c0 is None else c0.copy()
        hs = np.zeros((batch, steps, H))
        cache = {
            "x": x,
            "h_prev": np.zeros((batch, steps, H)),
            "c_prev": np.zeros((batch, steps, H)),
            "i": np.zeros((batch, steps, H)),
            "f": np.zeros((batch, steps, H)),
            "g": np.zeros((batch, steps, H)),
            "o": np.zeros((batch, steps, H)),
            "c": np.zeros((batch, steps, H)),
        }
        for t in range(steps):
            cache["h_prev"][:, t] = h
            cache["c_prev"][:, t] = c
            zi, zf, zg, zo = self._gates(x[:, t], h)
            i, f = _sigmoid(zi), _sigmoid(zf)
            g, o = np.tanh(zg), _sigmoid(zo)
            c = f * c + i * g
            h = o * np.tanh(c)
            hs[:, t] = h
            for key, val in (("i", i), ("f", f), ("g", g), ("o", o), ("c", c)):
                cache[key][:, t] = val
        self._cache = cache
        return hs

    def _gates(self, x_t: np.ndarray, h_prev: np.ndarray):
        z = np.concatenate([x_t, h_prev], axis=1) @ self.W.value + self.b.value
        H = self.hidden_dim
        return z[:, :H], z[:, H : 2 * H], z[:, 2 * H : 3 * H], z[:, 3 * H :]

    def backward(self, grad_h: np.ndarray) -> np.ndarray:
        """``grad_h``: (B, T, H) upstream dL/dh_t; returns dL/dx."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        x = cache["x"]
        batch, steps, _ = x.shape
        H = self.hidden_dim
        grad_x = np.zeros_like(x)
        dh_next = np.zeros((batch, H))
        dc_next = np.zeros((batch, H))
        dW = np.zeros_like(self.W.value)
        db = np.zeros_like(self.b.value)
        for t in range(steps - 1, -1, -1):
            i = cache["i"][:, t]
            f = cache["f"][:, t]
            g = cache["g"][:, t]
            o = cache["o"][:, t]
            c = cache["c"][:, t]
            c_prev = cache["c_prev"][:, t]
            h_prev = cache["h_prev"][:, t]
            tanh_c = np.tanh(c)

            dh = grad_h[:, t] + dh_next
            do = dh * tanh_c
            dc = dh * o * (1.0 - tanh_c**2) + dc_next
            di = dc * g
            dg = dc * i
            df = dc * c_prev
            dc_next = dc * f

            dzi = di * i * (1 - i)
            dzf = df * f * (1 - f)
            dzg = dg * (1 - g**2)
            dzo = do * o * (1 - o)
            dz = np.concatenate([dzi, dzf, dzg, dzo], axis=1)

            inp = np.concatenate([x[:, t], h_prev], axis=1)
            dW += inp.T @ dz
            db += dz.sum(axis=0)
            d_inp = dz @ self.W.value.T
            grad_x[:, t] = d_inp[:, : self.input_dim]
            dh_next = d_inp[:, self.input_dim :]
        self.W.grad += dW
        self.b.grad += db
        return grad_x

    # ------------------------------------------------------------------
    # Single-step inference (free-running unroll)
    # ------------------------------------------------------------------
    def step(
        self, x_t: np.ndarray, state: Optional[Tuple[np.ndarray, np.ndarray]]
    ) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
        """One inference step; ``x_t``: (B, input_dim).  No caching."""
        batch = x_t.shape[0]
        if state is None:
            h = np.zeros((batch, self.hidden_dim))
            c = np.zeros((batch, self.hidden_dim))
        else:
            h, c = state
        zi, zf, zg, zo = self._gates(x_t, h)
        i, f = _sigmoid(zi), _sigmoid(zf)
        g, o = np.tanh(zg), _sigmoid(zo)
        c = f * c + i * g
        h = o * np.tanh(c)
        return h, (h, c)


class LSTM(Module):
    """A stack of LSTM layers (the "multi-layer LSTM network" of Fig. 6)."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        num_layers: int,
        rng: np.random.Generator,
        name: str = "stack",
    ):
        if num_layers < 1:
            raise ValueError("need at least one layer")
        self.layers: List[LSTMCell] = []
        dim = input_dim
        for k in range(num_layers):
            self.layers.append(
                LSTMCell(dim, hidden_dim, rng, name=f"{name}.layer{k}")
            )
            dim = hidden_dim
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_h: np.ndarray) -> np.ndarray:
        grad = grad_h
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def step(self, x_t: np.ndarray, states: Optional[list]) -> Tuple[np.ndarray, list]:
        """One inference step through the stack; ``states`` is a list of
        per-layer (h, c) tuples (or ``None`` to start cold)."""
        if states is None:
            states = [None] * self.num_layers
        out = x_t
        new_states = []
        for layer, state in zip(self.layers, states):
            out, new_state = layer.step(out, state)
            new_states.append(new_state)
        return out, new_states

    __call__ = forward
