"""Declarative job specs with stable content-derived identities.

A :class:`JobSpec` is a pure description of one unit of work — fit a
trace, simulate a protocol over a fitted profile, run a paper experiment
— carrying only JSON-able parameters so it can cross a process boundary
cheaply and be replayed from a manifest.  Its ``job_id`` is a SHA-256
content hash over the job kind, the canonicalised parameters, and (for
trace-backed jobs) the digest of the trace bytes themselves: the same
inputs always produce the same id, and any input change produces a new
one.  That identity is what makes runs comparable across manifests and
what the profile cache keys on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.trace.io import PathLike, trace_file_digest

#: Job kinds understood by the stock workers in :mod:`repro.runtime.batch`.
KIND_FIT = "fit"
KIND_SIMULATE = "simulate"
KIND_EXPERIMENT = "experiment"
KIND_SWEEP = "sweep"


def canonical_json(params: Dict[str, Any]) -> str:
    """Deterministic JSON encoding used for hashing parameters."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def content_hash(kind: str, params: Dict[str, Any], *parts: str) -> str:
    """SHA-256 hex over ``kind`` + canonical params + extra parts."""
    digest = hashlib.sha256()
    digest.update(kind.encode())
    digest.update(b"\0")
    digest.update(canonical_json(params).encode())
    for part in parts:
        digest.update(b"\0")
        digest.update(part.encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class JobSpec:
    """One schedulable unit of work.

    ``params`` must stay JSON-able: specs are pickled to worker
    processes and echoed verbatim into run manifests.
    """

    kind: str
    job_id: str
    label: str
    params: Dict[str, Any] = field(default_factory=dict)
    #: Per-job wall-clock limit; overrides ``ExecutorConfig.timeout_sec``
    #: for this spec only (pool path).  Operational — not part of job_id.
    timeout_sec: Optional[float] = None

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "job_id": self.job_id,
            "label": self.label,
            "params": self.params,
        }


@dataclass
class JobError:
    """Structured record of a failed job — never a bare traceback."""

    error_type: str
    message: str
    traceback: str = ""

    def describe(self) -> Dict[str, Any]:
        return {
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
        }


@dataclass
class JobResult:
    """Outcome of running one :class:`JobSpec`.

    A failed job is a first-class value (``status == "failed"`` with a
    :class:`JobError`), not an exception: one bad trace must never kill
    the batch.
    """

    spec: JobSpec
    status: str  # "ok" | "failed"
    value: Any = None
    error: Optional[JobError] = None
    attempts: int = 1
    duration_sec: float = 0.0
    cache_hit: bool = False
    #: True when this result was carried over from a prior manifest by
    #: ``repro batch --resume`` instead of being executed (value is None).
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def describe(self) -> Dict[str, Any]:
        """Manifest row for this result (omits the in-memory value)."""
        return {
            "job_id": self.spec.job_id,
            "kind": self.spec.kind,
            "label": self.spec.label,
            "status": self.status,
            "attempts": self.attempts,
            "duration_sec": round(self.duration_sec, 6),
            "cache_hit": self.cache_hit,
            "resumed": self.resumed,
            "error": self.error.describe() if self.error else None,
        }


def make_fit_job(
    trace_path: PathLike,
    fit_kwargs: Optional[Dict[str, Any]] = None,
    extra_params: Optional[Dict[str, Any]] = None,
    repair_policy: str = "strict",
) -> JobSpec:
    """A fit job whose id covers the trace *bytes* plus fit parameters.

    ``repair_policy`` is part of the content hash: repairing a corrupt
    trace changes what gets fitted, so ``strict`` and ``repair`` runs
    over the same bytes must never share a job identity (or a cache
    entry).
    """
    from repro.core.iboxnet import PROFILE_VERSION

    digest = trace_file_digest(trace_path)
    hashed = {
        "fit_kwargs": dict(fit_kwargs or {}),
        "profile_version": PROFILE_VERSION,
        "repair_policy": repair_policy,
    }
    # Operational knobs (cache location etc.) ride along in the params
    # but deliberately stay out of the content hash: the *work* is the
    # same wherever its output lands.
    params: Dict[str, Any] = {
        **hashed,
        "trace_path": str(trace_path),
        "trace_digest": digest,
        **(extra_params or {}),
    }
    return JobSpec(
        kind=KIND_FIT,
        job_id=content_hash(KIND_FIT, hashed, digest),
        label=f"fit:{trace_path}",
        params=params,
    )


def make_simulate_job(
    trace_path: PathLike,
    protocols,
    duration: Optional[float],
    seed: int,
    fit_kwargs: Optional[Dict[str, Any]] = None,
    cache_dir: Optional[str] = None,
    output_dir: Optional[str] = None,
    repair_policy: str = "strict",
) -> JobSpec:
    """A fit+counterfactual job over one trace (the ``repro batch`` unit)."""
    from repro.core.iboxnet import PROFILE_VERSION

    digest = trace_file_digest(trace_path)
    hashed = {
        "protocols": list(protocols),
        "duration": duration,
        "seed": seed,
        "fit_kwargs": dict(fit_kwargs or {}),
        "profile_version": PROFILE_VERSION,
        "repair_policy": repair_policy,
    }
    job_id = content_hash(KIND_SIMULATE, hashed, digest)
    return JobSpec(
        kind=KIND_SIMULATE,
        job_id=job_id,
        label=f"simulate:{trace_path}",
        params={
            **hashed,
            "trace_path": str(trace_path),
            "trace_digest": digest,
            "cache_dir": cache_dir,
            "output_dir": output_dir,
        },
    )


def make_sweep_job(
    grid_params: Dict[str, Any],
    label: Optional[str] = None,
    chunk: Optional[str] = None,
) -> JobSpec:
    """A flow-level sweep job over one scenario chunk.

    ``grid_params`` is a :meth:`repro.sweep.ScenarioGrid.to_params`
    dict — fully content-hashed, so identical chunks resubmitted to the
    serve daemon dedupe on job_id.  ``chunk`` disambiguates the label
    when one grid is split across several specs (the split itself is
    part of ``grid_params`` because each chunk carries its own scenario
    subset).
    """
    hashed = {"grid": grid_params}
    job_id = content_hash(KIND_SWEEP, hashed)
    suffix = f":{chunk}" if chunk else ""
    return JobSpec(
        kind=KIND_SWEEP,
        job_id=job_id,
        label=label or f"sweep:{job_id[:12]}{suffix}",
        params=hashed,
    )


def make_experiment_job(name: str, scale: str = "quick") -> JobSpec:
    """A paper-experiment job (``reproduce all`` fans these out)."""
    params = {"name": name, "scale": scale}
    return JobSpec(
        kind=KIND_EXPERIMENT,
        job_id=content_hash(KIND_EXPERIMENT, params),
        label=f"experiment:{name}",
        params=params,
    )
