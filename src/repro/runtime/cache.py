"""Content-addressed on-disk store for fitted iBoxNet profiles.

§3.2 (fn. 2) envisions releasing reusable "iBoxNet profiles"; this is
the persistence layer that makes a profile something you fit **once**
and reuse across every later ``simulate`` / ensemble / experiment call.

Keys are pure functions of the inputs: SHA-256 over the trace file's
raw bytes, the fit kwargs, and :data:`repro.core.iboxnet.PROFILE_VERSION`.
There is therefore no invalidation protocol — a changed trace, changed
fit parameters, or a schema bump simply hash to a key that was never
written, and the stale entry is garbage that ``clear()`` (or an rm -rf)
can reap at leisure.  Writes are atomic (tmp file + ``os.replace``), so
concurrent workers fitting the same trace race benignly: last writer
wins with identical content.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro import obs
from repro.runtime.jobs import content_hash
from repro.trace.io import PathLike, trace_file_digest

#: Environment override for the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_log = obs.get_logger("repro.runtime")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro/profiles``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "profiles"


class ProfileCache:
    """A content-addressed profile store rooted at one directory.

    Entries are two-level sharded (``ab/abcdef....json``) so a large
    corpus never piles tens of thousands of files into one directory.
    Hit/miss counters are per-instance (i.e. per process); the batch
    runner aggregates cross-worker hits from job results instead.
    """

    def __init__(self, root: Optional[PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    def key_for(
        self,
        trace_path: PathLike,
        fit_kwargs: Optional[Dict[str, Any]] = None,
        trace_digest: Optional[str] = None,
        repair_policy: str = "strict",
    ) -> str:
        """The cache key for fitting one trace with given parameters.

        ``repair_policy`` is part of the key: a profile fitted from a
        repaired trace is a different artifact than one fitted strictly
        from the same bytes.
        """
        from repro.core.iboxnet import PROFILE_VERSION

        digest = trace_digest or trace_file_digest(trace_path)
        return content_hash(
            "profile",
            {
                "fit_kwargs": dict(fit_kwargs or {}),
                "profile_version": PROFILE_VERSION,
                "repair_policy": repair_policy,
            },
            digest,
        )

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt entries are moved for post-mortem inspection."""
        return self.root / "quarantine"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def _entries(self):
        return (
            p for p in self.root.glob("*/*.json")
            if p.parent.name != "quarantine"
        )

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self._entries())

    # ------------------------------------------------------------------
    # Get / put
    # ------------------------------------------------------------------
    def get_profile(self, key: str, count: bool = True) -> Optional[dict]:
        """The raw profile dict for ``key``, or ``None`` on miss.

        A corrupt entry (torn write from a killed process, manual edit,
        wrong schema) counts as a miss and is *quarantined* — moved to
        ``<root>/quarantine/`` rather than deleted, so the damage stays
        inspectable while the caller re-fits into a clean slot.

        ``count=False`` skips the hit/miss counters; it exists for
        double-checked lookups (miss, take fit lock, re-check) that
        would otherwise tally one logical miss twice.
        """
        path = self.path_for(key)
        try:
            profile = json.loads(path.read_text())
        except FileNotFoundError:
            self._count_miss(count)
            return None
        except (json.JSONDecodeError, OSError):
            self._quarantine(path, "undecodable json")
            self._count_miss(count)
            return None
        if not isinstance(profile, dict) or "profile_version" not in profile:
            self._quarantine(path, "not a profile object")
            self._count_miss(count)
            return None
        if count:
            self.hits += 1
            obs.metrics().counter("cache.hits").inc()
        return profile

    def _count_miss(self, count: bool) -> None:
        if count:
            self.misses += 1
            obs.metrics().counter("cache.misses").inc()

    def _quarantine(self, path: Path, reason: str) -> None:
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:
            # Quarantine is best-effort; a vanished file is already gone.
            path.unlink(missing_ok=True)
        obs.metrics().counter("cache.quarantined").inc()
        _log.warning(
            "cache.quarantined", entry=path.name, reason=reason
        )

    def get(self, key: str, count: bool = True):
        """The cached :class:`IBoxNetModel` for ``key``, or ``None``."""
        from repro.core.iboxnet import from_profile

        profile = self.get_profile(key, count=count)
        if profile is None:
            return None
        try:
            return from_profile(profile)
        except (KeyError, TypeError, ValueError):
            # Valid JSON, structurally wrong: quarantine like any other
            # corruption and treat as a miss.
            self._quarantine(self.path_for(key), "unloadable profile")
            return None

    def put_profile(self, key: str, profile: dict) -> Path:
        """Atomically write a profile dict under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(profile, indent=2))
        os.replace(tmp, path)
        return path

    def put(self, key: str, model) -> Path:
        from repro.core.iboxnet import to_profile

        return self.put_profile(key, to_profile(model))

    # ------------------------------------------------------------------
    # High-level: fit-through-cache
    # ------------------------------------------------------------------
    def lock_path_for(self, key: str) -> Path:
        """The advisory lockfile serialising fit-on-miss for ``key``."""
        return self.root / "locks" / f"{key}.lock"

    def fit_cached(
        self,
        trace_path: PathLike,
        fit_kwargs: Optional[Dict[str, Any]] = None,
        trace_digest: Optional[str] = None,
        repair_policy: str = "strict",
        lock_timeout: Optional[float] = 600.0,
    ) -> Tuple[Any, bool]:
        """Fit ``trace_path`` through the cache.

        Returns ``(model, cache_hit)``; on a miss the trace is loaded
        under ``repair_policy``, fitted, and the resulting profile
        stored before returning.

        The fit itself runs under a per-key advisory file lock
        (``fcntl.flock``): when several processes miss on the same key
        at once — the serve daemon's workers, parallel batch runs over
        a shared cache — exactly one fits while the rest wait, then
        read the winner's entry as a hit instead of burning the same
        CPU again.  A crashed winner releases the flock automatically,
        so waiters simply take over.
        """
        from repro.core import iboxnet
        from repro.runtime.locks import file_lock
        from repro.trace.io import load_trace

        key = self.key_for(
            trace_path,
            fit_kwargs,
            trace_digest=trace_digest,
            repair_policy=repair_policy,
        )
        model = self.get(key)
        if model is not None:
            return model, True
        with file_lock(self.lock_path_for(key), timeout=lock_timeout) as waited:
            if waited:
                # Another process held the fit lock: it was fitting this
                # very key.
                obs.metrics().counter("cache.lock_waits").inc()
            # Re-check under the lock: a concurrent fitter may have
            # finished between our miss above and acquiring the lock.
            # counter-neutral — the miss above already tallied this
            # lookup once.
            model = self.get(key, count=False)
            if model is not None:
                return model, True
            with obs.span("cache.fit_miss", trace=str(trace_path)):
                trace = load_trace(trace_path, policy=repair_policy)
                model = iboxnet.fit(trace, **(fit_kwargs or {}))
                self.put(key, model)
        return model, False

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}

    def clear(self) -> int:
        """Delete every live entry (quarantine is kept); returns count."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in list(self._entries()):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
