"""Process-pool batch executor with timeouts, retries, and degradation.

The contract that every caller relies on:

* :meth:`BatchExecutor.run` **never raises** for a job failure — each
  job resolves to a :class:`JobResult` (``ok`` or ``failed`` with a
  structured :class:`JobError`), in the same order as the input specs;
* a job that raises is retried up to ``max_attempts`` times with
  jittered exponential backoff before being recorded as failed;
* a job that exceeds ``timeout_sec`` is recorded as failed (timeouts
  are *not* retried — a deterministic job that blew its budget once
  will blow it again);
* if a process pool cannot be created at all (restricted sandboxes,
  missing ``/dev/shm``) the executor degrades to in-process serial
  execution rather than failing the batch;
* a SIGINT/SIGTERM (anything that raises :class:`KeyboardInterrupt`
  into the orchestrating thread) does not lose the batch: finished
  results are kept, every unfinished job resolves to ``failed`` with
  error type ``Interrupted``, and :attr:`BatchExecutor.interrupted` is
  set — so the caller still writes a complete manifest that a later
  ``--resume`` can pick up exactly where the signal landed.

Workers are plain module-level callables ``worker(spec) -> value`` so
they pickle across the process boundary.  By convention a worker that
returns a dict may include a ``"cache_hit"`` key, which the executor
lifts onto the :class:`JobResult` for manifest accounting.

Telemetry (no-op unless ``repro.obs`` is enabled): every attempt runs
inside an ``executor.job`` span carrying the spec's content-derived
``job_id`` — the join key into run manifests.  In the pool path the
parent's trace context is shipped to the worker and the worker's spans
and metrics ride back with the result, so one event log covers the
whole fan-out.  Counters: ``executor.jobs_ok`` / ``executor.jobs_failed``
/ ``executor.retries`` / ``executor.timeouts`` / ``executor.degraded``;
histogram: ``executor.job_sec``.  Retries additionally emit a
structured ``executor.retry`` event with the attempt number and the
jittered backoff delay.
"""

from __future__ import annotations

import random
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro import obs
from repro.runtime.jobs import JobError, JobResult, JobSpec

try:  # BrokenProcessPool location is version-dependent
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover
    BrokenProcessPool = OSError  # type: ignore[assignment,misc]

_log = obs.get_logger("repro.runtime")


@dataclass(frozen=True)
class ExecutorConfig:
    """Knobs for one batch run."""

    workers: int = 1
    timeout_sec: Optional[float] = None
    max_attempts: int = 2
    #: Total wall-clock budget for the whole batch.  When it runs out,
    #: jobs not yet finished are recorded as failed with error type
    #: ``BudgetExhausted`` — the manifest stays complete (every job is
    #: ``ok`` or ``failed``) and a later ``--resume`` picks up exactly
    #: the unfinished ones.
    budget_sec: Optional[float] = None
    backoff_sec: float = 0.25
    #: Backoff jitter as a +/- fraction of the exponential delay (0.5 =>
    #: each sleep is uniform in [0.5x, 1.5x]).  Jitter decorrelates
    #: retry storms when many jobs fail at once; 0 restores the old
    #: deterministic schedule.
    jitter: float = 0.5

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")
        if self.budget_sec is not None and self.budget_sec <= 0:
            raise ValueError("budget_sec must be positive")


def _guarded(
    worker: Callable,
    spec: JobSpec,
    obs_ctx: Optional[dict] = None,
    attempt: int = 1,
) -> Tuple[str, object, float, Optional[dict]]:
    """Run ``worker`` in the worker process, catching everything.

    Returning ``("failed", payload, duration, telemetry)`` instead of
    raising keeps exception types that don't pickle (or that unpickle
    differently) from poisoning the pool.  ``obs_ctx`` (pool path only)
    adopts the parent's trace identity; the collected telemetry is the
    fourth element so the parent can merge it.
    """
    with obs.activate_context(obs_ctx) as collected:
        status, payload, duration = _run_attempt(worker, spec, attempt)
    telemetry = collected.telemetry() if collected is not None else None
    return status, payload, duration, telemetry


def _run_attempt(
    worker: Callable, spec: JobSpec, attempt: int
) -> Tuple[str, object, float]:
    start = time.perf_counter()
    try:
        with obs.span(
            "executor.job",
            job_id=spec.job_id,
            kind=spec.kind,
            label=spec.label,
            attempt=attempt,
        ):
            value = worker(spec)
    except Exception as exc:  # noqa: BLE001 — the whole point is capture
        payload = {
            "error_type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        }
        return "failed", payload, time.perf_counter() - start
    return "ok", value, time.perf_counter() - start


def _lift_cache_hit(value: object) -> bool:
    return isinstance(value, dict) and bool(value.get("cache_hit"))


class BatchExecutor:
    """Runs batches of :class:`JobSpec` through a worker callable."""

    def __init__(self, config: Optional[ExecutorConfig] = None):
        self.config = config or ExecutorConfig()
        self.degraded_to_serial = False
        #: True once a KeyboardInterrupt (SIGINT, or SIGTERM re-raised
        #: by the CLI handler) cut the batch short.  Jobs that never
        #: finished are recorded as failed/``Interrupted``.
        self.interrupted = False
        self._rng = random.Random()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self, specs: Sequence[JobSpec], worker: Callable[[JobSpec], object]
    ) -> List[JobResult]:
        """Execute every spec; one :class:`JobResult` per spec, in order."""
        if not specs:
            return []
        deadline = (
            time.perf_counter() + self.config.budget_sec
            if self.config.budget_sec is not None
            else None
        )
        if self.config.workers == 1:
            return self._run_all_serial(specs, worker, deadline)
        try:
            return self._run_pool(specs, worker, deadline)
        except (OSError, PermissionError, ValueError):
            # Pool could not even be constructed: degrade, don't die.
            self.degraded_to_serial = True
            obs.metrics().counter("executor.degraded").inc()
            _log.warning(
                "executor.degraded_to_serial",
                workers=self.config.workers,
                jobs=len(specs),
            )
            return self._run_all_serial(specs, worker, deadline)

    def _effective_timeout(self, spec: JobSpec) -> Optional[float]:
        """Per-spec timeout override, else the config default."""
        if spec.timeout_sec is not None:
            return spec.timeout_sec
        return self.config.timeout_sec

    def _budget_exhausted_result(self, spec: JobSpec) -> JobResult:
        obs.metrics().counter("executor.budget_exhausted").inc()
        _log.warning(
            "executor.budget_exhausted",
            job_id=spec.job_id,
            label=spec.label,
            budget_sec=self.config.budget_sec,
        )
        return self._record_outcome(
            JobResult(
                spec=spec,
                status="failed",
                error=JobError(
                    error_type="BudgetExhausted",
                    message=(
                        f"batch budget of {self.config.budget_sec}s ran out "
                        "before this job finished"
                    ),
                ),
                attempts=0,
            )
        )

    def _mark_interrupted(self) -> None:
        if not self.interrupted:
            self.interrupted = True
            obs.metrics().counter("executor.interrupted").inc()
            _log.warning("executor.interrupted")

    def _harvest_finished(self, fut, spec: JobSpec, attempt: int):
        """A future that was already done when the interrupt landed.

        Its work is a real outcome, not an interrupted one — convert it
        (no waiting, no retries: the batch is stopping) so ``--resume``
        does not needlessly re-run jobs that finished before the
        signal.  Returns None when the future is unfinished, cancelled,
        or its worker died raising.
        """
        if not fut.done() or fut.cancelled():
            return None
        try:
            status, payload, duration, telemetry = fut.result(timeout=0)
        except BaseException:  # noqa: BLE001 — pool died; treat as unfinished
            return None
        obs.merge_telemetry(telemetry)
        if status == "ok":
            return self._record_outcome(
                JobResult(
                    spec=spec,
                    status="ok",
                    value=payload,
                    attempts=attempt,
                    duration_sec=duration,
                    cache_hit=_lift_cache_hit(payload),
                )
            )
        return self._record_outcome(
            JobResult(
                spec=spec,
                status="failed",
                error=JobError(**payload),  # type: ignore[arg-type]
                attempts=attempt,
                duration_sec=duration,
            )
        )

    def _interrupted_result(self, spec: JobSpec) -> JobResult:
        return self._record_outcome(
            JobResult(
                spec=spec,
                status="failed",
                error=JobError(
                    error_type="Interrupted",
                    message=(
                        "batch interrupted by signal before this job "
                        "finished; re-run it with --resume"
                    ),
                ),
                attempts=0,
            )
        )

    # ------------------------------------------------------------------
    # Backoff
    # ------------------------------------------------------------------
    def _backoff_delay(self, next_attempt: int) -> float:
        """Jittered exponential delay before attempt ``next_attempt``."""
        base = self.config.backoff_sec * (2 ** (next_attempt - 2))
        if self.config.jitter > 0:
            base *= 1 + self._rng.uniform(
                -self.config.jitter, self.config.jitter
            )
        return max(0.0, base)

    def _note_retry(self, spec: JobSpec, next_attempt: int, delay: float):
        obs.metrics().counter("executor.retries").inc()
        _log.warning(
            "executor.retry",
            job_id=spec.job_id,
            label=spec.label,
            attempt=next_attempt,
            delay_sec=round(delay, 4),
        )

    def _record_outcome(self, result: JobResult) -> JobResult:
        registry = obs.metrics()
        registry.counter(
            "executor.jobs_ok" if result.ok else "executor.jobs_failed"
        ).inc()
        registry.histogram("executor.job_sec").observe(result.duration_sec)
        return result

    # ------------------------------------------------------------------
    # Serial path (workers == 1, or pool unavailable)
    # ------------------------------------------------------------------
    def _run_all_serial(
        self,
        specs: Sequence[JobSpec],
        worker: Callable[[JobSpec], object],
        deadline: Optional[float] = None,
    ) -> List[JobResult]:
        """Serial execution with the budget checked between jobs.

        In-process execution cannot preempt a running job, so per-job
        timeouts do not apply here; the budget is enforced at job
        boundaries (a job started before the deadline runs to
        completion).  A KeyboardInterrupt lands inside the running
        job's frame: that job and everything after it resolve to
        ``Interrupted`` instead of the exception escaping with the
        finished results.
        """
        results: List[JobResult] = []
        for spec in specs:
            if self.interrupted:
                results.append(self._interrupted_result(spec))
                continue
            if deadline is not None and time.perf_counter() >= deadline:
                results.append(self._budget_exhausted_result(spec))
                continue
            try:
                results.append(self._run_serial(spec, worker))
            except KeyboardInterrupt:
                self._mark_interrupted()
                results.append(self._interrupted_result(spec))
        return results

    def _run_serial(
        self, spec: JobSpec, worker: Callable[[JobSpec], object]
    ) -> JobResult:
        total = 0.0
        for attempt in range(1, self.config.max_attempts + 1):
            status, payload, duration, _ = _guarded(
                worker, spec, None, attempt
            )
            total += duration
            if status == "ok":
                return self._record_outcome(
                    JobResult(
                        spec=spec,
                        status="ok",
                        value=payload,
                        attempts=attempt,
                        duration_sec=total,
                        cache_hit=_lift_cache_hit(payload),
                    )
                )
            if attempt < self.config.max_attempts:
                delay = self._backoff_delay(attempt + 1)
                self._note_retry(spec, attempt + 1, delay)
                time.sleep(delay)
        return self._record_outcome(
            JobResult(
                spec=spec,
                status="failed",
                error=JobError(**payload),  # type: ignore[arg-type]
                attempts=self.config.max_attempts,
                duration_sec=total,
            )
        )

    # ------------------------------------------------------------------
    # Parallel path
    # ------------------------------------------------------------------
    def _run_pool(
        self,
        specs: Sequence[JobSpec],
        worker: Callable[[JobSpec], object],
        deadline: Optional[float] = None,
    ) -> List[JobResult]:
        results: List[Optional[JobResult]] = [None] * len(specs)
        # (index, attempt) still owed a result.
        pending: List[Tuple[int, int]] = [(i, 1) for i in range(len(specs))]
        obs_ctx = obs.current_context()
        try:
            self._pool_rounds(specs, worker, deadline, results, pending, obs_ctx)
        except KeyboardInterrupt:
            # A signal outside the per-future wait (submit, backoff
            # sleep, pool construction): same contract, no lost batch.
            self._mark_interrupted()
        if self.interrupted:
            for i, result in enumerate(results):
                if result is None:
                    results[i] = self._interrupted_result(specs[i])
        return [r for r in results if r is not None]

    def _pool_rounds(
        self,
        specs: Sequence[JobSpec],
        worker: Callable[[JobSpec], object],
        deadline: Optional[float],
        results: List[Optional[JobResult]],
        pending: List[Tuple[int, int]],
        obs_ctx,
    ) -> None:
        while pending:
            if deadline is not None and time.perf_counter() >= deadline:
                for i, _ in pending:
                    results[i] = self._budget_exhausted_result(specs[i])
                break
            retry: List[Tuple[int, int]] = []
            had_timeout = False
            pool = ProcessPoolExecutor(max_workers=self.config.workers)
            try:
                futures = [
                    (
                        i,
                        attempt,
                        pool.submit(_guarded, worker, specs[i], obs_ctx, attempt),
                    )
                    for i, attempt in pending
                ]
                for i, attempt, fut in futures:
                    spec = specs[i]
                    if self.interrupted:
                        # Keep what finished before the signal; only
                        # the truly unfinished fall through to
                        # ``Interrupted``.
                        results[i] = self._harvest_finished(fut, spec, attempt)
                        if results[i] is None:
                            fut.cancel()
                        continue
                    job_timeout = self._effective_timeout(spec)
                    remaining = (
                        None if deadline is None
                        else deadline - time.perf_counter()
                    )
                    if remaining is not None and remaining <= 0:
                        # Budget gone before this job's turn: don't wait.
                        had_timeout = True
                        fut.cancel()
                        results[i] = self._budget_exhausted_result(spec)
                        continue
                    wait_timeout = job_timeout
                    if remaining is not None:
                        wait_timeout = (
                            remaining if wait_timeout is None
                            else min(wait_timeout, remaining)
                        )
                    try:
                        status, payload, duration, telemetry = fut.result(
                            timeout=wait_timeout
                        )
                    except KeyboardInterrupt:
                        # The signal landed mid-wait: keep what finished,
                        # stop waiting for the rest (the finally below
                        # cancels and abandons them without blocking).
                        self._mark_interrupted()
                        fut.cancel()
                        continue
                    except FutureTimeout:
                        had_timeout = True
                        fut.cancel()
                        if job_timeout is None or wait_timeout < job_timeout:
                            # The batch budget, not the job's own limit.
                            results[i] = self._budget_exhausted_result(spec)
                            continue
                        # Deterministic work that blew the budget once
                        # will blow it again — fail, don't retry.
                        obs.metrics().counter("executor.timeouts").inc()
                        _log.warning(
                            "executor.timeout",
                            job_id=spec.job_id,
                            label=spec.label,
                            timeout_sec=job_timeout,
                        )
                        results[i] = self._record_outcome(
                            JobResult(
                                spec=spec,
                                status="failed",
                                error=JobError(
                                    error_type="TimeoutError",
                                    message=(
                                        f"job exceeded {job_timeout}s"
                                    ),
                                ),
                                attempts=attempt,
                                duration_sec=job_timeout or 0.0,
                            )
                        )
                        continue
                    except (BrokenProcessPool, Exception) as exc:  # noqa: BLE001
                        # Pool died under us (OOM-killed worker, unpicklable
                        # return, ...).  Re-run the job; a fresh pool is
                        # built on the next round.
                        if attempt < self.config.max_attempts:
                            retry.append((i, attempt + 1))
                        else:
                            results[i] = self._record_outcome(
                                JobResult(
                                    spec=spec,
                                    status="failed",
                                    error=JobError(
                                        error_type=type(exc).__name__,
                                        message=str(exc),
                                    ),
                                    attempts=attempt,
                                )
                            )
                        continue
                    obs.merge_telemetry(telemetry)
                    if status == "ok":
                        results[i] = self._record_outcome(
                            JobResult(
                                spec=spec,
                                status="ok",
                                value=payload,
                                attempts=attempt,
                                duration_sec=duration,
                                cache_hit=_lift_cache_hit(payload),
                            )
                        )
                    elif attempt < self.config.max_attempts:
                        retry.append((i, attempt + 1))
                    else:
                        results[i] = self._record_outcome(
                            JobResult(
                                spec=spec,
                                status="failed",
                                error=JobError(**payload),  # type: ignore[arg-type]
                                attempts=attempt,
                                duration_sec=duration,
                            )
                        )
            finally:
                # After a timeout the pool may hold a hung worker — and
                # after an interrupt the user wants out *now*; neither
                # may block the batch.
                pool.shutdown(
                    wait=not (had_timeout or self.interrupted),
                    cancel_futures=True,
                )
            if self.interrupted:
                return
            if retry:
                max_attempt = max(a for _, a in retry)
                delay = self._backoff_delay(max_attempt)
                for i, next_attempt in retry:
                    self._note_retry(specs[i], next_attempt, delay)
                time.sleep(delay)
            pending = retry
