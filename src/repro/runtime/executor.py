"""Process-pool batch executor with timeouts, retries, and degradation.

The contract that every caller relies on:

* :meth:`BatchExecutor.run` **never raises** for a job failure — each
  job resolves to a :class:`JobResult` (``ok`` or ``failed`` with a
  structured :class:`JobError`), in the same order as the input specs;
* a job that raises is retried up to ``max_attempts`` times with
  exponential backoff before being recorded as failed;
* a job that exceeds ``timeout_sec`` is recorded as failed (timeouts
  are *not* retried — a deterministic job that blew its budget once
  will blow it again);
* if a process pool cannot be created at all (restricted sandboxes,
  missing ``/dev/shm``) the executor degrades to in-process serial
  execution rather than failing the batch.

Workers are plain module-level callables ``worker(spec) -> value`` so
they pickle across the process boundary.  By convention a worker that
returns a dict may include a ``"cache_hit"`` key, which the executor
lifts onto the :class:`JobResult` for manifest accounting.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.runtime.jobs import JobError, JobResult, JobSpec

try:  # BrokenProcessPool location is version-dependent
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover
    BrokenProcessPool = OSError  # type: ignore[assignment,misc]


@dataclass(frozen=True)
class ExecutorConfig:
    """Knobs for one batch run."""

    workers: int = 1
    timeout_sec: Optional[float] = None
    max_attempts: int = 2
    backoff_sec: float = 0.25

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")


def _guarded(worker: Callable, spec: JobSpec) -> Tuple[str, object, float]:
    """Run ``worker`` in the worker process, catching everything.

    Returning ``("failed", payload, duration)`` instead of raising keeps
    exception types that don't pickle (or that unpickle differently)
    from poisoning the pool.
    """
    start = time.perf_counter()
    try:
        value = worker(spec)
    except Exception as exc:  # noqa: BLE001 — the whole point is capture
        payload = {
            "error_type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        }
        return "failed", payload, time.perf_counter() - start
    return "ok", value, time.perf_counter() - start


def _lift_cache_hit(value: object) -> bool:
    return isinstance(value, dict) and bool(value.get("cache_hit"))


class BatchExecutor:
    """Runs batches of :class:`JobSpec` through a worker callable."""

    def __init__(self, config: Optional[ExecutorConfig] = None):
        self.config = config or ExecutorConfig()
        self.degraded_to_serial = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self, specs: Sequence[JobSpec], worker: Callable[[JobSpec], object]
    ) -> List[JobResult]:
        """Execute every spec; one :class:`JobResult` per spec, in order."""
        if not specs:
            return []
        if self.config.workers == 1:
            return [self._run_serial(spec, worker) for spec in specs]
        try:
            return self._run_pool(specs, worker)
        except (OSError, PermissionError, ValueError):
            # Pool could not even be constructed: degrade, don't die.
            self.degraded_to_serial = True
            return [self._run_serial(spec, worker) for spec in specs]

    # ------------------------------------------------------------------
    # Serial path (workers == 1, or pool unavailable)
    # ------------------------------------------------------------------
    def _run_serial(
        self, spec: JobSpec, worker: Callable[[JobSpec], object]
    ) -> JobResult:
        total = 0.0
        for attempt in range(1, self.config.max_attempts + 1):
            status, payload, duration = _guarded(worker, spec)
            total += duration
            if status == "ok":
                return JobResult(
                    spec=spec,
                    status="ok",
                    value=payload,
                    attempts=attempt,
                    duration_sec=total,
                    cache_hit=_lift_cache_hit(payload),
                )
            if attempt < self.config.max_attempts:
                time.sleep(self.config.backoff_sec * (2 ** (attempt - 1)))
        return JobResult(
            spec=spec,
            status="failed",
            error=JobError(**payload),  # type: ignore[arg-type]
            attempts=self.config.max_attempts,
            duration_sec=total,
        )

    # ------------------------------------------------------------------
    # Parallel path
    # ------------------------------------------------------------------
    def _run_pool(
        self, specs: Sequence[JobSpec], worker: Callable[[JobSpec], object]
    ) -> List[JobResult]:
        results: List[Optional[JobResult]] = [None] * len(specs)
        # (index, attempt) still owed a result.
        pending: List[Tuple[int, int]] = [(i, 1) for i in range(len(specs))]
        while pending:
            retry: List[Tuple[int, int]] = []
            had_timeout = False
            pool = ProcessPoolExecutor(max_workers=self.config.workers)
            try:
                futures = [
                    (i, attempt, pool.submit(_guarded, worker, specs[i]))
                    for i, attempt in pending
                ]
                for i, attempt, fut in futures:
                    spec = specs[i]
                    try:
                        status, payload, duration = fut.result(
                            timeout=self.config.timeout_sec
                        )
                    except FutureTimeout:
                        # Deterministic work that blew the budget once
                        # will blow it again — fail, don't retry.
                        had_timeout = True
                        fut.cancel()
                        results[i] = JobResult(
                            spec=spec,
                            status="failed",
                            error=JobError(
                                error_type="TimeoutError",
                                message=(
                                    f"job exceeded {self.config.timeout_sec}s"
                                ),
                            ),
                            attempts=attempt,
                            duration_sec=self.config.timeout_sec or 0.0,
                        )
                        continue
                    except (BrokenProcessPool, Exception) as exc:  # noqa: BLE001
                        # Pool died under us (OOM-killed worker, unpicklable
                        # return, ...).  Re-run the job; a fresh pool is
                        # built on the next round.
                        if attempt < self.config.max_attempts:
                            retry.append((i, attempt + 1))
                        else:
                            results[i] = JobResult(
                                spec=spec,
                                status="failed",
                                error=JobError(
                                    error_type=type(exc).__name__,
                                    message=str(exc),
                                ),
                                attempts=attempt,
                            )
                        continue
                    if status == "ok":
                        results[i] = JobResult(
                            spec=spec,
                            status="ok",
                            value=payload,
                            attempts=attempt,
                            duration_sec=duration,
                            cache_hit=_lift_cache_hit(payload),
                        )
                    elif attempt < self.config.max_attempts:
                        retry.append((i, attempt + 1))
                    else:
                        results[i] = JobResult(
                            spec=spec,
                            status="failed",
                            error=JobError(**payload),  # type: ignore[arg-type]
                            attempts=attempt,
                            duration_sec=duration,
                        )
            finally:
                # After a timeout the pool may hold a hung worker; don't
                # block the batch waiting for it.
                pool.shutdown(wait=not had_timeout, cancel_futures=True)
            pending = retry
            if pending:
                max_attempt = max(a for _, a in pending)
                time.sleep(self.config.backoff_sec * (2 ** (max_attempt - 2)))
        return [r for r in results if r is not None]
